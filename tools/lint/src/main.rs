//! `lots-lint` — the determinism source lint.
//!
//! The whole repo's value proposition is bit-reproducible virtual-time
//! runs. Three source-level constructs quietly break that guarantee,
//! and none of them is catchable by clippy:
//!
//! * **`HashMap` in protocol/report state** — iteration order is
//!   randomized per process; any `HashMap` whose iteration feeds a
//!   wire message, a fingerprint or a report makes two identical runs
//!   differ (rule `hashmap-state`, scoped to the protocol-path
//!   modules where such state lives).
//! * **Host time in simulation code** — `Instant::now` / `SystemTime`
//!   readings differ per run; they may only appear in explicitly
//!   annotated host-observability paths (rule `host-time`).
//! * **`thread::sleep` in simulation code** — wall-clock waits couple
//!   virtual progress to the OS scheduler (rule `thread-sleep`).
//!
//! The scanner is deliberately simple: line-based substring rules over
//! the workspace's non-shim, non-bench crate sources, with an
//! allow-annotation escape hatch:
//!
//! ```text
//! // det:allow(rule-name): reason why this use is sound
//! ```
//!
//! on the offending line or in the comment block directly above it.
//! The reason is
//! mandatory — a bare allow is itself a finding. Lines at or after a
//! file's first `#[cfg(test)]` are skipped (tests sit at the end of
//! files in this repo, and host timing in tests is fine), as are
//! comment-only lines.
//!
//! Run `lots-lint --list-rules` for the rule table; exit status is
//! non-zero iff findings exist, so CI wires it next to clippy. The
//! same scan also runs as an in-crate test, putting it under the
//! tier-1 `cargo test` gate.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint rule: a name, the substrings that trigger it, a
/// repo-relative path scope, and the invariant it protects.
struct Rule {
    name: &'static str,
    patterns: &'static [&'static str],
    scope: fn(&str) -> bool,
    rationale: &'static str,
}

/// Simulation-crate sources: everything under `crates/*/src` except
/// the vendored dependency shims (host-level plumbing by nature) and
/// the bench crate (host-nanosecond timing is its purpose).
fn sim_scope(path: &str) -> bool {
    path.starts_with("crates/")
        && path.contains("/src/")
        && !path.starts_with("crates/shims/")
        && !path.starts_with("crates/bench/")
}

/// Protocol-path modules: state here can reach wire messages,
/// fingerprints or reports, so iteration order must be deterministic.
fn protocol_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/consistency/")
        || path.starts_with("crates/core/src/protocol/")
        || path == "crates/jiajia/src/services.rs"
        || path == "crates/net/src/message.rs"
}

const RULES: &[Rule] = &[
    Rule {
        name: "hashmap-state",
        patterns: &["HashMap"],
        scope: protocol_scope,
        rationale: "HashMap iteration order is per-process random; protocol/report \
                    state must use BTreeMap so wire messages and fingerprints are \
                    pure functions of virtual state",
    },
    Rule {
        name: "host-time",
        patterns: &["Instant::now", "SystemTime"],
        scope: sim_scope,
        rationale: "host clock readings differ per run; virtual state must only \
                    advance through SimClock (annotate pure host-observability \
                    uses with det:allow)",
    },
    Rule {
        name: "thread-sleep",
        patterns: &["thread::sleep"],
        scope: sim_scope,
        rationale: "wall-clock waits couple virtual progress to the OS scheduler; \
                    park through the virtual-time engine instead",
    },
];

/// One finding: file, 1-based line, rule, and the offending line.
struct Finding {
    path: String,
    line: usize,
    rule: &'static str,
    text: String,
}

/// Does one line carry a well-formed allow for `rule`? A malformed
/// allow (missing reason) never allows.
fn has_allow(rule: &str, line: &str) -> bool {
    let tag = format!("det:allow({rule})");
    line.find(&tag).is_some_and(|at| {
        let rest = &line[at + tag.len()..];
        rest.starts_with(':') && !rest[1..].trim().is_empty()
    })
}

/// Does line `i` (or the contiguous comment block directly above it)
/// carry a well-formed allow for `rule`?
fn allowed(rule: &str, lines: &[&str], i: usize) -> bool {
    if has_allow(rule, lines[i]) {
        return true;
    }
    let mut j = i;
    while j > 0 && comment_only(lines[j - 1]) {
        j -= 1;
        if has_allow(rule, lines[j]) {
            return true;
        }
    }
    false
}

/// Is this a comment-only line? (Mentions of a pattern in docs are
/// not uses; the allow-annotation check runs before this.)
fn comment_only(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// Scan one file's text; `rel` is its repo-relative path.
fn scan_file(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let lines: Vec<&str> = text.lines().collect();
    // Tests live at file ends in this repo; everything from the first
    // `#[cfg(test)]` down is host-side test harness, out of scope.
    let test_start = lines
        .iter()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(lines.len());
    for rule in RULES {
        if !(rule.scope)(rel) {
            continue;
        }
        for (i, line) in lines.iter().take(test_start).enumerate() {
            if !rule.patterns.iter().any(|p| line.contains(p)) || comment_only(line) {
                continue;
            }
            if allowed(rule.name, &lines, i) {
                continue;
            }
            findings.push(Finding {
                path: rel.to_string(),
                line: i + 1,
                rule: rule.name,
                text: line.trim().to_string(),
            });
        }
    }
}

/// Collect every `.rs` file under `dir`, sorted for deterministic
/// output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scan the workspace rooted at `root`; findings sorted by path/line.
fn scan_workspace(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    rust_files(&root.join("crates"), &mut files);
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        scan_file(&rel, &text, &mut findings);
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

fn list_rules() {
    println!("{:<14} {:<36} scope", "rule", "forbids");
    for r in RULES {
        let scope = if r.name == "hashmap-state" {
            "protocol-path modules"
        } else {
            "crates/*/src minus shims, bench"
        };
        println!("{:<14} {:<36} {scope}", r.name, r.patterns.join(", "));
        println!("    {}", r.rationale);
    }
    println!("\nallow syntax: // det:allow(rule-name): reason   (same or preceding line; reason required)");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-rules") {
        list_rules();
        return ExitCode::SUCCESS;
    }
    let root = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let findings = scan_workspace(&root);
    for f in &findings {
        println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.text);
    }
    if findings.is_empty() {
        println!("lots-lint: clean ({} rules)", RULES.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "lots-lint: {} finding(s) — fix or annotate with det:allow(rule): reason",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole workspace must be lint-clean: this puts the
    /// determinism lint under the tier-1 `cargo test` gate, not just
    /// the CI step.
    #[test]
    fn workspace_is_lint_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = scan_workspace(&root);
        let rendered: Vec<String> = findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.text))
            .collect();
        assert!(
            rendered.is_empty(),
            "lint findings:\n{}",
            rendered.join("\n")
        );
    }

    #[test]
    fn finds_forbidden_constructs() {
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\n";
        let mut f = Vec::new();
        scan_file("crates/core/src/consistency/locks.rs", src, &mut f);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].rule, "hashmap-state");
        assert_eq!(f[1].rule, "host-time");
    }

    #[test]
    fn allow_annotation_with_reason_suppresses() {
        let src = "// det:allow(host-time): busy-time observability only\n\
                   let t = Instant::now();\n";
        let mut f = Vec::new();
        scan_file("crates/sim/src/sched/engine.rs", src, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn allow_without_reason_does_not_suppress() {
        let src = "let t = Instant::now(); // det:allow(host-time):\n";
        let mut f = Vec::new();
        scan_file("crates/sim/src/x.rs", src, &mut f);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn wrong_rule_name_does_not_suppress() {
        let src = "// det:allow(thread-sleep): not the right rule\n\
                   let t = Instant::now();\n";
        let mut f = Vec::new();
        scan_file("crates/sim/src/x.rs", src, &mut f);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn cfg_test_tail_and_comments_are_skipped() {
        let src = "// Instant::now is mentioned in a comment\n\
                   fn ok() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { let _ = Instant::now(); std::thread::sleep(d); }\n\
                   }\n";
        let mut f = Vec::new();
        scan_file("crates/sim/src/x.rs", src, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn scope_excludes_shims_and_bench() {
        let src = "let t = Instant::now();\n";
        for path in [
            "crates/shims/crossbeam/src/lib.rs",
            "crates/bench/src/main.rs",
        ] {
            let mut f = Vec::new();
            scan_file(path, src, &mut f);
            assert!(f.is_empty(), "{path} must be out of scope");
        }
    }

    #[test]
    fn hashmap_outside_protocol_paths_is_fine() {
        let src = "use std::collections::HashMap;\n";
        let mut f = Vec::new();
        scan_file("crates/core/src/node.rs", src, &mut f);
        assert!(f.is_empty());
    }
}
