//! Offline stand-in for [`rand`](https://docs.rs/rand) 0.8: the
//! `Rng`/`SeedableRng` traits and a deterministic `StdRng`
//! (xoshiro256** seeded via SplitMix64). Streams are stable across
//! runs and platforms — exactly what the seeded workloads here need —
//! but are NOT the streams real `rand` would produce, and nothing in
//! this shim is cryptographically secure.

pub mod rngs {
    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }

        pub(crate) fn next_raw(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Construction from seeds, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to seed xoshiro.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        rngs::StdRng::from_state([next(), next(), next(), next()])
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_raw()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_raw() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_raw() as i64
    }
}

impl Standard for i32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_raw() >> 32) as i32
    }
}

impl Standard for usize {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_raw() as usize
    }
}

impl Standard for u8 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_raw() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_raw() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 per
                // draw, irrelevant for workload generation.
                let r = rng.next_raw() as u128;
                let v = (r * span) >> 64;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// The subset of `rand::Rng` this workspace uses.
pub trait Rng {
    fn gen<T: Standard>(&mut self) -> T;
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = r.gen_range(0..1_000_000_000);
            assert!((0..1_000_000_000).contains(&v));
            let u: usize = r.gen_range(3..17);
            assert!((3..17).contains(&u));
        }
    }
}
