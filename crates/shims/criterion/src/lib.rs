//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! Provides the API surface the `lots-bench` benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::{iter, iter_batched}`, `BenchmarkId`, `Throughput`,
//! `BatchSize`, `black_box` — and measures with plain
//! `std::time::Instant`: per benchmark it warms up once, then runs
//! `sample_size` timed samples and prints the mean (plus MB/s or
//! Melem/s when a throughput is declared). No statistics, plotting, or
//! baseline storage.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared per-iteration work, for derived rates in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Batching hint; the shim times every batch individually regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Collects sample timings for one benchmark.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn run_samples(samples: u64) -> Self {
        Bencher {
            samples,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    fn mean(&self) -> Option<Duration> {
        (self.iters > 0).then(|| self.total / self.iters as u32)
    }
}

/// Entry point; mirrors `criterion::Criterion` builder methods.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into().id, self.sample_size, None, f);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// A named group sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(
    name: &str,
    samples: u64,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher::run_samples(samples);
    f(&mut b);
    match b.mean() {
        Some(mean) => {
            let rate = throughput.map(|t| match t {
                Throughput::Bytes(n) => {
                    format!(" ({:.1} MB/s)", n as f64 / mean.as_secs_f64() / 1e6)
                }
                Throughput::Elements(n) => {
                    format!(" ({:.2} Melem/s)", n as f64 / mean.as_secs_f64() / 1e6)
                }
            });
            println!(
                "bench {name:<48} {:>12.3} µs/iter{}",
                mean.as_secs_f64() * 1e6,
                rate.unwrap_or_default()
            );
        }
        None => println!("bench {name:<48} (no samples)"),
    }
}

/// `criterion_group!`: both the plain list form and the
/// `name/config/targets` form used by the benches here.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(1024));
        let mut ran = 0u32;
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran += 1;
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| {
            b.iter_batched(|| n, |v| v * 2, BatchSize::SmallInput);
        });
        g.finish();
        assert_eq!(ran, 1);
    }
}
