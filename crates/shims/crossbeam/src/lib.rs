//! Offline stand-in for [`crossbeam`](https://docs.rs/crossbeam): just
//! the `channel` module, as an unbounded MPMC queue over
//! `Mutex<VecDeque>` + `Condvar`. Semantics match crossbeam for the
//! subset used here: cloneable `Sender`/`Receiver` (both `Send + Sync`),
//! disconnection when the last peer on the other side drops, FIFO per
//! queue, and `recv_timeout` that distinguishes `Timeout` from
//! `Disconnected`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like crossbeam: Debug without requiring `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on receive"),
                RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = st.items.pop_front() {
                Ok(v)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, res) = self
                    .shared
                    .ready
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
                if res.timed_out() && st.items.is_empty() {
                    return if st.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let wake = st.senders == 0;
            drop(st);
            if wake {
                // Wake blocked receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn timeout_vs_disconnected() {
            let (tx, rx) = unbounded::<i32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            drop(tx);
            let mut got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
            for h in handles {
                h.join().unwrap();
            }
        }
    }
}
