//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the *subset* of the `bytes` API its crates actually use:
//! cheaply clonable immutable [`Bytes`] (backed by an `Arc` slice with a
//! zero-copy [`Bytes::slice`]), a growable [`BytesMut`] builder, and the
//! [`BufMut`] write trait. Semantics match the real crate for this
//! subset; swap the real dependency back in by deleting the shim from
//! the workspace `[patch]`-free path deps.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply clonable, immutable byte buffer: an `Arc<[u8]>` plus a view
/// window, so [`Bytes::slice`] and [`Clone`] are O(1).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer; does not allocate a backing slice per call.
    pub fn new() -> Self {
        static EMPTY: [u8; 0] = [];
        Self::from_static(&EMPTY)
    }

    pub fn from_static(src: &'static [u8]) -> Self {
        // The shim copies once instead of borrowing 'static storage;
        // callers only rely on the resulting value semantics.
        Bytes {
            data: Arc::from(src),
            start: 0,
            end: src.len(),
        }
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::from(src),
            start: 0,
            end: src.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-view sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "range {begin}..{end} out of bounds for Bytes of len {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end: len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes\"", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

/// Growable byte builder; [`BytesMut::freeze`] converts to [`Bytes`].
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Write-side buffer trait; little-endian put methods as in `bytes`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side counterpart, enough for little-endian decode loops.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_a_view() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(1..).len(), 2);
    }

    #[test]
    fn bytes_mut_roundtrip() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u32_le(0xDEAD_BEEF);
        m.extend_from_slice(&[1, 2]);
        let b = m.freeze();
        assert_eq!(b.len(), 6);
        assert_eq!(&b[..4], &0xDEAD_BEEFu32.to_le_bytes());
    }
}
