//! Offline stand-in for [`parking_lot`](https://docs.rs/parking_lot),
//! implemented over `std::sync`. The API difference this shim papers
//! over: `parking_lot` locks are not poisoning and `lock()` returns the
//! guard directly, while `Condvar::wait` takes `&mut MutexGuard`.
//! Poisoned std locks are recovered transparently (`into_inner`), which
//! matches `parking_lot`'s "keep going" semantics.

use std::sync;
use std::time::Duration;

/// Non-poisoning mutex; `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// Guard holding an `Option` so [`Condvar::wait`] can take the std
/// guard out, block, and put the reacquired guard back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable with `parking_lot`'s `&mut guard` wait API.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Returns `true` if the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        res.timed_out()
    }

    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) {
        while condition(&mut **guard) {
            self.wait(guard);
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
