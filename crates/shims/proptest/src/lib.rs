//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use — `Strategy` with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, `any::<T>()`, `collection::vec`, the
//! `proptest!`/`prop_assert*` macros and `ProptestConfig` — over a
//! deterministic SplitMix64 stream seeded from the test name, so runs
//! are reproducible. The one behavioural difference from real
//! proptest: failures are reported with the generated case number but
//! are **not shrunk** to a minimal counterexample.

pub mod test_runner {
    /// Deterministic per-test random stream (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        /// Seed from the test name so each test gets a stable stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { x: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// Mirror of `proptest::test_runner::Config` for the fields used.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, G),
        (A, B, C, D, E, G, H),
        (A, B, C, D, E, G, H, I)
    );

    /// Strategy yielding a constant value on every case.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `any::<T>()` result: full-domain generation for `T`.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    /// Full-domain generation, the `Arbitrary` stand-in.
    pub trait ArbitraryValue {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Generate any value of `T` (integers and bool supported).
pub fn any<T: strategy::ArbitraryValue>() -> strategy::Any<T> {
    strategy::Any::new()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: an exact count or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector of `size` elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Run each `fn name(pat in strategy) { body }` as a `#[test]` over
/// `config.cases` deterministic cases. No shrinking on failure; the
/// panic message carries the case index for reproduction.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Multiple `pat in strategy` bindings draw from one
                // tuple strategy, like real proptest.
                let strat = ($($strat,)+);
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let ($($pat,)+) = $crate::strategy::Strategy::generate(&strat, &mut rng);
                    let result = (move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    })();
                    if let Err(msg) = result {
                        panic!(
                            "proptest case {case}/{} failed: {msg}",
                            config.cases
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!`: fail the current case (returns `Err` internally).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(v in 3usize..10) {
            prop_assert!((3..10).contains(&v));
        }

        #[test]
        fn composite_strategies_work(
            script in (2usize..5, 8usize..33).prop_flat_map(|(a, b)| {
                collection::vec((0..a, 0..b, any::<i32>()), 1..4)
                    .prop_map(move |v| (a, b, v))
            })
        ) {
            let (a, b, v) = script;
            prop_assert!(!v.is_empty() && v.len() < 4);
            for (x, y, _z) in v {
                prop_assert!(x < a && y < b);
            }
        }
    }
}
