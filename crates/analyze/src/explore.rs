//! Exhaustive schedule exploration — the DFS driver over
//! [`ScheduleScript`] decision prefixes.
//!
//! `SchedulerMode::Explore` makes the engine consult a script at
//! every epoch whose batch has more than one member; the script's
//! trace records each decision's pick and arity. This driver walks
//! the resulting decision tree depth-first: run with a prefix, read
//! the trace, backtrack to the deepest non-exhausted decision,
//! increment it, repeat. A run that panics (e.g. into the
//! virtual-time deadlock detector) still leaves a valid trace of the
//! decisions made before the panic, so deadlocking branches are
//! backtracked past like any other.

use lots_sim::ScheduleScript;

/// Outcome of an exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// How many distinct schedules were executed.
    pub schedules: usize,
    /// Whether the whole decision tree was enumerated (`false` means
    /// the `max_schedules` budget ran out first).
    pub exhausted: bool,
}

/// Run `run` once per distinct schedule, depth-first, up to
/// `max_schedules` runs. `run` receives a fresh [`ScheduleScript`]
/// per schedule and must install it on the run it performs (via
/// `ClusterOptions::with_explore_script` / the JIAJIA equivalent) —
/// and must not panic: wrap the cluster run in
/// [`std::panic::catch_unwind`] and fold panics (deadlocks) into `R`.
///
/// Returns every schedule's result in enumeration order, plus whether
/// the tree was exhausted. The first schedule is the canonical
/// dispatch order, so `results[0]` always matches a plain
/// `Deterministic` run.
pub fn explore_schedules<R>(
    max_schedules: usize,
    mut run: impl FnMut(ScheduleScript) -> R,
) -> (Vec<R>, Exploration) {
    let mut results = Vec::new();
    let mut prefix: Vec<usize> = Vec::new();
    let mut exhausted = false;
    while results.len() < max_schedules {
        let script = ScheduleScript::new(prefix.clone());
        results.push(run(script.clone()));
        let trace = script.trace();
        // Backtrack: deepest decision with an untried alternative.
        let Some(i) = (0..trace.len()).rfind(|&i| trace[i].picked + 1 < trace[i].arity) else {
            exhausted = true;
            break;
        };
        prefix = trace[..i].iter().map(|c| c.picked).collect();
        prefix.push(trace[i].picked + 1);
    }
    let schedules = results.len();
    (
        results,
        Exploration {
            schedules,
            exhausted,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_a_fixed_tree_exhaustively() {
        // A synthetic "program": two decision points of arity 3 and 2
        // → 6 schedules, each visited exactly once.
        let (results, ex) = explore_schedules(100, |script| {
            let a = script.choose(3);
            let b = script.choose(2);
            (a, b)
        });
        assert!(ex.exhausted);
        assert_eq!(ex.schedules, 6);
        let mut seen = results.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 6, "all schedules distinct: {results:?}");
    }

    #[test]
    fn budget_stops_enumeration() {
        let (results, ex) = explore_schedules(4, |script| script.choose(10));
        assert_eq!(results, vec![0, 1, 2, 3]);
        assert!(!ex.exhausted);
    }

    #[test]
    fn data_dependent_arity_is_walked_correctly() {
        // Branch 0 opens a deeper subtree than branch 1 — the DFS
        // must not assume a uniform tree shape.
        let (results, ex) = explore_schedules(100, |script| {
            let a = script.choose(2);
            let b = if a == 0 { script.choose(3) } else { 9 };
            (a, b)
        });
        assert!(ex.exhausted);
        assert_eq!(results, vec![(0, 0), (0, 1), (0, 2), (1, 9)]);
    }

    #[test]
    fn choiceless_program_is_one_schedule() {
        let (results, ex) = explore_schedules(100, |_| 42);
        assert_eq!(results, vec![42]);
        assert!(ex.exhausted);
    }
}
