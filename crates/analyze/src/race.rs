//! ScC vector-clock race detection.
//!
//! # Model
//!
//! Every node `p` carries a vector clock `V_p` whose own component
//! counts `p`'s completed *release segments* (it starts at 1 and is
//! incremented at every lock release and barrier exit). Happens-before
//! edges are exactly the ones Scope Consistency provides:
//!
//! * **lock release → next acquire of the same lock**: the release
//!   joins `V_p` into the lock's clock; an acquire joins the lock's
//!   clock into the acquirer.
//! * **barrier**: a total join — every node publishes its clock at
//!   entry; every node leaves with the element-wise maximum.
//!
//! Data-plane traffic (object fetches, diff propagation) creates *no*
//! edges: under ScC, data movement does not order accesses — only
//! synchronization does. Likewise `run_barrier` (§3.6), the
//! event-only barrier with no memory semantics, creates no edges.
//!
//! Each access is stamped with its node's current clock. An earlier
//! access by `q` with stamp `W` happens-before a current access by
//! `p ≠ q` iff `W[q] ≤ V_p[q]` — `p` has synchronized (directly or
//! transitively) with a release of `q` made at or after the access.
//! Two overlapping accesses to the same object, at least one a write,
//! with no such edge, are a race.
//!
//! # Exactness and memory
//!
//! Detection is online and exhaustive over the executed schedule: no
//! sampling, no lock-set approximation — a flagged pair is a real
//! unordered conflict *of this run*. Under the deterministic
//! scheduler the run (and hence the report) replays bit-for-bit.
//!
//! Access records are cleared at every barrier rendezvous: once all
//! `n` nodes have entered, every recorded access happens-before every
//! post-barrier access, so no cleared record can ever race again.
//! This bounds memory to one barrier interval and makes object-id
//! reuse after `free` (which reclaims at barriers) safe.

use std::collections::BTreeMap;

use parking_lot::Mutex;

/// One side of a detected race: which node, in which synchronization
/// interval (a per-node counter incremented at every lock
/// acquire/release and barrier entry/exit), and whether it wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AccessSite {
    /// The accessing node's rank.
    pub node: usize,
    /// The node's synchronization-interval number at the access.
    pub interval: u64,
    /// Whether this side wrote (at least one side of a race always
    /// did).
    pub write: bool,
}

/// One detected race: two unordered conflicting accesses to an
/// overlapping byte range of one object. Repeated conflicts between
/// the same pair of sites are widened into one race spanning
/// `start..end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The object (LOTS object id; JIAJIA page number).
    pub object: u32,
    /// First overlapping byte offset within the object.
    pub start: u64,
    /// One past the last overlapping byte offset.
    pub end: u64,
    /// The lexicographically smaller access site.
    pub first: AccessSite,
    /// The other access site.
    pub second: AccessSite,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rw = |w: bool| if w { "write" } else { "read" };
        write!(
            f,
            "object {} bytes {}..{}: node {} interval {} ({}) unordered with node {} interval {} ({})",
            self.object,
            self.start,
            self.end,
            self.first.node,
            self.first.interval,
            rw(self.first.write),
            self.second.node,
            self.second.interval,
            rw(self.second.write),
        )
    }
}

/// The deterministic outcome of a race-detection run: all detected
/// races, deduplicated by site pair and sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RaceReport {
    /// The races, sorted by (object, range, sites).
    pub races: Vec<Race>,
}

impl RaceReport {
    /// No races detected?
    pub fn is_empty(&self) -> bool {
        self.races.is_empty()
    }

    /// Number of distinct races (site pairs).
    pub fn len(&self) -> usize {
        self.races.len()
    }

    /// A compact deterministic encoding of the whole report — equal
    /// fingerprints iff equal reports. Used by the replay and
    /// explore-equivalence tests.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.races {
            let _ = write!(
                out,
                "{}:{}..{}:{}@{}{}:{}@{}{};",
                r.object,
                r.start,
                r.end,
                r.first.node,
                r.first.interval,
                if r.first.write { "w" } else { "r" },
                r.second.node,
                r.second.interval,
                if r.second.write { "w" } else { "r" },
            );
        }
        out
    }
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.races.is_empty() {
            return write!(f, "no races detected");
        }
        writeln!(f, "{} race(s) detected:", self.races.len())?;
        for r in &self.races {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

/// A sorted, coalesced set of half-open byte ranges.
#[derive(Debug, Clone, Default)]
struct RangeSet {
    /// Disjoint, sorted, non-adjacent spans.
    spans: Vec<(u64, u64)>,
}

impl RangeSet {
    /// Insert `start..end`, merging overlapping/adjacent spans.
    fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let i = self.spans.partition_point(|&(_, e)| e < start);
        let mut j = i;
        let (mut s, mut e) = (start, end);
        while j < self.spans.len() && self.spans[j].0 <= e {
            s = s.min(self.spans[j].0);
            e = e.max(self.spans[j].1);
            j += 1;
        }
        self.spans.splice(i..j, [(s, e)]);
    }

    /// The intersection of `start..end` with this set, as the overall
    /// overlapping span (min..max of all intersections), if any.
    fn overlap(&self, start: u64, end: u64) -> Option<(u64, u64)> {
        let i = self.spans.partition_point(|&(_, e)| e <= start);
        let mut hit: Option<(u64, u64)> = None;
        for &(s, e) in &self.spans[i..] {
            if s >= end {
                break;
            }
            let (os, oe) = (s.max(start), e.min(end));
            hit = Some(match hit {
                Some((hs, he)) => (hs.min(os), he.max(oe)),
                None => (os, oe),
            });
        }
        hit
    }
}

/// One node's accesses to one object within one synchronization
/// interval, with the vector-clock stamp shared by all of them.
#[derive(Debug, Clone)]
struct AccessRecord {
    node: usize,
    interval: u64,
    /// The node's vector clock at the time of these accesses (clocks
    /// only change at synchronization operations, so one stamp covers
    /// the whole interval).
    vc: Vec<u64>,
    reads: RangeSet,
    writes: RangeSet,
}

struct NodeClock {
    vc: Vec<u64>,
    interval: u64,
}

#[derive(Default)]
struct DetectorState {
    nodes: Vec<NodeClock>,
    /// Per-lock clock: the join of every releaser's clock so far.
    locks: BTreeMap<u32, Vec<u64>>,
    /// Barrier rendezvous: stamps published at entry, count of
    /// entered nodes, and the join every node copies at exit.
    barrier_stamps: Vec<Vec<u64>>,
    barrier_count: usize,
    exit_join: Vec<u64>,
    /// Live access records, per object, cleared at every barrier.
    objects: BTreeMap<u32, Vec<AccessRecord>>,
    /// Detected races keyed by normalized site pair (dedup + widen).
    races: BTreeMap<(u32, AccessSite, AccessSite), (u64, u64)>,
}

/// The cluster-wide ScC race detector (see module docs). One instance
/// is shared by all nodes of a run; every method is thread-safe.
pub struct RaceDetector {
    n: usize,
    inner: Mutex<DetectorState>,
}

impl RaceDetector {
    /// A detector for an `n`-node cluster.
    pub fn new(n: usize) -> RaceDetector {
        RaceDetector {
            n,
            inner: Mutex::new(DetectorState {
                nodes: (0..n)
                    .map(|p| {
                        let mut vc = vec![0; n];
                        vc[p] = 1; // segment numbering starts at 1
                        NodeClock { vc, interval: 0 }
                    })
                    .collect(),
                barrier_stamps: vec![Vec::new(); n],
                exit_join: vec![0; n],
                ..DetectorState::default()
            }),
        }
    }

    /// Record an access by `node` to bytes `start..end` of `object`
    /// and check it against every other node's live records.
    pub fn on_access(&self, node: usize, object: u32, start: u64, end: u64, write: bool) {
        if start >= end || self.n <= 1 {
            return;
        }
        let mut st = self.inner.lock();
        let st = &mut *st;
        let me = &st.nodes[node];
        let (my_vc, my_interval) = (me.vc.clone(), me.interval);
        let records = st.objects.entry(object).or_default();
        for r in records.iter() {
            if r.node == node {
                continue;
            }
            // r happens-before the current access iff this node has
            // synchronized with a release r's node made at or after r.
            if r.vc[r.node] <= my_vc[r.node] {
                continue;
            }
            // Unordered: any overlap with an opposing kind is a race.
            let opposing: &[(&RangeSet, bool)] = if write {
                &[(&r.writes, true), (&r.reads, false)]
            } else {
                &[(&r.writes, true)]
            };
            for &(set, other_wrote) in opposing {
                if let Some((os, oe)) = set.overlap(start, end) {
                    let a = AccessSite {
                        node: r.node,
                        interval: r.interval,
                        write: other_wrote,
                    };
                    let b = AccessSite {
                        node,
                        interval: my_interval,
                        write,
                    };
                    let (first, second) = if a <= b { (a, b) } else { (b, a) };
                    let span = st.races.entry((object, first, second)).or_insert((os, oe));
                    span.0 = span.0.min(os);
                    span.1 = span.1.max(oe);
                }
            }
        }
        // Fold the access into this node's record for the interval.
        let rec = match records
            .iter_mut()
            .find(|r| r.node == node && r.interval == my_interval)
        {
            Some(r) => r,
            None => {
                records.push(AccessRecord {
                    node,
                    interval: my_interval,
                    vc: my_vc,
                    reads: RangeSet::default(),
                    writes: RangeSet::default(),
                });
                records.last_mut().expect("just pushed")
            }
        };
        if write {
            rec.writes.insert(start, end);
        } else {
            rec.reads.insert(start, end);
        }
    }

    /// `node` acquired `lock`: join the lock's clock into the node.
    pub fn on_lock_acquire(&self, node: usize, lock: u32) {
        let mut st = self.inner.lock();
        let st = &mut *st;
        if let Some(lc) = st.locks.get(&lock) {
            let me = &mut st.nodes[node];
            for (v, l) in me.vc.iter_mut().zip(lc) {
                *v = (*v).max(*l);
            }
        }
        st.nodes[node].interval += 1;
    }

    /// `node` is releasing `lock`: publish the node's clock into the
    /// lock and start a new release segment. Call *before* the lock
    /// service hands the lock on, so the edge is in place when the
    /// next holder's acquire hook runs.
    pub fn on_lock_release(&self, node: usize, lock: u32) {
        let mut st = self.inner.lock();
        let st = &mut *st;
        let me = &mut st.nodes[node];
        let lc = st.locks.entry(lock).or_insert_with(|| vec![0; me.vc.len()]);
        for (l, v) in lc.iter_mut().zip(&me.vc) {
            *l = (*l).max(*v);
        }
        me.vc[node] += 1;
        me.interval += 1;
    }

    /// `node` is entering the cluster barrier: publish its clock.
    /// When the last node enters, the total join is computed and all
    /// access records are cleared (every recorded access now
    /// happens-before everything after the barrier). Call *before*
    /// the barrier service's rendezvous, so all entries are published
    /// by the time any exit hook runs.
    pub fn on_barrier_enter(&self, node: usize) {
        let mut st = self.inner.lock();
        let st = &mut *st;
        st.nodes[node].interval += 1;
        st.barrier_stamps[node] = st.nodes[node].vc.clone();
        st.barrier_count += 1;
        if st.barrier_count == self.n {
            let mut join = vec![0; self.n];
            for stamp in &st.barrier_stamps {
                for (j, s) in join.iter_mut().zip(stamp) {
                    *j = (*j).max(*s);
                }
            }
            st.exit_join = join;
            st.barrier_count = 0;
            st.objects.clear();
        }
    }

    /// `node` left the cluster barrier: adopt the total join and
    /// start a new release segment. Call after the barrier service
    /// returns.
    pub fn on_barrier_exit(&self, node: usize) {
        let mut st = self.inner.lock();
        let st = &mut *st;
        let join = st.exit_join.clone();
        let me = &mut st.nodes[node];
        me.vc = join;
        me.vc[node] += 1;
        me.interval += 1;
    }

    /// The deterministic report of everything detected so far.
    pub fn report(&self) -> RaceReport {
        let st = self.inner.lock();
        let mut races: Vec<Race> = st
            .races
            .iter()
            .map(|(&(object, first, second), &(start, end))| Race {
                object,
                start,
                end,
                first,
                second,
            })
            .collect();
        races.sort_by(|a, b| {
            (a.object, a.start, a.end, a.first, a.second)
                .cmp(&(b.object, b.start, b.end, b.first, b.second))
        });
        RaceReport { races }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynchronized_write_write_is_a_race() {
        let d = RaceDetector::new(2);
        d.on_access(0, 7, 0, 8, true);
        d.on_access(1, 7, 4, 12, true);
        let rep = d.report();
        assert_eq!(rep.len(), 1);
        let r = &rep.races[0];
        assert_eq!((r.object, r.start, r.end), (7, 4, 8));
        assert!(r.first.write && r.second.write);
    }

    #[test]
    fn disjoint_ranges_do_not_race() {
        let d = RaceDetector::new(2);
        d.on_access(0, 7, 0, 8, true);
        d.on_access(1, 7, 8, 16, true);
        assert!(d.report().is_empty());
    }

    #[test]
    fn reads_do_not_race_with_reads() {
        let d = RaceDetector::new(2);
        d.on_access(0, 3, 0, 64, false);
        d.on_access(1, 3, 0, 64, false);
        assert!(d.report().is_empty());
    }

    #[test]
    fn lock_edge_orders_the_accesses() {
        let d = RaceDetector::new(2);
        d.on_lock_acquire(0, 1);
        d.on_access(0, 7, 0, 8, true);
        d.on_lock_release(0, 1);
        d.on_lock_acquire(1, 1);
        d.on_access(1, 7, 0, 8, true);
        d.on_lock_release(1, 1);
        assert!(d.report().is_empty(), "{}", d.report());
    }

    #[test]
    fn different_locks_do_not_order() {
        let d = RaceDetector::new(2);
        d.on_lock_acquire(0, 1);
        d.on_access(0, 7, 0, 8, true);
        d.on_lock_release(0, 1);
        d.on_lock_acquire(1, 2);
        d.on_access(1, 7, 0, 8, true);
        d.on_lock_release(1, 2);
        assert_eq!(d.report().len(), 1);
    }

    #[test]
    fn barrier_orders_and_clears() {
        let d = RaceDetector::new(3);
        d.on_access(0, 9, 0, 100, true);
        for p in 0..3 {
            d.on_barrier_enter(p);
        }
        for p in 0..3 {
            d.on_barrier_exit(p);
        }
        d.on_access(1, 9, 0, 100, false);
        d.on_access(2, 9, 0, 100, false);
        assert!(d.report().is_empty(), "{}", d.report());
    }

    #[test]
    fn transitive_lock_chain_orders() {
        // 0 -> 1 via lock A, 1 -> 2 via lock B: 0's write is ordered
        // before 2's read transitively.
        let d = RaceDetector::new(3);
        d.on_lock_acquire(0, 1);
        d.on_access(0, 5, 0, 4, true);
        d.on_lock_release(0, 1);
        d.on_lock_acquire(1, 1);
        d.on_lock_release(1, 1);
        d.on_lock_acquire(1, 2);
        d.on_lock_release(1, 2);
        d.on_lock_acquire(2, 2);
        d.on_access(2, 5, 0, 4, false);
        d.on_lock_release(2, 2);
        assert!(d.report().is_empty(), "{}", d.report());
    }

    #[test]
    fn repeated_conflicts_dedupe_and_widen() {
        let d = RaceDetector::new(2);
        d.on_access(0, 7, 0, 64, true);
        d.on_access(1, 7, 0, 8, true);
        d.on_access(1, 7, 32, 40, true);
        let rep = d.report();
        assert_eq!(rep.len(), 1, "{rep}");
        assert_eq!((rep.races[0].start, rep.races[0].end), (0, 40));
    }

    #[test]
    fn report_is_deterministic() {
        let run = || {
            let d = RaceDetector::new(4);
            for p in 0..4 {
                d.on_access(p, 1, 0, 16, true);
            }
            d.report().fingerprint()
        };
        assert_eq!(run(), run());
        assert!(!run().is_empty());
    }
}
