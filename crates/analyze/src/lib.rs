//! `lots-analyze` — correctness tooling for the LOTS reproduction.
//!
//! The paper's Scope Consistency contract (§2, §4.2) makes a program
//! correct only when every pair of conflicting shared accesses is
//! ordered by the right lock or barrier. Nothing in the runtimes
//! checks that — a data race silently yields whatever the diff-merge
//! order produces. This crate adds the missing checks:
//!
//! * [`RaceDetector`] — per-(node, interval) vector clocks threaded
//!   through both runtimes' sync services and access paths, flagging
//!   conflicting overlapping accesses not ordered by a
//!   happens-before edge. Opt-in via [`AnalyzeConfig`] on
//!   `ClusterOptions` / `JiaOptions`; exact (no sampling, no false
//!   negatives over the executed schedule) and, under the
//!   deterministic scheduler, bit-for-bit replayable.
//! * [`explore_schedules`] — a DFS driver over
//!   `SchedulerMode::Explore` schedule scripts that exhaustively
//!   enumerates the within-epoch dispatch orders the conservative
//!   engine claims are equivalent, so the equivalence (and absence of
//!   schedule-dependent deadlocks) can be asserted instead of argued.
//!
//! The third correctness layer, the determinism source lint, is the
//! standalone `tools/lint` binary — it scans source text, not runs.

#![warn(missing_docs)]

mod explore;
mod race;

pub use explore::{explore_schedules, Exploration};
pub use race::{AccessSite, Race, RaceDetector, RaceReport};

/// Which analyses a cluster run should carry. Default: all off —
/// analysis must never perturb (or tax) a regular run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalyzeConfig {
    /// Thread a [`RaceDetector`] through the run's sync services and
    /// access paths and attach its [`RaceReport`] to the cluster
    /// report. Detection reads the same virtual-time event stream the
    /// report is built from, so it never changes virtual times,
    /// traffic or fingerprints.
    pub race_detect: bool,
}

impl AnalyzeConfig {
    /// Everything off (the default).
    pub fn off() -> AnalyzeConfig {
        AnalyzeConfig::default()
    }

    /// Race detection on.
    pub fn races() -> AnalyzeConfig {
        AnalyzeConfig { race_detect: true }
    }
}
