//! Quick calibration probe: one mid-size point per app × p × system.
use lots_apps::runner::System;
use lots_apps::rx;
use lots_bench::{measure, no_tweak, App};
use lots_sim::machine::p4_fedora;

fn main() {
    for total in [98304usize, 196608, 393216] {
        for p in [2usize, 4, 8, 16] {
            let mut line = format!("RX total {total:>7} p={p:>2}:");
            for system in [System::Jiajia, System::Lots, System::LotsX] {
                let params = rx::RxParams {
                    total,
                    passes: 2,
                    seed: 20040920,
                };
                let cfg = {
                    let mut c = lots_apps::runner::RunConfig::new(system, p, p4_fedora());
                    c.dmm_bytes = 96 << 20;
                    c.shared_bytes = 192 << 20;
                    c
                };
                let out = lots_apps::runner::run_app(&cfg, params);
                line.push_str(&format!(
                    "  {}={:.3}s({:.1}MB)",
                    system.label(),
                    out.combined.elapsed.as_secs_f64(),
                    out.bytes_sent as f64 / 1e6,
                ));
            }
            println!("{line}");
        }
    }
    // One LU/SOR/ME spot check at p=16 (the paper's largest cluster).
    for app in [App::Me, App::Lu, App::Sor] {
        let size = app.sizes(false)[1];
        let mut line = format!("{:>3} size {size:>6} p=16:", app.short());
        for system in [System::Jiajia, System::Lots] {
            let pt = measure(app, system, 16, size, p4_fedora(), false, no_tweak);
            line.push_str(&format!(
                "  {}={:.3}s",
                system.label(),
                pt.outcome.combined.elapsed.as_secs_f64()
            ));
        }
        println!("{line}");
    }
}
