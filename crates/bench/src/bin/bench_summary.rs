//! Emit a machine-readable `BENCH_summary.json` tracking the repo's
//! perf trajectory: the quickstart virtual time, the SOR 256×256×32
//! (p = 4) point on all three systems with its access-check counts,
//! a weak-scaling sweep (SOR + object churn at p = 4/16/64/256) with
//! its scheduler counters, the hot-object striping benchmark (one
//! 256 MB object, rotating writers + all-node readers, striped
//! p = 4/16/64 vs a single-home baseline), and the modeled §4.2
//! access-check cost (the
//! host-measured cost is printed but kept out of the JSON — it varies
//! by machine).
//!
//! ```text
//! cargo run --release -p lots-bench --bin bench_summary \
//!     [-- --check] [--engine det|par[:N]] [--out PATH] [--stable]
//! ```
//!
//! The JSON lands in the current directory (the repo root in CI) so
//! successive PRs can diff it. Under the virtual-time engine every
//! *virtual* number in the file — times, counters, scheduler
//! turns/wakes/epochs — is a pure function of the committed code
//! **regardless of `--engine`** (the conservative parallel engine is
//! byte-identical to the sequential oracle), so `--check` fails on ANY
//! drift of those. Host wall-clock seconds and `max_concurrent` are
//! informative only: their *keys* are gated, their values are not, and
//! `--stable` zeroes them so CI can `cmp` a `--engine det` output
//! against a `--engine par` one byte for byte.

use std::fmt::Write as _;
use std::time::Instant;

use lots_apps::churn::{model_checksum, ChurnParams};
use lots_apps::largeobj::{expected_sum, large_object_test, LargeObjParams};
use lots_apps::runner::{run_app, RunConfig, System};
use lots_apps::sor::SorParams;
use lots_bench::{measure, no_tweak, App};
use lots_core::{
    restore_cluster, run_cluster, ClusterOptions, Dsm, DsmApi, DsmSlice, LotsConfig, PersistConfig,
    PersistStore, SchedulerMode, SwapConfig,
};
use lots_sim::machine::{p4_fedora, pentium4_2ghz};
use lots_sim::{CrashFault, FaultPlan, Partition, SimDuration, SimInstant};

/// The quickstart example's virtual execution time in milliseconds
/// (same kernel as `examples/quickstart.rs`).
fn quickstart_ms(engine: SchedulerMode) -> f64 {
    const NODES: usize = 4;
    const LEN: usize = 1024;
    let opts =
        ClusterOptions::new(NODES, LotsConfig::small(4 << 20), p4_fedora()).with_scheduler(engine);
    let (_, report) = run_cluster(opts, |dsm| {
        let data = dsm.alloc::<i64>(LEN);
        let counter = dsm.alloc::<i64>(1);
        let per = LEN / dsm.n();
        let base = dsm.me() * per;
        for i in 0..per {
            data.write(base + i, (base + i) as i64);
        }
        dsm.barrier();
        let local = data.view(base..base + per).iter().sum::<i64>();
        dsm.with_lock(1, || counter.update(0, |v| v + local));
        dsm.barrier();
        counter.read(0)
    });
    report.exec_time.as_secs_f64() * 1e3
}

/// Swap-subsystem counters of one shrunken large-object run (Test 2 at
/// 8 MB through 1 MB arenas): virtual seconds, swaps, bytes actually
/// written/read (compressed for the tuned bundle), batched trips and
/// read-ahead hits — all deterministic, all gated by `--check`.
struct SwapPoint {
    secs: f64,
    swaps_out: u64,
    swaps_in: u64,
    out_bytes: u64,
    batches: u64,
    prefetch_hits: u64,
}

fn large_object_swap(swap: SwapConfig, engine: SchedulerMode) -> SwapPoint {
    const NODES: usize = 2;
    let params = LargeObjParams {
        rows: 64,
        row_elems: 32 * 1024, // 128 KB rows → 8 MB of shared objects
    };
    let opts = ClusterOptions::new(
        NODES,
        LotsConfig::small(1 << 20).with_swap(swap),
        p4_fedora(),
    )
    .with_scheduler(engine);
    let (results, report) = run_cluster(opts, move |dsm| {
        large_object_test(dsm, params).expect("large-object bench")
    });
    let total: i64 = results.iter().map(|r| r.sum).sum();
    assert_eq!(total, expected_sum(params), "swap corrupted the bench");
    SwapPoint {
        secs: report.exec_time.as_secs_f64(),
        swaps_out: results.iter().map(|r| r.swaps_out).sum(),
        swaps_in: results.iter().map(|r| r.swaps_in).sum(),
        out_bytes: results.iter().map(|r| r.swap_out_bytes).sum(),
        batches: results.iter().map(|r| r.swap_batches).sum(),
        prefetch_hits: results.iter().map(|r| r.prefetch_hits).sum(),
    }
}

/// Host-measured fast-path cost of one checked read (ns). Free-running
/// mode: this times host nanoseconds, not virtual time.
fn host_check_ns() -> f64 {
    let opts = ClusterOptions::new(1, LotsConfig::small(1 << 20), p4_fedora())
        .with_scheduler(SchedulerMode::FreeRunning);
    let (results, _) = run_cluster(opts, |dsm| {
        let a = dsm.alloc::<i64>(1024);
        a.write(0, 1);
        let reps: u64 = 1_000_000;
        let t0 = std::time::Instant::now();
        let mut sink = 0i64;
        for i in 0..reps {
            sink = sink.wrapping_add(a.read((i % 1024) as usize));
        }
        let elapsed = t0.elapsed();
        assert!(sink != i64::MIN, "keep the loop alive");
        elapsed.as_nanos() as f64 / reps as f64
    });
    results[0]
}

/// Extract the literal text of a `"key": value,`-style numeric field
/// from the committed JSON without a parser dependency.
fn committed_text(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle)? + needle.len();
    let tail: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    (!tail.is_empty()).then_some(tail)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let stable = args.iter().any(|a| a == "--stable");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let engine = match flag_value("--engine").as_deref() {
        None | Some("det") => SchedulerMode::Deterministic,
        Some("par") => SchedulerMode::Parallel {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        },
        Some(par_n) => {
            let workers = par_n
                .strip_prefix("par:")
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("--engine expects det|par|par:N, got {par_n}"));
            SchedulerMode::Parallel { workers }
        }
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_summary.json".to_string());
    let committed = std::fs::read_to_string("BENCH_summary.json").ok();
    let machine = p4_fedora();
    let cpu = pentium4_2ghz();
    let drifted = std::cell::Cell::new(false);
    // Virtual-time engine: the committed field must match the fresh
    // measurement *textually* — times included, whatever --engine is.
    let gate = |key: &str, fresh: &str| {
        if let Some(old) = committed.as_deref().and_then(|j| committed_text(j, key)) {
            if old != fresh {
                eprintln!("DRIFT: {key} committed {old} vs measured {fresh}");
                drifted.set(true);
            }
        }
    };
    // Informative fields (host wall-clock, dispatch concurrency): the
    // key must stay in the file, the value is free to vary by host.
    let gate_key = |key: &str| {
        if let Some(json) = committed.as_deref() {
            if committed_text(json, key).is_none() {
                eprintln!("DRIFT: informative key {key} missing from committed JSON");
                drifted.set(true);
            }
        }
    };
    // Render an informative (host-side) value: zeroed under --stable
    // so two engines' outputs can be byte-compared.
    let informative = |v: f64| {
        if stable {
            "0".to_string()
        } else {
            format!("{v:.4}")
        }
    };

    let t_quick = Instant::now();
    let quick_ms = quickstart_ms(engine);
    let quick_wall = t_quick.elapsed().as_secs_f64();
    gate("quickstart_ms", &format!("{quick_ms:.4}"));

    // SOR 256×256, 32 iterations, p = 4 — the tracked Figure 8(c)
    // point (App::run at size 256 with full=false uses 32 iterations).
    let t_sor = Instant::now();
    let mut sor = String::new();
    let mut checksums = Vec::new();
    for (key, system) in [
        ("jiajia", System::Jiajia),
        ("lots", System::Lots),
        ("lotsx", System::LotsX),
    ] {
        let pt = measure(App::Sor, system, 4, 256, machine, false, no_tweak);
        checksums.push(pt.outcome.combined.checksum);
        let secs = format!("{:.6}", pt.outcome.combined.elapsed.as_secs_f64());
        let checks = format!("{}", pt.outcome.access_checks);
        gate(&format!("{key}_s"), &secs);
        gate(&format!("{key}_access_checks"), &checks);
        let _ = write!(
            sor,
            "\n    \"{key}_s\": {secs},\n    \"{key}_access_checks\": {checks},"
        );
        println!(
            "SOR 256x256x32 p=4 {:<7} {:>7.3} s  {:>12} checks",
            system.label(),
            pt.outcome.combined.elapsed.as_secs_f64(),
            pt.outcome.access_checks
        );
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "systems disagree on SOR: {checksums:?}"
    );
    let sor = sor.trim_end_matches(',').to_string();
    let sor_wall = t_sor.elapsed().as_secs_f64();

    // Large-object swap subsystem: the legacy path vs the tuned bundle
    // (segmented LRU + batched write-behind + read-ahead + compressed
    // images) on an 8× overcommitted arena.
    let t_swap = Instant::now();
    let mut swap = String::new();
    for (key, cfg) in [
        ("legacy", SwapConfig::legacy()),
        ("tuned", SwapConfig::tuned()),
    ] {
        let pt = large_object_swap(cfg, engine);
        for (field, fresh) in [
            (format!("{key}_s"), format!("{:.6}", pt.secs)),
            (format!("{key}_swaps_out"), pt.swaps_out.to_string()),
            (format!("{key}_swaps_in"), pt.swaps_in.to_string()),
            (format!("{key}_out_bytes"), pt.out_bytes.to_string()),
            (format!("{key}_batches"), pt.batches.to_string()),
            (format!("{key}_prefetch_hits"), pt.prefetch_hits.to_string()),
        ] {
            gate(&field, &fresh);
            let _ = write!(swap, "\n    \"{field}\": {fresh},");
        }
        println!(
            "large-object 8MB/1MB p=2 {key:<7} {:>7.3} s  {} out / {} in, {} B written, \
             {} trips, {} read-ahead hits",
            pt.secs, pt.swaps_out, pt.swaps_in, pt.out_bytes, pt.batches, pt.prefetch_hits
        );
    }
    let swap = swap.trim_end_matches(',').to_string();
    let swap_wall = t_swap.elapsed().as_secs_f64();

    // Object lifecycle under churn: 16 MB of cumulative allocations
    // (free/reuse, named checkpoints, cycling placements) through
    // fixed arenas on all three systems; the checksum is gated against
    // the sequential model, the lifecycle counters against drift.
    let t_churn = Instant::now();
    let mut churn = String::new();
    {
        let params = ChurnParams::smoke();
        let model = model_checksum(&params, 0);
        let mut freed = Vec::new();
        for (key, system, arena) in [
            ("lots", System::Lots, 1usize << 20),
            ("lotsx", System::LotsX, 2 << 20),
            ("jiajia", System::Jiajia, 2 << 20),
        ] {
            let mut cfg = RunConfig::new(system, 4, machine);
            cfg.dmm_bytes = arena;
            cfg.shared_bytes = 2 << 20;
            cfg.scheduler = engine;
            let out = run_app(&cfg, params);
            for r in &out.per_node {
                assert_eq!(r.checksum, model, "{key}: churn checksum vs model");
            }
            freed.push(out.objects_freed);
            let mut fields = vec![(
                format!("{key}_churn_s"),
                format!("{:.6}", out.combined.elapsed.as_secs_f64()),
            )];
            if system == System::Lots {
                fields.push(("lots_churn_swaps_out".into(), out.swaps_out.to_string()));
                fields.push(("lots_churn_slots".into(), out.object_slots_max.to_string()));
                fields.push((
                    "lots_churn_frag_permille".into(),
                    out.frag_permille_max.to_string(),
                ));
            }
            for (field, fresh) in fields {
                gate(&field, &fresh);
                let _ = write!(churn, "\n    \"{field}\": {fresh},");
            }
            println!(
                "object churn p=4 {:<7} {:>7.3} s  {} frees/node, checksum OK",
                system.label(),
                out.combined.elapsed.as_secs_f64(),
                out.objects_freed / 4,
            );
        }
        assert!(
            freed.windows(2).all(|w| w[0] == w[1]),
            "systems disagree on reclaimed objects: {freed:?}"
        );
        for (field, fresh) in [
            ("churn_checksum".to_string(), model.to_string()),
            (
                "churn_cumulative_bytes".to_string(),
                params.cumulative_bytes().to_string(),
            ),
            ("churn_reclaim_events".to_string(), freed[0].to_string()),
        ] {
            gate(&field, &fresh);
            let _ = write!(churn, "\n    \"{field}\": {fresh},");
        }
    }
    let churn = churn.trim_end_matches(',').to_string();
    let churn_wall = t_churn.elapsed().as_secs_f64();

    // Lossy network + crash-rejoin: the same churn program under a
    // seeded drop/dup/reorder plan, a scheduled minority partition and
    // one crash-rejoin. The checksum is gated against the identical
    // sequential model as the fault-free run (loss must be invisible
    // to applications); the recovery counters are gated so the
    // reliable layer's behavior cannot drift silently.
    let t_lossy = Instant::now();
    let mut lossy = String::new();
    {
        let params = ChurnParams::smoke();
        let model = model_checksum(&params, 0);
        let mut cfg = RunConfig::new(System::Lots, 4, machine);
        cfg.dmm_bytes = 1 << 20;
        cfg.scheduler = engine;
        cfg.faults = FaultPlan {
            seed: 42,
            loss_permille: 15,
            dup_permille: 10,
            reorder_permille: 20,
            partitions: vec![Partition {
                start: SimInstant(1_000_000),
                end: SimInstant(5_000_000),
                islanders: vec![3],
            }],
            crash_node: Some(CrashFault {
                node: 2,
                at_barrier: 2,
                reboot: SimDuration::from_millis(20),
            }),
            ..FaultPlan::none()
        };
        let out = run_app(&cfg, params);
        for r in &out.per_node {
            assert_eq!(
                r.checksum, model,
                "lossy churn checksum vs fault-free model"
            );
        }
        assert_eq!(
            out.msgs_dropped, 0,
            "reliable layer must recover every loss"
        );
        assert!(out.msgs_retransmitted > 0, "the plan must exercise loss");
        for (field, fresh) in [
            (
                "lossy_churn_s",
                format!("{:.6}", out.combined.elapsed.as_secs_f64()),
            ),
            ("lossy_retransmits", out.msgs_retransmitted.to_string()),
            ("lossy_dups_filtered", out.dups_filtered.to_string()),
            ("lossy_rejoin_rounds", out.rejoin_rounds.to_string()),
            ("lossy_rejoin_bytes", out.rejoin_bytes.to_string()),
            // The rejoin split: persistence is off here, so every byte
            // of the master rebuild comes from peers.
            ("lossy_rejoin_log_bytes", out.rejoin_log_bytes.to_string()),
            ("lossy_rejoin_peer_bytes", out.rejoin_peer_bytes.to_string()),
        ] {
            gate(field, &fresh);
            let _ = write!(lossy, "\n    \"{field}\": {fresh},");
        }
        println!(
            "lossy churn p=4 LOTS    {:>7.3} s  {} retransmits, {} dups filtered, \
             {} rejoin ({} B), checksum OK",
            out.combined.elapsed.as_secs_f64(),
            out.msgs_retransmitted,
            out.dups_filtered,
            out.rejoin_rounds,
            out.rejoin_bytes
        );
    }
    let lossy = lossy.trim_end_matches(',').to_string();
    let lossy_wall = t_lossy.elapsed().as_secs_f64();

    // Persistence: the churn program journaling every barrier interval
    // (EveryNBarriers(4) checkpoints, background compaction) with one
    // crash-rejoin that rebuilds masters from the node's own journal.
    // A cold-start restore of the run's journals is then replayed and
    // must reproduce the answers and virtual time exactly; every
    // journal counter is virtual-deterministic and gated.
    let t_persist = Instant::now();
    let mut persist = String::new();
    {
        use std::sync::Arc;

        use lots_apps::churn::run_churn;
        let params = ChurnParams::smoke();
        let model = model_checksum(&params, 0);
        let kernel = move |dsm: &Dsm| run_churn(dsm, &params).checksum;
        let faults = FaultPlan {
            crash_node: Some(CrashFault {
                node: 1,
                at_barrier: 6,
                reboot: SimDuration::from_millis(20),
            }),
            ..FaultPlan::none()
        };
        let mk_opts = |f: FaultPlan| {
            ClusterOptions::new(
                4,
                LotsConfig::small(1 << 20).with_persist(PersistConfig::every(4)),
                machine,
            )
            .with_scheduler(engine)
            .with_faults(f)
        };
        let store = PersistStore::new(4);
        let (r1, rep1) = run_cluster(
            mk_opts(faults.clone()).with_persist_store(store.clone()),
            kernel,
        );
        for (node, c) in r1.iter().enumerate() {
            assert_eq!(*c, model, "persist churn node {node} checksum vs model");
        }
        let log_records: u64 = rep1.nodes.iter().map(|n| n.stats.log_records()).sum();
        let log_bytes: u64 = rep1
            .nodes
            .iter()
            .map(|n| n.stats.log_bytes_appended())
            .sum();
        let ckpt_bytes: u64 = rep1.nodes.iter().map(|n| n.stats.checkpoint_bytes()).sum();
        let compactions: u64 = rep1.nodes.iter().map(|n| n.stats.compaction_runs()).sum();
        let reclaimed: u64 = rep1
            .nodes
            .iter()
            .map(|n| n.stats.compaction_bytes_reclaimed())
            .sum();
        let rejoin_log: u64 = rep1.nodes.iter().map(|n| n.stats.rejoin_log_bytes()).sum();
        let rejoin_peer: u64 = rep1.nodes.iter().map(|n| n.stats.rejoin_peer_bytes()).sum();
        assert!(log_records > 0 && ckpt_bytes > 0, "the journal must run");
        assert!(
            rejoin_log > 0,
            "the rejoin must rebuild masters from its own journal"
        );
        let restored = store.restore().expect("bench journals restore");
        let checkpoint_seq = restored.checkpoint_seq;
        let (r2, rep2) = restore_cluster(Arc::new(restored), mk_opts(faults), kernel);
        assert_eq!(r1, r2, "restore replay answers diverged");
        assert_eq!(
            rep1.exec_time, rep2.exec_time,
            "restore replay virtual time diverged"
        );
        let replayed: u64 = rep2
            .nodes
            .iter()
            .map(|n| n.stats.restore_replay_barriers())
            .sum();
        for (field, fresh) in [
            (
                "persist_churn_s",
                format!("{:.6}", rep1.exec_time.as_secs_f64()),
            ),
            ("persist_log_records", log_records.to_string()),
            ("persist_log_bytes", log_bytes.to_string()),
            ("persist_checkpoint_bytes", ckpt_bytes.to_string()),
            ("persist_compaction_runs", compactions.to_string()),
            ("persist_compaction_reclaimed_bytes", reclaimed.to_string()),
            ("persist_rejoin_log_bytes", rejoin_log.to_string()),
            ("persist_rejoin_peer_bytes", rejoin_peer.to_string()),
            ("persist_checkpoint_seq", checkpoint_seq.to_string()),
            ("persist_replay_barriers", replayed.to_string()),
        ] {
            gate(field, &fresh);
            let _ = write!(persist, "\n    \"{field}\": {fresh},");
        }
        println!(
            "persist churn p=4 LOTS  {:>7.3} s  {} records / {} B journaled, \
             {} compactions ({} B reclaimed), rejoin {} B log + {} B peers, \
             restore at {} replayed {} intervals bit-identically",
            rep1.exec_time.as_secs_f64(),
            log_records,
            log_bytes,
            compactions,
            reclaimed,
            rejoin_log,
            rejoin_peer,
            checkpoint_seq,
            replayed
        );
    }
    let persist = persist.trim_end_matches(',').to_string();
    let persist_wall = t_persist.elapsed().as_secs_f64();

    // Weak scaling under the engine: SOR with two rows per node and a
    // fixed-shape churn program at p = 4/16/64/256. Virtual seconds
    // and the scheduler's turns/wakes/epochs are engine-invariant and
    // gated; host wall seconds and max_concurrent are informative.
    let t_weak = Instant::now();
    let mut weak = String::new();
    for p in [4usize, 16, 64, 256] {
        let sor_params = SorParams { n: 2 * p, iters: 2 };
        let churn_params = ChurnParams {
            phases: 4,
            objs_per_phase: 1,
            elems: 1024,
            retain: 1,
            ckpt_elems: 16,
        };
        for (wl, run) in [
            ("sor", {
                let mut cfg = RunConfig::new(System::Lots, p, machine);
                cfg.dmm_bytes = 4 << 20;
                cfg.scheduler = engine;
                let t0 = Instant::now();
                let out = run_app(&cfg, sor_params);
                (out, t0.elapsed().as_secs_f64())
            }),
            ("churn", {
                let mut cfg = RunConfig::new(System::Lots, p, machine);
                cfg.dmm_bytes = 4 << 20;
                cfg.scheduler = engine;
                let t0 = Instant::now();
                let out = run_app(&cfg, churn_params);
                (out, t0.elapsed().as_secs_f64())
            }),
        ] {
            let (out, wall) = run;
            let sched = out.sched.as_ref().expect("engine mode records counters");
            for (field, fresh) in [
                (
                    format!("{wl}_p{p}_s"),
                    format!("{:.6}", out.exec_time.as_secs_f64()),
                ),
                (format!("{wl}_p{p}_turns"), sched.turns.to_string()),
                (format!("{wl}_p{p}_wakes"), sched.wakes.to_string()),
                (format!("{wl}_p{p}_epochs"), sched.epochs.to_string()),
            ] {
                gate(&field, &fresh);
                let _ = write!(weak, "\n    \"{field}\": {fresh},");
            }
            for (field, fresh) in [
                (
                    format!("{wl}_p{p}_max_concurrent"),
                    if stable {
                        "0".to_string()
                    } else {
                        sched.max_concurrent.to_string()
                    },
                ),
                (format!("{wl}_p{p}_host_wall_s"), informative(wall)),
            ] {
                gate_key(&field);
                let _ = write!(weak, "\n    \"{field}\": {fresh},");
            }
            println!(
                "weak scaling {wl:<5} p={p:<3} {:>9.3} virtual s  {:>7.2} host s  \
                 {} turns / {} wakes / {} epochs",
                out.exec_time.as_secs_f64(),
                wall,
                sched.turns,
                sched.wakes,
                sched.epochs
            );
        }
    }
    let weak = weak.trim_end_matches(',').to_string();
    let weak_wall = t_weak.elapsed().as_secs_f64();

    // Hot object: one 256 MB named object, every node bulk-reading a
    // rotating chunk while a rotating writer rewrites its own — the
    // single-home bottleneck benchmark. Striped (4 MB segments,
    // per-segment homes settled by the init writes) at p = 4/16/64
    // against the single-home baseline (all segments Fixed(0), home
    // migration off) at p = 16. Aggregate read MB/s is virtual bytes
    // over virtual seconds — deterministic, gated. Checksums on every
    // run must match the sequential visibility model.
    let t_hot = Instant::now();
    let mut hot = String::new();
    {
        use lots_apps::hotobj::{model_node_checksum, HotParams};
        use lots_core::{Placement, Striping};
        let params = HotParams::bench();
        let run_hot = |p: usize, single_home: bool| {
            let mut cfg = RunConfig::new(System::Lots, p, machine);
            cfg.dmm_bytes = 448 << 20;
            cfg.scheduler = engine;
            cfg.lots_tweak = if single_home {
                |c: &mut LotsConfig| {
                    c.striping = Some(Striping {
                        segment_bytes: 4 << 20,
                        placement: Placement::Fixed(0),
                    });
                    c.home_migration = false;
                }
            } else {
                |c: &mut LotsConfig| {
                    c.striping = Some(Striping::segments_of(4 << 20));
                }
            };
            let out = run_app(
                &cfg,
                HotParams {
                    single_home,
                    ..params
                },
            );
            for (me, r) in out.per_node.iter().enumerate() {
                assert_eq!(
                    r.checksum,
                    model_node_checksum(&params, cfg.seed, p, me),
                    "hot_object p={p} single_home={single_home}: node {me} checksum vs model"
                );
            }
            let mbps = params.read_bytes() as f64 / out.combined.elapsed.as_secs_f64() / 1e6;
            (out, mbps)
        };
        let mut striped_mbps = Vec::new();
        for p in [4usize, 16, 64] {
            let (out, mbps) = run_hot(p, false);
            assert!(out.versions_published > 0, "p={p}: no versions published");
            assert!(out.versions_reclaimed > 0, "p={p}: no versions reclaimed");
            striped_mbps.push(mbps);
            for (field, fresh) in [
                (
                    format!("hot_p{p}_s"),
                    format!("{:.6}", out.combined.elapsed.as_secs_f64()),
                ),
                (format!("hot_p{p}_read_mbps"), format!("{mbps:.3}")),
                (
                    format!("hot_p{p}_home_ratio_permille"),
                    out.home_load_ratio_permille.to_string(),
                ),
                (
                    format!("hot_p{p}_versions_published"),
                    out.versions_published.to_string(),
                ),
                (
                    format!("hot_p{p}_versions_reclaimed"),
                    out.versions_reclaimed.to_string(),
                ),
            ] {
                gate(&field, &fresh);
                let _ = write!(hot, "\n    \"{field}\": {fresh},");
            }
            println!(
                "hot object 256MB striped  p={p:<3} {:>8.3} s  {:>9.1} MB/s read  \
                 home ratio {} permille, {} versions published / {} reclaimed",
                out.combined.elapsed.as_secs_f64(),
                mbps,
                out.home_load_ratio_permille,
                out.versions_published,
                out.versions_reclaimed
            );
        }
        let (base, base_mbps) = run_hot(16, true);
        for (field, fresh) in [
            (
                "hot_single16_s".to_string(),
                format!("{:.6}", base.combined.elapsed.as_secs_f64()),
            ),
            (
                "hot_single16_read_mbps".to_string(),
                format!("{base_mbps:.3}"),
            ),
            (
                "hot_single16_home_ratio_permille".to_string(),
                base.home_load_ratio_permille.to_string(),
            ),
        ] {
            gate(&field, &fresh);
            let _ = write!(hot, "\n    \"{field}\": {fresh},");
        }
        println!(
            "hot object 256MB 1-home   p=16  {:>8.3} s  {:>9.1} MB/s read  \
             home ratio {} permille",
            base.combined.elapsed.as_secs_f64(),
            base_mbps,
            base.home_load_ratio_permille
        );
        // The tentpole's acceptance bars: striping beats the single
        // home ≥ 3× at p = 16 and read throughput keeps climbing with
        // the node count.
        assert!(
            striped_mbps[1] >= 3.0 * base_mbps,
            "striping too slow: {:.1} MB/s vs 3x single-home {base_mbps:.1} MB/s",
            striped_mbps[1]
        );
        assert!(
            striped_mbps.windows(2).all(|w| w[1] > w[0]),
            "read throughput must scale with p: {striped_mbps:?}"
        );
    }
    let hot = hot.trim_end_matches(',').to_string();
    let hot_wall = t_hot.elapsed().as_secs_f64();

    // Host wall-clock per section: keys gated, values informative
    // (zeroed under --stable).
    let mut wall = String::new();
    for (field, secs) in [
        ("quickstart_host_wall_s", quick_wall),
        ("sor_host_wall_s", sor_wall),
        ("swap_host_wall_s", swap_wall),
        ("churn_host_wall_s", churn_wall),
        ("lossy_net_host_wall_s", lossy_wall),
        ("persistence_host_wall_s", persist_wall),
        ("weak_scaling_host_wall_s", weak_wall),
        ("hot_object_host_wall_s", hot_wall),
    ] {
        gate_key(field);
        let _ = write!(wall, "\n    \"{field}\": {},", informative(secs));
    }
    let wall = wall.trim_end_matches(',').to_string();

    // Every gated number in the JSON is virtual/modeled and — under
    // the virtual-time engine, sequential or parallel — exactly
    // reproducible, so CI gates the whole file. The host-measured
    // check cost varies by machine, so it goes to stdout only.
    let json = format!(
        "{{\n  \"quickstart_ms\": {quick_ms:.4},\n  \"sor_256_p4\": {{{sor}\n  }},\n  \
         \"large_object_swap\": {{{swap}\n  }},\n  \
         \"object_churn\": {{{churn}\n  }},\n  \
         \"lossy_net\": {{{lossy}\n  }},\n  \
         \"persistence\": {{{persist}\n  }},\n  \
         \"weak_scaling\": {{{weak}\n  }},\n  \
         \"hot_object\": {{{hot}\n  }},\n  \
         \"host_wall\": {{{wall}\n  }},\n  \
         \"access_check_ns\": {{\n    \"modeled\": {},\n    \"modeled_pin\": {}\n  }}\n}}\n",
        cpu.access_check.0, cpu.pin_update.0
    );
    if check && drifted.get() {
        eprintln!(
            "virtual times or counters drifted from the committed \
             BENCH_summary.json — under the virtual-time engine that means the \
             execution or cost model changed; regenerate with \
             `cargo run --release -p lots-bench --bin bench_summary`"
        );
        std::process::exit(1);
    }
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    let host_ns = host_check_ns();
    println!("quickstart {quick_ms:.2} ms; host check {host_ns:.1} ns/read (host-dependent, not in JSON)");
    println!("wrote {out_path}");
}
