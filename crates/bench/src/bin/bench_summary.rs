//! Emit a machine-readable `BENCH_summary.json` tracking the repo's
//! perf trajectory: the quickstart virtual time, the SOR 256×256×32
//! (p = 4) point on all three systems with its access-check counts,
//! and the modeled §4.2 access-check cost (the host-measured cost is
//! printed but kept out of the JSON — it varies by machine).
//!
//! ```text
//! cargo run --release -p lots-bench --bin bench_summary [-- --check]
//! ```
//!
//! The JSON lands in the current directory (the repo root in CI) so
//! successive PRs can diff it. Under the deterministic scheduler
//! (PR 3) every number in the file — including the virtual *times* —
//! is a pure function of the committed code, so `--check` fails on ANY
//! drift: a changed time or check count means a PR changed the
//! execution or cost model without regenerating the summary.

use std::fmt::Write as _;

use lots_apps::churn::{model_checksum, ChurnParams};
use lots_apps::largeobj::{expected_sum, large_object_test, LargeObjParams};
use lots_apps::runner::{run_app, RunConfig, System};
use lots_bench::{measure, no_tweak, App};
use lots_core::{
    run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig, SchedulerMode, SwapConfig,
};
use lots_sim::machine::{p4_fedora, pentium4_2ghz};

/// The quickstart example's virtual execution time in milliseconds
/// (same kernel as `examples/quickstart.rs`).
fn quickstart_ms() -> f64 {
    const NODES: usize = 4;
    const LEN: usize = 1024;
    let opts = ClusterOptions::new(NODES, LotsConfig::small(4 << 20), p4_fedora());
    let (_, report) = run_cluster(opts, |dsm| {
        let data = dsm.alloc::<i64>(LEN);
        let counter = dsm.alloc::<i64>(1);
        let per = LEN / dsm.n();
        let base = dsm.me() * per;
        for i in 0..per {
            data.write(base + i, (base + i) as i64);
        }
        dsm.barrier();
        let local = data.view(base..base + per).iter().sum::<i64>();
        dsm.with_lock(1, || counter.update(0, |v| v + local));
        dsm.barrier();
        counter.read(0)
    });
    report.exec_time.as_secs_f64() * 1e3
}

/// Swap-subsystem counters of one shrunken large-object run (Test 2 at
/// 8 MB through 1 MB arenas): virtual seconds, swaps, bytes actually
/// written/read (compressed for the tuned bundle), batched trips and
/// read-ahead hits — all deterministic, all gated by `--check`.
struct SwapPoint {
    secs: f64,
    swaps_out: u64,
    swaps_in: u64,
    out_bytes: u64,
    batches: u64,
    prefetch_hits: u64,
}

fn large_object_swap(swap: SwapConfig) -> SwapPoint {
    const NODES: usize = 2;
    let params = LargeObjParams {
        rows: 64,
        row_elems: 32 * 1024, // 128 KB rows → 8 MB of shared objects
    };
    let opts = ClusterOptions::new(
        NODES,
        LotsConfig::small(1 << 20).with_swap(swap),
        p4_fedora(),
    );
    let (results, report) = run_cluster(opts, move |dsm| {
        large_object_test(dsm, params).expect("large-object bench")
    });
    let total: i64 = results.iter().map(|r| r.sum).sum();
    assert_eq!(total, expected_sum(params), "swap corrupted the bench");
    SwapPoint {
        secs: report.exec_time.as_secs_f64(),
        swaps_out: results.iter().map(|r| r.swaps_out).sum(),
        swaps_in: results.iter().map(|r| r.swaps_in).sum(),
        out_bytes: results.iter().map(|r| r.swap_out_bytes).sum(),
        batches: results.iter().map(|r| r.swap_batches).sum(),
        prefetch_hits: results.iter().map(|r| r.prefetch_hits).sum(),
    }
}

/// Host-measured fast-path cost of one checked read (ns). Free-running
/// mode: this times host nanoseconds, not virtual time.
fn host_check_ns() -> f64 {
    let opts = ClusterOptions::new(1, LotsConfig::small(1 << 20), p4_fedora())
        .with_scheduler(SchedulerMode::FreeRunning);
    let (results, _) = run_cluster(opts, |dsm| {
        let a = dsm.alloc::<i64>(1024);
        a.write(0, 1);
        let reps: u64 = 1_000_000;
        let t0 = std::time::Instant::now();
        let mut sink = 0i64;
        for i in 0..reps {
            sink = sink.wrapping_add(a.read((i % 1024) as usize));
        }
        let elapsed = t0.elapsed();
        assert!(sink != i64::MIN, "keep the loop alive");
        elapsed.as_nanos() as f64 / reps as f64
    });
    results[0]
}

/// Extract the literal text of a `"key": value,`-style numeric field
/// from the committed JSON without a parser dependency.
fn committed_text(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle)? + needle.len();
    let tail: String = json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    (!tail.is_empty()).then_some(tail)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let committed = std::fs::read_to_string("BENCH_summary.json").ok();
    let machine = p4_fedora();
    let cpu = pentium4_2ghz();
    let mut drifted = false;
    // Deterministic scheduler: the committed field must match the
    // fresh measurement *textually* — times included.
    let mut gate = |key: &str, fresh: &str| {
        if let Some(old) = committed.as_deref().and_then(|j| committed_text(j, key)) {
            if old != fresh {
                eprintln!("DRIFT: {key} committed {old} vs measured {fresh}");
                drifted = true;
            }
        }
    };

    let quick_ms = quickstart_ms();
    gate("quickstart_ms", &format!("{quick_ms:.4}"));

    // SOR 256×256, 32 iterations, p = 4 — the tracked Figure 8(c)
    // point (App::run at size 256 with full=false uses 32 iterations).
    let mut sor = String::new();
    let mut checksums = Vec::new();
    for (key, system) in [
        ("jiajia", System::Jiajia),
        ("lots", System::Lots),
        ("lotsx", System::LotsX),
    ] {
        let pt = measure(App::Sor, system, 4, 256, machine, false, no_tweak);
        checksums.push(pt.outcome.combined.checksum);
        let secs = format!("{:.6}", pt.outcome.combined.elapsed.as_secs_f64());
        let checks = format!("{}", pt.outcome.access_checks);
        gate(&format!("{key}_s"), &secs);
        gate(&format!("{key}_access_checks"), &checks);
        let _ = write!(
            sor,
            "\n    \"{key}_s\": {secs},\n    \"{key}_access_checks\": {checks},"
        );
        println!(
            "SOR 256x256x32 p=4 {:<7} {:>7.3} s  {:>12} checks",
            system.label(),
            pt.outcome.combined.elapsed.as_secs_f64(),
            pt.outcome.access_checks
        );
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "systems disagree on SOR: {checksums:?}"
    );
    let sor = sor.trim_end_matches(',').to_string();

    // Large-object swap subsystem: the legacy path vs the tuned bundle
    // (segmented LRU + batched write-behind + read-ahead + compressed
    // images) on an 8× overcommitted arena.
    let mut swap = String::new();
    for (key, cfg) in [
        ("legacy", SwapConfig::legacy()),
        ("tuned", SwapConfig::tuned()),
    ] {
        let pt = large_object_swap(cfg);
        for (field, fresh) in [
            (format!("{key}_s"), format!("{:.6}", pt.secs)),
            (format!("{key}_swaps_out"), pt.swaps_out.to_string()),
            (format!("{key}_swaps_in"), pt.swaps_in.to_string()),
            (format!("{key}_out_bytes"), pt.out_bytes.to_string()),
            (format!("{key}_batches"), pt.batches.to_string()),
            (format!("{key}_prefetch_hits"), pt.prefetch_hits.to_string()),
        ] {
            gate(&field, &fresh);
            let _ = write!(swap, "\n    \"{field}\": {fresh},");
        }
        println!(
            "large-object 8MB/1MB p=2 {key:<7} {:>7.3} s  {} out / {} in, {} B written, \
             {} trips, {} read-ahead hits",
            pt.secs, pt.swaps_out, pt.swaps_in, pt.out_bytes, pt.batches, pt.prefetch_hits
        );
    }
    let swap = swap.trim_end_matches(',').to_string();

    // Object lifecycle under churn: 16 MB of cumulative allocations
    // (free/reuse, named checkpoints, cycling placements) through
    // fixed arenas on all three systems; the checksum is gated against
    // the sequential model, the lifecycle counters against drift.
    let mut churn = String::new();
    {
        let params = ChurnParams::smoke();
        let model = model_checksum(&params, 0);
        let mut freed = Vec::new();
        for (key, system, arena) in [
            ("lots", System::Lots, 1usize << 20),
            ("lotsx", System::LotsX, 2 << 20),
            ("jiajia", System::Jiajia, 2 << 20),
        ] {
            let mut cfg = RunConfig::new(system, 4, machine);
            cfg.dmm_bytes = arena;
            cfg.shared_bytes = 2 << 20;
            let out = run_app(&cfg, params);
            for r in &out.per_node {
                assert_eq!(r.checksum, model, "{key}: churn checksum vs model");
            }
            freed.push(out.objects_freed);
            let mut fields = vec![(
                format!("{key}_churn_s"),
                format!("{:.6}", out.combined.elapsed.as_secs_f64()),
            )];
            if system == System::Lots {
                fields.push(("lots_churn_swaps_out".into(), out.swaps_out.to_string()));
                fields.push(("lots_churn_slots".into(), out.object_slots_max.to_string()));
                fields.push((
                    "lots_churn_frag_permille".into(),
                    out.frag_permille_max.to_string(),
                ));
            }
            for (field, fresh) in fields {
                gate(&field, &fresh);
                let _ = write!(churn, "\n    \"{field}\": {fresh},");
            }
            println!(
                "object churn p=4 {:<7} {:>7.3} s  {} frees/node, checksum OK",
                system.label(),
                out.combined.elapsed.as_secs_f64(),
                out.objects_freed / 4,
            );
        }
        assert!(
            freed.windows(2).all(|w| w[0] == w[1]),
            "systems disagree on reclaimed objects: {freed:?}"
        );
        for (field, fresh) in [
            ("churn_checksum".to_string(), model.to_string()),
            (
                "churn_cumulative_bytes".to_string(),
                params.cumulative_bytes().to_string(),
            ),
            ("churn_reclaim_events".to_string(), freed[0].to_string()),
        ] {
            gate(&field, &fresh);
            let _ = write!(churn, "\n    \"{field}\": {fresh},");
        }
    }
    let churn = churn.trim_end_matches(',').to_string();

    // Every number in the JSON is virtual/modeled and — under the
    // deterministic scheduler — exactly reproducible, so CI gates the
    // whole file. The host-measured check cost varies by machine, so
    // it goes to stdout only.
    let json = format!(
        "{{\n  \"quickstart_ms\": {quick_ms:.4},\n  \"sor_256_p4\": {{{sor}\n  }},\n  \
         \"large_object_swap\": {{{swap}\n  }},\n  \
         \"object_churn\": {{{churn}\n  }},\n  \
         \"access_check_ns\": {{\n    \"modeled\": {},\n    \"modeled_pin\": {}\n  }}\n}}\n",
        cpu.access_check.0, cpu.pin_update.0
    );
    if check && drifted {
        eprintln!(
            "virtual times or access-check counts drifted from the committed \
             BENCH_summary.json — under the deterministic scheduler that means the \
             execution or cost model changed; regenerate with \
             `cargo run --release -p lots-bench --bin bench_summary`"
        );
        std::process::exit(1);
    }
    std::fs::write("BENCH_summary.json", &json).expect("write BENCH_summary.json");
    let host_ns = host_check_ns();
    println!("quickstart {quick_ms:.2} ms; host check {host_ns:.1} ns/read (host-dependent, not in JSON)");
    println!("wrote BENCH_summary.json");
}
