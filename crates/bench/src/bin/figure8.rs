//! Regenerate **Figure 8**: execution time of ME, LU, SOR and RX under
//! LOTS, LOTS-x and JIAJIA v1.1, across problem sizes and cluster
//! sizes (the paper's testbed: 16 × P-IV 2 GHz, 100 Mb Fast Ethernet).
//!
//! ```text
//! cargo run --release -p lots-bench --bin figure8 [-- --full] [--p 2,4,8,16]
//!     [--csv PATH] [--ablate-home] [--ablate-lock]
//! ```
//!
//! Default sizes are laptop-scale but shape-preserving; `--full` runs
//! paper-scale sizes (SOR 1024 with 256 iterations, etc.).

use lots_apps::runner::System;
use lots_bench::{measure, no_tweak, render_panel, to_csv, Point, APPS};
use lots_core::{LockProtocol, LotsConfig};
use lots_sim::machine::p4_fedora;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let ablate_home = args.iter().any(|a| a == "--ablate-home");
    let ablate_lock = args.iter().any(|a| a == "--ablate-lock");
    let ps: Vec<usize> = args
        .iter()
        .position(|a| a == "--p")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(|v| v.parse().expect("bad --p")).collect())
        .unwrap_or_else(|| vec![2, 4, 8, 16]);
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();

    println!("Figure 8 — execution performance of LOTS (with and without large");
    println!("object space support) compared with JIAJIA V1.1");
    println!(
        "testbed: p in {ps:?} nodes, P4-2GHz/Fedora, 100Mb Fast Ethernet{}",
        if full {
            " (paper-scale sizes)"
        } else {
            " (reduced sizes)"
        }
    );
    println!();

    let machine = p4_fedora();
    let mut points: Vec<Point> = Vec::new();
    for app in APPS {
        for &p in &ps {
            for size in app.sizes(full) {
                for system in [System::Jiajia, System::Lots, System::LotsX] {
                    let pt = measure(app, system, p, size, machine, full, no_tweak);
                    eprintln!(
                        "  measured {} {} p={p} size={size}: {:.3}s",
                        app.short(),
                        system.label(),
                        pt.outcome.combined.elapsed.as_secs_f64()
                    );
                    points.push(pt);
                }
            }
            println!("{}", render_panel(app, p, &points));
        }
    }

    if ablate_home {
        println!("=== ablation: migrating home disabled (fixed homes at barriers) ===");
        fn fixed_home(c: &mut LotsConfig) {
            c.home_migration = false;
        }
        for app in APPS {
            let size = app.sizes(full)[app.sizes(full).len() / 2];
            for &p in &ps {
                let base = measure(app, System::Lots, p, size, machine, full, no_tweak);
                let abl = measure(app, System::Lots, p, size, machine, full, fixed_home);
                println!(
                    "  {} p={p} size={size}: migrating {:.3}s vs fixed {:.3}s ({:+.1}%)",
                    app.short(),
                    base.outcome.combined.elapsed.as_secs_f64(),
                    abl.outcome.combined.elapsed.as_secs_f64(),
                    (abl.outcome.combined.elapsed.as_secs_f64()
                        / base.outcome.combined.elapsed.as_secs_f64()
                        - 1.0)
                        * 100.0
                );
            }
        }
    }

    if ablate_lock {
        println!("=== ablation: write-invalidate locks instead of write-update ===");
        fn wi_locks(c: &mut LotsConfig) {
            c.lock_protocol = LockProtocol::WriteInvalidate;
        }
        // A lock-heavy microkernel (migratory counter) shows the
        // protocol difference directly.
        use lots_apps::adapter::{alloc_chunked, AppResult, DsmProgram};
        use lots_core::DsmApi;
        struct MigratoryCounter;
        impl DsmProgram for MigratoryCounter {
            fn run<D: DsmApi>(&self, dsm: &D) -> AppResult {
                let a = alloc_chunked::<i64, D>(dsm, 1, 512);
                let t0 = dsm.now();
                for _ in 0..200 {
                    dsm.lock(1);
                    let v = a.read(0, 0);
                    a.write(0, 0, v + 1);
                    dsm.unlock(1);
                }
                dsm.barrier();
                AppResult {
                    checksum: a.read(0, 0) as u64,
                    elapsed: dsm.now().saturating_sub(t0),
                }
            }
        }
        for &p in &ps {
            let mk = |tweak: fn(&mut LotsConfig)| {
                let mut cfg = lots_apps::runner::RunConfig::new(System::Lots, p, machine);
                cfg.lots_tweak = tweak;
                lots_apps::runner::run_app(&cfg, MigratoryCounter)
            };
            let wu = mk(no_tweak);
            let wi = mk(wi_locks);
            println!(
                "  migratory-counter p={p}: write-update {:.3}s vs write-invalidate {:.3}s",
                wu.combined.elapsed.as_secs_f64(),
                wi.combined.elapsed.as_secs_f64()
            );
        }
    }

    if let Some(path) = csv_path {
        std::fs::write(&path, to_csv(&points)).expect("write CSV");
        println!("wrote {} points to {path}", points.len());
    }
}
