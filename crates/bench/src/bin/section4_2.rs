//! Regenerate the **§4.2** analysis: the overhead of the large-object
//! space support (LOTS vs LOTS-x), the per-access-check cost, and the
//! SOR-1024 access-checking time share.
//!
//! ```text
//! cargo run --release -p lots-bench --bin section4_2 [-- --quick]
//! ```

use lots_apps::runner::System;
use lots_bench::{measure, no_tweak, App, APPS};
use lots_sim::machine::{p4_fedora, pentium4_2ghz};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let machine = p4_fedora();

    println!("§4.2 — overhead for large object support");
    println!();
    println!("(1) LOTS vs LOTS-x on the four applications, p = 4:");
    for app in APPS {
        let size = *app.sizes(false).last().expect("sizes");
        let lots = measure(app, System::Lots, 4, size, machine, false, no_tweak);
        let lotsx = measure(app, System::LotsX, 4, size, machine, false, no_tweak);
        let t = lots.outcome.combined.elapsed.as_secs_f64();
        let tx = lotsx.outcome.combined.elapsed.as_secs_f64();
        println!(
            "  {:<4} size {:>7}: LOTS {:>7.3}s  LOTS-x {:>7.3}s  overhead {:>5.1}%   \
             (paper: 10-15% for RX, <5% others)",
            app.short(),
            size,
            t,
            tx,
            (t / tx - 1.0) * 100.0
        );
    }

    println!();
    println!("(2) access-check cost:");
    let cpu = pentium4_2ghz();
    println!(
        "  modeled (calibrated to the paper's P4-2GHz): {} ns/check (+{} ns pinning)",
        cpu.access_check.0, cpu.pin_update.0
    );
    // Host-measured fast path: repeated reads of a mapped, valid object.
    let (checks, host_ns) = host_check_cost();
    println!(
        "  host-measured fast path on this machine: {host_ns:.1} ns/check \
         (over {checks} checked reads; paper measured 20-25 ns)"
    );

    println!();
    println!("(3) SOR access-check share (paper: n=1024, p=4, 256 iters ->");
    println!("    ~1.5e9 checks/process, 30-37 s of 55 s in checking):");
    let (n, iters_note) = if quick {
        (256, " [--quick: n=256]")
    } else {
        (1024, "")
    };
    let pt = measure(App::Sor, System::Lots, 4, n, machine, !quick, no_tweak);
    let o = &pt.outcome;
    let per_process = o.access_checks / 4;
    let check_time = o.time_access_check.as_secs_f64() / 4.0;
    let lo_time = o.time_large_object.as_secs_f64() / 4.0;
    let exec = o.combined.elapsed.as_secs_f64();
    println!(
        "  SOR n={n}{iters_note}: {per_process:.3e} checks/process; \
         check {check_time:.1}s + pin {lo_time:.1}s of {exec:.1}s execution \
         ({:.0}% of execution)",
        (check_time + lo_time) / exec * 100.0
    );
}

/// Measure the real fast-path cost of a checked read on this host.
fn host_check_cost() -> (u64, f64) {
    use lots_core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig};
    let opts = ClusterOptions::new(1, LotsConfig::small(1 << 20), p4_fedora());
    let (results, _) = run_cluster(opts, |dsm| {
        let a = dsm.alloc::<i64>(1024);
        a.write(0, 1);
        let reps: u64 = 2_000_000;
        let t0 = std::time::Instant::now();
        let mut sink = 0i64;
        for i in 0..reps {
            sink = sink.wrapping_add(a.read((i % 1024) as usize));
        }
        let elapsed = t0.elapsed();
        assert!(sink != i64::MIN, "keep the loop alive");
        (reps, elapsed.as_nanos() as f64 / reps as f64)
    });
    results[0]
}
