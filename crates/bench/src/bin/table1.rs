//! Regenerate **Table 1** (§4.3): the large-object-space test on the
//! paper's platforms, plus the 117.77 GB maximum-space run on the
//! PowerEdge 6300 cluster.
//!
//! ```text
//! cargo run --release -p lots-bench --bin table1 [-- --quick] [--skip-max]
//! ```
//!
//! Default: the paper's configuration — 4 nodes, a shared 2-D integer
//! array of X rows × 1 M ints (4 MB rows) totalling > 4 GB, every
//! object swapped out once, execution dominated by disk time. `--quick`
//! divides the problem by 8 (shape only).
//!
//! The paper's system wrote *verbatim* swap images, and Table 1's whole
//! point is disk-time domination, so this bin pins
//! [`SwapConfig::legacy`]; the overhauled subsystem (compression,
//! batching, read-ahead) is measured by `bench_summary` and the
//! `large_object_space` example instead.

use std::sync::Arc;

use lots_apps::largeobj::{expected_sum, large_object_test, LargeObjParams};
use lots_core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig, LotsError, SwapConfig};
use lots_disk::ModeledStore;
use lots_sim::machine::{p3_redhat62, p3_redhat90, p4_fedora, poweredge6300};
use lots_sim::MachineConfig;

const NODES: usize = 4;

fn run_platform(machine: MachineConfig, params: LargeObjParams, dmm: usize) {
    let disk = machine.disk;
    let free = machine.free_disk_bytes;
    let lots = LotsConfig::small(dmm).with_swap(SwapConfig::legacy());
    let opts = ClusterOptions::new(NODES, lots, machine)
        .with_stores(move |_| Arc::new(ModeledStore::with_capacity(disk, free)));
    let (results, report) = run_cluster(opts, move |dsm| {
        large_object_test(dsm, params).expect("large-object test failed")
    });
    let total: i64 = results.iter().map(|r| r.sum).sum();
    assert_eq!(total, expected_sum(params), "data corrupted through swap");
    let exec = results
        .iter()
        .map(|r| r.elapsed)
        .max()
        .expect("at least one node");
    let disk_time = results
        .iter()
        .map(|r| r.disk_time)
        .max()
        .expect("at least one node");
    let swaps: u64 = results.iter().map(|r| r.swaps_out).sum();
    println!(
        "{:<24} X={:>6} rows  space={:>7.2} GB  exec={:>8.1} s  disk r/w={:>8.1} s  swap-outs={}",
        machine.name,
        params.rows,
        params.total_bytes() as f64 / 1e9,
        exec.as_secs_f64(),
        disk_time.as_secs_f64(),
        swaps
    );
    let _ = report;
}

fn max_space_run(quick: bool) {
    let machine = poweredge6300();
    let row_bytes: u64 = 4 << 20;
    let scale = if quick { 64 } else { 1 };
    let capacity = machine.free_disk_bytes / scale;
    // Fill until each node's free disk is exhausted (§4.3: "we are able
    // to exhaust all the free space available in the hard disks").
    let rows_per_node = (capacity / row_bytes) as usize;
    let rows = rows_per_node * NODES;
    let disk = machine.disk;
    let lots = LotsConfig::small(32 << 20).with_swap(SwapConfig::legacy());
    let opts = ClusterOptions::new(NODES, lots, machine)
        .with_stores(move |_| Arc::new(ModeledStore::with_capacity(disk, capacity)));
    let row_elems = (row_bytes / 4) as usize;
    let (results, _report) = run_cluster(opts, move |dsm| {
        let rows_handles: Vec<_> = (0..rows).map(|_| dsm.alloc::<i32>(row_elems)).collect();
        dsm.barrier();
        // Touch every owned row so it materializes and later swaps out.
        for (r, h) in rows_handles.iter().enumerate() {
            if r % NODES == dsm.me() {
                h.write(0, r as i32);
            }
        }
        dsm.barrier();
        // Attempting one more row's worth of data must hit the disk
        // capacity limit — the space really is exhausted.
        let extra = dsm.alloc::<i32>(row_elems); // registering is always fine
        let exhausted = if dsm.me() == 0 {
            let mut hit_limit = false;
            // Touch enough extra objects to overflow the backing store.
            'outer: for _ in 0..64 {
                match dsm
                    .try_alloc::<i32>(row_elems)
                    .and_then(|h| h.try_read(0).map(drop))
                {
                    Ok(()) => {}
                    Err(LotsError::Disk(e)) => {
                        assert!(e.contains("full"), "unexpected disk error: {e}");
                        hit_limit = true;
                        break 'outer;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            hit_limit
        } else {
            true
        };
        let _ = extra;
        dsm.run_barrier();
        (dsm.swapped_bytes(), exhausted)
    });
    let swapped: u64 = results.iter().map(|(b, _)| *b).sum();
    let exhausted = results.iter().all(|(_, e)| *e);
    let object_space = rows as u64 * row_bytes;
    println!(
        "{:<24} shared object space allocated: {:.2} GB across {NODES} nodes \
         ({} rows x 4 MB; {:.2} GB on disk at exit; free space exhausted: {})",
        machine.name,
        object_space as f64 / 1e9,
        rows,
        swapped as f64 / 1e9,
        exhausted
    );
    if !quick {
        assert!(
            object_space as f64 / 1e9 > 117.0,
            "paper's 117.77 GB object space not reached"
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let skip_max = args.iter().any(|a| a == "--skip-max");
    let scale = if quick { 8 } else { 1 };

    // Paper: total size exceeding 4 GB → X = 1100 rows of 1M ints.
    let params = LargeObjParams {
        rows: 1100 / scale,
        row_elems: 1 << 20,
    };
    println!("Table 1 — testing the large object space support of LOTS on various platforms");
    println!(
        "({} nodes, {} rows x 4MB = {:.2} GB of shared objects{})",
        NODES,
        params.rows,
        params.total_bytes() as f64 / 1e9,
        if quick { ", --quick scale" } else { "" }
    );
    println!();
    for machine in [p3_redhat62(), p3_redhat90(), p4_fedora()] {
        run_platform(machine, params, 32 << 20);
    }
    if !skip_max {
        println!();
        println!("§4.3 maximum object space (Dell PowerEdge 6300 cluster):");
        max_space_run(quick);
    }
}
