//! `lots-bench` — harness code shared by the binaries that regenerate
//! the paper's tables and figures (see `DESIGN.md` §4 for the
//! experiment index, `EXPERIMENTS.md` for paper-vs-measured results).

use std::fmt::Write as _;

use lots_apps::adapter::{AppResult, DsmProgram};
use lots_apps::runner::{run_app, RunConfig, RunOutcome, System};
use lots_apps::{lu, me, rx, sor};
use lots_core::DsmApi;
use lots_sim::MachineConfig;

/// The four Figure 8 applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    Me,
    Lu,
    Sor,
    Rx,
}

pub const APPS: [App; 4] = [App::Me, App::Lu, App::Sor, App::Rx];

impl App {
    pub fn label(self) -> &'static str {
        match self {
            App::Me => "ME (merge sort)",
            App::Lu => "LU (factorization)",
            App::Sor => "SOR (red-black)",
            App::Rx => "RX (radix sort)",
        }
    }

    pub fn short(self) -> &'static str {
        match self {
            App::Me => "ME",
            App::Lu => "LU",
            App::Sor => "SOR",
            App::Rx => "RX",
        }
    }

    /// Default problem-size sweep (x-axis of the figure panel).
    /// `full` selects paper-scale sizes; otherwise laptop-scale ones
    /// that preserve the curves' shape.
    pub fn sizes(self, full: bool) -> Vec<usize> {
        match (self, full) {
            (App::Me, false) => vec![1 << 15, 1 << 16, 1 << 17],
            (App::Me, true) => vec![1 << 17, 1 << 18, 1 << 19, 1 << 20],
            (App::Lu, false) => vec![96, 144, 192],
            (App::Lu, true) => vec![256, 384, 512],
            (App::Sor, false) => vec![128, 192, 256],
            (App::Sor, true) => vec![512, 768, 1024],
            (App::Rx, false) => vec![1 << 15, 1 << 16, 1 << 17],
            (App::Rx, true) => vec![1 << 17, 1 << 18, 1 << 19],
        }
    }

    /// SOR iteration count (paper: 256).
    pub fn sor_iters(full: bool) -> usize {
        if full {
            256
        } else {
            32
        }
    }

    /// Run the app at `size` on any DSM.
    pub fn run<D: DsmApi>(self, dsm: &D, size: usize, full: bool) -> AppResult {
        match self {
            App::Me => me::me(
                dsm,
                me::MeParams {
                    total: size,
                    seed: 20040920,
                },
            ),
            App::Lu => lu::lu(dsm, lu::LuParams { n: size }),
            App::Sor => sor::sor(
                dsm,
                sor::SorParams {
                    n: size,
                    iters: Self::sor_iters(full),
                },
            ),
            App::Rx => rx::rx(
                dsm,
                rx::RxParams {
                    total: size,
                    passes: 2,
                    seed: 20040920,
                },
            ),
        }
    }
}

/// An [`App`] pinned to a problem size — the runnable unit the
/// runner dispatches ([`DsmProgram`]).
#[derive(Debug, Clone, Copy)]
pub struct AppAtSize {
    pub app: App,
    pub size: usize,
    pub full: bool,
}

impl DsmProgram for AppAtSize {
    fn run<D: DsmApi>(&self, dsm: &D) -> AppResult {
        self.app.run(dsm, self.size, self.full)
    }
}

/// One Figure 8 measurement point.
#[derive(Debug, Clone)]
pub struct Point {
    pub app: App,
    pub system: System,
    pub p: usize,
    pub size: usize,
    pub outcome: RunOutcome,
}

/// Measure one (app, system, p, size) point on the Figure 8 testbed.
pub fn measure(
    app: App,
    system: System,
    p: usize,
    size: usize,
    machine: MachineConfig,
    full: bool,
    tweak: fn(&mut lots_core::LotsConfig),
) -> Point {
    let mut cfg = RunConfig::new(system, p, machine);
    cfg.lots_tweak = tweak;
    // Plenty of DMM for the timed kernels: Figure 8 sizes fit in
    // memory on both systems (the paper chose "small problem sizes so
    // that the programs could work on both JIAJIA and LOTS").
    cfg.dmm_bytes = 96 << 20;
    cfg.shared_bytes = 192 << 20;
    let outcome = run_app(&cfg, AppAtSize { app, size, full });
    Point {
        app,
        system,
        p,
        size,
        outcome,
    }
}

/// Render a per-panel table: rows = sizes, columns = systems.
pub fn render_panel(app: App, p: usize, points: &[Point]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "--- {} , p = {p} (seconds) ---", app.label());
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>10} {:>10}   LOTS vs JIAJIA",
        "size", "JIAJIA", "LOTS", "LOTS-x"
    );
    let mut sizes: Vec<usize> = points
        .iter()
        .filter(|pt| pt.app == app && pt.p == p)
        .map(|pt| pt.size)
        .collect();
    sizes.sort_unstable();
    sizes.dedup();
    for size in sizes {
        let find = |system: System| {
            points
                .iter()
                .find(|pt| pt.app == app && pt.p == p && pt.size == size && pt.system == system)
                .map(|pt| pt.outcome.combined.elapsed.as_secs_f64())
        };
        let jia = find(System::Jiajia);
        let lots = find(System::Lots);
        let lotsx = find(System::LotsX);
        let speedup = match (jia, lots) {
            (Some(j), Some(l)) if l > 0.0 => format!("{:+.1}%", (j - l) / j * 100.0),
            _ => "-".to_string(),
        };
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |s| format!("{s:.3}"));
        let _ = writeln!(
            out,
            "{:>10} {:>10} {:>10} {:>10}   {}",
            size,
            fmt(jia),
            fmt(lots),
            fmt(lotsx),
            speedup
        );
    }
    out
}

/// CSV rows for downstream plotting.
pub fn to_csv(points: &[Point]) -> String {
    let mut out = String::from(
        "app,system,p,size,seconds,bytes_sent,msgs_sent,access_checks,page_faults,\
         swaps_out,time_network_s,time_sync_s,time_check_s\n",
    );
    for pt in points {
        let o = &pt.outcome;
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6},{},{},{},{},{},{:.6},{:.6},{:.6}",
            pt.app.short(),
            pt.system.label(),
            pt.p,
            pt.size,
            o.combined.elapsed.as_secs_f64(),
            o.bytes_sent,
            o.msgs_sent,
            o.access_checks,
            o.page_faults,
            o.swaps_out,
            o.time_network.as_secs_f64(),
            o.time_sync.as_secs_f64(),
            o.time_access_check.as_secs_f64(),
        );
    }
    out
}

/// No-op tweak (the default protocol configuration).
pub fn no_tweak(_: &mut lots_core::LotsConfig) {}

#[cfg(test)]
mod tests {
    use super::*;
    use lots_sim::machine::p4_fedora;

    #[test]
    fn measure_one_point_per_system() {
        let mut points = Vec::new();
        for system in [System::Jiajia, System::Lots, System::LotsX] {
            points.push(measure(
                App::Lu,
                system,
                2,
                32,
                p4_fedora(),
                false,
                no_tweak,
            ));
        }
        // All systems computed the same factorization.
        let sums: Vec<u64> = points.iter().map(|p| p.outcome.combined.checksum).collect();
        assert_eq!(sums[0], sums[1]);
        assert_eq!(sums[1], sums[2]);
        let panel = render_panel(App::Lu, 2, &points);
        assert!(panel.contains("LU"));
        assert!(panel.contains("32"));
        let csv = to_csv(&points);
        assert_eq!(csv.lines().count(), 4);
    }
}
