//! §4.2 microbench: the real (host) cost of the LOTS access-check fast
//! path — the operation the paper measured at 20–25 ns on a 2 GHz P4.
//! Compares the LOTS path (check + pin) with the LOTS-x path (check
//! only) and a bulk access amortizing one check over a row.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use lots_core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig};
use lots_sim::machine::p4_fedora;

/// Run `f` once inside a single-node LOTS cluster and return its value.
/// Free-running mode: these closures time *host* nanoseconds, and the
/// cooperative turnstile's park/unpark would pollute the readings.
fn in_cluster<R: Send + 'static>(
    cfg: LotsConfig,
    f: impl Fn(&lots_core::Dsm) -> R + Send + Sync + 'static,
) -> R {
    let opts = ClusterOptions::new(1, cfg, p4_fedora())
        .with_scheduler(lots_core::SchedulerMode::FreeRunning);
    let (mut results, _) = run_cluster(opts, f);
    results.remove(0)
}

fn bench_access_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("access_check");
    g.throughput(Throughput::Elements(1));

    g.bench_function("lots_checked_read", |b| {
        // Measure inside the cluster: read a mapped valid object.
        let ns_per = in_cluster(LotsConfig::small(1 << 20), |dsm| {
            let a = dsm.alloc::<i64>(512);
            a.fill(3);
            let reps = 300_000u64;
            let t0 = std::time::Instant::now();
            let mut sink = 0i64;
            for i in 0..reps {
                sink = sink.wrapping_add(a.read((i % 512) as usize));
            }
            std::hint::black_box(sink);
            t0.elapsed().as_nanos() as f64 / reps as f64
        });
        b.iter_batched(|| ns_per, std::hint::black_box, BatchSize::SmallInput);
        eprintln!("  lots fast-path ≈ {ns_per:.1} ns/checked read (paper hardware: 20-25 ns)");
    });

    g.bench_function("lots_x_checked_read", |b| {
        let ns_per = in_cluster(LotsConfig::lots_x(1 << 20), |dsm| {
            let a = dsm.alloc::<i64>(512);
            a.fill(3);
            let reps = 300_000u64;
            let t0 = std::time::Instant::now();
            let mut sink = 0i64;
            for i in 0..reps {
                sink = sink.wrapping_add(a.read((i % 512) as usize));
            }
            std::hint::black_box(sink);
            t0.elapsed().as_nanos() as f64 / reps as f64
        });
        b.iter_batched(|| ns_per, std::hint::black_box, BatchSize::SmallInput);
        eprintln!("  lots-x fast-path ≈ {ns_per:.1} ns/checked read");
    });

    g.bench_function("bulk_row_read_1024", |b| {
        b.iter_batched(
            || {
                in_cluster(LotsConfig::small(4 << 20), |dsm| {
                    let a = dsm.alloc::<f64>(1024);
                    a.fill(1.5);
                    let t0 = std::time::Instant::now();
                    for _ in 0..1000 {
                        std::hint::black_box(a.read_vec(0, 1024));
                    }
                    t0.elapsed().as_nanos() as f64 / 1000.0
                })
            },
            std::hint::black_box,
            BatchSize::SmallInput,
        );
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_access_check
}
criterion_main!(benches);
