//! Figure 4 / §3.2 bench: the DMM allocator — 1024-queue best-fit
//! throughput, the small-object page-packing policy, and behaviour
//! under fragmentation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lots_core::alloc::DmmAllocator;

fn fresh() -> DmmAllocator {
    // 32 MB arena: the mixed-classes cycle allocates ~7 MB of large
    // objects, which must fit the lower half alongside the mediums.
    DmmAllocator::new(32 << 20, 1024, 64 * 1024)
}

fn bench_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocator");

    g.bench_function("small_object_slab_cycle", |b| {
        b.iter(|| {
            let mut a = fresh();
            let offs: Vec<usize> = (0..512).map(|_| a.alloc(40).expect("slab")).collect();
            for o in offs {
                a.free(o);
            }
        })
    });

    g.bench_function("medium_best_fit_cycle", |b| {
        b.iter(|| {
            let mut a = fresh();
            let offs: Vec<usize> = (0..256)
                .map(|i| a.alloc(2048 + (i % 7) * 512).expect("medium"))
                .collect();
            for o in offs {
                a.free(o);
            }
        })
    });

    g.bench_function("mixed_classes", |b| {
        b.iter(|| {
            let mut a = fresh();
            let mut offs = Vec::with_capacity(300);
            for i in 0..100 {
                offs.push(a.alloc(64 + i).expect("small"));
                offs.push(a.alloc(4096 + i * 8).expect("medium"));
                offs.push(a.alloc(64 * 1024 + i * 64).expect("large"));
            }
            for o in offs {
                a.free(o);
            }
        })
    });

    // Fragmentation: free every other block, then best-fit into holes.
    for hole in [512usize, 1024, 2048] {
        g.bench_with_input(
            BenchmarkId::new("best_fit_into_holes", hole),
            &hole,
            |b, &hole| {
                b.iter(|| {
                    let mut a = fresh();
                    let offs: Vec<usize> = (0..512).map(|_| a.alloc(hole).expect("fill")).collect();
                    for (i, &o) in offs.iter().enumerate() {
                        if i % 2 == 0 {
                            a.free(o);
                        }
                    }
                    // Refill the holes with slightly smaller requests.
                    for _ in 0..256 {
                        a.alloc(hole - 8).expect("refit");
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_alloc
}
criterion_main!(benches);
