//! §3.3 bench: swap-out/swap-in round trips through the three backing
//! stores (real host throughput of the dynamic memory mapper's disk
//! path, plus the RLE compression that makes the modeled store scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lots_core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig};
use lots_disk::{BackingStore, FileStore, MemStore, ModeledStore, RleImage};
use lots_sim::machine::p4_fedora;
use lots_sim::{DiskModel, SimDuration};

fn disk() -> DiskModel {
    DiskModel {
        per_op: SimDuration::from_micros(250),
        write_bps: 19_000_000,
        read_bps: 21_000_000,
    }
}

fn bench_stores(c: &mut Criterion) {
    let mut g = c.benchmark_group("backing_store_roundtrip");
    let size = 256 * 1024;
    let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    g.throughput(Throughput::Bytes(size as u64));

    g.bench_function("mem_store", |b| {
        let s = MemStore::new(disk());
        b.iter(|| {
            s.put(1, &data).expect("put");
            let (back, _) = s.get(1).expect("get");
            s.remove(1).expect("remove");
            std::hint::black_box(back.len())
        })
    });

    g.bench_function("file_store", |b| {
        let s = FileStore::temp(disk()).expect("temp dir");
        b.iter(|| {
            s.put(1, &data).expect("put");
            let (back, _) = s.get(1).expect("get");
            s.remove(1).expect("remove");
            std::hint::black_box(back.len())
        })
    });

    g.bench_function("modeled_store_patterned", |b| {
        let s = ModeledStore::new(disk());
        let patterned: Vec<u8> = std::iter::repeat_n(42u32.to_le_bytes(), size / 4)
            .flatten()
            .collect();
        b.iter(|| {
            s.put(1, &patterned).expect("put");
            let (back, _) = s.get(1).expect("get");
            s.remove(1).expect("remove");
            std::hint::black_box(back.len())
        })
    });
    g.finish();

    let mut g = c.benchmark_group("rle");
    for &(name, repetitive) in &[("repetitive", true), ("random", false)] {
        let data: Vec<u8> = if repetitive {
            std::iter::repeat_n(7u32.to_le_bytes(), size / 4)
                .flatten()
                .collect()
        } else {
            (0..size)
                .map(|i| (i as u32).wrapping_mul(2654435761) as u8)
                .collect()
        };
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("encode", name), &data, |b, d| {
            b.iter(|| RleImage::encode(d))
        });
    }
    g.finish();
}

fn bench_swap_cycle(c: &mut Criterion) {
    // End-to-end: a DMM area half the working set forces a swap per
    // alternate access (host cost of §3.3's machinery).
    let mut g = c.benchmark_group("swap_cycle");
    g.bench_function("thrash_two_objects", |b| {
        b.iter(|| {
            let opts = ClusterOptions::new(1, LotsConfig::small(256 * 1024), p4_fedora());
            let (results, _) = run_cluster(opts, |dsm| {
                let a = dsm.alloc::<i64>(12 * 1024); // 96 KB
                let b = dsm.alloc::<i64>(12 * 1024);
                for round in 0..8 {
                    a.write(round, round as i64);
                    b.write(round, round as i64);
                }
                dsm.stats().swaps_out()
            });
            assert!(results[0] > 0);
            std::hint::black_box(results[0])
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stores, bench_swap_cycle
}
criterion_main!(benches);
