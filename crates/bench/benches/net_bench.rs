//! §3.6/§5 bench: real fragmentation + reassembly throughput of the
//! simulated UDP transport (the paper's 64 KB datagram limit means big
//! messages pay a split/rebuild cost at both ends).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lots_net::{cluster, Recv, WireSize};
use lots_sim::{NetModel, SimDuration, SimInstant};

#[derive(Debug, Clone)]
struct Hdr;

impl WireSize for Hdr {
    fn wire_size(&self) -> usize {
        16
    }
}

fn model() -> NetModel {
    NetModel {
        latency: SimDuration::from_micros(95),
        bandwidth_bps: 11_200_000,
        per_fragment: SimDuration::from_micros(18),
        max_datagram: 64 * 1024,
        window_frags: 8,
    }
}

fn bench_net(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_fragmentation");
    for &size in &[4 * 1024usize, 64 * 1024, 512 * 1024, 2 * 1024 * 1024] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(
            BenchmarkId::new("send_reassemble", size),
            &size,
            |b, &size| {
                let mut eps = cluster::<Hdr>(2, model());
                let (tx1, _) = eps.remove(1);
                let (_, mut rx0) = eps.remove(0);
                let payload: Bytes = vec![0xAB; size].into();
                b.iter(|| {
                    tx1.send(0, Hdr, payload.clone(), SimInstant(0));
                    match rx0.recv_timeout(std::time::Duration::from_secs(5)) {
                        Recv::Message(env) => {
                            assert_eq!(env.payload.len(), size);
                            std::hint::black_box(env.fragments)
                        }
                        _ => panic!("message lost"),
                    }
                })
            },
        );
    }
    g.finish();

    // Virtual-time sanity: modeled one-way latency of those sizes.
    let m = model();
    for &size in &[4 * 1024usize, 64 * 1024, 512 * 1024, 2 * 1024 * 1024] {
        eprintln!(
            "  modeled one-way for {size:>8} B: {} ({} fragments)",
            m.one_way(size),
            m.fragments(size)
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_net
}
criterion_main!(benches);
