//! `cargo bench` entry point that regenerates compact versions of the
//! paper's evaluation artifacts (Figure 8 panels, Table 1, §4.2) in one
//! pass. The standalone binaries (`figure8`, `table1`, `section4_2`)
//! produce the full-resolution versions.

use lots_apps::runner::System;
use lots_bench::{measure, no_tweak, render_panel, App, Point, APPS};
use lots_sim::machine::p4_fedora;

fn main() {
    // Criterion-style filter args are ignored; this harness always runs
    // its fixed quick suite.
    println!("=== paper tables (quick) — see bins figure8/table1/section4_2 for full runs ===");
    let machine = p4_fedora();

    // Figure 8, one size per app, p = 4 and 8.
    let mut points: Vec<Point> = Vec::new();
    for app in APPS {
        let size = app.sizes(false)[1];
        for p in [4usize, 8] {
            for system in [System::Jiajia, System::Lots, System::LotsX] {
                points.push(measure(app, system, p, size, machine, false, no_tweak));
            }
        }
        println!("{}", render_panel(app, 4, &points));
        println!("{}", render_panel(app, 8, &points));
    }

    // §4.2 overhead snapshot.
    println!("--- §4.2 large-object-support overhead (p=4) ---");
    for app in APPS {
        let size = app.sizes(false)[1];
        let lots = points
            .iter()
            .find(|pt| pt.app == app && pt.p == 4 && pt.system == System::Lots)
            .expect("measured above");
        let lotsx = points
            .iter()
            .find(|pt| pt.app == app && pt.p == 4 && pt.system == System::LotsX)
            .expect("measured above");
        let (t, tx) = (
            lots.outcome.combined.elapsed.as_secs_f64(),
            lotsx.outcome.combined.elapsed.as_secs_f64(),
        );
        println!(
            "  {:<4} size {:>7}: overhead {:>5.1}%  (paper: 10-15% RX, <5% others)",
            app.short(),
            size,
            (t / tx - 1.0) * 100.0
        );
    }

    // Access-check accounting from the SOR point (scaled-down analog of
    // the paper's SOR-1024 analysis).
    let sor = points
        .iter()
        .find(|pt| pt.app == App::Sor && pt.p == 4 && pt.system == System::Lots)
        .expect("measured above");
    println!(
        "--- §4.2 SOR check share: {:.2e} checks/process, {:.1}% of execution ---",
        sor.outcome.access_checks / 4,
        (sor.outcome.time_access_check.as_secs_f64() + sor.outcome.time_large_object.as_secs_f64())
            / 4.0
            / sor.outcome.combined.elapsed.as_secs_f64()
            * 100.0
    );
}
