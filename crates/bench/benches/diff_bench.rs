//! Figure 7 bench: diff accumulation (TreadMarks-style) vs the LOTS
//! per-field-timestamp scheme — bytes a fresh acquirer receives after
//! `k` migratory updates of the same object, plus raw diff
//! compute/apply/encode throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lots_core::consistency::locks::LockService;
use lots_core::consistency::SyncCtx;
use lots_core::diff::{DiffRun, WordDiff};
use lots_core::{DiffMode, LockProtocol, ObjectId};
use lots_net::TrafficStats;
use lots_sim::machine::{fast_ethernet, pentium4_2ghz};
use lots_sim::{NodeStats, SimClock};

fn ctx(me: usize) -> SyncCtx {
    SyncCtx {
        me,
        clock: SimClock::new(),
        stats: NodeStats::new(),
        traffic: TrafficStats::new(),
        net: fast_ethernet(),
        cpu: pentium4_2ghz(),
        sched: None,
    }
}

/// Bytes a fresh acquirer receives after `k` releases that each updated
/// the same 64 words of one object (the Figure 7 migratory pattern).
fn grant_bytes(mode: DiffMode, k: usize) -> usize {
    let svc = LockService::new(2, mode, LockProtocol::HomelessWriteUpdate);
    let c0 = ctx(0);
    for round in 0..k {
        svc.acquire(1, &c0);
        svc.release(1, &c0, |_| {
            let diff = WordDiff {
                runs: vec![DiffRun {
                    start: 0,
                    words: vec![round as u32; 64],
                }],
            };
            vec![(ObjectId(0), diff)]
        });
    }
    svc.pending_grant_bytes(1)
}

fn bench_figure7(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure7_grant_bytes");
    for k in [1usize, 4, 16, 64] {
        let acc = grant_bytes(DiffMode::AccumulatedDiffs, k);
        let pf = grant_bytes(DiffMode::PerFieldOnDemand, k);
        eprintln!(
            "  after {k:>2} migratory updates: accumulated {acc:>6} B vs per-field {pf:>4} B \
             ({}x reduction)",
            acc / pf.max(1)
        );
        g.bench_with_input(BenchmarkId::new("accumulated", k), &k, |b, &k| {
            b.iter(|| grant_bytes(DiffMode::AccumulatedDiffs, k))
        });
        g.bench_with_input(BenchmarkId::new("per_field", k), &k, |b, &k| {
            b.iter(|| grant_bytes(DiffMode::PerFieldOnDemand, k))
        });
    }
    g.finish();
}

fn bench_diff_compute(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff_compute");
    for &size in &[4096usize, 65536] {
        let twin = vec![0u8; size];
        // Sparse: 1% of words changed; dense: all words changed.
        let mut sparse = twin.clone();
        for w in (0..size / 4).step_by(100) {
            sparse[w * 4..w * 4 + 4].copy_from_slice(&7u32.to_le_bytes());
        }
        let dense = vec![1u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("sparse", size), &size, |b, _| {
            b.iter(|| WordDiff::compute(&twin, &sparse))
        });
        g.bench_with_input(BenchmarkId::new("dense", size), &size, |b, _| {
            b.iter(|| WordDiff::compute(&twin, &dense))
        });
        let diff = WordDiff::compute(&twin, &sparse);
        g.bench_with_input(BenchmarkId::new("encode_decode", size), &size, |b, _| {
            b.iter(|| WordDiff::decode(&diff.encode()))
        });
        let mut target = twin.clone();
        g.bench_with_input(BenchmarkId::new("apply", size), &size, |b, _| {
            b.iter(|| diff.apply(&mut target))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_figure7, bench_diff_compute
}
criterion_main!(benches);
