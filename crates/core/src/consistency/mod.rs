//! Scope Consistency synchronization services (§3.4).
//!
//! Locks implement the homeless write-update side of the mixed
//! protocol; barriers implement the migrating-home write-invalidate
//! side. Both are *shared cluster services*: the queueing/rendezvous is
//! done with real in-process synchronization while the control-message
//! costs (requests, grants, enter/exit) are charged analytically to the
//! participants' virtual clocks and traffic counters — see DESIGN.md §2.

pub mod barrier;
pub mod locks;

use lots_net::TrafficStats;
use lots_sim::{BlockReason, CpuModel, NetModel, NodeStats, SchedHandle, SimClock};
use parking_lot::{Mutex, MutexGuard};

/// One virtual-time-engine wait step, shared by every sync service
/// (LOTS and JIAJIA barriers and locks): register the calling task in
/// the service's waiter list, hand the execution token back to the
/// scheduler (declaring `reason` so the deadlock detector and the
/// conservative lock-grant gate can classify the wait), and re-acquire
/// the state lock once woken. Callers loop on their rendezvous
/// condition (re-checking poison) around this — wakes are collective,
/// so spurious wakeups are expected.
///
/// The registration happens under the same mutex the waker drains, and
/// wakes delivered between the guard drop and [`SchedHandle::block_with`]
/// are sticky (the block returns immediately), so the step is
/// lost-wakeup-free — under the sequential turnstile *and* under the
/// parallel engine, where the waker may be a concurrent batch member.
pub fn sched_wait_step<'a, T>(
    mutex: &'a Mutex<T>,
    mut guard: MutexGuard<'a, T>,
    waiters: impl FnOnce(&mut T) -> &mut Vec<SchedHandle>,
    h: &SchedHandle,
    reason: BlockReason,
) -> MutexGuard<'a, T> {
    waiters(&mut guard).push(h.clone());
    drop(guard);
    h.block_with(reason);
    mutex.lock()
}

/// Per-node handles the synchronization services need to charge
/// virtual time and traffic.
#[derive(Clone)]
pub struct SyncCtx {
    /// This node's rank.
    pub me: lots_net::NodeId,
    /// The node's virtual clock.
    pub clock: SimClock,
    /// The node's time/counter statistics.
    pub stats: NodeStats,
    /// The node's traffic counters.
    pub traffic: TrafficStats,
    /// Interconnect cost model.
    pub net: NetModel,
    /// CPU cost model.
    pub cpu: CpuModel,
    /// Deterministic mode: the calling (application) task's scheduler
    /// handle. When present, the services park through the turnstile
    /// instead of waiting on condition variables; `None` selects the
    /// free-running condvar path.
    pub sched: Option<SchedHandle>,
}
