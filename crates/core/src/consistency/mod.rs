//! Scope Consistency synchronization services (§3.4).
//!
//! Locks implement the homeless write-update side of the mixed
//! protocol; barriers implement the migrating-home write-invalidate
//! side. Both are *shared cluster services*: the queueing/rendezvous is
//! done with real in-process synchronization while the control-message
//! costs (requests, grants, enter/exit) are charged analytically to the
//! participants' virtual clocks and traffic counters — see DESIGN.md §2.

pub mod barrier;
pub mod locks;

use lots_net::TrafficStats;
use lots_sim::{CpuModel, NetModel, NodeStats, SimClock};

/// Per-node handles the synchronization services need to charge
/// virtual time and traffic.
#[derive(Clone)]
pub struct SyncCtx {
    /// This node's rank.
    pub me: lots_net::NodeId,
    /// The node's virtual clock.
    pub clock: SimClock,
    /// The node's time/counter statistics.
    pub stats: NodeStats,
    /// The node's traffic counters.
    pub traffic: TrafficStats,
    /// Interconnect cost model.
    pub net: NetModel,
    /// CPU cost model.
    pub cpu: CpuModel,
}
