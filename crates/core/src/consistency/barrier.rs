//! Barriers with the migrating-home write-invalidate protocol (§3.4).
//!
//! A barrier runs in two rendezvous:
//!
//! * **Enter/plan** — every node reports its write notices (objects it
//!   wrote this interval, with its consistent view of their homes). The
//!   last arriver builds the plan: an object with a *single* writer
//!   migrates its home to that writer with **no data transfer** (the
//!   migration rides the barrier exit message); an object with multiple
//!   writers keeps its home and every non-home writer must send its
//!   diff to the home.
//! * **Drain/exit** — after the diff sends are acknowledged, nodes
//!   rendezvous again; the last arriver resets the lock-service epoch
//!   (all lock updates are now reflected at homes) and stamps the exit
//!   time. On exit every node applies migrations and invalidates its
//!   copies of written objects it is not home of.
//!
//! Virtual time: the plan time is the max of the modeled enter-message
//! arrivals plus manager processing; the exit time likewise over the
//! drain notifications — so one slow node stalls everyone, as on a real
//! cluster. Control traffic is charged to each participant's counters
//! (manager-side fan-out is folded into the per-node accounting).

use std::collections::BTreeSet;
use std::sync::Arc;

use lots_net::NodeId;
use lots_sim::{BlockReason, SchedHandle, SimDuration, SimInstant, TimeCategory};
use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::object::{NamedAllocReq, ObjectId};
use crate::protocol::messages::ctl;

use super::locks::LockService;
use super::SyncCtx;

/// Per-entry manager processing cost when building/applying plans.
const PLAN_ENTRY_COST: SimDuration = SimDuration(250);

/// The plan the manager (last arriver) computes for one barrier.
#[derive(Debug, Default)]
pub struct BarrierPlan {
    /// Barrier sequence number (1-based).
    pub seq: u64,
    /// Diff-propagation instructions: (writer, object, home).
    pub send_diffs: Vec<(NodeId, ObjectId, NodeId)>,
    /// Every object written this interval with its (possibly migrated)
    /// new home.
    pub written: Vec<(ObjectId, NodeId)>,
    /// Objects freed this interval (union over all nodes, sorted):
    /// every node reclaims them on exit. A freed object is dropped
    /// from `written`/`send_diffs` — its updates die with it.
    pub freed: Vec<ObjectId>,
    /// Named allocations staged this interval, in deterministic commit
    /// order (by staging node, then staging order): every node commits
    /// them on exit, which is what keeps object ids and the replicated
    /// name directory cluster-consistent.
    pub named: Vec<NamedAllocReq>,
    /// Virtual time the plan was ready at the manager.
    pub plan_time: SimInstant,
}

impl BarrierPlan {
    /// The diff sends node `me` is responsible for.
    pub fn my_sends<'a>(&'a self, me: NodeId) -> impl Iterator<Item = (ObjectId, NodeId)> + 'a {
        self.send_diffs
            .iter()
            .filter(move |&&(w, _, _)| w == me)
            .map(|&(_, obj, home)| (obj, home))
    }
}

/// One write notice: object, its diff's wire size, the reporting
/// node's (cluster-consistent) view of the object's home, and whether
/// a first-touch home assignment is still pending.
pub type Notice = (ObjectId, usize, NodeId, bool);

/// The *virtual* last arriver of a rendezvous: lex-max `(arrive, node)`,
/// carrying that node's per-entry handler cost. Manager-side processing
/// is charged at this node's CPU speed — a pure function of virtual
/// time, unlike "whichever thread got here last", which diverges under
/// per-node CPU-slowdown faults once rendezvous arrivals race.
#[derive(Clone, Copy)]
struct LastArriver {
    arrive: SimInstant,
    node: NodeId,
    handler_entry: SimDuration,
}

impl LastArriver {
    const ZERO: LastArriver = LastArriver {
        arrive: SimInstant::ZERO,
        node: 0,
        handler_entry: SimDuration::ZERO,
    };

    fn merge(&mut self, arrive: SimInstant, ctx: &SyncCtx) {
        if (arrive, ctx.me) >= (self.arrive, self.node) {
            *self = LastArriver {
                arrive,
                node: ctx.me,
                handler_entry: ctx.cpu.handler_entry,
            };
        }
    }
}

struct BState {
    seq: u64,
    // Enter/plan rendezvous.
    gen_a: u64,
    count_a: usize,
    enter_max: SimInstant,
    enter_last: LastArriver,
    notices: Vec<(ObjectId, NodeId, usize, NodeId, bool)>, // (obj, writer, diff size, home, pending)
    /// Freed objects reported this round (union; sorted by id).
    frees: BTreeSet<u32>,
    /// Named allocations staged this round, keyed for deterministic
    /// commit order: (staging node, staging index, request).
    named: Vec<(NodeId, usize, NamedAllocReq)>,
    plan: Option<Arc<BarrierPlan>>,
    // Drain/exit rendezvous.
    gen_b: u64,
    count_b: usize,
    drain_max: SimInstant,
    drain_last: LastArriver,
    exit_time: SimInstant,
    // Event-only run-barrier rendezvous (§3.6).
    gen_r: u64,
    count_r: usize,
    run_max: SimInstant,
    run_last: LastArriver,
    run_exit: SimInstant,
    /// Set when a node's app thread panicked: every current and future
    /// waiter must unblock and propagate instead of waiting for a
    /// rendezvous that can never complete.
    poisoned: bool,
    /// Deterministic mode: tasks parked in any of the three rendezvous
    /// (they re-register on every spurious wake, so one shared list
    /// suffices). Drained and woken by whoever completes a rendezvous
    /// or poisons the service.
    sched_waiters: Vec<SchedHandle>,
}

/// Cluster-wide barrier service.
pub struct BarrierService {
    n: usize,
    migration: bool,
    locks: Arc<LockService>,
    state: Mutex<BState>,
    cv: Condvar,
}

impl BarrierService {
    /// A barrier service for `n` nodes; `migration` enables the
    /// migrating-home policy (§3.4).
    pub fn new(n: usize, migration: bool, locks: Arc<LockService>) -> BarrierService {
        BarrierService {
            n,
            migration,
            locks,
            state: Mutex::new(BState {
                seq: 1,
                gen_a: 0,
                count_a: 0,
                enter_max: SimInstant::ZERO,
                enter_last: LastArriver::ZERO,
                notices: Vec::new(),
                frees: BTreeSet::new(),
                named: Vec::new(),
                plan: None,
                gen_b: 0,
                count_b: 0,
                drain_max: SimInstant::ZERO,
                drain_last: LastArriver::ZERO,
                exit_time: SimInstant::ZERO,
                gen_r: 0,
                count_r: 0,
                run_max: SimInstant::ZERO,
                run_last: LastArriver::ZERO,
                run_exit: SimInstant::ZERO,
                poisoned: false,
                sched_waiters: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of nodes this barrier synchronizes.
    pub fn cluster_size(&self) -> usize {
        self.n
    }

    /// Mark the cluster as dead after an app-thread panic and wake all
    /// waiters so they fail loudly instead of hanging at a rendezvous
    /// the panicked node will never reach.
    pub fn poison(&self) {
        let mut st = self.state.lock();
        st.poisoned = true;
        self.cv.notify_all();
        Self::wake_sched(&mut st);
    }

    fn check_poison(st: &BState) {
        if st.poisoned {
            panic!("barrier poisoned: a peer app thread panicked (see its panic above)");
        }
    }

    /// Wake every turnstile-parked waiter (deterministic mode).
    fn wake_sched(st: &mut BState) {
        for w in st.sched_waiters.drain(..) {
            w.wake();
        }
    }

    /// [`super::sched_wait_step`] against this service's state.
    fn sched_wait<'a>(
        &'a self,
        st: MutexGuard<'a, BState>,
        h: &SchedHandle,
    ) -> MutexGuard<'a, BState> {
        super::sched_wait_step(
            &self.state,
            st,
            |s| &mut s.sched_waiters,
            h,
            BlockReason::Barrier,
        )
    }

    /// Rendezvous 1: submit write notices plus this interval's staged
    /// frees and named allocations, receive the plan.
    pub fn enter(
        &self,
        ctx: &SyncCtx,
        notices: Vec<Notice>,
        frees: Vec<ObjectId>,
        named: Vec<NamedAllocReq>,
    ) -> Arc<BarrierPlan> {
        let mut st = self.state.lock();
        Self::check_poison(&st);
        let my_gen = st.gen_a;
        let wait_from = ctx.clock.now();
        let named_bytes: usize = named.iter().map(|r| ctl::WRITE_NOTICE + r.name.len()).sum();
        let enter_bytes = ctl::BARRIER_ENTER
            + notices.len() * ctl::WRITE_NOTICE
            + frees.len() * ctl::PLAN_ENTRY
            + named_bytes;
        ctx.traffic
            .record_send(enter_bytes, ctx.net.fragments(enter_bytes));
        let arrive = ctx.clock.now() + ctx.net.one_way(enter_bytes);
        st.enter_max = st.enter_max.max(arrive);
        st.enter_last.merge(arrive, ctx);
        for (obj, size, home, pending) in notices {
            st.notices.push((obj, ctx.me, size, home, pending));
        }
        st.frees.extend(frees.into_iter().map(|o| o.0));
        for (idx, req) in named.into_iter().enumerate() {
            st.named.push((ctx.me, idx, req));
        }
        st.count_a += 1;
        if st.count_a == self.n {
            let plan = Arc::new(self.build_plan(&mut st));
            st.plan = Some(plan);
            st.count_a = 0;
            st.enter_max = SimInstant::ZERO;
            st.enter_last = LastArriver::ZERO;
            st.notices.clear();
            st.frees.clear();
            st.named.clear();
            st.gen_a += 1;
            self.cv.notify_all();
            Self::wake_sched(&mut st);
        } else if let Some(h) = ctx.sched.clone() {
            while st.gen_a == my_gen {
                st = self.sched_wait(st, &h);
                Self::check_poison(&st);
            }
        } else {
            while st.gen_a == my_gen {
                self.cv.wait(&mut st);
                Self::check_poison(&st);
            }
        }
        let plan = Arc::clone(st.plan.as_ref().expect("plan built by last arriver"));
        drop(st);
        let plan_named_bytes: usize = plan
            .named
            .iter()
            .map(|r| ctl::WRITE_NOTICE + r.name.len())
            .sum();
        let plan_bytes = ctl::BARRIER_PLAN
            + (plan.written.len() + plan.freed.len()) * ctl::PLAN_ENTRY
            + plan_named_bytes;
        ctx.traffic.record_recv(plan_bytes);
        let now = ctx
            .clock
            .advance_to(plan.plan_time + ctx.net.one_way(plan_bytes));
        ctx.stats
            .charge(TimeCategory::SyncWait, now.saturating_sub(wait_from));
        plan
    }

    fn build_plan(&self, st: &mut BState) -> BarrierPlan {
        // Group notices by object. A freed object is dropped first: the
        // free wins over concurrent writes, so no diff is ever
        // scheduled (or computed, §3.4 benefit 1) for it.
        let mut by_obj: std::collections::BTreeMap<u32, (NodeId, bool, Vec<NodeId>)> =
            std::collections::BTreeMap::new();
        for &(obj, writer, _size, home, pending) in &st.notices {
            if st.frees.contains(&obj.0) {
                continue;
            }
            let entry = by_obj.entry(obj.0).or_insert((home, pending, Vec::new()));
            debug_assert_eq!(
                (entry.0, entry.1),
                (home, pending),
                "inconsistent home views for {obj}"
            );
            entry.2.push(writer);
        }
        let mut send_diffs = Vec::new();
        let mut written = Vec::new();
        for (obj, (home, pending, writers)) in by_obj {
            let obj = ObjectId(obj);
            // First-touch placement: the first write barrier assigns
            // the home — the single writer, or the lowest-ranked of
            // several (the provisional round-robin home never served,
            // since every copy was the valid zero-fill until now).
            let home = if pending {
                *writers.iter().min().expect("noticed objects have writers")
            } else {
                home
            };
            if writers.len() == 1 {
                let w = writers[0];
                if self.migration || pending {
                    // Single writer: migrate the home to it; the data
                    // is already there, zero transfer (§3.4 benefit 1).
                    written.push((obj, w));
                } else {
                    // Ablation: fixed home — the writer must push its
                    // diff home like any other.
                    if w != home {
                        send_diffs.push((w, obj, home));
                    }
                    written.push((obj, home));
                }
            } else {
                // Multiple writers: updates are gathered at the home
                // (§3.4 benefit 2: no scattering).
                for &w in &writers {
                    if w != home {
                        send_diffs.push((w, obj, home));
                    }
                }
                written.push((obj, home));
            }
        }
        let freed: Vec<ObjectId> = st.frees.iter().map(|&o| ObjectId(o)).collect();
        // Commit order: by staging node, then staging order — a pure
        // function of the interval's calls, independent of rendezvous
        // arrival order, so faulted runs replay identically.
        let mut named_keyed = std::mem::take(&mut st.named);
        named_keyed.sort_by_key(|k| (k.0, k.1));
        let named: Vec<NamedAllocReq> = named_keyed.into_iter().map(|(_, _, r)| r).collect();
        // Manager processing charged at the virtual last arriver's CPU
        // speed (not whichever thread physically completed the
        // rendezvous — that races under the parallel engine).
        let processing = SimDuration(st.enter_last.handler_entry.0 * self.n as u64)
            + SimDuration(PLAN_ENTRY_COST.0 * (written.len() + freed.len() + named.len()) as u64);
        BarrierPlan {
            seq: st.seq,
            send_diffs,
            written,
            freed,
            named,
            plan_time: st.enter_max + processing,
        }
    }

    /// Rendezvous 2: all diff sends acknowledged; wait for the cluster,
    /// reset the lock epoch, and return the exit time (already merged
    /// into the caller's clock).
    pub fn drain(&self, ctx: &SyncCtx) -> u64 {
        let mut st = self.state.lock();
        Self::check_poison(&st);
        let my_gen = st.gen_b;
        let wait_from = ctx.clock.now();
        ctx.traffic.record_send(ctl::BARRIER_DONE, 1);
        let arrive = ctx.clock.now() + ctx.net.one_way(ctl::BARRIER_DONE);
        st.drain_max = st.drain_max.max(arrive);
        st.drain_last.merge(arrive, ctx);
        st.count_b += 1;
        let seq = st.seq;
        if st.count_b == self.n {
            // Every node is blocked here: lock logs can be reset safely
            // (all lock-era updates are now reflected at the homes via
            // the writers' interval diffs).
            self.locks.reset_epoch(seq);
            st.exit_time =
                st.drain_max + SimDuration(st.drain_last.handler_entry.0 * self.n as u64);
            st.seq += 1;
            st.count_b = 0;
            st.drain_max = SimInstant::ZERO;
            st.drain_last = LastArriver::ZERO;
            st.gen_b += 1;
            self.cv.notify_all();
            Self::wake_sched(&mut st);
        } else if let Some(h) = ctx.sched.clone() {
            while st.gen_b == my_gen {
                st = self.sched_wait(st, &h);
                Self::check_poison(&st);
            }
        } else {
            while st.gen_b == my_gen {
                self.cv.wait(&mut st);
                Self::check_poison(&st);
            }
        }
        let exit = st.exit_time;
        drop(st);
        ctx.traffic.record_recv(ctl::BARRIER_EXIT);
        let now = ctx
            .clock
            .advance_to(exit + ctx.net.one_way(ctl::BARRIER_EXIT));
        ctx.stats
            .charge(TimeCategory::SyncWait, now.saturating_sub(wait_from));
        seq
    }

    /// The event-only `run_barrier()` of §3.6: synchronizes execution
    /// without any memory consistency actions.
    pub fn run_barrier(&self, ctx: &SyncCtx) {
        let mut st = self.state.lock();
        Self::check_poison(&st);
        let my_gen = st.gen_r;
        let wait_from = ctx.clock.now();
        ctx.traffic.record_send(ctl::BARRIER_ENTER, 1);
        let arrive = ctx.clock.now() + ctx.net.one_way(ctl::BARRIER_ENTER);
        st.run_max = st.run_max.max(arrive);
        st.run_last.merge(arrive, ctx);
        st.count_r += 1;
        if st.count_r == self.n {
            st.run_exit = st.run_max + SimDuration(st.run_last.handler_entry.0 * self.n as u64);
            st.count_r = 0;
            st.run_max = SimInstant::ZERO;
            st.run_last = LastArriver::ZERO;
            st.gen_r += 1;
            self.cv.notify_all();
            Self::wake_sched(&mut st);
        } else if let Some(h) = ctx.sched.clone() {
            while st.gen_r == my_gen {
                st = self.sched_wait(st, &h);
                Self::check_poison(&st);
            }
        } else {
            while st.gen_r == my_gen {
                self.cv.wait(&mut st);
                Self::check_poison(&st);
            }
        }
        let exit = st.run_exit;
        drop(st);
        ctx.traffic.record_recv(ctl::BARRIER_EXIT);
        let now = ctx
            .clock
            .advance_to(exit + ctx.net.one_way(ctl::BARRIER_EXIT));
        ctx.stats
            .charge(TimeCategory::SyncWait, now.saturating_sub(wait_from));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DiffMode, LockProtocol};
    use lots_net::TrafficStats;
    use lots_sim::machine::{fast_ethernet, pentium4_2ghz};
    use lots_sim::{NodeStats, SimClock};

    fn ctx(me: NodeId) -> SyncCtx {
        SyncCtx {
            me,
            clock: SimClock::new(),
            stats: NodeStats::new(),
            traffic: TrafficStats::new(),
            net: fast_ethernet(),
            cpu: pentium4_2ghz(),
            sched: None,
        }
    }

    fn service(n: usize, migration: bool) -> Arc<BarrierService> {
        let locks = Arc::new(LockService::new(
            n,
            DiffMode::PerFieldOnDemand,
            LockProtocol::HomelessWriteUpdate,
        ));
        Arc::new(BarrierService::new(n, migration, locks))
    }

    /// Run one barrier round across threads; returns each node's plan.
    fn round(
        svc: &Arc<BarrierService>,
        notices: Vec<Vec<Notice>>,
    ) -> Vec<(Arc<BarrierPlan>, SimInstant)> {
        round_lifecycle(
            svc,
            notices.into_iter().map(|n| (n, vec![], vec![])).collect(),
        )
    }

    /// Like [`round`], with per-node staged frees and named allocs.
    fn round_lifecycle(
        svc: &Arc<BarrierService>,
        inputs: Vec<(Vec<Notice>, Vec<ObjectId>, Vec<NamedAllocReq>)>,
    ) -> Vec<(Arc<BarrierPlan>, SimInstant)> {
        let mut handles = Vec::new();
        for (me, (n, frees, named)) in inputs.into_iter().enumerate() {
            let svc = Arc::clone(svc);
            handles.push(std::thread::spawn(move || {
                let c = ctx(me);
                let plan = svc.enter(&c, n, frees, named);
                svc.drain(&c);
                (plan, c.clock.now())
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn single_writer_migrates_home_without_data() {
        let svc = service(3, true);
        let results = round(
            &svc,
            vec![
                vec![(ObjectId(7), 40, 0, false)], // node 0 wrote obj7 (home 0)... home=0
                vec![],
                vec![],
            ],
        );
        let plan = &results[0].0;
        assert!(plan.send_diffs.is_empty(), "no data transfer on migration");
        assert_eq!(plan.written, vec![(ObjectId(7), 0)]);
        // Writer elsewhere migrates home to the writer.
        let results = round(
            &svc,
            vec![vec![], vec![(ObjectId(7), 40, 0, false)], vec![]],
        );
        let plan = &results[0].0;
        assert!(plan.send_diffs.is_empty());
        assert_eq!(plan.written, vec![(ObjectId(7), 1)]);
    }

    #[test]
    fn fixed_home_mode_sends_diff_home() {
        let svc = service(2, false);
        let results = round(&svc, vec![vec![], vec![(ObjectId(3), 16, 0, false)]]);
        let plan = &results[0].0;
        assert_eq!(plan.send_diffs, vec![(1, ObjectId(3), 0)]);
        assert_eq!(plan.written, vec![(ObjectId(3), 0)]);
    }

    #[test]
    fn multi_writer_keeps_home_and_gathers_diffs() {
        let svc = service(3, true);
        let results = round(
            &svc,
            vec![
                vec![(ObjectId(5), 8, 1, false)],
                vec![(ObjectId(5), 8, 1, false)],
                vec![(ObjectId(5), 8, 1, false)],
            ],
        );
        let plan = &results[0].0;
        assert_eq!(plan.written, vec![(ObjectId(5), 1)]);
        // Writers 0 and 2 send to home 1; home itself does not.
        let mut senders: Vec<NodeId> = plan.send_diffs.iter().map(|&(w, _, _)| w).collect();
        senders.sort_unstable();
        assert_eq!(senders, vec![0, 2]);
        assert!(plan.my_sends(1).next().is_none());
        assert_eq!(plan.my_sends(0).collect::<Vec<_>>(), vec![(ObjectId(5), 1)]);
    }

    #[test]
    fn freed_objects_drop_out_of_the_plan_and_union() {
        let svc = service(3, true);
        // Node 0 and node 1 both write obj 4; node 2 frees it (and obj
        // 9, which nobody wrote). Node 1 also frees obj 4 — the union
        // dedups.
        let results = round_lifecycle(
            &svc,
            vec![
                (vec![(ObjectId(4), 8, 1, false)], vec![], vec![]),
                (vec![(ObjectId(4), 8, 1, false)], vec![ObjectId(4)], vec![]),
                (vec![], vec![ObjectId(4), ObjectId(9)], vec![]),
            ],
        );
        let plan = &results[0].0;
        assert!(plan.written.is_empty(), "free wins over concurrent writes");
        assert!(plan.send_diffs.is_empty(), "no diffs for dead objects");
        assert_eq!(plan.freed, vec![ObjectId(4), ObjectId(9)]);
    }

    #[test]
    fn named_commits_order_by_node_then_stage_order() {
        let svc = service(2, true);
        let req = |name: &str| NamedAllocReq {
            name: name.into(),
            bytes: 64,
            elem_size: 4,
            len: 16,
            placement: crate::config::Placement::RoundRobin,
            placement_explicit: false,
        };
        let results = round_lifecycle(
            &svc,
            vec![
                (vec![], vec![], vec![req("n0-a"), req("n0-b")]),
                (vec![], vec![], vec![req("n1-a")]),
            ],
        );
        for (plan, _) in &results {
            let names: Vec<&str> = plan.named.iter().map(|r| r.name.as_str()).collect();
            assert_eq!(names, vec!["n0-a", "n0-b", "n1-a"]);
        }
    }

    #[test]
    fn first_touch_pending_home_goes_to_lowest_writer() {
        // Multi-writer pending object: home = lowest-ranked writer.
        let svc = service(3, true);
        let results = round(
            &svc,
            vec![
                vec![],
                vec![(ObjectId(2), 8, 2, true)],
                vec![(ObjectId(2), 8, 2, true)],
            ],
        );
        let plan = &results[0].0;
        assert_eq!(plan.written, vec![(ObjectId(2), 1)]);
        assert_eq!(plan.send_diffs, vec![(2, ObjectId(2), 1)]);
        // Single pending writer becomes home even without migration.
        let svc = service(3, false);
        let results = round(&svc, vec![vec![], vec![], vec![(ObjectId(7), 8, 1, true)]]);
        let plan = &results[0].0;
        assert_eq!(plan.written, vec![(ObjectId(7), 2)]);
        assert!(plan.send_diffs.is_empty());
    }

    #[test]
    fn exit_time_dominated_by_slowest_node() {
        let svc = service(2, true);
        let mut handles = Vec::new();
        for me in 0..2 {
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                let c = ctx(me);
                if me == 1 {
                    c.clock.advance(SimDuration::from_millis(30)); // slow worker
                }
                svc.enter(&c, vec![], vec![], vec![]);
                svc.drain(&c);
                c.clock.now()
            }));
        }
        let times: Vec<SimInstant> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for t in &times {
            assert!(t.nanos() >= 30_000_000, "exit before slowest entered: {t}");
        }
        // Exits are identical up to the (identical) exit message cost.
        assert_eq!(times[0], times[1]);
    }

    #[test]
    fn barrier_reusable_across_rounds_with_increasing_seq() {
        let svc = service(2, true);
        for expected_seq in 1..=3u64 {
            let mut handles = Vec::new();
            for me in 0..2 {
                let svc = Arc::clone(&svc);
                handles.push(std::thread::spawn(move || {
                    let c = ctx(me);
                    let plan = svc.enter(&c, vec![], vec![], vec![]);
                    let seq = svc.drain(&c);
                    (plan.seq, seq)
                }));
            }
            for h in handles {
                let (pseq, dseq) = h.join().unwrap();
                assert_eq!(pseq, expected_seq);
                assert_eq!(dseq, expected_seq);
            }
        }
    }

    #[test]
    fn run_barrier_synchronizes_clocks_only() {
        let svc = service(3, true);
        let mut handles = Vec::new();
        for me in 0..3 {
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                let c = ctx(me);
                c.clock.advance(SimDuration::from_micros(me as u64 * 500));
                svc.run_barrier(&c);
                c.clock.now()
            }));
        }
        let times: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(times[0], times[1]);
        assert_eq!(times[1], times[2]);
        assert!(times[0].nanos() >= 1_000_000);
    }
}
