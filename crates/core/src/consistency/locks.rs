//! Distributed locks with the homeless write-update protocol (§3.4)
//! and the per-field-timestamp diff engine that eliminates diff
//! accumulation (§3.5, Figure 7).
//!
//! Each lock has a manager node (`lock % n`, as in JIAJIA). The manager
//! keeps, per lock, either:
//!
//! * **Per-field mode** (LOTS): for every object updated under the
//!   lock, a map `word → (timestamp, value)`. A grant sends exactly the
//!   words newer than the requester's last-seen timestamp — the
//!   on-demand diff of Figure 7b; nothing is ever re-sent.
//! * **Accumulated mode** (TreadMarks-style, the Figure 7a baseline):
//!   the list of whole release diffs by timestamp. A grant re-sends
//!   every diff newer than the requester's timestamp, including words
//!   that later diffs overwrite — the *diff accumulation* overhead.
//!
//! Both modes deliver updates as `(object, [(word, ts, value)])`, so
//! application at the acquirer is identical; only the wire bytes (and
//! hence virtual network time) differ.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lots_net::NodeId;
use lots_sim::{BlockReason, SchedHandle, SimDuration, SimInstant, TimeCategory};
use parking_lot::{Condvar, Mutex};

use crate::config::{DiffMode, LockProtocol};
use crate::diff::WordDiff;
use crate::object::ObjectId;
use crate::protocol::messages::ctl;

use super::SyncCtx;

/// Application-visible lock identifier.
pub type LockId = u32;

/// One granted word update: (word index, release timestamp, value).
pub type WordUpdate = (u32, u64, u32);

/// Updates delivered with a grant, ready for
/// [`NodeState::apply_lock_updates`].
///
/// [`NodeState::apply_lock_updates`]: crate::node::NodeState::apply_lock_updates
pub type GrantUpdates = Vec<(ObjectId, Vec<WordUpdate>)>;

/// What a grant tells the acquirer to do (write-update mode carries
/// updates; write-invalidate mode carries invalidations + fetch hints).
#[derive(Debug, Default)]
pub struct Grant {
    /// Word updates to apply at acquire (write-update mode).
    pub updates: GrantUpdates,
    /// Objects to invalidate and the node holding the freshest copy
    /// (write-invalidate ablation mode only).
    pub invalidate: Vec<(ObjectId, NodeId)>,
    /// Wire bytes the grant payload occupied (drives the Fig. 7 bench).
    pub payload_bytes: usize,
}

struct LockState {
    ts: u64,
    holder: Option<NodeId>,
    /// Waiters ordered by the *virtual arrival* of their acquire
    /// request at the manager, `(req_arrive, node)` — not by physical
    /// FIFO. This makes the grant order a pure function of virtual
    /// time, so the parallel engine grants in exactly the order the
    /// sequential oracle does regardless of host thread timing.
    waiters: BTreeSet<(u64, NodeId)>,
    release_time: SimInstant,
    /// Per-field mode: obj → word → (ts, value). `BTreeMap`s so the
    /// grant payload is (obj, word)-ordered by construction —
    /// iteration order here reaches the wire.
    per_field: BTreeMap<u32, BTreeMap<u32, (u64, u32)>>,
    /// Accumulated mode: (release ts, obj, whole diff).
    accumulated: Vec<(u64, u32, WordDiff)>,
    /// obj → (last update ts, last writer); ordered like `per_field`.
    obj_meta: BTreeMap<u32, (u64, NodeId)>,
    /// Per node: highest release ts already delivered.
    seen: Vec<u64>,
    /// Epoch marker: barrier seq at which this lock was last reset.
    epoch: u64,
    /// Deterministic mode: tasks parked waiting for this lock
    /// (re-registered on every wake; woken by release/poison).
    sched_waiters: Vec<SchedHandle>,
}

struct LockEntry {
    state: Mutex<LockState>,
    cv: Condvar,
}

/// The cluster-wide lock service.
pub struct LockService {
    n: usize,
    diff_mode: DiffMode,
    protocol: LockProtocol,
    locks: Mutex<BTreeMap<LockId, Arc<LockEntry>>>,
    /// Set when a node's app thread panicked; waiters unblock and
    /// propagate instead of waiting on a holder that will never release.
    poisoned: AtomicBool,
}

impl LockService {
    /// A lock service for `n` nodes under the given diff and protocol
    /// modes.
    pub fn new(n: usize, diff_mode: DiffMode, protocol: LockProtocol) -> LockService {
        LockService {
            n,
            diff_mode,
            protocol,
            locks: Mutex::new(BTreeMap::new()),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Mark the cluster as dead after an app-thread panic and wake all
    /// lock waiters so they fail loudly instead of hanging.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        let locks = self.locks.lock();
        for entry in locks.values() {
            // Hold the entry mutex while notifying: a waiter that has
            // already checked the flag but not yet parked would
            // otherwise miss this wake-up and sleep forever.
            let mut st = entry.state.lock();
            entry.cv.notify_all();
            for w in st.sched_waiters.drain(..) {
                w.wake();
            }
        }
    }

    fn check_poison(&self) {
        if self.poisoned.load(Ordering::Acquire) {
            panic!("lock service poisoned: a peer app thread panicked (see its panic above)");
        }
    }

    /// The manager node of a lock (static distribution, as in JIAJIA).
    pub fn manager_of(&self, lock: LockId) -> NodeId {
        lock as usize % self.n
    }

    fn entry(&self, lock: LockId) -> Arc<LockEntry> {
        let mut locks = self.locks.lock();
        Arc::clone(locks.entry(lock).or_insert_with(|| {
            Arc::new(LockEntry {
                state: Mutex::new(LockState {
                    ts: 0,
                    holder: None,
                    waiters: BTreeSet::new(),
                    release_time: SimInstant::ZERO,
                    per_field: BTreeMap::new(),
                    accumulated: Vec::new(),
                    obj_meta: BTreeMap::new(),
                    seen: vec![0; self.n],
                    epoch: 0,
                    sched_waiters: Vec::new(),
                }),
                cv: Condvar::new(),
            })
        }))
    }

    /// Acquire `lock` for `ctx.me`: blocks until granted in virtual
    /// request-arrival order, then returns the grant with its virtual
    /// arrival already merged into the caller's clock.
    ///
    /// Under the virtual-time engine the wait has two stages. While
    /// the lock is held or earlier-keyed requests are queued ahead,
    /// the task waits in the service's waiter list (reason
    /// `LockQueue`), re-woken by each release. Once it is the front
    /// waiter of a free lock it parks on the engine's conservative
    /// grant gate ([`SchedHandle::block_gated`]), which resumes it
    /// only when no other task could still issue a request sorting
    /// ahead of its `(req_arrive, node)` key — that is what makes the
    /// grant order independent of host thread timing. The gate bounds
    /// competing *requests*, not the previous holder's release, so the
    /// grant condition is re-checked after promotion.
    pub fn acquire(&self, lock: LockId, ctx: &SyncCtx) -> Grant {
        let entry = self.entry(lock);
        let mut st = entry.state.lock();
        // Virtual: the acquire request reaches the manager.
        let req_arrive = ctx.clock.now() + ctx.net.one_way(ctl::LOCK_ACQ);
        ctx.traffic.record_send(ctl::LOCK_ACQ, 1);
        let wait_from = ctx.clock.now();
        self.check_poison();
        let key = (req_arrive.nanos(), ctx.me);
        st.waiters.insert(key);
        if let Some(h) = ctx.sched.clone() {
            loop {
                if st.holder.is_none() && st.waiters.first() == Some(&key) {
                    drop(st);
                    h.block_gated(req_arrive, ctx.me);
                    st = entry.state.lock();
                    self.check_poison();
                    if st.holder.is_none() && st.waiters.first() == Some(&key) {
                        break;
                    }
                } else {
                    st = super::sched_wait_step(
                        &entry.state,
                        st,
                        |s| &mut s.sched_waiters,
                        &h,
                        BlockReason::LockQueue {
                            at: req_arrive.nanos(),
                            rank: ctx.me,
                        },
                    );
                    self.check_poison();
                }
            }
        } else {
            while st.holder.is_some() || st.waiters.first() != Some(&key) {
                entry.cv.wait(&mut st);
                self.check_poison();
            }
        }
        st.waiters.remove(&key);
        st.holder = Some(ctx.me);
        // Virtual: grant issued when both the request has arrived and
        // the previous holder has released.
        let grant_issued = req_arrive.max(st.release_time) + ctx.cpu.handler_entry;
        let grant = self.build_grant(&mut st, ctx.me);
        st.seen[ctx.me] = st.ts;
        let grant_bytes = ctl::LOCK_GRANT + grant.payload_bytes;
        let arrival = grant_issued + ctx.net.one_way(grant_bytes);
        ctx.traffic.record_recv(grant_bytes);
        drop(st);
        let now = ctx.clock.advance_to(arrival);
        ctx.stats
            .charge(TimeCategory::SyncWait, now.saturating_sub(wait_from));
        grant
    }

    fn build_grant(&self, st: &mut LockState, me: NodeId) -> Grant {
        let seen = st.seen[me];
        match self.protocol {
            LockProtocol::WriteInvalidate => {
                // obj_meta is a BTreeMap: the list comes out
                // object-ordered, no defensive sort needed.
                let mut invalidate = Vec::new();
                for (&obj, &(ts, writer)) in &st.obj_meta {
                    if ts > seen && writer != me {
                        invalidate.push((ObjectId(obj), writer));
                    }
                }
                let payload = invalidate.len() * 8;
                Grant {
                    updates: Vec::new(),
                    invalidate,
                    payload_bytes: payload,
                }
            }
            LockProtocol::HomelessWriteUpdate => match self.diff_mode {
                DiffMode::PerFieldOnDemand => {
                    // Fig. 7b: on-demand diff — only words newer than
                    // the requester's timestamp.
                    // per_field's BTreeMaps iterate (obj, word)-ordered,
                    // so the update list is sorted by construction.
                    let mut updates: GrantUpdates = Vec::new();
                    let mut payload = 0usize;
                    for (&obj, words) in &st.per_field {
                        let fresh: Vec<(u32, u64, u32)> = words
                            .iter()
                            .filter(|&(_, &(ts, _))| ts > seen)
                            .map(|(&w, &(ts, v))| (w, ts, v))
                            .collect();
                        if fresh.is_empty() {
                            continue;
                        }
                        payload += 8 + fresh.len() * 8; // obj hdr + (word,val)
                        updates.push((ObjectId(obj), fresh));
                    }
                    Grant {
                        updates,
                        invalidate: Vec::new(),
                        payload_bytes: payload,
                    }
                }
                DiffMode::AccumulatedDiffs => {
                    // Fig. 7a: replay every stored diff newer than the
                    // requester's timestamp, redundancy included.
                    let mut updates: GrantUpdates = Vec::new();
                    let mut payload = 0usize;
                    for (ts, obj, diff) in &st.accumulated {
                        if *ts <= seen {
                            continue;
                        }
                        payload += 8 + diff.wire_size();
                        let words: Vec<(u32, u64, u32)> =
                            diff.iter_words().map(|(w, v)| (w, *ts, v)).collect();
                        updates.push((ObjectId(*obj), words));
                    }
                    Grant {
                        updates,
                        invalidate: Vec::new(),
                        payload_bytes: payload,
                    }
                }
            },
        }
    }

    /// Release `lock`, merging the critical section's updates into the
    /// manager's log. `make_updates` is called with the release
    /// timestamp and must return the CS diffs (from
    /// [`NodeState::exit_cs`]).
    ///
    /// [`NodeState::exit_cs`]: crate::node::NodeState::exit_cs
    pub fn release(
        &self,
        lock: LockId,
        ctx: &SyncCtx,
        make_updates: impl FnOnce(u64) -> Vec<(ObjectId, WordDiff)>,
    ) {
        let entry = self.entry(lock);
        let mut st = entry.state.lock();
        assert_eq!(st.holder, Some(ctx.me), "releasing a lock not held");
        let ts = st.ts + 1;
        st.ts = ts;
        let updates = make_updates(ts);
        let mut payload = 0usize;
        for (obj, diff) in updates {
            payload += 8 + diff.wire_size();
            st.obj_meta.insert(obj.0, (ts, ctx.me));
            match self.diff_mode {
                DiffMode::PerFieldOnDemand => {
                    let words = st.per_field.entry(obj.0).or_default();
                    for (w, v) in diff.iter_words() {
                        words.insert(w, (ts, v));
                    }
                }
                DiffMode::AccumulatedDiffs => {
                    st.accumulated.push((ts, obj.0, diff));
                }
            }
        }
        // Virtual: the release message (with updates) reaches the
        // manager; the next grant chains after it.
        let rel_bytes = ctl::LOCK_REL + payload;
        ctx.traffic
            .record_send(rel_bytes, ctx.net.fragments(rel_bytes));
        let arrive = ctx.clock.now() + ctx.net.one_way(rel_bytes);
        st.release_time = st.release_time.max(arrive) + ctx.cpu.handler_entry;
        st.holder = None;
        entry.cv.notify_all();
        for w in st.sched_waiters.drain(..) {
            w.wake();
        }
        // Sender-side cost of pushing the release out.
        ctx.clock.advance(SimDuration(ctx.net.per_fragment.0));
    }

    /// Barrier-epoch reset (§3.4): after a barrier every update has
    /// been propagated to homes, so lock logs are cleared and per-node
    /// timestamps rewound. Idempotent per barrier `seq`; called by the
    /// last node to arrive at the barrier drain while all others are
    /// still blocked.
    pub fn reset_epoch(&self, seq: u64) {
        let locks = self.locks.lock();
        for entry in locks.values() {
            let mut st = entry.state.lock();
            if st.epoch >= seq {
                continue;
            }
            st.epoch = seq;
            st.ts = 0;
            st.per_field.clear();
            st.accumulated.clear();
            st.obj_meta.clear();
            st.seen.iter_mut().for_each(|s| *s = 0);
        }
    }

    /// Bytes a grant to a fresh node (seen = 0) would carry right now —
    /// diagnostic used by the Figure 7 experiments.
    pub fn pending_grant_bytes(&self, lock: LockId) -> usize {
        let entry = self.entry(lock);
        let mut st = entry.state.lock();
        // Temporarily treat an imaginary node with seen=0.
        let saved = st.seen[0];
        st.seen[0] = 0;
        let g = self.build_grant(&mut st, 0);
        st.seen[0] = saved;
        g.payload_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lots_net::TrafficStats;
    use lots_sim::machine::{fast_ethernet, pentium4_2ghz};
    use lots_sim::{NodeStats, SimClock};

    fn ctx(me: NodeId) -> SyncCtx {
        SyncCtx {
            me,
            clock: SimClock::new(),
            stats: NodeStats::new(),
            traffic: TrafficStats::new(),
            net: fast_ethernet(),
            cpu: pentium4_2ghz(),
            sched: None,
        }
    }

    fn diff_of(words: &[(u32, u32)]) -> WordDiff {
        let mut d = WordDiff::default();
        for &(w, v) in words {
            d.runs.push(crate::diff::DiffRun {
                start: w,
                words: vec![v],
            });
        }
        d
    }

    #[test]
    fn uncontended_acquire_grants_immediately() {
        let svc = LockService::new(
            2,
            DiffMode::PerFieldOnDemand,
            LockProtocol::HomelessWriteUpdate,
        );
        let c = ctx(0);
        let g = svc.acquire(1, &c);
        assert!(g.updates.is_empty());
        assert!(c.clock.now().nanos() > 0, "RTT charged");
        svc.release(1, &c, |_| vec![]);
    }

    #[test]
    fn updates_flow_to_next_acquirer() {
        let svc = LockService::new(
            2,
            DiffMode::PerFieldOnDemand,
            LockProtocol::HomelessWriteUpdate,
        );
        let c0 = ctx(0);
        let c1 = ctx(1);
        svc.acquire(9, &c0);
        svc.release(9, &c0, |ts| {
            assert_eq!(ts, 1);
            vec![(ObjectId(4), diff_of(&[(0, 10), (1, 20)]))]
        });
        let g = svc.acquire(9, &c1);
        assert_eq!(g.updates.len(), 1);
        assert_eq!(g.updates[0].0, ObjectId(4));
        let mut words = g.updates[0].1.clone();
        words.sort_unstable_by_key(|&(w, _, _)| w);
        assert_eq!(words, vec![(0, 1, 10), (1, 1, 20)]);
        svc.release(9, &c1, |_| vec![]);
    }

    #[test]
    fn no_redundant_resend_in_per_field_mode() {
        let svc = LockService::new(
            2,
            DiffMode::PerFieldOnDemand,
            LockProtocol::HomelessWriteUpdate,
        );
        let c0 = ctx(0);
        let c1 = ctx(1);
        svc.acquire(1, &c0);
        svc.release(1, &c0, |_| vec![(ObjectId(0), diff_of(&[(0, 1)]))]);
        let g1 = svc.acquire(1, &c1);
        assert_eq!(g1.updates.len(), 1);
        svc.release(1, &c1, |_| vec![]);
        // Node 1 acquires again without intervening updates: nothing new.
        let g2 = svc.acquire(1, &c1);
        assert!(g2.updates.is_empty());
        assert_eq!(g2.payload_bytes, 0);
        svc.release(1, &c1, |_| vec![]);
    }

    #[test]
    fn accumulated_mode_resends_overlapping_diffs() {
        // Figure 7: the same field updated at ts1..ts3; a fresh
        // acquirer receives all three copies in accumulated mode but
        // exactly one (the latest) in per-field mode.
        let mk = |mode| LockService::new(3, mode, LockProtocol::HomelessWriteUpdate);
        for (mode, expected_copies) in [
            (DiffMode::AccumulatedDiffs, 3),
            (DiffMode::PerFieldOnDemand, 1),
        ] {
            let svc = mk(mode);
            let c0 = ctx(0);
            for v in [1u32, 2, 3] {
                svc.acquire(5, &c0);
                svc.release(5, &c0, |_| vec![(ObjectId(8), diff_of(&[(0, v)]))]);
            }
            let c2 = ctx(2);
            let g = svc.acquire(5, &c2);
            let copies: usize = g.updates.iter().map(|(_, w)| w.len()).sum();
            assert_eq!(copies, expected_copies, "mode {mode:?}");
            // Either way the final value must win.
            let last = g
                .updates
                .iter()
                .flat_map(|(_, ws)| ws.iter())
                .max_by_key(|&&(_, ts, _)| ts)
                .copied()
                .unwrap();
            assert_eq!(last.2, 3);
            svc.release(5, &c2, |_| vec![]);
        }
    }

    #[test]
    fn write_invalidate_mode_sends_invalidations() {
        let svc = LockService::new(2, DiffMode::PerFieldOnDemand, LockProtocol::WriteInvalidate);
        let c0 = ctx(0);
        let c1 = ctx(1);
        svc.acquire(1, &c0);
        svc.release(1, &c0, |_| vec![(ObjectId(3), diff_of(&[(0, 1)]))]);
        let g = svc.acquire(1, &c1);
        assert!(g.updates.is_empty());
        assert_eq!(g.invalidate, vec![(ObjectId(3), 0)]);
        svc.release(1, &c1, |_| vec![]);
    }

    #[test]
    fn fifo_mutual_exclusion_under_contention() {
        let svc = Arc::new(LockService::new(
            4,
            DiffMode::PerFieldOnDemand,
            LockProtocol::HomelessWriteUpdate,
        ));
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for me in 0..4 {
            let svc = Arc::clone(&svc);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let c = ctx(me);
                for _ in 0..200 {
                    svc.acquire(0, &c);
                    {
                        let mut g = counter.lock();
                        *g += 1;
                    }
                    svc.release(0, &c, |_| vec![]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 800);
    }

    #[test]
    fn virtual_time_chains_through_releases() {
        let svc = LockService::new(
            2,
            DiffMode::PerFieldOnDemand,
            LockProtocol::HomelessWriteUpdate,
        );
        let c0 = ctx(0);
        svc.acquire(1, &c0);
        c0.clock.advance(SimDuration::from_millis(50)); // long CS
        svc.release(1, &c0, |_| vec![]);
        let c1 = ctx(1);
        let g = svc.acquire(1, &c1);
        drop(g);
        // Node 1's grant cannot precede node 0's release.
        assert!(c1.clock.now().nanos() >= 50_000_000, "{}", c1.clock.now());
        svc.release(1, &c1, |_| vec![]);
    }

    #[test]
    fn reset_epoch_clears_logs_idempotently() {
        let svc = LockService::new(
            2,
            DiffMode::PerFieldOnDemand,
            LockProtocol::HomelessWriteUpdate,
        );
        let c0 = ctx(0);
        svc.acquire(1, &c0);
        svc.release(1, &c0, |_| vec![(ObjectId(0), diff_of(&[(0, 1)]))]);
        assert!(svc.pending_grant_bytes(1) > 0);
        svc.reset_epoch(1);
        svc.reset_epoch(1); // idempotent
        assert_eq!(svc.pending_grant_bytes(1), 0);
        // Fresh acquire after reset sees nothing.
        let g = svc.acquire(1, &c0);
        assert!(g.updates.is_empty());
        svc.release(1, &c0, |_| vec![]);
    }

    #[test]
    fn manager_assignment_round_robin() {
        let svc = LockService::new(
            4,
            DiffMode::PerFieldOnDemand,
            LockProtocol::HomelessWriteUpdate,
        );
        assert_eq!(svc.manager_of(0), 0);
        assert_eq!(svc.manager_of(5), 1);
        assert_eq!(svc.manager_of(7), 3);
    }
}
