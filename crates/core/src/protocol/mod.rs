//! Data-plane protocol: the messages comm threads exchange.

pub mod messages;

pub use messages::Msg;
