//! Data-plane protocol messages.
//!
//! These travel through `lots-net` between node comm threads (the SIGIO
//! handler analogue): object fetches from homes and the barrier-phase
//! diff propagation of the migrating-home protocol. Synchronization
//! control (lock queues, barrier rendezvous) is coordinated through
//! shared services with analytically charged message costs — see
//! `DESIGN.md` §2 — so it does not appear here.

use lots_net::WireSize;

use crate::object::ObjectId;

/// Data-plane messages between LOTS nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Ask the home for a clean copy of the object.
    ObjReq {
        /// Requested object.
        obj: ObjectId,
    },
    /// Home's reply; payload carries the object bytes.
    ObjReply {
        /// Served object.
        obj: ObjectId,
        /// Barrier epoch of the served copy.
        version: u64,
    },
    /// Barrier diff propagation to the home (multi-writer objects);
    /// payload carries the encoded [`WordDiff`]. `ts` orders overlapping
    /// lock-era writes (release timestamp; 0 for plain interval diffs).
    ///
    /// [`WordDiff`]: crate::diff::WordDiff
    DiffSend {
        /// Object the diff belongs to.
        obj: ObjectId,
        /// Release timestamp ordering overlapping lock-era writes.
        ts: u64,
    },
    /// Home's acknowledgement that a diff was applied.
    DiffAck {
        /// Object whose diff was applied.
        obj: ObjectId,
    },
}

impl WireSize for Msg {
    fn wire_size(&self) -> usize {
        // Compact C-struct encodings: 2-byte opcode + fields.
        match self {
            Msg::ObjReq { .. } => 2 + 4,
            Msg::ObjReply { .. } => 2 + 4 + 8,
            Msg::DiffSend { .. } => 2 + 4 + 8,
            Msg::DiffAck { .. } => 2 + 4,
        }
    }
}

/// Wire size of the control messages charged analytically by the
/// shared synchronization services.
pub mod ctl {
    /// Lock acquire request (lock id + seen timestamp).
    pub const LOCK_ACQ: usize = 2 + 4 + 8;
    /// Lock grant header (payload: updates, accounted separately).
    pub const LOCK_GRANT: usize = 2 + 4 + 8;
    /// Lock release header (payload: updates).
    pub const LOCK_REL: usize = 2 + 4 + 8;
    /// Barrier enter header; plus per-write-notice bytes.
    pub const BARRIER_ENTER: usize = 2 + 8;
    /// One write notice (object id + diff size hint).
    pub const WRITE_NOTICE: usize = 8;
    /// Barrier plan/exit headers; plus per-instruction bytes.
    pub const BARRIER_PLAN: usize = 2 + 8;
    /// One plan/migration/invalidation entry.
    pub const PLAN_ENTRY: usize = 8;
    /// Barrier done notification.
    pub const BARRIER_DONE: usize = 2 + 8;
    /// Barrier exit header.
    pub const BARRIER_EXIT: usize = 2 + 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_are_compact() {
        assert_eq!(Msg::ObjReq { obj: ObjectId(1) }.wire_size(), 6);
        assert_eq!(
            Msg::ObjReply {
                obj: ObjectId(1),
                version: 9
            }
            .wire_size(),
            14
        );
        assert_eq!(
            Msg::DiffSend {
                obj: ObjectId(1),
                ts: 0
            }
            .wire_size(),
            14
        );
        assert_eq!(Msg::DiffAck { obj: ObjectId(1) }.wire_size(), 6);
    }

    #[test]
    fn control_sizes_positive() {
        const { assert!(ctl::LOCK_ACQ > 0) }
        const { assert!(ctl::WRITE_NOTICE > 0) }
        const { assert!(ctl::BARRIER_ENTER > 0) }
    }
}
