//! Per-node DSM state: the DMM arena, twin arena, dynamic memory
//! mapper, pinning, and interval bookkeeping.
//!
//! One `NodeState` exists per simulated process, shared (behind a
//! mutex) between the node's application thread and its comm thread.
//! It implements §3.2 (allocation), §3.3 (dynamic mapping, swapping,
//! pinning) and the node-local halves of §3.4/§3.5 (twins, diffs,
//! lock-update application, barrier bookkeeping).

use std::collections::{BTreeSet, HashMap};
use std::ops::Range;
use std::sync::Arc;

use lots_disk::{BackingStore, DiskError};
use lots_net::NodeId;
use lots_sim::{CpuModel, DiskQueue, NodeStats, SimClock, SimDuration, SimInstant, TimeCategory};

use crate::alloc::{AllocError, DmmAllocator, FragStats};
use crate::config::{LotsConfig, Placement};
use crate::consistency::locks::WordUpdate;
use crate::diff::WordDiff;
use crate::object::{Life, Mapping, NamedAllocReq, ObjCtl, ObjectId, Share, StripeInfo};
use crate::swap::{build_policy, Candidate, ImageTwin, SwapImage, SwapPolicy};

/// Errors surfaced to applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LotsError {
    /// Object exceeds the maximum single-object size (§4.3: bounded by
    /// the DMM area).
    ObjectTooLarge {
        /// Requested object size in bytes.
        size: usize,
        /// Largest single object this configuration can map.
        max: usize,
    },
    /// §5: every mapped object is pinned by the current statement and
    /// nothing can be swapped out.
    OutOfDmm {
        /// Bytes the failed mapping needed.
        requested: usize,
    },
    /// LOTS-x (no large-object support) requires every object to stay
    /// mapped; allocation beyond the DMM area is a hard error (§1: "the
    /// application is too large to fit in the system").
    LotsXCapacity {
        /// Bytes the failed allocation needed.
        requested: usize,
    },
    /// Backing-store failure (out of disk, missing image).
    Disk(String),
    /// Stored bytes (a swap image or journal record) failed to decode:
    /// truncated or corrupted input is reported deterministically, not
    /// by a panic or an out-of-bounds slice.
    CorruptImage {
        /// Byte offset at which the decoder rejected the stream.
        at: usize,
    },
    /// Zero-length allocation: shared objects must hold at least one
    /// element.
    EmptyAlloc,
    /// Access through a handle to a freed object — the lifecycle
    /// analogue of the view-guard fences. Raised from `free` to the
    /// barrier that reclaims the slot, and forever after through any
    /// stale handle.
    UseAfterFree {
        /// The freed object.
        obj: ObjectId,
    },
    /// `free` called with a handle that does not cover the whole
    /// original allocation (an `offset`/`prefix` sub-slice, a length
    /// mismatch, or a foreign handle).
    BadFree {
        /// The object the handle points into.
        obj: ObjectId,
        /// What was wrong with the handle.
        reason: String,
    },
    /// `lookup` of a name with no committed directory entry (never
    /// allocated, not yet committed at a barrier, or reclaimed by a
    /// free).
    NameNotFound {
        /// The looked-up name.
        name: String,
    },
    /// Typed `lookup::<T>` where `T`'s size disagrees with the element
    /// size the object was allocated with.
    NameTypeMismatch {
        /// The looked-up name.
        name: String,
        /// Element size recorded in the directory.
        expected: usize,
        /// Element size of the requested `T`.
        actual: usize,
    },
    /// `alloc_named` with a name already in the directory or already
    /// staged locally this interval.
    DuplicateName {
        /// The conflicting name.
        name: String,
    },
    /// [`Placement::Fixed`] names a node outside the cluster — a
    /// deterministic config error surfaced at alloc time on every
    /// system, never an index panic mid-protocol.
    BadPlacement {
        /// The out-of-range node the placement requested.
        requested: NodeId,
        /// Cluster size (valid nodes are `0..n`).
        n: usize,
    },
}

impl std::fmt::Display for LotsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LotsError::ObjectTooLarge { size, max } => {
                write!(
                    f,
                    "object of {size} bytes exceeds single-object limit {max}"
                )
            }
            LotsError::OutOfDmm { requested } => write!(
                f,
                "no swappable object in DMM area for a {requested}-byte mapping \
                 (all mapped objects pinned by the current statement)"
            ),
            LotsError::LotsXCapacity { requested } => write!(
                f,
                "LOTS-x: DMM area exhausted allocating {requested} bytes \
                 (large-object-space support disabled)"
            ),
            LotsError::Disk(e) => write!(f, "backing store: {e}"),
            LotsError::CorruptImage { at } => {
                write!(f, "corrupt stored image (decode failed at byte {at})")
            }
            LotsError::EmptyAlloc => write!(f, "cannot allocate an empty shared object"),
            LotsError::UseAfterFree { obj } => write!(
                f,
                "use after free: {obj} was freed — handles to it are fenced off \
                 like the view-guard fences"
            ),
            LotsError::BadFree { obj, reason } => {
                write!(f, "free of {obj} rejected: {reason}")
            }
            LotsError::NameNotFound { name } => write!(
                f,
                "no committed object named {name:?} (named allocations materialize \
                 at the next barrier)"
            ),
            LotsError::NameTypeMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "object {name:?} holds {expected}-byte elements, lookup asked for \
                 {actual}-byte elements"
            ),
            LotsError::DuplicateName { name } => {
                write!(f, "an object named {name:?} already exists")
            }
            LotsError::BadPlacement { requested, n } => write!(
                f,
                "Placement::Fixed({requested}) outside the cluster (valid nodes are 0..{n})"
            ),
        }
    }
}

impl std::error::Error for LotsError {}

impl From<DiskError> for LotsError {
    fn from(e: DiskError) -> LotsError {
        LotsError::Disk(e.to_string())
    }
}

impl From<lots_disk::CorruptImage> for LotsError {
    fn from(e: lots_disk::CorruptImage) -> LotsError {
        LotsError::CorruptImage { at: e.at }
    }
}

/// Outcome of starting an access: either the object is locally usable,
/// or a clean copy must be fetched from its home first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The local copy is usable at this arena offset.
    Ready {
        /// Byte offset of the object in the DMM arena.
        offset: usize,
    },
    /// The local copy is stale; fetch a clean one from `home` first.
    NeedFetch {
        /// Node currently holding the authoritative copy.
        home: NodeId,
    },
}

/// Outcome of starting a byte-range access (the striping-aware
/// generalization of [`Access`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangeAccess {
    /// Unstriped object, locally usable at this arena offset.
    Ready {
        /// Byte offset of the object in the DMM arena.
        offset: usize,
    },
    /// Striped object with every covered segment valid, mapped and
    /// pinned; run the access through
    /// [`NodeState::striped_range_run`].
    Striped,
    /// Stale copies: fetch each `(segment object, home)` pair — from
    /// *distinct* homes in the striped case — then retry.
    Fetch(Vec<(ObjectId, NodeId)>),
}

/// An open critical section: the guarding lock plus CS-entry snapshots
/// of every object written inside it (used to compute the release
/// updates of the homeless write-update protocol).
#[derive(Debug)]
pub struct CsFrame {
    /// The guarding lock.
    pub lock: u32,
    /// CS-entry snapshots of objects written inside, by object id.
    pub cs_twins: HashMap<u32, Vec<u8>>,
}

/// Per-node DSM state.
pub struct NodeState {
    /// This node's rank.
    pub me: NodeId,
    /// Cluster size.
    pub n: usize,
    /// Protocol configuration.
    pub cfg: LotsConfig,
    /// CPU cost model.
    pub cpu: CpuModel,
    arena: Vec<u8>,
    twin_arena: Vec<u8>,
    alloc: DmmAllocator,
    objects: Vec<ObjCtl>,
    store: Arc<dyn BackingStore>,
    /// The node's virtual clock.
    pub clock: SimClock,
    /// The node's time/counter statistics.
    pub stats: NodeStats,
    /// Statement counter driving the pinning mechanism (§3.3).
    stmt: u64,
    /// Nesting depth of explicit statement guards.
    stmt_depth: u32,
    /// Open critical sections (innermost last).
    cs_stack: Vec<CsFrame>,
    /// Lock updates received for objects not currently materialized;
    /// applied when the object is next installed. word → (ts, value).
    pending_lock_updates: HashMap<u32, HashMap<u32, (u64, u32)>>,
    /// Last-writer-wins guard for the barrier diff phase:
    /// (object, word) → release-ts already applied.
    barrier_word_guard: HashMap<(u32, u32), u64>,
    /// Objects written since the last barrier.
    dirty: Vec<u32>,
    /// Release timestamp of this node's last CS write per object.
    obj_release_ts: HashMap<u32, u64>,
    /// Diffs cached at barrier entry (so later remote applications
    /// cannot contaminate them).
    cached_diffs: HashMap<u32, WordDiff>,
    /// Write-invalidate lock mode: object → node holding the freshest
    /// copy, used instead of the home for the next fetch.
    fetch_override: HashMap<u32, NodeId>,
    /// Victim-selection policy (see [`crate::swap`]).
    policy: Box<dyn SwapPolicy>,
    /// The local disk as a virtual-time device: batched write-behind,
    /// blocking reads, serial service.
    diskq: DiskQueue,
    /// Read-ahead buffer: swap key → (encoded image, completion time of
    /// its in-flight device read).
    prefetched: HashMap<u64, (Vec<u8>, SimInstant)>,
    /// Last demand swap-in, driving the stride predictor.
    last_swapin: Option<u32>,
    /// Logical bytes of objects currently mapped in the DMM area.
    resident_logical: u64,
    /// Logical bytes of objects currently swapped out (`OnDisk`).
    swapped_logical: u64,
    /// Cumulative logical bytes ever materialized locally (zero-fill
    /// maps and home fetches; swap round trips do not re-count).
    materialized_cum: u64,
    /// Cumulative logical bytes de-materialized locally (barrier
    /// invalidations and free reclamation).
    dematerialized_cum: u64,
    /// Object-table slots reclaimed by frees, awaiting reuse (lowest
    /// id first, so reuse is deterministic cluster-wide).
    free_ids: BTreeSet<u32>,
    /// Replicated name directory: name → (slot, element size, len).
    /// Identical on every node — entries change only at barriers.
    names: HashMap<String, NamedEntry>,
    /// Objects freed this interval (tombstoned; reclaimed cluster-wide
    /// at the next barrier).
    freed_pending: Vec<u32>,
    /// Named allocations staged this interval (committed cluster-wide
    /// at the next barrier).
    pending_named: Vec<NamedAllocReq>,
}

/// Outcome of a simulated crash + rejoin (see
/// [`NodeState::crash_rejoin`]): what the rebuild moved, so the caller
/// can charge virtual time and surface rejoin counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinSummary {
    /// Home-owned masters peers re-sent into the swap store.
    pub masters_checkpointed: usize,
    /// Cached copies of remote objects lost with the DMM arena.
    pub copies_dropped: usize,
    /// Directory + name-table bytes re-fetched from peers.
    pub directory_bytes: u64,
    /// Logical bytes of rebuilt masters transferred from peer copies.
    pub master_bytes: u64,
}

/// One replicated name-directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NamedEntry {
    id: u32,
    elem_size: usize,
    len: usize,
}

/// A consistent snapshot of the node's swap accounting, used by the
/// `resident + swapped == allocated` invariant tests.
///
/// With the object-lifecycle API the invariant extends across frees:
/// `resident + swapped + dematerialized == cumulative materialized`,
/// where *dematerialized* counts bytes released by barrier
/// invalidations **and** by free reclamation — every byte that was
/// ever locally materialized is either still here or was accounted
/// out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapAccounting {
    /// Logical bytes of mapped objects (incremental counter).
    pub resident_logical: u64,
    /// Logical bytes of swapped-out objects (incremental counter).
    pub swapped_logical: u64,
    /// Logical bytes of all locally materialized objects — every
    /// object whose data lives here, mapped or on disk (independent
    /// scan of the mapping states).
    pub materialized: u64,
    /// Bytes the backing store actually holds (compressed; includes
    /// retained clean images of currently mapped objects).
    pub store_resident: u64,
    /// Cumulative logical bytes ever materialized locally.
    pub materialized_cum: u64,
    /// Cumulative logical bytes released by invalidations and frees.
    pub dematerialized_cum: u64,
    /// Cumulative logical bytes of objects reclaimed by `free` on this
    /// node (whether or not their data was locally materialized at
    /// reclaim time; from the `objects_freed` counters).
    pub freed_bytes: u64,
}

impl NodeState {
    /// Fresh per-node state over the given configuration, cost models
    /// and backing store.
    pub fn new(
        me: NodeId,
        n: usize,
        cfg: LotsConfig,
        cpu: CpuModel,
        store: Arc<dyn BackingStore>,
        clock: SimClock,
        stats: NodeStats,
    ) -> NodeState {
        let alloc = DmmAllocator::with_fit(
            cfg.dmm_bytes,
            cfg.small_threshold,
            cfg.large_threshold,
            cfg.alloc.fit,
        );
        let policy = build_policy(cfg.swap.policy);
        let diskq = DiskQueue::new(store.model());
        NodeState {
            me,
            n,
            arena: vec![0u8; cfg.dmm_bytes],
            twin_arena: vec![0u8; cfg.dmm_bytes],
            alloc,
            objects: Vec::new(),
            store,
            clock,
            stats,
            cpu,
            cfg,
            stmt: 1,
            stmt_depth: 0,
            cs_stack: Vec::new(),
            pending_lock_updates: HashMap::new(),
            barrier_word_guard: HashMap::new(),
            dirty: Vec::new(),
            obj_release_ts: HashMap::new(),
            cached_diffs: HashMap::new(),
            fetch_override: HashMap::new(),
            policy,
            diskq,
            prefetched: HashMap::new(),
            last_swapin: None,
            resident_logical: 0,
            swapped_logical: 0,
            materialized_cum: 0,
            dematerialized_cum: 0,
            free_ids: BTreeSet::new(),
            names: HashMap::new(),
            freed_pending: Vec::new(),
            pending_named: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Allocation (§3.2)
    // ------------------------------------------------------------------

    /// Register a shared object of `size` bytes under the configured
    /// default placement (see [`NodeState::register_object_placed`]).
    pub fn register_object(&mut self, size: usize) -> Result<ObjectId, LotsError> {
        self.register_object_with(size, self.cfg.alloc.placement, false)
    }

    /// Register a shared object with an explicitly chosen placement
    /// (the `*_placed` surface): the placement also overrides the
    /// striping config's per-segment default.
    pub fn register_object_placed(
        &mut self,
        size: usize,
        placement: Placement,
    ) -> Result<ObjectId, LotsError> {
        self.register_object_with(size, placement, true)
    }

    /// Register a shared object of `size` bytes (word-aligned up) and
    /// try to map it eagerly, as `alloc()` does in the paper. Returns
    /// the cluster-wide object id — deterministic: the lowest
    /// free-reclaimed slot, else a fresh one, so allocation order plus
    /// the barrier-agreed reclamation history make ids agree
    /// cluster-wide.
    ///
    /// With striping configured, allocations larger than one segment
    /// take the striped path: the returned parent id routes to
    /// per-segment child objects with independent homes.
    fn register_object_with(
        &mut self,
        size: usize,
        placement: Placement,
        explicit: bool,
    ) -> Result<ObjectId, LotsError> {
        self.check_placement(placement)?;
        let req_bytes = size;
        let size = size.div_ceil(4) * 4;
        if let Some(striping) = self.cfg.striping {
            let seg_bytes = striping.segment_bytes.max(4).div_ceil(4) * 4;
            if size > seg_bytes {
                let seg_placement = if explicit {
                    placement
                } else {
                    striping.placement
                };
                self.check_placement(seg_placement)?;
                return self.register_striped(req_bytes, size, seg_bytes, placement, seg_placement);
            }
        }
        let id = self.take_slot();
        let (home, home_pending) = self.resolve_placement(id, placement);
        let mut ctl = ObjCtl::new(size, home);
        ctl.req_bytes = req_bytes;
        ctl.home_pending = home_pending;
        self.objects[id.0 as usize] = ctl;
        self.charge(TimeCategory::LargeObject, self.cpu.map_syscall);
        let out = if self.cfg.large_object_space {
            // Eager map only while space is free (mmap-like laziness):
            // allocation must not trigger swap traffic for data that has
            // never been touched.
            match self.alloc.alloc(size) {
                Ok(offset) => {
                    self.arena[offset..offset + size].fill(0);
                    self.objects[id.0 as usize].mapping = Mapping::Mapped { offset };
                    self.resident_logical += size as u64;
                    self.materialized_cum += size as u64;
                    Ok(id)
                }
                Err(AllocError::NoSpace { .. }) => Ok(id), // lazy (§3.3)
                Err(AllocError::TooLarge { size, max }) => {
                    Err(LotsError::ObjectTooLarge { size, max })
                }
            }
        } else {
            // LOTS-x: mapping is permanent and mandatory.
            match self.try_map(id) {
                Ok(_) => Ok(id),
                Err(LotsError::OutOfDmm { requested })
                | Err(LotsError::LotsXCapacity { requested }) => {
                    Err(LotsError::LotsXCapacity { requested })
                }
                Err(e) => Err(e),
            }
        };
        if out.is_err() {
            // A failed registration must not consume the slot: the
            // recoverable try_alloc surface would otherwise leak a
            // phantom Live object (and a reclaimed id) per failure.
            let ctl = &mut self.objects[id.0 as usize];
            debug_assert_eq!(ctl.mapping, Mapping::Unmapped, "failed register never maps");
            ctl.life = Life::Free;
            self.free_ids.insert(id.0);
        }
        self.sync_frag_gauges();
        out
    }

    /// Lowest reclaimed slot, else a fresh one.
    fn take_slot(&mut self) -> ObjectId {
        match self.free_ids.iter().next().copied() {
            Some(id) => {
                self.free_ids.remove(&id);
                debug_assert_eq!(self.objects[id as usize].life, Life::Free);
                ObjectId(id)
            }
            None => {
                let id = self.objects.len() as u32;
                // Placeholder; the caller overwrites the slot.
                self.objects.push(ObjCtl::new(4, 0));
                ObjectId(id)
            }
        }
    }

    /// Validate a [`Placement`] against the cluster size: `Fixed` homes
    /// outside `0..n` are a deterministic alloc-time config error.
    fn check_placement(&self, placement: Placement) -> Result<(), LotsError> {
        match placement {
            Placement::Fixed(node) if node >= self.n => Err(LotsError::BadPlacement {
                requested: node,
                n: self.n,
            }),
            _ => Ok(()),
        }
    }

    /// Resolve a (pre-validated) [`Placement`] into (initial home,
    /// home-pending flag).
    fn resolve_placement(&self, id: ObjectId, placement: Placement) -> (NodeId, bool) {
        let round_robin = (id.0 as usize) % self.n;
        match placement {
            Placement::RoundRobin => (round_robin, false),
            Placement::Fixed(node) => {
                debug_assert!(node < self.n, "Fixed placement validated at entry");
                (node, false)
            }
            // Provisional home; never serves a fetch (all copies stay
            // zero-valid until the first write barrier assigns the
            // real home to the first writer).
            Placement::FirstTouch => (round_robin, true),
            Placement::ConsistentHash => ((stripe_hash(id.0, 0) as usize) % self.n, false),
        }
    }

    /// Per-segment home of a striped allocation: the directory's
    /// `(object, segment) → home` map, evaluated identically on every
    /// node.
    fn resolve_segment_placement(
        &self,
        parent: u32,
        seg: u32,
        placement: Placement,
    ) -> (NodeId, bool) {
        let rotated = (parent as usize + seg as usize) % self.n;
        match placement {
            Placement::RoundRobin => (rotated, false),
            Placement::Fixed(node) => {
                debug_assert!(node < self.n, "Fixed placement validated at entry");
                (node, false)
            }
            Placement::FirstTouch => (rotated, true),
            Placement::ConsistentHash => ((stripe_hash(parent, seg) as usize) % self.n, false),
        }
    }

    /// Striped registration: the parent slot is taken first, then one
    /// child per segment in segment order, so every node derives the
    /// same ids from the same allocation history. The parent's data
    /// never materializes; each child is an ordinary object with its
    /// own home, twin, swap image and barrier notices.
    fn register_striped(
        &mut self,
        req_bytes: usize,
        size: usize,
        seg_bytes: usize,
        parent_placement: Placement,
        seg_placement: Placement,
    ) -> Result<ObjectId, LotsError> {
        let nsegs = size.div_ceil(seg_bytes);
        let parent = self.take_slot();
        let (home, home_pending) = self.resolve_placement(parent, parent_placement);
        let mut ctl = ObjCtl::new(size, home);
        ctl.req_bytes = req_bytes;
        ctl.home_pending = home_pending;
        self.objects[parent.0 as usize] = ctl;
        self.charge(TimeCategory::LargeObject, self.cpu.map_syscall);
        let mut children = Vec::with_capacity(nsegs);
        let mut failed = None;
        for s in 0..nsegs {
            let child_size = seg_bytes.min(size - s * seg_bytes);
            let cid = self.take_slot();
            let (chome, cpending) =
                self.resolve_segment_placement(parent.0, s as u32, seg_placement);
            let mut cctl = ObjCtl::new(child_size, chome);
            cctl.home_pending = cpending;
            cctl.parent = Some((parent.0, s as u32));
            self.objects[cid.0 as usize] = cctl;
            children.push(cid.0);
            self.charge(TimeCategory::LargeObject, self.cpu.map_syscall);
            if self.cfg.large_object_space {
                // Same mmap-like laziness as the unstriped path: map
                // eagerly only while space is free.
                match self.alloc.alloc(child_size) {
                    Ok(offset) => {
                        self.arena[offset..offset + child_size].fill(0);
                        self.objects[cid.0 as usize].mapping = Mapping::Mapped { offset };
                        self.resident_logical += child_size as u64;
                        self.materialized_cum += child_size as u64;
                    }
                    Err(AllocError::NoSpace { .. }) => {}
                    Err(AllocError::TooLarge { size, max }) => {
                        failed = Some(LotsError::ObjectTooLarge { size, max });
                        break;
                    }
                }
            } else {
                // LOTS-x: mapping is permanent and mandatory, segment
                // by segment.
                match self.try_map(cid) {
                    Ok(_) => {}
                    Err(LotsError::OutOfDmm { requested })
                    | Err(LotsError::LotsXCapacity { requested }) => {
                        failed = Some(LotsError::LotsXCapacity { requested });
                        break;
                    }
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
        }
        if let Some(e) = failed {
            // Unwind: a failed registration must not consume any slot.
            for &c in children.iter().rev() {
                let cid = ObjectId(c);
                if self.objects[c as usize].offset().is_some() {
                    self.invalidate_local(cid)?;
                }
                let cctl = &mut self.objects[c as usize];
                cctl.parent = None;
                cctl.life = Life::Free;
                self.free_ids.insert(c);
            }
            let pctl = &mut self.objects[parent.0 as usize];
            pctl.life = Life::Free;
            self.free_ids.insert(parent.0);
            self.sync_frag_gauges();
            return Err(e);
        }
        self.objects[parent.0 as usize].stripe = Some(StripeInfo {
            seg_bytes,
            children,
        });
        self.sync_frag_gauges();
        Ok(parent)
    }

    /// Refresh the fragmentation gauges mirrored into [`NodeStats`].
    fn sync_frag_gauges(&self) {
        let frag = self.alloc.frag_stats();
        self.stats
            .set_dmm_gauges(frag.free_bytes, frag.largest_hole);
    }

    /// Snapshot the DMM allocator's fragmentation state.
    pub fn frag_stats(&self) -> FragStats {
        self.alloc.frag_stats()
    }

    // ------------------------------------------------------------------
    // Object lifecycle: free, named objects (tombstone → barrier
    // reclamation; see the module docs of `api`)
    // ------------------------------------------------------------------

    /// Free a live object: tombstone it immediately (every further
    /// application access errors with [`LotsError::UseAfterFree`]) and
    /// stage it for cluster-wide reclamation at the next barrier.
    /// `req_bytes` must match the original allocation — sub-slice
    /// handles cannot free.
    pub fn free_object(&mut self, id: ObjectId, req_bytes: usize) -> Result<(), LotsError> {
        let idx = id.0 as usize;
        if idx >= self.objects.len() || self.objects[idx].life != Life::Live {
            return Err(LotsError::UseAfterFree { obj: id });
        }
        if self.objects[idx].req_bytes != req_bytes {
            return Err(LotsError::BadFree {
                obj: id,
                reason: format!(
                    "handle covers {req_bytes} bytes, the allocation holds {}",
                    self.objects[idx].req_bytes
                ),
            });
        }
        self.objects[idx].life = Life::Tombstoned;
        // The tombstone publishes nothing: drop any pending write
        // notice so the barrier plan never schedules diffs for it.
        self.dirty.retain(|&o| o != id.0);
        self.freed_pending.push(id.0);
        // A striped parent frees its segment children with it: the
        // whole family is tombstoned now and reclaimed at the barrier.
        if let Some(stripe) = self.objects[idx].stripe.clone() {
            for &c in &stripe.children {
                self.objects[c as usize].life = Life::Tombstoned;
                self.dirty.retain(|&o| o != c);
                self.freed_pending.push(c);
            }
        }
        Ok(())
    }

    /// Stage a named allocation for commit at the next barrier. The
    /// placement is validated eagerly so a bad `Fixed` home errors at
    /// alloc time, not inside the barrier's deterministic commit replay.
    pub fn stage_named(&mut self, req: NamedAllocReq) -> Result<(), LotsError> {
        if self.names.contains_key(&req.name)
            || self.pending_named.iter().any(|p| p.name == req.name)
        {
            return Err(LotsError::DuplicateName { name: req.name });
        }
        if req.len == 0 {
            return Err(LotsError::EmptyAlloc);
        }
        self.check_placement(req.placement)?;
        if let Some(striping) = self.cfg.striping {
            if !req.placement_explicit {
                self.check_placement(striping.placement)?;
            }
        }
        self.pending_named.push(req);
        Ok(())
    }

    /// Resolve a committed name into its object, checking the element
    /// size recorded in the replicated directory.
    pub fn lookup_named(
        &self,
        name: &str,
        elem_size: usize,
    ) -> Result<(ObjectId, usize), LotsError> {
        let entry = self
            .names
            .get(name)
            .ok_or_else(|| LotsError::NameNotFound {
                name: name.to_string(),
            })?;
        if self.objects[entry.id as usize].life != Life::Live {
            return Err(LotsError::UseAfterFree {
                obj: ObjectId(entry.id),
            });
        }
        if entry.elem_size != elem_size {
            return Err(LotsError::NameTypeMismatch {
                name: name.to_string(),
                expected: entry.elem_size,
                actual: elem_size,
            });
        }
        Ok((ObjectId(entry.id), entry.len))
    }

    /// Take the interval's staged frees and named allocations for the
    /// barrier rendezvous.
    pub fn take_lifecycle(&mut self) -> (Vec<ObjectId>, Vec<NamedAllocReq>) {
        let frees = std::mem::take(&mut self.freed_pending)
            .into_iter()
            .map(ObjectId)
            .collect();
        (frees, std::mem::take(&mut self.pending_named))
    }

    /// Reclaim one freed slot at a barrier: release its DMM block or
    /// swap image (through the same path barrier invalidation uses),
    /// drop its directory entry, and return the id to the free list
    /// for reuse.
    fn reclaim(&mut self, id: ObjectId) -> Result<(), LotsError> {
        let idx = id.0 as usize;
        debug_assert_ne!(
            self.objects[idx].life,
            Life::Free,
            "{id} reclaimed twice in one barrier"
        );
        let size = self.objects[idx].size as u64;
        self.invalidate_local(id)?;
        debug_assert!(
            matches!(self.store.get(id.0 as u64), Err(DiskError::NotFound(_))),
            "freed {id} must leave no swap image behind"
        );
        // The munmap/unlink analogue of the reclamation pass.
        self.charge(TimeCategory::LargeObject, self.cpu.map_syscall);
        // Stripe children ride their parent's reclamation: the parent
        // alone counts the free (with the full logical size), so the
        // app-facing counter stays one event per `free` call.
        if self.objects[idx].parent.is_none() {
            self.stats.count_object_freed(size);
        }
        if let Some(name) = self.objects[idx].name.take() {
            self.names.remove(&name);
        }
        let ctl = &mut self.objects[idx];
        ctl.twin = false;
        ctl.written = false;
        ctl.home_pending = false;
        ctl.stripe = None;
        ctl.parent = None;
        ctl.life = Life::Free;
        self.free_ids.insert(id.0);
        Ok(())
    }

    /// Commit one barrier-agreed named allocation (every node replays
    /// the same list in the same order, so the ids agree).
    fn commit_named(&mut self, req: &NamedAllocReq) -> Result<(), LotsError> {
        assert!(
            !self.names.contains_key(&req.name),
            "named object {:?} committed twice (two nodes staged the same name \
             in one interval)",
            req.name
        );
        let id = self.register_object_with(req.bytes, req.placement, req.placement_explicit)?;
        self.objects[id.0 as usize].name = Some(req.name.clone());
        self.names.insert(
            req.name.clone(),
            NamedEntry {
                id: id.0,
                elem_size: req.elem_size,
                len: req.len,
            },
        );
        Ok(())
    }

    /// Number of object-table slots (live + tombstoned + reusable):
    /// the resident control-space footprint. Churn workloads assert
    /// this stays bounded while cumulative allocations grow unbounded.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Slots currently reclaimed and awaiting reuse.
    pub fn free_slots(&self) -> usize {
        self.free_ids.len()
    }

    /// Size in bytes of object `id`.
    pub fn object_size(&self, id: ObjectId) -> usize {
        self.objects[id.0 as usize].size
    }

    /// Current home node of object `id`.
    pub fn home_of(&self, id: ObjectId) -> NodeId {
        self.objects[id.0 as usize].home
    }

    /// Control state of object `id` (tests/diagnostics).
    pub fn ctl(&self, id: ObjectId) -> &ObjCtl {
        &self.objects[id.0 as usize]
    }

    fn charge(&self, cat: TimeCategory, d: SimDuration) {
        self.clock.advance(d);
        self.stats.charge(cat, d);
    }

    // ------------------------------------------------------------------
    // Dynamic memory mapping and swapping (§3.3)
    // ------------------------------------------------------------------

    /// Map `id` into the DMM area, swapping out victims as needed.
    fn try_map(&mut self, id: ObjectId) -> Result<usize, LotsError> {
        let idx = id.0 as usize;
        if let Some(off) = self.objects[idx].offset() {
            return Ok(off);
        }
        let size = self.objects[idx].size;
        let offset = loop {
            match self.alloc.alloc(size) {
                Ok(off) => break off,
                Err(AllocError::TooLarge { size, max }) => {
                    return Err(LotsError::ObjectTooLarge { size, max })
                }
                Err(AllocError::NoSpace { size }) => {
                    if !self.cfg.large_object_space {
                        return Err(LotsError::LotsXCapacity { requested: size });
                    }
                    if !self.evict_some()? {
                        return Err(LotsError::OutOfDmm { requested: size });
                    }
                }
            }
        };
        self.charge(TimeCategory::LargeObject, self.cpu.map_syscall);
        match self.objects[idx].mapping {
            Mapping::OnDisk => {
                // The image stays on disk: while the in-memory copy is
                // unmodified, a later eviction is free of disk writes.
                debug_assert!(self.objects[idx].clean_on_disk);
                let img = self.fetch_image(id.0 as u64)?;
                let (data, twin) = SwapImage::decode(&img, size)?;
                if self.cfg.swap.compress {
                    // One decode pass over the object's words.
                    self.charge(TimeCategory::LargeObject, self.cpu.diffing(size as u64));
                }
                self.arena[offset..offset + size].copy_from_slice(&data);
                // A barrier may have retired the interval while the
                // object sat on disk; only restore a live twin.
                if self.objects[idx].twin {
                    match twin {
                        ImageTwin::Zero => self.twin_arena[offset..offset + size].fill(0),
                        ImageTwin::Bytes(tw) => {
                            self.twin_arena[offset..offset + size].copy_from_slice(&tw)
                        }
                        ImageTwin::None => unreachable!("dirty object swapped without twin"),
                    }
                }
                self.swapped_logical -= size as u64;
                if self.cfg.swap.read_ahead {
                    self.issue_read_ahead(id.0);
                }
            }
            Mapping::Unmapped => {
                self.arena[offset..offset + size].fill(0);
                self.materialized_cum += size as u64;
            }
            Mapping::Mapped { .. } => unreachable!("checked above"),
        }
        self.objects[idx].mapping = Mapping::Mapped { offset };
        self.resident_logical += size as u64;
        self.sync_frag_gauges();
        self.apply_pending_updates(id);
        Ok(offset)
    }

    /// Obtain the encoded swap image of `key`, either from the
    /// read-ahead buffer or through a demand read on the disk device,
    /// waiting (in virtual time) for the device to deliver it.
    fn fetch_image(&mut self, key: u64) -> Result<Vec<u8>, LotsError> {
        let (img, ready) = match self.prefetched.remove(&key) {
            Some(hit) => {
                self.stats.count_prefetch_hit();
                hit
            }
            None => {
                // The store's own duration is superseded by the device
                // queue, which also orders this read after any pending
                // write-back.
                let (img, _store_time) = self.store.get(key)?;
                let op = self.diskq.read(self.clock.now(), img.len() as u64);
                (img, op.done)
            }
        };
        let before = self.clock.now();
        let now = self.clock.advance_to(ready);
        self.stats
            .charge(TimeCategory::Disk, now.saturating_sub(before));
        self.stats.count_swap_in(img.len() as u64);
        Ok(img)
    }

    /// Stride prediction for the read-ahead: two stripe children of the
    /// same parent stride in *segment* space (so a sequential scan of a
    /// striped object prefetches the next segment, whatever slot ids
    /// the children landed on); two plain objects stride in id space as
    /// before. A mixed pair predicts nothing.
    fn predict_next(&self, last: u32, obj: u32) -> Option<u32> {
        match (
            self.objects[last as usize].parent,
            self.objects[obj as usize].parent,
        ) {
            (Some((lp, ls)), Some((op, os))) if lp == op => {
                let stripe = self.objects[op as usize].stripe.as_ref()?;
                let next = os as i64 + (os as i64 - ls as i64);
                (next >= 0 && (next as usize) < stripe.children.len())
                    .then(|| stripe.children[next as usize])
            }
            (None, None) => {
                let p = obj as i64 + (obj as i64 - last as i64);
                (p >= 0 && (p as usize) < self.objects.len()).then_some(p as u32)
            }
            _ => None,
        }
    }

    /// Stride read-ahead: after the demand swap-in of `obj`, predict
    /// the next swapped-out object from the recent swap-in stride and
    /// start its device read so the data is (often) already local when
    /// the predicted access arrives.
    fn issue_read_ahead(&mut self, obj: u32) {
        let predicted = match self.last_swapin {
            Some(last) if last != obj => self.predict_next(last, obj),
            _ => None,
        };
        self.last_swapin = Some(obj);
        let Some(pred) = predicted else { return };
        let key = pred as u64;
        if self.prefetched.contains_key(&key)
            || self.objects[pred as usize].mapping != Mapping::OnDisk
        {
            return;
        }
        let Ok((img, _store_time)) = self.store.get(key) else {
            return;
        };
        let op = self.diskq.read(self.clock.now(), img.len() as u64);
        self.prefetched.insert(key, (img, op.done));
    }

    /// Free DMM space by evicting up to [`crate::config::SwapConfig::batch_evict`]
    /// policy-chosen victims in one batched write-back trip. Only
    /// objects untouched by the current statement are candidates — the
    /// pinning fence of §3.3, enforced here and not in the policy.
    /// Returns `false` when everything mapped is pinned.
    fn evict_some(&mut self) -> Result<bool, LotsError> {
        let mut candidates: Vec<Candidate> = self
            .objects
            .iter()
            .enumerate()
            .filter(|(_, ctl)| ctl.offset().is_some() && ctl.last_access < self.stmt)
            .map(|(idx, ctl)| Candidate {
                obj: idx as u32,
                last_access: ctl.last_access,
                size: ctl.size,
            })
            .collect();
        if candidates.is_empty() {
            return Ok(false);
        }
        let batch = self.cfg.swap.batch_evict.max(1).min(candidates.len());
        let mut victims = Vec::with_capacity(batch);
        for _ in 0..batch {
            let v = self
                .policy
                .choose(&candidates)
                // A policy declining to choose defers to LRU order.
                .or_else(|| crate::swap::LruPolicy.choose(&candidates))
                .expect("LRU always picks from a non-empty candidate list");
            candidates.retain(|c| c.obj != v);
            victims.push(v);
            if candidates.is_empty() {
                break;
            }
        }
        self.swap_out_batch(&victims)?;
        Ok(true)
    }

    /// Write the victims' images (for those whose disk copy is stale)
    /// in one batched device trip and release their DMM blocks. The
    /// write-back is asynchronous: the application does not stall on
    /// it — a later read on the busy device absorbs the cost.
    fn swap_out_batch(&mut self, victims: &[u32]) -> Result<(), LotsError> {
        let mut write_sizes = Vec::with_capacity(victims.len());
        for &v in victims {
            let idx = v as usize;
            let (offset, size) = {
                let ctl = &self.objects[idx];
                (ctl.offset().expect("victims are mapped"), ctl.size)
            };
            if !self.objects[idx].clean_on_disk {
                let data = &self.arena[offset..offset + size];
                let twin = self.objects[idx]
                    .twin
                    .then(|| &self.twin_arena[offset..offset + size]);
                let img = SwapImage::encode(data, twin, self.cfg.swap.compress);
                if self.cfg.swap.compress {
                    // One encode pass over the object's words.
                    self.charge(TimeCategory::LargeObject, self.cpu.diffing(size as u64));
                }
                let stored = img.len() as u64;
                // Store the bytes now (host-side); the device trip below
                // carries the virtual-time cost.
                self.store.put(v as u64, &img)?;
                self.objects[idx].clean_on_disk = true;
                self.stats.count_swap_out(stored);
                write_sizes.push(stored);
            }
            self.charge(TimeCategory::LargeObject, self.cpu.map_syscall);
            self.alloc.free(offset);
            self.objects[idx].mapping = Mapping::OnDisk;
            self.resident_logical -= size as u64;
            self.swapped_logical += size as u64;
            self.policy.on_remove(v);
        }
        if !write_sizes.is_empty() {
            self.diskq.write_batch(self.clock.now(), &write_sizes);
            self.stats.count_swap_batch();
        }
        self.sync_frag_gauges();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Statements and pinning (§3.3)
    // ------------------------------------------------------------------

    /// Begin an explicit statement: objects accessed until `exit_stmt`
    /// share one pin scope (like all operands of `a[5]=b[5]+c[5]`).
    pub fn enter_stmt(&mut self) {
        if self.stmt_depth == 0 {
            self.stmt += 1;
        }
        self.stmt_depth += 1;
    }

    /// Close the innermost statement scope (see
    /// [`NodeState::enter_stmt`]).
    pub fn exit_stmt(&mut self) {
        debug_assert!(self.stmt_depth > 0);
        self.stmt_depth -= 1;
    }

    fn current_stmt(&mut self) -> u64 {
        if self.stmt_depth == 0 {
            // Implicit statement: each bare access is its own scope.
            self.stmt += 1;
        }
        self.stmt
    }

    // ------------------------------------------------------------------
    // Access path (§3.3)
    // ------------------------------------------------------------------

    /// Run the access check for `checks` element accesses to `id`
    /// (the §4.2-measured 20–25 ns lookup, plus pinning when the
    /// large-object space is enabled), map the object, and create twins
    /// for writes. Returns `NeedFetch` if the local copy is stale — the
    /// caller fetches from the home and calls [`NodeState::install_fetch`].
    pub fn begin_access(
        &mut self,
        id: ObjectId,
        write: bool,
        checks: u64,
    ) -> Result<Access, LotsError> {
        if self.objects[id.0 as usize].life != Life::Live {
            // The status-checking routine is exactly where a freed
            // object is fenced off — same mechanism as a swap check.
            return Err(LotsError::UseAfterFree { obj: id });
        }
        let stmt = self.current_stmt();
        self.stats.count_access_checks(checks);
        let check_t = self.cpu.checks(checks);
        self.clock.advance(check_t);
        self.stats.charge(TimeCategory::AccessCheck, check_t);
        if self.cfg.large_object_space {
            let pin_t = SimDuration(self.cpu.pin_update.0 * checks);
            self.clock.advance(pin_t);
            self.stats.charge(TimeCategory::LargeObject, pin_t);
        }
        let idx = id.0 as usize;
        if !self.objects[idx].locally_valid() {
            let target = self
                .fetch_override
                .get(&id.0)
                .copied()
                .unwrap_or(self.objects[idx].home);
            return Ok(Access::NeedFetch { home: target });
        }
        let offset = self.try_map(id)?;
        if self.objects[idx].last_access != stmt {
            // One policy touch per distinct statement: reference bits
            // and segment promotion track statements, not element ops.
            self.policy.on_access(id.0);
        }
        self.objects[idx].last_access = stmt;
        if write {
            self.prepare_write(id, offset);
        }
        Ok(Access::Ready { offset })
    }

    /// Striping-aware access: run the §4.2 check once per guard on the
    /// parent handle, then resolve the byte range. Unstriped objects
    /// delegate to [`NodeState::begin_access`]; striped objects check
    /// only the *covered* segments, returning every stale one (with its
    /// own home) in a single [`RangeAccess::Fetch`] so the caller fans
    /// the fetches out in parallel.
    pub fn begin_access_range(
        &mut self,
        id: ObjectId,
        bytes: &Range<usize>,
        write: bool,
        checks: u64,
    ) -> Result<RangeAccess, LotsError> {
        if self.objects[id.0 as usize].life != Life::Live {
            return Err(LotsError::UseAfterFree { obj: id });
        }
        if self.objects[id.0 as usize].stripe.is_none() {
            return match self.begin_access(id, write, checks)? {
                Access::Ready { offset } => Ok(RangeAccess::Ready { offset }),
                Access::NeedFetch { home } => Ok(RangeAccess::Fetch(vec![(id, home)])),
            };
        }
        // One status check per guard (§4.2), charged on the parent —
        // striping does not multiply the software check cost.
        let stmt = self.current_stmt();
        self.stats.count_access_checks(checks);
        let check_t = self.cpu.checks(checks);
        self.clock.advance(check_t);
        self.stats.charge(TimeCategory::AccessCheck, check_t);
        if self.cfg.large_object_space {
            let pin_t = SimDuration(self.cpu.pin_update.0 * checks);
            self.clock.advance(pin_t);
            self.stats.charge(TimeCategory::LargeObject, pin_t);
        }
        let stripe = self.objects[id.0 as usize]
            .stripe
            .clone()
            .expect("checked above");
        let first = bytes.start / stripe.seg_bytes;
        let last = bytes.end.saturating_sub(1).max(bytes.start) / stripe.seg_bytes;
        let mut fetches = Vec::new();
        for s in first..=last {
            let c = stripe.children[s];
            if !self.objects[c as usize].locally_valid() {
                let target = self
                    .fetch_override
                    .get(&c)
                    .copied()
                    .unwrap_or(self.objects[c as usize].home);
                fetches.push((ObjectId(c), target));
            }
        }
        if !fetches.is_empty() {
            return Ok(RangeAccess::Fetch(fetches));
        }
        for s in first..=last {
            let cid = ObjectId(stripe.children[s]);
            let offset = self.try_map(cid)?;
            let cidx = cid.0 as usize;
            if self.objects[cidx].last_access != stmt {
                self.policy.on_access(cid.0);
            }
            // The pin stamp lands on each covered segment: earlier
            // segments of this guard are fenced against eviction while
            // later ones map in.
            self.objects[cidx].last_access = stmt;
            if write {
                self.prepare_write(cid, offset);
            }
        }
        Ok(RangeAccess::Striped)
    }

    /// Run `f` over the bytes of a striped range whose segments were
    /// all pinned by [`NodeState::begin_access_range`] returning
    /// [`RangeAccess::Striped`]. A range inside one segment runs in
    /// place in the arena; a spanning range gathers into a host-side
    /// staging buffer and (for writes) scatters back — pure data
    /// movement with no virtual-time charge, matching the zero-copy
    /// single-object path.
    pub fn striped_range_run<R>(
        &mut self,
        id: ObjectId,
        bytes: &Range<usize>,
        write: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> R {
        let stripe = self.objects[id.0 as usize]
            .stripe
            .clone()
            .expect("striped_range_run on an unstriped object");
        let len = bytes.end - bytes.start;
        let first = bytes.start / stripe.seg_bytes;
        let last = bytes.end.saturating_sub(1).max(bytes.start) / stripe.seg_bytes;
        if first == last {
            let cidx = stripe.children[first] as usize;
            let off = self.objects[cidx]
                .offset()
                .expect("covered segment pinned and mapped");
            let within = bytes.start - first * stripe.seg_bytes;
            return f(&mut self.arena[off + within..off + within + len]);
        }
        let mut buf = vec![0u8; len];
        let mut cursor = 0;
        for s in first..=last {
            let seg_start = s * stripe.seg_bytes;
            let cidx = stripe.children[s] as usize;
            let off = self.objects[cidx]
                .offset()
                .expect("covered segment pinned and mapped");
            let from = bytes.start.max(seg_start) - seg_start;
            let to = bytes.end.min(seg_start + self.objects[cidx].size) - seg_start;
            buf[cursor..cursor + (to - from)].copy_from_slice(&self.arena[off + from..off + to]);
            cursor += to - from;
        }
        debug_assert_eq!(cursor, len, "gather covered the whole range");
        let r = f(&mut buf);
        if write {
            let mut cursor = 0;
            for s in first..=last {
                let seg_start = s * stripe.seg_bytes;
                let cidx = stripe.children[s] as usize;
                let off = self.objects[cidx].offset().expect("still mapped");
                let from = bytes.start.max(seg_start) - seg_start;
                let to = bytes.end.min(seg_start + self.objects[cidx].size) - seg_start;
                self.arena[off + from..off + to]
                    .copy_from_slice(&buf[cursor..cursor + (to - from)]);
                cursor += to - from;
            }
        }
        r
    }

    /// The in-memory copy is about to diverge from the disk image:
    /// drop the stale image and clear the clean flag.
    fn mark_mutated(&mut self, idx: usize) {
        if self.objects[idx].clean_on_disk {
            self.store
                .remove(idx as u64)
                .expect("clean_on_disk implies a stored image");
            self.objects[idx].clean_on_disk = false;
        }
    }

    /// Twin creation (interval twin + CS twin) ahead of a write.
    fn prepare_write(&mut self, id: ObjectId, offset: usize) {
        let idx = id.0 as usize;
        let size = self.objects[idx].size;
        self.mark_mutated(idx);
        if !self.objects[idx].twin {
            let (arena, twins) = (&self.arena, &mut self.twin_arena);
            twins[offset..offset + size].copy_from_slice(&arena[offset..offset + size]);
            self.objects[idx].twin = true;
            self.charge(TimeCategory::Diffing, self.cpu.diffing(size as u64));
        }
        if !self.objects[idx].written {
            self.objects[idx].written = true;
            self.dirty.push(id.0);
        }
        if let Some(frame) = self.cs_stack.last_mut() {
            frame
                .cs_twins
                .entry(id.0)
                .or_insert_with(|| self.arena[offset..offset + size].to_vec());
        }
    }

    /// Raw bytes of a mapped object (after `begin_access` returned
    /// `Ready`).
    pub fn object_bytes(&self, offset: usize, len: usize) -> &[u8] {
        &self.arena[offset..offset + len]
    }

    /// Mutable raw bytes of a mapped object (after `begin_access`
    /// returned `Ready`).
    pub fn object_bytes_mut(&mut self, offset: usize, len: usize) -> &mut [u8] {
        &mut self.arena[offset..offset + len]
    }

    /// Install a clean copy fetched from the home.
    pub fn install_fetch(
        &mut self,
        id: ObjectId,
        bytes: &[u8],
        version: u64,
    ) -> Result<(), LotsError> {
        let idx = id.0 as usize;
        debug_assert_eq!(bytes.len(), self.objects[idx].size);
        self.objects[idx].share = Share::Valid; // must precede mapping
        let offset = self.try_map(id)?;
        self.arena[offset..offset + bytes.len()].copy_from_slice(bytes);
        self.objects[idx].version = version;
        self.mark_mutated(idx);
        self.fetch_override.remove(&id.0);
        self.apply_pending_updates(id);
        Ok(())
    }

    /// Write-invalidate lock mode (§3.4 ablation): drop the local copy
    /// and redirect the next fetch to the last releaser.
    pub fn wi_invalidate(&mut self, id: ObjectId, holder: NodeId) -> Result<(), LotsError> {
        if holder == self.me || self.objects[id.0 as usize].life != Life::Live {
            return Ok(());
        }
        self.invalidate_local(id)?;
        self.fetch_override.insert(id.0, holder);
        Ok(())
    }

    /// Release timestamp of this node's last CS write to `id` this
    /// interval (0 if the object was only written outside locks).
    pub fn release_ts_of(&self, id: ObjectId) -> u64 {
        self.obj_release_ts.get(&id.0).copied().unwrap_or(0)
    }

    /// Charge `n` bare access checks (workload cost-model hook for
    /// re-accesses of already-resolved objects, e.g. `b[i][j±1]` after
    /// `b[i][j]` — each is still a checked access in LOTS).
    pub fn charge_checks(&mut self, n: u64) {
        self.stats.count_access_checks(n);
        let check_t = self.cpu.checks(n);
        self.clock.advance(check_t);
        self.stats.charge(TimeCategory::AccessCheck, check_t);
        if self.cfg.large_object_space {
            let pin_t = SimDuration(self.cpu.pin_update.0 * n);
            self.clock.advance(pin_t);
            self.stats.charge(TimeCategory::LargeObject, pin_t);
        }
    }

    /// Serve a read of the full object (comm thread). Usually the home
    /// serves; under the write-invalidate lock ablation the last
    /// releaser may serve instead. Either way the local copy must be
    /// clean — a stale server is a protocol bug.
    pub fn serve_object(&mut self, id: ObjectId) -> Result<(Vec<u8>, u64), LotsError> {
        let idx = id.0 as usize;
        assert!(
            self.objects[idx].locally_valid(),
            "node {} asked to serve stale {id} (home {})",
            self.me,
            self.objects[idx].home
        );
        let offset = self.try_map(id)?;
        let size = self.objects[idx].size;
        if self.objects[idx].parent.is_some() && self.objects[idx].twin {
            // Snapshot versioning: a stripe segment being written this
            // interval serves its *twin* — the immutable copy published
            // at the last barrier — so readers pin that version and
            // never observe the in-flight writer. (Untouched segments
            // serve the arena, which *is* the published version.)
            return Ok((
                self.twin_arena[offset..offset + size].to_vec(),
                self.objects[idx].version,
            ));
        }
        Ok((
            self.arena[offset..offset + size].to_vec(),
            self.objects[idx].version,
        ))
    }

    // ------------------------------------------------------------------
    // Lock-path updates (§3.4 homeless write-update, §3.5 diffs)
    // ------------------------------------------------------------------

    /// Open a critical section guarded by `lock`.
    pub fn enter_cs(&mut self, lock: u32) {
        self.cs_stack.push(CsFrame {
            lock,
            cs_twins: HashMap::new(),
        });
    }

    /// Close the innermost critical section and return the updates made
    /// inside it (per object: the words changed since CS entry).
    pub fn exit_cs(&mut self, lock: u32, release_ts: u64) -> Vec<(ObjectId, WordDiff)> {
        let frame = self.cs_stack.pop().expect("exit_cs without enter_cs");
        debug_assert_eq!(frame.lock, lock, "unbalanced lock nesting");
        let mut updates = Vec::with_capacity(frame.cs_twins.len());
        for (obj, snapshot) in frame.cs_twins {
            let id = ObjectId(obj);
            let offset = self.objects[obj as usize]
                .offset()
                .expect("CS-written object is pinned and mapped");
            let size = self.objects[obj as usize].size;
            let diff = WordDiff::compute(&snapshot, &self.arena[offset..offset + size]);
            self.charge(TimeCategory::Diffing, self.cpu.diffing(size as u64));
            if !diff.is_empty() {
                self.obj_release_ts.insert(obj, release_ts);
                // Seed the barrier word guard NOW, not at barrier
                // entry: if this node ends up the object's home, remote
                // interval diffs with older release timestamps start
                // arriving on the comm thread the moment the barrier
                // plan is out, and must not clobber this CS's words.
                // (Seeding in barrier_prepare is too late — an early
                // remote diff can overwrite the arena first, making the
                // local twin diff look empty; see the quickstart lost-
                // update bug.)
                for (word, _) in diff.iter_words() {
                    let guard = self.barrier_word_guard.entry((obj, word)).or_insert(0);
                    *guard = (*guard).max(release_ts);
                }
                self.stats.count_diff(diff.wire_size() as u64);
                updates.push((id, diff));
            }
        }
        updates
    }

    /// Apply updates delivered with a lock grant. Valid mapped copies
    /// are patched in place (arena + active twin, so the words are not
    /// re-diffed as local writes); everything else is parked in the
    /// pending table until the object materializes.
    pub fn apply_lock_updates(&mut self, updates: &[(ObjectId, Vec<WordUpdate>)]) {
        for (id, words) in updates {
            let idx = id.0 as usize;
            if self.objects[idx].life != Life::Live {
                // Updates for a tombstoned object die with it at the
                // next barrier; applying (or parking) them would leak
                // into a reused slot.
                continue;
            }
            let applicable =
                self.objects[idx].locally_valid() && self.objects[idx].offset().is_some();
            if applicable {
                let offset = self.objects[idx].offset().expect("checked");
                self.mark_mutated(idx);
                for &(word, _ts, val) in words {
                    let off = offset + word as usize * 4;
                    self.arena[off..off + 4].copy_from_slice(&val.to_le_bytes());
                    if self.objects[idx].twin {
                        self.twin_arena[off..off + 4].copy_from_slice(&val.to_le_bytes());
                    }
                }
                self.charge(
                    TimeCategory::Diffing,
                    self.cpu.diffing(words.len() as u64 * 4),
                );
            } else {
                let pend = self.pending_lock_updates.entry(id.0).or_default();
                for &(word, ts, val) in words {
                    match pend.get(&word) {
                        Some(&(old_ts, _)) if old_ts > ts => {}
                        _ => {
                            pend.insert(word, (ts, val));
                        }
                    }
                }
            }
        }
    }

    fn apply_pending_updates(&mut self, id: ObjectId) {
        let Some(words) = self.pending_lock_updates.remove(&id.0) else {
            return;
        };
        let idx = id.0 as usize;
        let offset = self.objects[idx].offset().expect("called after mapping");
        self.mark_mutated(idx);
        for (word, (_ts, val)) in words {
            let off = offset + word as usize * 4;
            self.arena[off..off + 4].copy_from_slice(&val.to_le_bytes());
            if self.objects[idx].twin {
                self.twin_arena[off..off + 4].copy_from_slice(&val.to_le_bytes());
            }
        }
    }

    // ------------------------------------------------------------------
    // Barrier-path bookkeeping (§3.4 migrating-home write-invalidate)
    // ------------------------------------------------------------------

    /// Phase A of a barrier: take the dirty set as write notices
    /// (object, size, this node's consistent view of its home, and
    /// whether a first-touch home assignment is still pending). Diffs
    /// are *not* computed yet — the plan decides which objects are
    /// multi-writer and actually need one (§3.4 benefit 1: a single
    /// writer propagates nothing, so nothing is diffed either).
    pub fn barrier_collect(&mut self) -> Result<Vec<(ObjectId, usize, NodeId, bool)>, LotsError> {
        // The barrier opens a fresh statement scope: pins from the last
        // application statement expire, so dirty objects can be swapped
        // in even under full DMM pressure.
        self.stmt += 1;
        let dirty = std::mem::take(&mut self.dirty);
        Ok(dirty
            .into_iter()
            .map(|obj| {
                let ctl = &self.objects[obj as usize];
                (ObjectId(obj), ctl.size, ctl.home, ctl.home_pending)
            })
            .collect())
    }

    /// Phase B preparation, after the plan arrived: compute and cache
    /// the diffs this node must send, and — where this node is the home
    /// of a multi-writer object it also wrote — seed the word guard
    /// with its own writes so older remote timestamps cannot clobber
    /// newer local CS writes.
    pub fn barrier_prepare(
        &mut self,
        send_diffs: &[(NodeId, ObjectId, NodeId)],
        me: NodeId,
    ) -> Result<(), LotsError> {
        for &(writer, id, home) in send_diffs {
            let obj = id.0;
            if writer == me {
                let offset = self.try_map(id)?;
                let size = self.objects[obj as usize].size;
                debug_assert!(self.objects[obj as usize].twin);
                let diff = WordDiff::compute(
                    &self.twin_arena[offset..offset + size],
                    &self.arena[offset..offset + size],
                );
                self.charge(TimeCategory::Diffing, self.cpu.diffing(size as u64));
                self.stats.count_diff(diff.wire_size() as u64);
                self.cached_diffs.insert(obj, diff);
            } else if home == me && self.objects[obj as usize].written {
                // Seed the guard with our own interval writes. Remote
                // diffs may already have applied (the comm thread races
                // ahead of this app-thread phase), so merge by maximum:
                // a blind insert would roll an applied newer timestamp
                // back and let a stale diff overwrite it.
                let offset = self.try_map(id)?;
                let size = self.objects[obj as usize].size;
                let diff = WordDiff::compute(
                    &self.twin_arena[offset..offset + size],
                    &self.arena[offset..offset + size],
                );
                self.charge(TimeCategory::Diffing, self.cpu.diffing(size as u64));
                let ts = self.obj_release_ts.get(&obj).copied().unwrap_or(0);
                for (word, _) in diff.iter_words() {
                    let guard = self.barrier_word_guard.entry((obj, word)).or_insert(ts);
                    *guard = (*guard).max(ts);
                }
            }
        }
        Ok(())
    }

    /// The diff cached by [`NodeState::barrier_prepare`] for `id`.
    pub fn cached_diff(&self, id: ObjectId) -> &WordDiff {
        &self.cached_diffs[&id.0]
    }

    /// Home-side application of a remote barrier diff, respecting the
    /// per-word release-timestamp guard (last CS writer wins).
    pub fn apply_remote_diff(
        &mut self,
        id: ObjectId,
        diff: &WordDiff,
        ts: u64,
    ) -> Result<(), LotsError> {
        let offset = self.try_map(id)?;
        self.mark_mutated(id.0 as usize);
        let applied: u64 = {
            let mut count = 0u64;
            for (word, val) in diff.iter_words() {
                let key = (id.0, word);
                let guard = self.barrier_word_guard.get(&key).copied();
                match guard {
                    Some(prev) if prev > ts => continue,
                    _ => {}
                }
                let off = offset + word as usize * 4;
                self.arena[off..off + 4].copy_from_slice(&val.to_le_bytes());
                self.barrier_word_guard.insert(key, ts);
                count += 1;
            }
            count
        };
        self.charge(TimeCategory::Diffing, self.cpu.diffing(applied * 4));
        Ok(())
    }

    /// Final barrier phase: apply home migrations (clearing first-touch
    /// pending flags the plan resolved), invalidate written objects we
    /// are not home of, reclaim the barrier-agreed freed set, commit
    /// the barrier-agreed named allocations, and clear interval state.
    ///
    /// `written` lists every object any node wrote this interval with
    /// its (possibly migrated) home; `seq` becomes the new version.
    pub fn barrier_finish(
        &mut self,
        written: &[(ObjectId, NodeId)],
        freed: &[ObjectId],
        named: &[NamedAllocReq],
        seq: u64,
    ) -> Result<(), LotsError> {
        for &(id, home) in written {
            let idx = id.0 as usize;
            let is_segment = self.objects[idx].parent.is_some();
            self.objects[idx].home = home;
            self.objects[idx].home_pending = false;
            if home == self.me {
                // We hold the authoritative copy.
                self.objects[idx].share = Share::Valid;
                self.objects[idx].version = seq;
                if is_segment {
                    // The write-notice round publishes this segment's
                    // new immutable version, counted at its home.
                    self.stats.count_version_published();
                }
            } else {
                self.invalidate_local(id)?;
            }
            if is_segment && self.objects[idx].twin {
                // Dropping the twin discards the superseded snapshot
                // version readers pinned last interval.
                self.stats.count_version_reclaimed();
            }
            self.objects[idx].twin = false;
            self.objects[idx].written = false;
        }
        // Frees before named commits, so a commit can reuse a slot
        // reclaimed at this same barrier.
        for &id in freed {
            self.reclaim(id)?;
        }
        for req in named {
            self.commit_named(req)?;
        }
        self.barrier_word_guard.clear();
        self.pending_lock_updates.clear();
        self.obj_release_ts.clear();
        self.cached_diffs.clear();
        self.fetch_override.clear();
        debug_assert!(self.dirty.is_empty(), "dirty set consumed in collect");
        #[cfg(debug_assertions)]
        {
            // Cross-check the swap counters at every interval boundary.
            let _ = self.swap_accounting();
        }
        Ok(())
    }

    /// Drop the local copy: free its DMM block or disk image ("free the
    /// memory storing the updates", §3.4).
    fn invalidate_local(&mut self, id: ObjectId) -> Result<(), LotsError> {
        let idx = id.0 as usize;
        let size = self.objects[idx].size as u64;
        match self.objects[idx].mapping {
            Mapping::Mapped { offset } => {
                self.alloc.free(offset);
                self.resident_logical -= size;
                self.dematerialized_cum += size;
                if self.objects[idx].clean_on_disk {
                    self.store.remove(id.0 as u64)?;
                }
            }
            Mapping::OnDisk => {
                self.swapped_logical -= size;
                self.dematerialized_cum += size;
                self.prefetched.remove(&(id.0 as u64));
                self.store.remove(id.0 as u64)?;
            }
            Mapping::Unmapped => {}
        }
        self.policy.on_remove(id.0);
        self.objects[idx].clean_on_disk = false;
        self.objects[idx].mapping = Mapping::Unmapped;
        self.objects[idx].share = Share::Invalid;
        self.sync_frag_gauges();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Crash + rejoin
    // ------------------------------------------------------------------

    /// Simulated crash and rejoin at an interval boundary.
    ///
    /// The node dies immediately after completing a barrier: its DMM
    /// arena (and every in-memory cache) is lost, while its swap store
    /// — a disk file in the paper's system — survives the reboot. At
    /// that instant every copy in the cluster is barrier-consistent, so
    /// peers hold byte-identical images of the masters this node homes;
    /// the rejoin protocol rebuilds the node's directory entries, name
    /// table and home-owned object state from those copies plus the
    /// surviving swap store. We model the rebuilt masters landing in
    /// the swap store (a batched write of their images, byte-identical
    /// to what the swap-in path will reload) and the cached
    /// copies of remote objects simply vanishing; the caller charges
    /// the reboot outage and the directory/image transfer time.
    ///
    /// Values are unchanged everywhere — only virtual time moves — so
    /// a crash-rejoin run finishes with checksums identical to the
    /// fault-free run.
    pub fn crash_rejoin(&mut self) -> Result<RejoinSummary, LotsError> {
        // The crash dissolves every pin scope.
        self.stmt += 1;
        let mut masters: Vec<u32> = Vec::new();
        let mut lost: Vec<ObjectId> = Vec::new();
        let mut master_bytes = 0u64;
        for (idx, ctl) in self.objects.iter().enumerate() {
            if ctl.offset().is_none() {
                // Unmapped copies hold no DMM state; OnDisk images live
                // in the store and survive the reboot as-is.
                continue;
            }
            if ctl.home == self.me {
                masters.push(idx as u32);
                master_bytes += ctl.size as u64;
            } else {
                lost.push(ObjectId(idx as u32));
            }
        }
        let copies_dropped = lost.len();
        let masters_checkpointed = masters.len();
        // Peers re-send the masters this node homes; the rebuilt images
        // land in the swap store exactly as a swap-out would put them.
        self.swap_out_batch(&masters)?;
        // Cached copies of remotely-homed objects died with the arena.
        for id in lost {
            self.invalidate_local(id)?;
        }
        // In-memory read-ahead state is gone too.
        self.prefetched.clear();
        self.last_swapin = None;
        // Directory + name-table rebuild traffic: one entry per live
        // object slot (home, version, size, flags) plus the replicated
        // name directory.
        let live_slots = self.objects.iter().filter(|o| o.life != Life::Free).count() as u64;
        let name_bytes: u64 = self.names.keys().map(|k| k.len() as u64 + 16).sum();
        Ok(RejoinSummary {
            masters_checkpointed,
            copies_dropped,
            directory_bytes: live_slots * 24 + name_bytes,
            master_bytes,
        })
    }

    // ------------------------------------------------------------------
    // Persistence hooks (journal snapshots + disk booking)
    // ------------------------------------------------------------------

    /// Post-barrier directory snapshot for the persistence journal:
    /// one [`lots_persist::ObjMeta`] per live object slot. Stripe
    /// children appear individually (each is an ordinary directory
    /// object with its own home and diffs); the parent rides along so
    /// restore can rebuild the stripe record.
    pub fn persist_live_meta(&self) -> Vec<lots_persist::ObjMeta> {
        self.objects
            .iter()
            .enumerate()
            .filter(|(_, ctl)| ctl.life != Life::Free)
            .map(|(idx, ctl)| lots_persist::ObjMeta {
                id: idx as u32,
                home: ctl.home as u32,
                version: ctl.version,
                bytes: ctl.size as u64,
                parent: ctl.parent,
            })
            .collect()
    }

    /// The committed name table, as journal records.
    pub fn persist_names(&self) -> Vec<lots_persist::NamedMeta> {
        self.names
            .iter()
            .map(|(name, e)| lots_persist::NamedMeta {
                name: name.clone(),
                id: e.id,
                elem_size: e.elem_size as u32,
                len: e.len as u64,
            })
            .collect()
    }

    /// The DMM extent map for a checkpoint manifest: one extent per
    /// live slot with its arena address (when mapped).
    pub fn persist_extents(&self) -> Vec<lots_persist::Extent> {
        self.objects
            .iter()
            .enumerate()
            .filter(|(_, ctl)| ctl.life != Life::Free)
            .map(|(idx, ctl)| lots_persist::Extent {
                id: idx as u32,
                addr: ctl.offset().unwrap_or(0) as u64,
                bytes: ctl.size as u64,
                mapped: ctl.offset().is_some(),
            })
            .collect()
    }

    /// Post-barrier content of every object in `written` that this
    /// node homes — the masters whose interval diffs the journal
    /// appends. A pure snapshot read: arena bytes when mapped, the
    /// decoded swap image when the master sits on disk, the valid
    /// zero-fill when never materialized. No virtual time is charged
    /// here; the journal append itself is booked as write-behind disk
    /// I/O by the caller.
    pub fn persist_written_content(
        &self,
        written: &[(ObjectId, NodeId)],
    ) -> Result<Vec<(u32, Vec<u8>)>, LotsError> {
        let mut out = Vec::new();
        for &(id, home) in written {
            if home != self.me {
                continue;
            }
            let ctl = &self.objects[id.0 as usize];
            if ctl.life == Life::Free {
                continue;
            }
            let content = match ctl.mapping {
                Mapping::Mapped { offset } => self.arena[offset..offset + ctl.size].to_vec(),
                Mapping::OnDisk => {
                    let (img, _store_time) = self.store.get(id.0 as u64)?;
                    let (data, _twin) = SwapImage::decode(&img, ctl.size)?;
                    data.into_owned()
                }
                Mapping::Unmapped => vec![0u8; ctl.size],
            };
            out.push((id.0, content));
        }
        Ok(out)
    }

    /// Book one barrier's journal records on the node's serial disk
    /// device as a write-behind batch: the device gets busier but the
    /// application does not stall (the next demand read or swap trip
    /// queues behind the append).
    pub fn persist_book_log_write(&mut self, sizes: &[u64]) {
        if sizes.is_empty() {
            return;
        }
        let now = self.clock.now();
        self.diskq.write_batch(now, sizes);
    }

    /// Blocking read of `bytes` from the node's disk device (journal
    /// read-back during a crash rejoin), advancing this node's clock
    /// to the device's completion time.
    pub fn persist_read_blocking(&mut self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let op = self.diskq.read(self.clock.now(), bytes);
        let before = self.clock.now();
        let now = self.clock.advance_to(op.done);
        self.stats
            .charge(TimeCategory::Disk, now.saturating_sub(before));
    }

    /// Book one compaction run's I/O on the node's disk device at the
    /// compaction daemon's time `now`: a blocking read of the folded
    /// prefix followed by a write-behind put of the rewritten log.
    /// Returns when the device delivers the read (the daemon sleeps
    /// through it; demand I/O from the application queues behind).
    pub fn persist_book_compaction(
        &mut self,
        now: SimInstant,
        read_bytes: u64,
        write_bytes: u64,
    ) -> SimInstant {
        let op = self.diskq.read(now, read_bytes);
        if write_bytes > 0 {
            self.diskq.write_batch(op.done, &[write_bytes]);
        }
        op.done
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Bytes currently mapped in the DMM area.
    pub fn mapped_bytes(&self) -> usize {
        self.alloc.used_bytes()
    }

    /// Total logical bytes of all live (and tombstoned-but-unreclaimed)
    /// objects on this node. Stripe children are excluded: the parent
    /// already carries the allocation's full logical size.
    pub fn total_object_bytes(&self) -> u64 {
        self.objects
            .iter()
            .filter(|o| o.life != Life::Free && o.parent.is_none())
            .map(|o| o.size as u64)
            .sum()
    }

    /// Striping record of `id`, if it is a striped parent
    /// (tests/diagnostics).
    pub fn stripe_of(&self, id: ObjectId) -> Option<&StripeInfo> {
        self.objects[id.0 as usize].stripe.as_ref()
    }

    /// Bytes of swap images held by the backing store — the bytes
    /// *actually* stored (post-compression), which is what counts
    /// against the platform's free disk space.
    pub fn swapped_bytes(&self) -> u64 {
        self.store.used_bytes()
    }

    /// Logical bytes of objects currently swapped out (`OnDisk`).
    pub fn swapped_logical_bytes(&self) -> u64 {
        self.swapped_logical
    }

    /// Logical bytes of objects currently mapped in the DMM area.
    pub fn resident_logical_bytes(&self) -> u64 {
        self.resident_logical
    }

    /// Snapshot the swap accounting and cross-check the incremental
    /// counters against an independent scan of the mapping states.
    /// Invariant: every locally materialized byte is either resident or
    /// swapped — `resident + swapped == allocated`-and-materialized.
    pub fn swap_accounting(&self) -> SwapAccounting {
        let mut resident = 0u64;
        let mut swapped = 0u64;
        for ctl in &self.objects {
            match ctl.mapping {
                Mapping::Mapped { .. } => resident += ctl.size as u64,
                Mapping::OnDisk => swapped += ctl.size as u64,
                Mapping::Unmapped => {}
            }
        }
        let acct = SwapAccounting {
            resident_logical: self.resident_logical,
            swapped_logical: self.swapped_logical,
            materialized: resident + swapped,
            store_resident: self.store.used_bytes(),
            materialized_cum: self.materialized_cum,
            dematerialized_cum: self.dematerialized_cum,
            freed_bytes: self.stats.freed_object_bytes(),
        };
        assert_eq!(
            acct.resident_logical, resident,
            "resident counter drifted from the mapping states"
        );
        assert_eq!(
            acct.swapped_logical, swapped,
            "swapped counter drifted from the mapping states"
        );
        assert_eq!(
            acct.resident_logical + acct.swapped_logical + acct.dematerialized_cum,
            acct.materialized_cum,
            "resident + swapped + dematerialized (invalidated or freed) must \
             equal the cumulative materialized bytes"
        );
        acct
    }

    /// The backing store (shared with the cluster harness).
    pub fn store(&self) -> &Arc<dyn BackingStore> {
        &self.store
    }
}

/// FNV-1a over `(parent id, segment index)` — the consistent-hash
/// directory function behind [`Placement::ConsistentHash`]. Pure and
/// seedless, so every node computes the same segment home (JIAJIA
/// reuses it over `(page index, 0)` for page homes).
pub fn stripe_hash(parent: u32, seg: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in parent.to_le_bytes().into_iter().chain(seg.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use lots_disk::MemStore;
    use lots_sim::machine::pentium4_2ghz;
    use lots_sim::DiskModel;

    fn small_node(dmm: usize) -> NodeState {
        let store = Arc::new(MemStore::new(DiskModel {
            per_op: SimDuration::from_micros(100),
            write_bps: 50_000_000,
            read_bps: 50_000_000,
        }));
        NodeState::new(
            0,
            1,
            LotsConfig::small(dmm),
            pentium4_2ghz(),
            store,
            SimClock::new(),
            NodeStats::new(),
        )
    }

    fn write_words(node: &mut NodeState, id: ObjectId, vals: &[(usize, u32)]) {
        match node.begin_access(id, true, vals.len() as u64).unwrap() {
            Access::Ready { offset } => {
                for &(w, v) in vals {
                    let off = offset + w * 4;
                    node.object_bytes_mut(off, 4)
                        .copy_from_slice(&v.to_le_bytes());
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn read_word(node: &mut NodeState, id: ObjectId, w: usize) -> u32 {
        match node.begin_access(id, false, 1).unwrap() {
            Access::Ready { offset } => {
                u32::from_le_bytes(node.object_bytes(offset + w * 4, 4).try_into().unwrap())
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn register_maps_eagerly_and_zero_fills() {
        let mut n = small_node(64 * 1024);
        let id = n.register_object(100).unwrap();
        assert_eq!(n.object_size(id), 100);
        assert_eq!(read_word(&mut n, id, 0), 0);
        assert!(matches!(n.ctl(id).mapping, Mapping::Mapped { .. }));
    }

    #[test]
    fn swap_out_and_back_preserves_data() {
        // DMM of 32 KB: lower half 16 KB fits one 9 KB object at a time,
        // so every access to the other object swaps.
        let mut n = small_node(32 * 1024);
        let a = n.register_object(9 * 1024).unwrap();
        let b = n.register_object(9 * 1024).unwrap();
        write_words(&mut n, a, &[(0, 111), (5, 55)]);
        write_words(&mut n, b, &[(0, 222)]); // maps b, evicting dirty a
        assert!(n.stats.swaps_out() >= 1, "a out at b's mapping");
        assert_eq!(read_word(&mut n, a, 0), 111);
        assert_eq!(read_word(&mut n, a, 5), 55);
        assert!(n.stats.swaps_in() >= 1);
        assert_eq!(read_word(&mut n, b, 0), 222);
        assert_eq!(read_word(&mut n, a, 1), 0, "untouched words stay zero");
        // Dirty evictions wrote to disk once each; the later read-only
        // crossings re-evict *clean* copies, which skip the disk write
        // ("every object is swapped out once", §4.3).
        assert_eq!(n.stats.swaps_out(), 2);
        assert!(n.stats.swaps_in() >= 3);
    }

    #[test]
    fn twin_survives_swap_roundtrip() {
        let mut n = small_node(32 * 1024);
        let a = n.register_object(9 * 1024).unwrap();
        let b = n.register_object(9 * 1024).unwrap();
        write_words(&mut n, a, &[(3, 9)]);
        write_words(&mut n, b, &[(0, 1)]); // evicts dirty a with twin
        let _ = read_word(&mut n, a, 3); // brings a back
        let notices = n.barrier_collect().unwrap();
        assert_eq!(notices.len(), 2);
        // Pretend the plan made us a sender for a: its diff must be
        // computed against the twin that went through the disk.
        n.barrier_prepare(&[(0, a, 0)], 0).unwrap();
        let diff_a = n.cached_diff(a);
        let words: Vec<(u32, u32)> = diff_a.iter_words().collect();
        assert_eq!(words, vec![(3, 9)]);
    }

    #[test]
    fn pinned_objects_are_not_evicted() {
        let mut n = small_node(32 * 1024);
        let a = n.register_object(9 * 1024).unwrap();
        let b = n.register_object(9 * 1024).unwrap();
        // One statement touching both: the second mapping may not evict
        // the first (it is pinned), so there is no room and the access
        // must fail with the §5 condition.
        n.enter_stmt();
        let _ = read_word(&mut n, a, 0);
        let r = n.begin_access(b, false, 1);
        n.exit_stmt();
        assert!(matches!(r, Err(LotsError::OutOfDmm { .. })), "{r:?}");
        // Outside the statement, eviction is allowed again.
        assert_eq!(read_word(&mut n, b, 0), 0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut n = small_node(64 * 1024); // lower half 32 KB: two 12 KB fit
        let a = n.register_object(12 * 1024).unwrap();
        let b = n.register_object(12 * 1024).unwrap();
        // No room left: c stays lazily unmapped (mmap-like alloc).
        let c = n.register_object(12 * 1024).unwrap();
        assert!(matches!(n.ctl(c).mapping, Mapping::Unmapped));
        // First touch of c maps it, evicting the LRU (a: lowest stamp).
        let _ = read_word(&mut n, c, 0);
        assert!(matches!(n.ctl(a).mapping, Mapping::OnDisk));
        assert!(matches!(n.ctl(b).mapping, Mapping::Mapped { .. }));
        // Touch b, then a again: the LRU victim is now c.
        let _ = read_word(&mut n, b, 0);
        let _ = read_word(&mut n, a, 0);
        assert!(matches!(n.ctl(c).mapping, Mapping::OnDisk));
        assert!(matches!(n.ctl(b).mapping, Mapping::Mapped { .. }));
    }

    #[test]
    fn lots_x_rejects_overflow() {
        let store = Arc::new(MemStore::new(DiskModel {
            per_op: SimDuration::ZERO,
            write_bps: 1,
            read_bps: 1,
        }));
        let mut n = NodeState::new(
            0,
            1,
            LotsConfig::lots_x(32 * 1024),
            pentium4_2ghz(),
            store,
            SimClock::new(),
            NodeStats::new(),
        );
        let _a = n.register_object(9 * 1024).unwrap();
        let r = n.register_object(9 * 1024);
        assert!(matches!(r, Err(LotsError::LotsXCapacity { .. })), "{r:?}");
    }

    #[test]
    fn oversized_object_rejected() {
        let mut n = small_node(32 * 1024);
        let r = n.register_object(64 * 1024);
        assert!(matches!(r, Err(LotsError::ObjectTooLarge { .. })), "{r:?}");
    }

    #[test]
    fn failed_registration_releases_its_slot() {
        let mut n = small_node(32 * 1024);
        let a = n.register_object(64).unwrap();
        let bytes_before = n.total_object_bytes();
        // A recoverable failure must not leak a phantom Live object
        // or burn an id: probe-and-recover allocation stays bounded.
        for _ in 0..3 {
            assert!(matches!(
                n.register_object(64 * 1024),
                Err(LotsError::ObjectTooLarge { .. })
            ));
        }
        assert_eq!(n.total_object_bytes(), bytes_before);
        assert_eq!(n.free_slots(), 1, "the failed slot awaits reuse");
        let b = n.register_object(64).unwrap();
        assert_eq!(b.0, a.0 + 1, "the released slot is reused");
        assert_eq!(n.object_count(), 2);
    }

    #[test]
    fn cs_twin_yields_release_updates() {
        let mut n = small_node(64 * 1024);
        let a = n.register_object(256).unwrap();
        write_words(&mut n, a, &[(0, 1)]); // pre-CS write
        n.enter_cs(7);
        write_words(&mut n, a, &[(2, 42)]);
        let updates = n.exit_cs(7, 1);
        assert_eq!(updates.len(), 1);
        let (id, diff) = &updates[0];
        assert_eq!(*id, a);
        let words: Vec<(u32, u32)> = diff.iter_words().collect();
        assert_eq!(
            words,
            vec![(2, 42)],
            "only CS-era writes in release updates"
        );
    }

    #[test]
    fn lock_updates_apply_to_arena_and_twin() {
        let mut n = small_node(64 * 1024);
        let a = n.register_object(64).unwrap();
        write_words(&mut n, a, &[(0, 5)]); // creates twin
        n.apply_lock_updates(&[(a, vec![(3, 1, 77)])]);
        assert_eq!(read_word(&mut n, a, 3), 77);
        // Word 3 came from a grant, not a local write: interval diff
        // must not contain it.
        let _ = n.barrier_collect().unwrap();
        n.barrier_prepare(&[(0, a, 0)], 0).unwrap();
        let words: Vec<(u32, u32)> = n.cached_diff(a).iter_words().collect();
        assert_eq!(words, vec![(0, 5)]);
    }

    #[test]
    fn pending_updates_apply_on_materialize() {
        let mut n = small_node(32 * 1024);
        let a = n.register_object(9 * 1024).unwrap();
        let b = n.register_object(9 * 1024).unwrap();
        let _ = read_word(&mut n, b, 0); // a evicted to disk
        assert!(matches!(n.ctl(a).mapping, Mapping::OnDisk));
        n.apply_lock_updates(&[(a, vec![(4, 1, 99)])]);
        assert_eq!(
            read_word(&mut n, a, 4),
            99,
            "pending update applied on swap-in"
        );
    }

    #[test]
    fn barrier_finish_invalidate_and_keep() {
        let store = Arc::new(MemStore::new(DiskModel {
            per_op: SimDuration::ZERO,
            write_bps: u64::MAX,
            read_bps: u64::MAX,
        }));
        let mut n = NodeState::new(
            1,
            4,
            LotsConfig::small(64 * 1024),
            pentium4_2ghz(),
            store,
            SimClock::new(),
            NodeStats::new(),
        );
        let a = n.register_object(64).unwrap(); // home = 0
        let b = n.register_object(64).unwrap(); // home = 1 (me)
        write_words(&mut n, a, &[(0, 1)]);
        write_words(&mut n, b, &[(0, 2)]);
        let _ = n.barrier_collect().unwrap();
        // a migrates to node 2; b stays home here.
        n.barrier_finish(&[(a, 2), (b, 1)], &[], &[], 1).unwrap();
        assert_eq!(n.ctl(a).share, Share::Invalid);
        assert_eq!(n.ctl(a).mapping, Mapping::Unmapped);
        assert_eq!(n.ctl(a).home, 2);
        assert_eq!(n.ctl(b).share, Share::Valid);
        assert!(n.ctl(b).offset().is_some());
        assert!(!n.ctl(b).twin);
    }

    #[test]
    fn remote_diff_respects_ts_guard() {
        let mut n = small_node(64 * 1024);
        let a = n.register_object(64).unwrap();
        // Home wrote word 0 under ts 5 (guard seeded in prepare: this
        // node is home of a multi-writer object it also wrote).
        n.enter_cs(1);
        write_words(&mut n, a, &[(0, 50)]);
        let _ = n.exit_cs(1, 5);
        let _ = n.barrier_collect().unwrap();
        n.barrier_prepare(&[(1, a, 0)], 0).unwrap();
        // A remote writer with older ts must not clobber word 0 but may
        // write word 1.
        let mut older = WordDiff::default();
        older.runs.push(crate::diff::DiffRun {
            start: 0,
            words: vec![999, 111],
        });
        n.apply_remote_diff(a, &older, 3).unwrap();
        assert_eq!(read_word(&mut n, a, 0), 50);
        assert_eq!(read_word(&mut n, a, 1), 111);
        // A newer ts wins.
        let mut newer = WordDiff::default();
        newer.runs.push(crate::diff::DiffRun {
            start: 0,
            words: vec![1000],
        });
        n.apply_remote_diff(a, &newer, 9).unwrap();
        assert_eq!(read_word(&mut n, a, 0), 1000);
    }

    #[test]
    fn swap_accounting_invariant_holds_through_churn() {
        let mut n = small_node(32 * 1024);
        let a = n.register_object(9 * 1024).unwrap();
        let b = n.register_object(9 * 1024).unwrap();
        write_words(&mut n, a, &[(0, 1)]);
        write_words(&mut n, b, &[(0, 2)]); // evicts a
        let acct = n.swap_accounting();
        assert_eq!(
            acct.resident_logical + acct.swapped_logical,
            acct.materialized,
            "resident + swapped == allocated-and-materialized"
        );
        assert_eq!(acct.swapped_logical, 9 * 1024);
        // The dirty eviction wrote a compressed image: actual store
        // bytes are far below the logical 9 KB (constant-ish data).
        assert!(acct.store_resident > 0);
        assert!(acct.store_resident < acct.swapped_logical);
        let _ = read_word(&mut n, a, 0); // swap b out, a back in
        let acct = n.swap_accounting();
        assert_eq!(
            acct.resident_logical + acct.swapped_logical,
            acct.materialized
        );
    }

    #[test]
    fn batched_eviction_frees_multiple_victims_in_one_trip() {
        let store = Arc::new(MemStore::new(DiskModel {
            per_op: SimDuration::from_micros(100),
            write_bps: 50_000_000,
            read_bps: 50_000_000,
        }));
        let mut cfg = LotsConfig::small(64 * 1024);
        cfg.swap.batch_evict = 4;
        let mut n = NodeState::new(
            0,
            1,
            cfg,
            pentium4_2ghz(),
            store,
            SimClock::new(),
            NodeStats::new(),
        );
        // Lower half 32 KB: four 8001-byte mediums fit (rounded to
        // 8008); mapping a fifth evicts a whole batch of four.
        let objs: Vec<ObjectId> = (0..5).map(|_| n.register_object(8001).unwrap()).collect();
        for (k, &o) in objs.iter().take(4).enumerate() {
            write_words(&mut n, o, &[(0, k as u32 + 1)]);
        }
        let _ = read_word(&mut n, objs[4], 0);
        assert_eq!(n.stats.swaps_out(), 4, "one trip evicted the batch");
        assert_eq!(n.stats.swap_batches(), 1);
        for (k, &o) in objs.iter().take(4).enumerate() {
            assert_eq!(read_word(&mut n, o, 0), k as u32 + 1);
        }
    }

    #[test]
    fn free_tombstones_then_barrier_reclaims_and_reuses_the_slot() {
        let mut n = small_node(64 * 1024);
        let a = n.register_object(256).unwrap();
        let b = n.register_object(256).unwrap();
        write_words(&mut n, a, &[(0, 7)]);
        n.free_object(a, 256).unwrap();
        // Tombstoned: fenced off immediately, slot still consumed.
        assert!(matches!(
            n.begin_access(a, false, 1),
            Err(LotsError::UseAfterFree { .. })
        ));
        assert!(matches!(
            n.free_object(a, 256),
            Err(LotsError::UseAfterFree { .. })
        ));
        assert_eq!(n.object_count(), 2);
        // The write never becomes a notice; the free rides the barrier.
        let notices = n.barrier_collect().unwrap();
        assert!(notices.is_empty(), "freed object publishes nothing");
        let (frees, named) = n.take_lifecycle();
        assert_eq!(frees, vec![a]);
        assert!(named.is_empty());
        n.barrier_finish(&[], &frees, &[], 1).unwrap();
        assert_eq!(n.free_slots(), 1);
        assert_eq!(n.ctl(a).life, Life::Free);
        // Reuse: the next registration takes the reclaimed id.
        let c = n.register_object(64).unwrap();
        assert_eq!(c, a, "lowest reclaimed slot is reused");
        assert_eq!(n.object_count(), 2);
        assert_eq!(read_word(&mut n, c, 0), 0, "reused slot is zero-filled");
        let _ = b;
    }

    #[test]
    fn free_of_swapped_out_object_drops_the_disk_image() {
        let mut n = small_node(32 * 1024);
        let a = n.register_object(9 * 1024).unwrap();
        let b = n.register_object(9 * 1024).unwrap();
        write_words(&mut n, a, &[(0, 1)]);
        write_words(&mut n, b, &[(0, 2)]); // evicts dirty a to disk
        assert!(matches!(n.ctl(a).mapping, Mapping::OnDisk));
        let store_before = n.swapped_bytes();
        assert!(store_before > 0);
        n.free_object(a, 9 * 1024).unwrap();
        let (frees, _) = n.take_lifecycle();
        let _ = n.barrier_collect().unwrap();
        n.barrier_finish(&[(b, 0)], &frees, &[], 1).unwrap();
        assert_eq!(n.swapped_bytes(), 0, "freed image leaves the store");
        let acct = n.swap_accounting();
        assert_eq!(acct.freed_bytes, 9 * 1024);
        assert_eq!(
            acct.resident_logical + acct.swapped_logical + acct.dematerialized_cum,
            acct.materialized_cum
        );
        assert_eq!(n.stats.objects_freed(), 1);
    }

    #[test]
    fn bad_free_rejects_size_mismatch() {
        let mut n = small_node(64 * 1024);
        let a = n.register_object(256).unwrap();
        assert!(matches!(
            n.free_object(a, 128),
            Err(LotsError::BadFree { .. })
        ));
        assert_eq!(n.ctl(a).life, Life::Live);
    }

    #[test]
    fn named_commit_and_lookup_roundtrip() {
        let mut n = small_node(64 * 1024);
        n.stage_named(NamedAllocReq {
            name: "grid".into(),
            bytes: 64,
            elem_size: 4,
            len: 16,
            placement: Placement::RoundRobin,
            placement_explicit: false,
        })
        .unwrap();
        // Duplicate staging rejected before commit.
        assert!(matches!(
            n.stage_named(NamedAllocReq {
                name: "grid".into(),
                bytes: 4,
                elem_size: 4,
                len: 1,
                placement: Placement::RoundRobin,
                placement_explicit: false,
            }),
            Err(LotsError::DuplicateName { .. })
        ));
        // Not visible before the barrier.
        assert!(matches!(
            n.lookup_named("grid", 4),
            Err(LotsError::NameNotFound { .. })
        ));
        let (frees, named) = n.take_lifecycle();
        n.barrier_finish(&[], &frees, &named, 1).unwrap();
        let (id, len) = n.lookup_named("grid", 4).unwrap();
        assert_eq!(len, 16);
        assert_eq!(n.object_size(id), 64);
        // Wrong element size is a typed-lookup error.
        assert!(matches!(
            n.lookup_named("grid", 8),
            Err(LotsError::NameTypeMismatch { .. })
        ));
        // Freeing the named object removes the directory entry.
        n.free_object(id, 64).unwrap();
        let (frees, _) = n.take_lifecycle();
        n.barrier_finish(&[], &frees, &[], 2).unwrap();
        assert!(matches!(
            n.lookup_named("grid", 4),
            Err(LotsError::NameNotFound { .. })
        ));
    }

    #[test]
    fn placement_resolves_homes() {
        let store = Arc::new(MemStore::new(DiskModel {
            per_op: SimDuration::ZERO,
            write_bps: u64::MAX,
            read_bps: u64::MAX,
        }));
        let mut n = NodeState::new(
            1,
            4,
            LotsConfig::small(64 * 1024),
            pentium4_2ghz(),
            store,
            SimClock::new(),
            NodeStats::new(),
        );
        let rr = n.register_object_placed(64, Placement::RoundRobin).unwrap();
        assert_eq!(n.home_of(rr), rr.0 as usize % 4);
        assert!(!n.ctl(rr).home_pending);
        let fx = n.register_object_placed(64, Placement::Fixed(3)).unwrap();
        assert_eq!(n.home_of(fx), 3);
        let ft = n.register_object_placed(64, Placement::FirstTouch).unwrap();
        assert!(n.ctl(ft).home_pending);
        // The barrier's written list assigns the real home.
        n.barrier_finish(&[(ft, 2)], &[], &[], 1).unwrap();
        assert_eq!(n.home_of(ft), 2);
        assert!(!n.ctl(ft).home_pending);
    }

    fn striped_node(me: NodeId, n: usize, dmm: usize, seg: usize) -> NodeState {
        let store = Arc::new(MemStore::new(DiskModel {
            per_op: SimDuration::from_micros(100),
            write_bps: 50_000_000,
            read_bps: 50_000_000,
        }));
        let cfg = LotsConfig::small(dmm).with_striping(crate::config::Striping::segments_of(seg));
        NodeState::new(
            me,
            n,
            cfg,
            pentium4_2ghz(),
            store,
            SimClock::new(),
            NodeStats::new(),
        )
    }

    #[test]
    fn striped_registration_spreads_segment_homes() {
        let mut n = striped_node(0, 4, 256 * 1024, 1024);
        let id = n.register_object(10 * 1024).unwrap();
        let stripe = n.stripe_of(id).unwrap().clone();
        assert_eq!(stripe.children.len(), 10);
        assert_eq!(stripe.seg_bytes, 1024);
        // RoundRobin per segment: (parent + seg) % n.
        for (s, &c) in stripe.children.iter().enumerate() {
            let ctl = n.ctl(ObjectId(c));
            assert_eq!(ctl.home, (id.0 as usize + s) % 4);
            assert_eq!(ctl.parent, Some((id.0, s as u32)));
            assert_eq!(ctl.size, 1024);
        }
        // The parent never materializes; logical bytes count once.
        assert_eq!(n.ctl(id).mapping, Mapping::Unmapped);
        assert_eq!(n.total_object_bytes(), 10 * 1024);
    }

    #[test]
    fn small_objects_stay_unstriped_under_striping_config() {
        let mut n = striped_node(0, 4, 256 * 1024, 1024);
        let id = n.register_object(1024).unwrap();
        assert!(n.stripe_of(id).is_none());
        assert_eq!(read_word(&mut n, id, 0), 0);
    }

    #[test]
    fn consistent_hash_homes_are_deterministic_and_in_range() {
        let mut a = striped_node(0, 4, 256 * 1024, 1024);
        let mut b = striped_node(3, 4, 256 * 1024, 1024);
        let ida = a
            .register_object_placed(8 * 1024, Placement::ConsistentHash)
            .unwrap();
        let idb = b
            .register_object_placed(8 * 1024, Placement::ConsistentHash)
            .unwrap();
        assert_eq!(ida, idb);
        let ha: Vec<NodeId> = a
            .stripe_of(ida)
            .unwrap()
            .children
            .iter()
            .map(|&c| a.ctl(ObjectId(c)).home)
            .collect();
        let hb: Vec<NodeId> = b
            .stripe_of(idb)
            .unwrap()
            .children
            .iter()
            .map(|&c| b.ctl(ObjectId(c)).home)
            .collect();
        assert_eq!(ha, hb, "every node derives the same segment homes");
        assert!(ha.iter().all(|&h| h < 4));
        assert!(
            ha.iter().collect::<std::collections::HashSet<_>>().len() > 1,
            "hashing spreads 8 segments over more than one home: {ha:?}"
        );
    }

    #[test]
    fn fixed_placement_out_of_range_errors_at_alloc_time() {
        let mut n = striped_node(0, 4, 256 * 1024, 1024);
        let r = n.register_object_placed(64, Placement::Fixed(4));
        assert_eq!(
            r,
            Err(LotsError::BadPlacement { requested: 4, n: 4 }),
            "no panic, no consumed slot"
        );
        assert_eq!(n.object_count(), 0);
        // Striped path validates too, without leaking child slots.
        let r = n.register_object_placed(8 * 1024, Placement::Fixed(7));
        assert_eq!(r, Err(LotsError::BadPlacement { requested: 7, n: 4 }));
        assert_eq!(n.object_count(), 0);
        // Staged named allocations validate eagerly at staging time.
        let r = n.stage_named(NamedAllocReq {
            name: "bad".into(),
            bytes: 64,
            elem_size: 4,
            len: 16,
            placement: Placement::Fixed(99),
            placement_explicit: true,
        });
        assert_eq!(
            r,
            Err(LotsError::BadPlacement {
                requested: 99,
                n: 4
            })
        );
    }

    #[test]
    fn striped_range_access_pins_and_gathers_across_segments() {
        let mut n = striped_node(0, 1, 256 * 1024, 1024);
        let id = n.register_object(4 * 1024).unwrap();
        // Write a spanning range in one guard: bytes 1020..1032 cross
        // the seg 0 / seg 1 boundary.
        let range = 1020..1032;
        match n.begin_access_range(id, &range, true, 3).unwrap() {
            RangeAccess::Striped => {}
            other => panic!("unexpected {other:?}"),
        }
        n.striped_range_run(id, &range, true, |bytes| {
            assert_eq!(bytes.len(), 12);
            bytes.copy_from_slice(&[7u8; 12]);
        });
        // Both covered segments got twins and write notices.
        let stripe = n.stripe_of(id).unwrap().clone();
        assert!(n.ctl(ObjectId(stripe.children[0])).twin);
        assert!(n.ctl(ObjectId(stripe.children[1])).twin);
        assert!(!n.ctl(ObjectId(stripe.children[2])).twin);
        // Read back through a fresh guard.
        let readback = n.begin_access_range(id, &range, false, 1).unwrap();
        assert_eq!(readback, RangeAccess::Striped);
        let got = n.striped_range_run(id, &range, false, |bytes| bytes.to_vec());
        assert_eq!(got, vec![7u8; 12]);
        // Within-segment ranges run in place.
        let r2 = 0..8;
        assert_eq!(
            n.begin_access_range(id, &r2, false, 1).unwrap(),
            RangeAccess::Striped
        );
        let got = n.striped_range_run(id, &r2, false, |bytes| bytes.to_vec());
        assert_eq!(got, vec![0u8; 8]);
    }

    #[test]
    fn written_segment_serves_its_published_snapshot() {
        let mut n = striped_node(0, 1, 256 * 1024, 1024);
        let id = n.register_object(2 * 1024).unwrap();
        let seg0 = ObjectId(n.stripe_of(id).unwrap().children[0]);
        let range = 0..4;
        // Publish version 1 of segment 0 with word 0 = 5.
        let _ = n.begin_access_range(id, &range, true, 1).unwrap();
        n.striped_range_run(id, &range, true, |b| b.copy_from_slice(&5u32.to_le_bytes()));
        let _ = n.barrier_collect().unwrap();
        n.barrier_finish(&[(seg0, 0)], &[], &[], 1).unwrap();
        assert_eq!(n.stats.versions_published(), 1);
        assert_eq!(n.stats.versions_reclaimed(), 1, "the version-0 snapshot");
        // Start an in-flight write (word 0 = 9, not yet published).
        let _ = n.begin_access_range(id, &range, true, 1).unwrap();
        n.striped_range_run(id, &range, true, |b| b.copy_from_slice(&9u32.to_le_bytes()));
        // A reader's fetch sees the *published* version 1 value.
        let (bytes, version) = n.serve_object(seg0).unwrap();
        assert_eq!(version, 1);
        assert_eq!(&bytes[0..4], &5u32.to_le_bytes());
        // The next barrier publishes 9 and reclaims the old snapshot.
        let _ = n.barrier_collect().unwrap();
        n.barrier_finish(&[(seg0, 0)], &[], &[], 2).unwrap();
        assert_eq!(n.stats.versions_published(), 2);
        assert_eq!(n.stats.versions_reclaimed(), 2);
        let (bytes, version) = n.serve_object(seg0).unwrap();
        assert_eq!(version, 2);
        assert_eq!(&bytes[0..4], &9u32.to_le_bytes());
    }

    #[test]
    fn freeing_a_striped_parent_reclaims_the_whole_family() {
        let mut n = striped_node(0, 1, 256 * 1024, 1024);
        let id = n.register_object(4 * 1024).unwrap();
        let slots = n.object_count();
        assert_eq!(slots, 5, "parent + 4 children");
        n.free_object(id, 4 * 1024).unwrap();
        assert!(matches!(
            n.begin_access_range(id, &(0..4), false, 1),
            Err(LotsError::UseAfterFree { .. })
        ));
        let (frees, _) = n.take_lifecycle();
        assert_eq!(frees.len(), 5);
        let _ = n.barrier_collect().unwrap();
        n.barrier_finish(&[], &frees, &[], 1).unwrap();
        assert_eq!(n.free_slots(), 5);
        assert_eq!(n.stats.objects_freed(), 1, "one free event per call");
        assert_eq!(n.swap_accounting().freed_bytes, 4 * 1024);
        // Reuse: a fresh striped alloc reclaims the same slots.
        let id2 = n.register_object(4 * 1024).unwrap();
        assert_eq!(n.object_count(), 5);
        let _ = id2;
    }

    #[test]
    fn striped_scan_prefetches_next_segment() {
        // dmm 32 KB: lower half 16 KB holds one 9 KB segment at a
        // time, so a sequential scan of the striped object swaps per
        // segment; the (parent, seg) stride predictor must hit.
        let store = Arc::new(MemStore::new(DiskModel {
            per_op: SimDuration::from_micros(100),
            write_bps: 50_000_000,
            read_bps: 50_000_000,
        }));
        let mut cfg = LotsConfig::small(32 * 1024)
            .with_striping(crate::config::Striping::segments_of(9 * 1024));
        cfg.swap.read_ahead = true;
        let mut n = NodeState::new(
            0,
            1,
            cfg,
            pentium4_2ghz(),
            store,
            SimClock::new(),
            NodeStats::new(),
        );
        let id = n.register_object(6 * 9 * 1024).unwrap();
        for pass in 0..3u32 {
            for s in 0..6usize {
                let at = s * 9 * 1024;
                let range = at..at + 4;
                match n.begin_access_range(id, &range, true, 1).unwrap() {
                    RangeAccess::Striped => {}
                    other => panic!("single-node scan never fetches: {other:?}"),
                }
                n.striped_range_run(id, &range, true, |b| {
                    b.copy_from_slice(&(pass + s as u32).to_le_bytes())
                });
            }
        }
        assert!(
            n.stats.prefetch_hits() > 0,
            "sequential striped scan must hit the read-ahead buffer"
        );
        for s in 0..6usize {
            let at = s * 9 * 1024;
            let range = at..at + 4;
            let _ = n.begin_access_range(id, &range, false, 1).unwrap();
            let got = n.striped_range_run(id, &range, false, |b| b.to_vec());
            assert_eq!(got, (2 + s as u32).to_le_bytes());
        }
    }

    #[test]
    fn read_ahead_prefetches_the_strided_next_object() {
        let store = Arc::new(MemStore::new(DiskModel {
            per_op: SimDuration::from_micros(100),
            write_bps: 50_000_000,
            read_bps: 50_000_000,
        }));
        let mut cfg = LotsConfig::small(32 * 1024);
        cfg.swap.read_ahead = true;
        let mut n = NodeState::new(
            0,
            1,
            cfg,
            pentium4_2ghz(),
            store,
            SimClock::new(),
            NodeStats::new(),
        );
        // Three 9 KB objects through a 16 KB lower half: streaming
        // over them swaps constantly with stride 1.
        let objs: Vec<ObjectId> = (0..3)
            .map(|_| n.register_object(9 * 1024).unwrap())
            .collect();
        for pass in 0..3u32 {
            for (k, &o) in objs.iter().enumerate() {
                write_words(&mut n, o, &[(1, pass + k as u32)]);
            }
        }
        assert!(
            n.stats.prefetch_hits() > 0,
            "strided streaming must hit the read-ahead buffer"
        );
        for (k, &o) in objs.iter().enumerate() {
            assert_eq!(read_word(&mut n, o, 1), 2 + k as u32);
        }
    }
}
