//! Word-granular diffs (§3.5).
//!
//! LOTS follows TreadMarks in shipping *diffs* — runtime encodings of
//! the words an interval changed — instead of whole objects. A diff is
//! computed by comparing the object against its twin; it is applied by
//! replaying the changed words. The wire encoding groups consecutive
//! changed words into runs: `[start_word u32][len u32][len × u32]`.

use bytes::{BufMut, Bytes, BytesMut};

/// One run of consecutive changed words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRun {
    /// Index of the first changed word.
    pub start: u32,
    /// New values for words `start..start+len`.
    pub words: Vec<u32>,
}

/// A word-granular object diff.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WordDiff {
    /// Contiguous runs of changed words, ordered by start word.
    pub runs: Vec<DiffRun>,
}

impl WordDiff {
    /// Compare `current` against `twin` (equal lengths, word-aligned)
    /// and collect the changed words.
    pub fn compute(twin: &[u8], current: &[u8]) -> WordDiff {
        assert_eq!(twin.len(), current.len(), "twin/current size mismatch");
        assert_eq!(current.len() % 4, 0, "objects are word-aligned");
        let mut runs: Vec<DiffRun> = Vec::new();
        let words = current.len() / 4;
        let mut i = 0usize;
        while i < words {
            if twin[i * 4..i * 4 + 4] == current[i * 4..i * 4 + 4] {
                i += 1;
                continue;
            }
            let start = i;
            let mut vals = Vec::new();
            while i < words && twin[i * 4..i * 4 + 4] != current[i * 4..i * 4 + 4] {
                vals.push(u32::from_le_bytes(
                    current[i * 4..i * 4 + 4].try_into().expect("word"),
                ));
                i += 1;
            }
            runs.push(DiffRun {
                start: start as u32,
                words: vals,
            });
        }
        WordDiff { runs }
    }

    /// Overwrite `target` with this diff's words.
    pub fn apply(&self, target: &mut [u8]) {
        for run in &self.runs {
            for (k, w) in run.words.iter().enumerate() {
                let off = (run.start as usize + k) * 4;
                target[off..off + 4].copy_from_slice(&w.to_le_bytes());
            }
        }
    }

    /// Is there anything in the diff?
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of changed words.
    pub fn changed_words(&self) -> usize {
        self.runs.iter().map(|r| r.words.len()).sum()
    }

    /// Bytes this diff occupies on the wire.
    pub fn wire_size(&self) -> usize {
        4 + self
            .runs
            .iter()
            .map(|r| 8 + 4 * r.words.len())
            .sum::<usize>()
    }

    /// Encode to the wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        buf.put_u32_le(self.runs.len() as u32);
        for run in &self.runs {
            buf.put_u32_le(run.start);
            buf.put_u32_le(run.words.len() as u32);
            for w in &run.words {
                buf.put_u32_le(*w);
            }
        }
        buf.freeze()
    }

    /// Decode from the wire format.
    pub fn decode(data: &[u8]) -> WordDiff {
        let nruns = u32::from_le_bytes(data[0..4].try_into().expect("count")) as usize;
        let mut pos = 4usize;
        let mut runs = Vec::with_capacity(nruns);
        for _ in 0..nruns {
            let start = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("start"));
            let len = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("len")) as usize;
            pos += 8;
            let mut words = Vec::with_capacity(len);
            for _ in 0..len {
                words.push(u32::from_le_bytes(
                    data[pos..pos + 4].try_into().expect("word"),
                ));
                pos += 4;
            }
            runs.push(DiffRun { start, words });
        }
        WordDiff { runs }
    }

    /// Iterate `(word_index, value)` pairs.
    pub fn iter_words(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.runs.iter().flat_map(|r| {
            r.words
                .iter()
                .enumerate()
                .map(move |(k, &w)| (r.start + k as u32, w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_buffers_give_empty_diff() {
        let a = vec![7u8; 64];
        let d = WordDiff::compute(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.changed_words(), 0);
        assert_eq!(d.wire_size(), 4);
    }

    #[test]
    fn sparse_update_produces_small_diff() {
        let twin = vec![0u8; 4096];
        let mut cur = twin.clone();
        cur[100 * 4..100 * 4 + 4].copy_from_slice(&99u32.to_le_bytes());
        let d = WordDiff::compute(&twin, &cur);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.changed_words(), 1);
        // "If the object update is sparse, sending diffs is more
        //  favorable than sending whole objects" (§3.5).
        assert!(d.wire_size() < cur.len() / 10);
    }

    #[test]
    fn consecutive_changes_coalesce_into_one_run() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        for w in 4..9 {
            cur[w * 4..w * 4 + 4].copy_from_slice(&(w as u32).to_le_bytes());
        }
        let d = WordDiff::compute(&twin, &cur);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].start, 4);
        assert_eq!(d.runs[0].words, vec![4, 5, 6, 7, 8]);
    }

    #[test]
    fn apply_reconstructs_current() {
        let twin: Vec<u8> = (0..256u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut cur = twin.clone();
        for w in [0usize, 17, 18, 19, 255] {
            cur[w * 4..w * 4 + 4].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        }
        let d = WordDiff::compute(&twin, &cur);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let twin = vec![0u8; 400];
        let mut cur = twin.clone();
        for w in [1usize, 2, 3, 50, 98, 99] {
            cur[w * 4..w * 4 + 4].copy_from_slice(&((w * 3) as u32).to_le_bytes());
        }
        let d = WordDiff::compute(&twin, &cur);
        let enc = d.encode();
        assert_eq!(enc.len(), d.wire_size());
        let dec = WordDiff::decode(&enc);
        assert_eq!(dec, d);
    }

    #[test]
    fn iter_words_lists_every_change() {
        let twin = vec![0u8; 32];
        let mut cur = twin.clone();
        cur[0..4].copy_from_slice(&1u32.to_le_bytes());
        cur[28..32].copy_from_slice(&2u32.to_le_bytes());
        let d = WordDiff::compute(&twin, &cur);
        let pairs: Vec<(u32, u32)> = d.iter_words().collect();
        assert_eq!(pairs, vec![(0, 1), (7, 2)]);
    }

    #[test]
    fn dense_update_diff_larger_than_object() {
        // Fully rewritten object: diff ≥ data (run headers) — the case
        // where whole-object transfer would win (§5 future work).
        let twin = vec![0u8; 64];
        let cur = vec![1u8; 64];
        let d = WordDiff::compute(&twin, &cur);
        assert_eq!(d.changed_words(), 16);
        assert!(d.wire_size() >= 64);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_lengths_panic() {
        WordDiff::compute(&[0u8; 8], &[0u8; 12]);
    }
}
