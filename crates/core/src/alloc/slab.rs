//! Small-object page packing (§3.2).
//!
//! "For small objects of the same size, LOTS tries its best to allocate
//! them in the same page. This will reduce the number of page faults …
//! for example, when an application is traversing a linked list, in
//! which every element is of the same size." Pages are carved out of
//! the upper half of the DMM area; each page serves one slot size.

use std::collections::{BTreeSet, HashMap};

use crate::layout::PAGE_BYTES;

/// Slot-allocation state of one 4 KB page dedicated to `slot_size`.
#[derive(Debug)]
struct PageState {
    slot_size: usize,
    slots: usize,
    free_slots: BTreeSet<usize>,
}

impl PageState {
    fn new(slot_size: usize) -> PageState {
        let slots = PAGE_BYTES / slot_size;
        PageState {
            slot_size,
            slots,
            free_slots: (0..slots).collect(),
        }
    }

    fn full(&self) -> bool {
        self.free_slots.is_empty()
    }

    fn empty(&self) -> bool {
        self.free_slots.len() == self.slots
    }
}

/// Slab allocator over pages provided by the caller.
///
/// The caller owns the page supply (a [`Region`] in the upper DMM
/// half); `SlabPages` asks for pages through the closure passed to
/// [`SlabPages::alloc`] and reports drained pages from
/// [`SlabPages::free`] so they can be returned.
///
/// [`Region`]: super::region::Region
#[derive(Debug, Default)]
pub struct SlabPages {
    /// Pages (by base offset) with at least one free slot, per slot size.
    open: HashMap<usize, BTreeSet<usize>>,
    /// All live pages by base offset.
    pages: HashMap<usize, PageState>,
}

impl SlabPages {
    /// An empty slab directory.
    pub fn new() -> SlabPages {
        SlabPages::default()
    }

    /// Slot size a small request of `size` bytes uses.
    pub fn slot_size(size: usize) -> usize {
        super::classes::round_up(size)
    }

    /// Allocate a slot for a small object of `size` bytes. `get_page`
    /// supplies a fresh page-aligned `PAGE_BYTES` extent when the open
    /// pages of this slot size are all full; it may fail (region full).
    pub fn alloc(
        &mut self,
        size: usize,
        get_page: impl FnOnce() -> Option<usize>,
    ) -> Option<usize> {
        let slot = Self::slot_size(size);
        debug_assert!(slot <= PAGE_BYTES);
        let open = self.open.entry(slot).or_default();
        let page_off = match open.iter().next() {
            Some(&p) => p,
            None => {
                let p = get_page()?;
                debug_assert_eq!(p % PAGE_BYTES, 0, "slab pages must be page-aligned");
                self.pages.insert(p, PageState::new(slot));
                open.insert(p);
                p
            }
        };
        let page = self.pages.get_mut(&page_off).expect("open page exists");
        let idx = *page.free_slots.iter().next().expect("open page has slots");
        page.free_slots.remove(&idx);
        if page.full() {
            self.open
                .get_mut(&slot)
                .expect("slot class exists")
                .remove(&page_off);
        }
        Some(page_off + idx * slot)
    }

    /// Free the slot at `offset`; returns `Some(page_offset)` when the
    /// whole page drained and should go back to the region.
    pub fn free(&mut self, offset: usize) -> Option<usize> {
        let page_off = offset / PAGE_BYTES * PAGE_BYTES;
        let page = self
            .pages
            .get_mut(&page_off)
            .unwrap_or_else(|| panic!("freeing slot in unknown slab page {page_off}"));
        let idx = (offset - page_off) / page.slot_size;
        debug_assert_eq!(
            (offset - page_off) % page.slot_size,
            0,
            "misaligned slot free"
        );
        let was_full = page.full();
        assert!(
            page.free_slots.insert(idx),
            "double free of slab slot {offset}"
        );
        let slot = page.slot_size;
        if page.empty() {
            self.pages.remove(&page_off);
            self.open.entry(slot).or_default().remove(&page_off);
            Some(page_off)
        } else {
            if was_full {
                self.open.entry(slot).or_default().insert(page_off);
            }
            None
        }
    }

    /// Is `offset` inside a live slab page?
    pub fn owns(&self, offset: usize) -> bool {
        self.pages.contains_key(&(offset / PAGE_BYTES * PAGE_BYTES))
    }

    /// Live slab pages (diagnostics).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_size_objects_share_a_page() {
        let mut s = SlabPages::new();
        let mut next_page = 0usize;
        let mut supply = || {
            let p = next_page;
            next_page += PAGE_BYTES;
            Some(p)
        };
        // 40-byte "linked list nodes" (the paper's example).
        let a = s.alloc(40, &mut supply).unwrap();
        let b = s.alloc(40, &mut supply).unwrap();
        let c = s.alloc(33, &mut supply).unwrap(); // rounds to 40
        assert_eq!(a / PAGE_BYTES, b / PAGE_BYTES);
        assert_eq!(a / PAGE_BYTES, c / PAGE_BYTES);
        assert_eq!(s.page_count(), 1);
    }

    #[test]
    fn different_sizes_use_different_pages() {
        let mut s = SlabPages::new();
        let mut next = 0usize;
        let a = s
            .alloc(40, || {
                next += PAGE_BYTES;
                Some(next - PAGE_BYTES)
            })
            .unwrap();
        let b = s
            .alloc(104, || {
                next += PAGE_BYTES;
                Some(next - PAGE_BYTES)
            })
            .unwrap();
        assert_ne!(a / PAGE_BYTES, b / PAGE_BYTES);
        assert_eq!(s.page_count(), 2);
    }

    #[test]
    fn page_fills_then_new_page() {
        let mut s = SlabPages::new();
        let per_page = PAGE_BYTES / 512;
        let mut next = 0usize;
        let mut supply_calls = 0;
        let mut offsets = Vec::new();
        for _ in 0..per_page + 1 {
            offsets.push(
                s.alloc(512, || {
                    supply_calls += 1;
                    next += PAGE_BYTES;
                    Some(next - PAGE_BYTES)
                })
                .unwrap(),
            );
        }
        assert_eq!(supply_calls, 2);
        assert_eq!(s.page_count(), 2);
        // All offsets distinct.
        let set: std::collections::HashSet<_> = offsets.iter().collect();
        assert_eq!(set.len(), offsets.len());
    }

    #[test]
    fn drained_page_is_returned() {
        let mut s = SlabPages::new();
        let a = s.alloc(1024, || Some(0)).unwrap();
        let b = s.alloc(1024, || unreachable!()).unwrap();
        assert_eq!(s.free(a), None);
        assert_eq!(s.free(b), Some(0));
        assert_eq!(s.page_count(), 0);
        assert!(!s.owns(0));
    }

    #[test]
    fn refill_reuses_slot_of_freed_object() {
        let mut s = SlabPages::new();
        let a = s.alloc(256, || Some(PAGE_BYTES * 3)).unwrap();
        let _b = s.alloc(256, || unreachable!("page still open")).unwrap();
        assert_eq!(s.free(a), None, "page still holds _b");
        let c = s.alloc(256, || unreachable!("page still open")).unwrap();
        assert_eq!(a, c, "freed slot is reused first");
    }

    #[test]
    fn supply_failure_propagates() {
        let mut s = SlabPages::new();
        assert!(s.alloc(64, || None).is_none());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let mut s = SlabPages::new();
        let a = s.alloc(64, || Some(0)).unwrap();
        let _b = s.alloc(64, || unreachable!()).unwrap();
        s.free(a);
        s.free(a);
    }
}
