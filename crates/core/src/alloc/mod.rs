//! The LOTS memory allocator (§3.2, Figure 4).
//!
//! The DMM arena is split in half. The upper half serves small objects
//! through page-packing slabs; in the lower half, medium objects grow
//! downward from the middle and large objects upward from the bottom —
//! the space-efficient placement policy of §3.2. Free/used blocks are
//! organized through the 1024 size-class queues of Figure 4 with
//! approximate best-fit selection.

pub mod classes;
pub mod region;
pub mod slab;

use std::collections::HashMap;

use crate::config::FitPolicy;
use crate::layout::PAGE_BYTES;
use classes::round_up;
use region::{Dir, Region};
use slab::SlabPages;

/// A point-in-time snapshot of the allocator's fragmentation state —
/// the §3.2 health metrics surfaced through `NodeStats`, `NodeReport`
/// and `BENCH_summary` (Sears & van Ingen: large-object stores live or
/// die by their allocate/free churn behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FragStats {
    /// Bytes currently free across both DMM regions.
    pub free_bytes: u64,
    /// Largest single free extent (the biggest object mappable without
    /// swapping).
    pub largest_hole: u64,
    /// External fragmentation in permille: `1000 × (1 − largest_hole /
    /// free_bytes)`, 0 when nothing is free. 0 means all free space is
    /// one hole; 999 means the free space is shattered.
    pub external_frag_permille: u64,
}

impl FragStats {
    /// Compute the ratio form from the two gauges.
    pub fn from_gauges(free_bytes: u64, largest_hole: u64) -> FragStats {
        let external_frag_permille = (largest_hole * 1000)
            .checked_div(free_bytes)
            .map_or(0, |filled| 1000 - filled);
        FragStats {
            free_bytes,
            largest_hole,
            external_frag_permille,
        }
    }
}

/// Allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The object can never fit (exceeds its region's capacity).
    TooLarge {
        /// Requested bytes.
        size: usize,
        /// Largest size this allocator can ever satisfy.
        max: usize,
    },
    /// No contiguous space right now — the mapper must swap (§3.3).
    NoSpace {
        /// Requested bytes.
        size: usize,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::TooLarge { size, max } => {
                write!(
                    f,
                    "object of {size} bytes exceeds maximum object size {max}"
                )
            }
            AllocError::NoSpace { size } => {
                write!(
                    f,
                    "no contiguous DMM space for {size} bytes (swap required)"
                )
            }
        }
    }
}

impl std::error::Error for AllocError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Small,
    LowerBlock,
}

/// Allocator over one node's DMM arena.
#[derive(Debug)]
pub struct DmmAllocator {
    lower: Region,
    upper: Region,
    slabs: SlabPages,
    kinds: HashMap<usize, Kind>,
    small_threshold: usize,
    large_threshold: usize,
    capacity: usize,
    fit: FitPolicy,
}

impl DmmAllocator {
    /// Build an allocator for an arena of `capacity` bytes with the
    /// default best-fit extent selection.
    /// `small_threshold`/`large_threshold` come from [`LotsConfig`].
    ///
    /// [`LotsConfig`]: crate::config::LotsConfig
    pub fn new(capacity: usize, small_threshold: usize, large_threshold: usize) -> DmmAllocator {
        DmmAllocator::with_fit(
            capacity,
            small_threshold,
            large_threshold,
            FitPolicy::BestFit,
        )
    }

    /// Build an allocator with an explicit [`FitPolicy`] (see
    /// [`crate::config::AllocConfig`]).
    pub fn with_fit(
        capacity: usize,
        small_threshold: usize,
        large_threshold: usize,
        fit: FitPolicy,
    ) -> DmmAllocator {
        assert!(capacity >= 2 * PAGE_BYTES, "arena too small to partition");
        assert!(small_threshold <= PAGE_BYTES);
        assert!(small_threshold <= large_threshold);
        // Page-align the boundary so slab pages are page-aligned.
        let half = capacity / 2 / PAGE_BYTES * PAGE_BYTES;
        DmmAllocator {
            lower: Region::new(0, half),
            upper: Region::new(half, capacity - half),
            slabs: SlabPages::new(),
            kinds: HashMap::new(),
            small_threshold,
            large_threshold,
            capacity,
            fit,
        }
    }

    /// Allocate `size` bytes; returns the arena offset.
    pub fn alloc(&mut self, size: usize) -> Result<usize, AllocError> {
        assert!(size > 0);
        let rounded = round_up(size);
        let fit = self.fit;
        let offset = if rounded < self.small_threshold {
            let upper = &mut self.upper;
            self.slabs
                .alloc(rounded, || upper.alloc(PAGE_BYTES, Dir::Low, fit))
                .map(|o| (o, Kind::Small))
        } else {
            if rounded > self.max_object_size() {
                return Err(AllocError::TooLarge {
                    size: rounded,
                    max: self.max_object_size(),
                });
            }
            let dir = if rounded >= self.large_threshold {
                Dir::Low // large: increasing addresses of the lower half
            } else {
                Dir::High // medium: decreasing addresses of the lower half
            };
            self.lower
                .alloc(rounded, dir, fit)
                .map(|o| (o, Kind::LowerBlock))
        };
        match offset {
            Some((o, kind)) => {
                self.kinds.insert(o, kind);
                Ok(o)
            }
            None => Err(AllocError::NoSpace { size: rounded }),
        }
    }

    /// Free the block at `offset`.
    pub fn free(&mut self, offset: usize) {
        match self.kinds.remove(&offset) {
            Some(Kind::Small) => {
                if let Some(page) = self.slabs.free(offset) {
                    self.upper.free(page);
                }
            }
            Some(Kind::LowerBlock) => self.lower.free(offset),
            None => panic!("freeing unknown offset {offset}"),
        }
    }

    /// Largest object the placement policy can ever satisfy (bounded by
    /// the lower half; the paper's bound is the whole 512 MB DMM area —
    /// see DESIGN.md for the half-region deviation).
    pub fn max_object_size(&self) -> usize {
        self.lower.free_bytes() + self.lower.used_bytes()
    }

    /// Total bytes managed by the allocator.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated across both regions.
    pub fn used_bytes(&self) -> usize {
        self.lower.used_bytes() + self.upper.used_bytes()
    }

    /// Largest contiguous free extent in the lower half (drives the
    /// swap decision for medium/large objects).
    pub fn largest_free_lower(&self) -> usize {
        self.lower.largest_free()
    }

    /// Largest contiguous free extent anywhere in the arena.
    pub fn largest_free(&self) -> usize {
        self.lower.largest_free().max(self.upper.largest_free())
    }

    /// Snapshot the fragmentation gauges: total free bytes and largest
    /// hole over the whole arena, with the external-fragmentation
    /// ratio computed over the *lower* region only — the upper half is
    /// slab-packed, so its fragmentation is internal by construction
    /// and would dilute the ratio.
    pub fn frag_stats(&self) -> FragStats {
        let lower = FragStats::from_gauges(
            self.lower.free_bytes() as u64,
            self.lower.largest_free() as u64,
        );
        FragStats {
            free_bytes: (self.capacity - self.used_bytes()) as u64,
            largest_hole: self.largest_free() as u64,
            external_frag_permille: lower.external_frag_permille,
        }
    }

    /// Invariant check for tests.
    pub fn check_invariants(&self) {
        self.lower.check_invariants();
        self.upper.check_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc_128k() -> DmmAllocator {
        DmmAllocator::new(128 * 1024, 1024, 16 * 1024)
    }

    #[test]
    fn small_objects_go_to_upper_half() {
        let mut a = alloc_128k();
        let o = a.alloc(64).unwrap();
        assert!(o >= 64 * 1024, "small object at {o}, expected upper half");
    }

    #[test]
    fn medium_objects_grow_downward_in_lower_half() {
        let mut a = alloc_128k();
        let m1 = a.alloc(4096).unwrap();
        let m2 = a.alloc(4096).unwrap();
        assert!(m1 < 64 * 1024);
        assert_eq!(m1, 64 * 1024 - 4096);
        assert_eq!(m2, m1 - 4096);
    }

    #[test]
    fn large_objects_grow_upward_in_lower_half() {
        let mut a = alloc_128k();
        let l1 = a.alloc(16 * 1024).unwrap();
        let l2 = a.alloc(16 * 1024).unwrap();
        assert_eq!(l1, 0);
        assert_eq!(l2, 16 * 1024);
    }

    #[test]
    fn three_classes_coexist_per_policy() {
        let mut a = alloc_128k();
        let small = a.alloc(100).unwrap();
        let medium = a.alloc(8 * 1024).unwrap();
        let large = a.alloc(20 * 1024).unwrap();
        assert!(small >= 64 * 1024);
        assert!((32 * 1024..64 * 1024).contains(&medium));
        assert_eq!(large, 0);
        a.check_invariants();
    }

    #[test]
    fn free_and_reuse() {
        let mut a = alloc_128k();
        let m = a.alloc(4096).unwrap();
        a.free(m);
        let m2 = a.alloc(4096).unwrap();
        assert_eq!(m, m2);
        a.check_invariants();
    }

    #[test]
    fn exhaustion_is_no_space() {
        let mut a = alloc_128k();
        // Lower half is 64 KB; two 30 KB larges fit, a third cannot.
        a.alloc(30 * 1024).unwrap();
        a.alloc(30 * 1024).unwrap();
        match a.alloc(30 * 1024) {
            Err(AllocError::NoSpace { .. }) => {}
            other => panic!("expected NoSpace, got {other:?}"),
        }
    }

    #[test]
    fn oversized_object_rejected_permanently() {
        let mut a = alloc_128k();
        match a.alloc(100 * 1024) {
            Err(AllocError::TooLarge { max, .. }) => assert_eq!(max, 64 * 1024),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn small_objects_fill_pages_before_new_page() {
        let mut a = alloc_128k();
        let offs: Vec<usize> = (0..10).map(|_| a.alloc(400).unwrap()).collect();
        let pages: std::collections::HashSet<usize> = offs.iter().map(|o| o / PAGE_BYTES).collect();
        assert_eq!(pages.len(), 1, "ten 400-byte objects fit one page");
        // 4096/400->408 slot => 10 slots/page; the 11th opens a page.
        let extra = a.alloc(400).unwrap();
        assert!(!pages.contains(&(extra / PAGE_BYTES)));
        a.check_invariants();
    }

    #[test]
    fn freeing_all_smalls_returns_pages() {
        let mut a = alloc_128k();
        let used0 = a.used_bytes();
        let offs: Vec<usize> = (0..20).map(|_| a.alloc(256).unwrap()).collect();
        for o in offs {
            a.free(o);
        }
        assert_eq!(a.used_bytes(), used0);
        a.check_invariants();
    }

    #[test]
    #[should_panic(expected = "unknown offset")]
    fn free_unknown_offset_panics() {
        let mut a = alloc_128k();
        a.free(12345);
    }

    #[test]
    fn used_bytes_tracks_all_classes() {
        let mut a = alloc_128k();
        a.alloc(100).unwrap(); // small: page charged to upper
        a.alloc(8 * 1024).unwrap();
        a.alloc(20 * 1024).unwrap();
        assert_eq!(a.used_bytes(), PAGE_BYTES + 8 * 1024 + 20 * 1024);
    }

    #[test]
    fn first_fit_reuses_the_nearest_hole_not_the_snuggest() {
        // Large class grows upward: carve [used 16K][hole 16K][used
        // 16K][free tail], then allocate 16K twice — first fit takes
        // the lowest-addressed hole first, then the tail. Best fit
        // would agree on the first but the test pins the address-order
        // scan.
        let mut a = DmmAllocator::with_fit(128 * 1024, 1024, 16 * 1024, FitPolicy::FirstFit);
        let _keep0 = a.alloc(16 * 1024).unwrap();
        let hole = a.alloc(16 * 1024).unwrap();
        let keep1 = a.alloc(16 * 1024).unwrap();
        a.free(hole);
        let b = a.alloc(16 * 1024).unwrap();
        assert_eq!(b, hole, "first fit takes the lowest-addressed hole");
        let c = a.alloc(16 * 1024).unwrap();
        assert_eq!(c, keep1 + 16 * 1024, "then the tail");
        a.check_invariants();
    }

    #[test]
    fn frag_stats_track_holes() {
        let mut a = alloc_128k();
        let whole = a.frag_stats();
        assert_eq!(
            whole.external_frag_permille, 0,
            "untouched arena: one hole per region"
        );
        let blocks: Vec<usize> = (0..4).map(|_| a.alloc(8 * 1024).unwrap()).collect();
        a.free(blocks[0]);
        a.free(blocks[2]);
        let frag = a.frag_stats();
        assert_eq!(frag.free_bytes, (128 * 1024 - 2 * 8 * 1024) as u64);
        assert!(
            frag.largest_hole >= 32 * 1024,
            "large-class space still contiguous"
        );
        assert!(frag.external_frag_permille > 0, "interleaved frees shatter");
    }

    #[test]
    fn frag_stats_from_gauges_edge_cases() {
        assert_eq!(FragStats::from_gauges(0, 0).external_frag_permille, 0);
        assert_eq!(FragStats::from_gauges(100, 100).external_frag_permille, 0);
        assert_eq!(FragStats::from_gauges(100, 25).external_frag_permille, 750);
    }
}
