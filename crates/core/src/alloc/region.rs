//! Extent allocator for one region of the DMM area.
//!
//! Free extents are indexed two ways: by address (for coalescing on
//! free) and through the Figure 4 size-class queues (for approximate
//! best-fit allocation). Used blocks are tracked in the used queue, as
//! in the figure. Allocation direction is a preference — medium objects
//! take the *highest*-addressed fit, large objects the *lowest* (§3.2:
//! "medium-sized objects are assigned in decreasing addresses of the
//! lower half, and large-sized objects are allocated in increasing
//! addresses").

use std::collections::{BTreeMap, BTreeSet};

use crate::config::FitPolicy;

use super::classes::{class_of, NUM_CLASSES};

/// Preferred end of the region for an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Allocate from the low end (small/medium classes).
    Low,
    /// Allocate from the high end (large class).
    High,
}

/// One contiguous region managed by extent lists + size-class queues.
#[derive(Debug)]
pub struct Region {
    base: usize,
    size: usize,
    /// Free extents by class: ordered (size, offset) for best-fit.
    free_by_class: Vec<BTreeSet<(usize, usize)>>,
    /// Free extents by offset, for coalescing.
    free_by_offset: BTreeMap<usize, usize>,
    /// Used blocks by offset → size (Fig. 4's used queue).
    used: BTreeMap<usize, usize>,
    used_bytes: usize,
}

impl Region {
    /// A region covering `[base, base + size)`.
    pub fn new(base: usize, size: usize) -> Region {
        let mut r = Region {
            base,
            size,
            free_by_class: (0..NUM_CLASSES).map(|_| BTreeSet::new()).collect(),
            free_by_offset: BTreeMap::new(),
            used: BTreeMap::new(),
            used_bytes: 0,
        };
        if size > 0 {
            r.insert_free(base, size);
        }
        r
    }

    fn insert_free(&mut self, offset: usize, len: usize) {
        debug_assert!(len > 0);
        self.free_by_class[class_of(len)].insert((len, offset));
        self.free_by_offset.insert(offset, len);
    }

    fn remove_free(&mut self, offset: usize, len: usize) {
        let removed = self.free_by_class[class_of(len)].remove(&(len, offset));
        debug_assert!(removed, "free extent ({offset},{len}) missing from class");
        self.free_by_offset.remove(&offset);
    }

    /// Allocate `size` bytes (already grain-rounded) under `fit`.
    ///
    /// [`FitPolicy::BestFit`] scans size classes from the request's
    /// class upward; inside the first class with a fitting extent it
    /// takes the smallest fitting extent (ties broken toward `dir`),
    /// then splits it leaving the remainder on the side away from
    /// `dir`. [`FitPolicy::FirstFit`] takes the fitting extent nearest
    /// the preferred end in address order.
    pub fn alloc(&mut self, size: usize, dir: Dir, fit: FitPolicy) -> Option<usize> {
        debug_assert!(size > 0);
        let chosen: Option<(usize, usize)> = match fit {
            FitPolicy::BestFit => self.best_fit(size, dir),
            FitPolicy::FirstFit => self.first_fit(size, dir),
        };
        let (len, offset) = chosen?;
        self.remove_free(offset, len);
        let alloc_off = match dir {
            Dir::Low => offset,
            Dir::High => offset + len - size,
        };
        if len > size {
            match dir {
                Dir::Low => self.insert_free(offset + size, len - size),
                Dir::High => self.insert_free(offset, len - size),
            }
        }
        self.used.insert(alloc_off, size);
        self.used_bytes += size;
        Some(alloc_off)
    }

    /// The Figure 4 best-fit scan: smallest fitting extent, ties toward
    /// `dir`. Returns `(len, offset)` of the chosen free extent.
    fn best_fit(&self, size: usize, dir: Dir) -> Option<(usize, usize)> {
        for class in class_of(size)..NUM_CLASSES {
            let set = &self.free_by_class[class];
            if set.is_empty() {
                continue;
            }
            // Entries are (len, offset) in order; the first fitting
            // length group is the best fit within this class.
            let mut best: Option<(usize, usize)> = None;
            for &(len, offset) in set.range((size, 0)..) {
                match best {
                    None => best = Some((len, offset)),
                    Some((blen, _)) if len == blen => {
                        if dir == Dir::High {
                            best = Some((len, offset)); // keep scanning same-size group for highest offset
                        } else {
                            break; // lowest offset of smallest size already held
                        }
                    }
                    Some(_) => break,
                }
            }
            if best.is_some() {
                return best;
            }
        }
        None
    }

    /// First fit in address order from the preferred end: the
    /// lowest-addressed fitting extent for [`Dir::Low`], the highest
    /// for [`Dir::High`].
    fn first_fit(&self, size: usize, dir: Dir) -> Option<(usize, usize)> {
        match dir {
            Dir::Low => self
                .free_by_offset
                .iter()
                .find(|&(_, &len)| len >= size)
                .map(|(&off, &len)| (len, off)),
            Dir::High => self
                .free_by_offset
                .iter()
                .rev()
                .find(|&(_, &len)| len >= size)
                .map(|(&off, &len)| (len, off)),
        }
    }

    /// Free the block at `offset`, coalescing with free neighbours.
    pub fn free(&mut self, offset: usize) {
        let size = self
            .used
            .remove(&offset)
            .unwrap_or_else(|| panic!("freeing unallocated offset {offset}"));
        self.used_bytes -= size;
        let mut start = offset;
        let mut len = size;
        // Coalesce with predecessor.
        if let Some((&p_off, &p_len)) = self.free_by_offset.range(..offset).next_back() {
            if p_off + p_len == offset {
                self.remove_free(p_off, p_len);
                start = p_off;
                len += p_len;
            }
        }
        // Coalesce with successor.
        if let Some((&n_off, &n_len)) = self.free_by_offset.range(offset + size..).next() {
            if offset + size == n_off {
                self.remove_free(n_off, n_len);
                len += n_len;
            }
        }
        self.insert_free(start, len);
    }

    /// Size of the used block starting at `offset`, if any.
    pub fn used_size(&self, offset: usize) -> Option<usize> {
        self.used.get(&offset).copied()
    }

    /// Does `offset` fall inside this region?
    pub fn contains(&self, offset: usize) -> bool {
        offset >= self.base && offset < self.base + self.size
    }

    /// Bytes currently allocated in this region.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Bytes currently free in this region.
    pub fn free_bytes(&self) -> usize {
        self.size - self.used_bytes
    }

    /// Largest single free extent (the *contiguous space* §3.3 checks
    /// before deciding to swap).
    pub fn largest_free(&self) -> usize {
        self.free_by_class
            .iter()
            .rev()
            .find_map(|set| set.iter().next_back().map(|&(len, _)| len))
            .unwrap_or(0)
    }

    /// Number of live allocations in this region.
    pub fn used_blocks(&self) -> usize {
        self.used.len()
    }

    /// Internal consistency check (test/proptest hook): extents must be
    /// disjoint, within bounds, and byte totals must add up.
    pub fn check_invariants(&self) {
        let mut cursor = self.base;
        let mut free_total = 0usize;
        let mut prev_was_free = false;
        let mut events: Vec<(usize, usize, bool)> = self
            .free_by_offset
            .iter()
            .map(|(&o, &l)| (o, l, true))
            .chain(self.used.iter().map(|(&o, &l)| (o, l, false)))
            .collect();
        events.sort();
        for (off, len, is_free) in events {
            assert!(off >= cursor, "overlapping extents at {off}");
            cursor = off + len;
            assert!(cursor <= self.base + self.size, "extent past region end");
            if is_free {
                assert!(
                    !prev_was_free || off > cursor - len,
                    "adjacent free extents not coalesced"
                );
                free_total += len;
            }
            prev_was_free = is_free;
        }
        assert_eq!(free_total + self.used_bytes, self.size - self.gaps());
        // Every classed extent matches the offset index.
        let classed: usize = self.free_by_class.iter().map(|s| s.len()).sum();
        assert_eq!(classed, self.free_by_offset.len());
    }

    /// Bytes in neither list (must be zero; helper for the invariant).
    fn gaps(&self) -> usize {
        let covered: usize = self.free_by_offset.values().chain(self.used.values()).sum();
        self.size - covered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_low_takes_lowest_fit() {
        let mut r = Region::new(0, 1024);
        let a = r.alloc(128, Dir::Low, FitPolicy::BestFit).unwrap();
        assert_eq!(a, 0);
        let b = r.alloc(128, Dir::Low, FitPolicy::BestFit).unwrap();
        assert_eq!(b, 128);
        r.check_invariants();
    }

    #[test]
    fn alloc_high_takes_highest_fit() {
        let mut r = Region::new(0, 1024);
        let a = r.alloc(128, Dir::High, FitPolicy::BestFit).unwrap();
        assert_eq!(a, 1024 - 128);
        let b = r.alloc(64, Dir::High, FitPolicy::BestFit).unwrap();
        assert_eq!(b, 1024 - 128 - 64);
        r.check_invariants();
    }

    #[test]
    fn opposite_directions_grow_toward_each_other() {
        let mut r = Region::new(0, 4096);
        let large = r.alloc(1024, Dir::Low, FitPolicy::BestFit).unwrap();
        let medium = r.alloc(512, Dir::High, FitPolicy::BestFit).unwrap();
        assert_eq!(large, 0);
        assert_eq!(medium, 4096 - 512);
        assert_eq!(r.free_bytes(), 4096 - 1536);
        assert_eq!(r.largest_free(), 4096 - 1536);
        r.check_invariants();
    }

    #[test]
    fn best_fit_prefers_snuggest_extent() {
        let mut r = Region::new(0, 4096);
        // Carve: [used 512][free 512][used 512][free 2560]
        let a = r.alloc(512, Dir::Low, FitPolicy::BestFit).unwrap(); // 0
        let hole = r.alloc(512, Dir::Low, FitPolicy::BestFit).unwrap(); // 512
        let _c = r.alloc(512, Dir::Low, FitPolicy::BestFit).unwrap(); // 1024
        r.free(hole);
        // A 384-byte request best-fits the 512 hole, not the big tail.
        let d = r.alloc(384, Dir::Low, FitPolicy::BestFit).unwrap();
        assert_eq!(d, 512);
        r.check_invariants();
        let _ = a;
    }

    #[test]
    fn free_coalesces_neighbours() {
        let mut r = Region::new(0, 1024);
        let a = r.alloc(256, Dir::Low, FitPolicy::BestFit).unwrap();
        let b = r.alloc(256, Dir::Low, FitPolicy::BestFit).unwrap();
        let c = r.alloc(256, Dir::Low, FitPolicy::BestFit).unwrap();
        r.free(a);
        r.free(c);
        assert_eq!(r.largest_free(), 512); // tail 256 + c 256
        r.free(b);
        assert_eq!(r.largest_free(), 1024);
        assert_eq!(r.used_bytes(), 0);
        r.check_invariants();
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut r = Region::new(0, 256);
        assert!(r.alloc(512, Dir::Low, FitPolicy::BestFit).is_none());
        let _a = r.alloc(256, Dir::Low, FitPolicy::BestFit).unwrap();
        assert!(r.alloc(8, Dir::Low, FitPolicy::BestFit).is_none());
    }

    #[test]
    fn fragmentation_blocks_contiguous_request() {
        let mut r = Region::new(0, 1024);
        let blocks: Vec<usize> = (0..8)
            .map(|_| r.alloc(128, Dir::Low, FitPolicy::BestFit).unwrap())
            .collect();
        // Free alternating blocks: 512 free total, max contiguous 128.
        for (i, &b) in blocks.iter().enumerate() {
            if i % 2 == 0 {
                r.free(b);
            }
        }
        assert_eq!(r.free_bytes(), 512);
        assert_eq!(r.largest_free(), 128);
        assert!(
            r.alloc(256, Dir::Low, FitPolicy::BestFit).is_none(),
            "must require swapping"
        );
        r.check_invariants();
    }

    #[test]
    #[should_panic(expected = "freeing unallocated")]
    fn double_free_panics() {
        let mut r = Region::new(0, 256);
        let a = r.alloc(64, Dir::Low, FitPolicy::BestFit).unwrap();
        r.free(a);
        r.free(a);
    }

    #[test]
    fn nonzero_base_respected() {
        let mut r = Region::new(4096, 1024);
        let a = r.alloc(100, Dir::Low, FitPolicy::BestFit).unwrap();
        assert!(a >= 4096);
        assert!(r.contains(a));
        assert!(!r.contains(0));
        r.check_invariants();
    }
}
