//! The 1024 size-class queues of Figure 4.
//!
//! "To implement this algorithm, 1024 queues are used, each of them
//! storing either unused or allocated blocks of size within a specified
//! range" — the figure labels classes 8, 16, 24, 32, 40 … 1M, 2M, 4M …
//! We realize that as 512 linear 8-byte classes up to 4 KB followed by
//! doubling classes, capped at class 1023.

/// Number of size classes (paper: 1024 queues).
pub const NUM_CLASSES: usize = 1024;
/// Allocation granularity in bytes.
pub const GRAIN: usize = 8;
/// Largest size covered by the linear classes.
pub const LINEAR_MAX: usize = 4096;
/// Number of linear classes (8, 16, …, 4096).
pub const LINEAR_CLASSES: usize = LINEAR_MAX / GRAIN; // 512

/// Round a request up to the allocation granularity.
#[inline]
pub fn round_up(size: usize) -> usize {
    size.div_ceil(GRAIN) * GRAIN
}

/// Size class holding blocks of exactly/at-most this size range.
///
/// Linear: class `k` (0 ≤ k < 512) holds sizes `(8k, 8(k+1)]`.
/// Geometric: class `512 + j` holds sizes `(4096·2ʲ, 4096·2ʲ⁺¹]`.
#[inline]
pub fn class_of(size: usize) -> usize {
    debug_assert!(size > 0);
    if size <= LINEAR_MAX {
        size.div_ceil(GRAIN) - 1
    } else {
        // Smallest j ≥ 1 with size ≤ 4096 << j.
        let mut j = 1usize;
        while (LINEAR_MAX << j) < size && LINEAR_CLASSES + j < NUM_CLASSES - 1 {
            j += 1;
        }
        (LINEAR_CLASSES + j - 1).min(NUM_CLASSES - 1)
    }
}

/// Upper bound (inclusive) of the sizes a class covers; `usize::MAX`
/// for the final catch-all class.
#[inline]
pub fn class_max_size(class: usize) -> usize {
    if class < LINEAR_CLASSES {
        (class + 1) * GRAIN
    } else if class < NUM_CLASSES - 1 {
        LINEAR_MAX << (class - LINEAR_CLASSES + 1)
    } else {
        usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_classes_match_figure4_labels() {
        // Figure 4 labels queues 8, 16, 24, 32, 40, ...
        assert_eq!(class_of(8), 0);
        assert_eq!(class_of(16), 1);
        assert_eq!(class_of(24), 2);
        assert_eq!(class_of(32), 3);
        assert_eq!(class_of(40), 4);
        // Ranges are half-open below.
        assert_eq!(class_of(1), 0);
        assert_eq!(class_of(9), 1);
        assert_eq!(class_of(4096), 511);
    }

    #[test]
    fn geometric_classes_double() {
        // Figure 4 labels ... 1M, 2M, 4M ...
        assert_eq!(class_of(4097), 512);
        assert_eq!(class_of(8192), 512);
        assert_eq!(class_of(8193), 513);
        assert_eq!(class_of(1 << 20), class_of(1 << 20)); // stable
        assert_eq!(class_of(2 << 20), class_of(1 << 20) + 1);
        assert_eq!(class_of(4 << 20), class_of(2 << 20) + 1);
    }

    #[test]
    fn class_count_is_1024() {
        assert_eq!(NUM_CLASSES, 1024);
        assert!(class_of(usize::MAX / 2) < NUM_CLASSES);
    }

    #[test]
    fn class_max_size_brackets_class_of() {
        for size in [1, 7, 8, 9, 100, 4096, 4097, 10_000, 1 << 20, 33 << 20] {
            let c = class_of(size);
            assert!(size <= class_max_size(c), "size {size} class {c}");
            if c > 0 {
                assert!(size > class_max_size(c - 1), "size {size} class {c}");
            }
        }
    }

    #[test]
    fn round_up_to_grain() {
        assert_eq!(round_up(1), 8);
        assert_eq!(round_up(8), 8);
        assert_eq!(round_up(9), 16);
        assert_eq!(round_up(4093), 4096);
    }
}
