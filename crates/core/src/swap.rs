//! The swap subsystem: pluggable eviction policies and compressed
//! swap images.
//!
//! §3.3 of the paper fixes eviction at "LRU + pinning" and writes
//! verbatim images; §4.3's Table 1 then shows runs utterly dominated by
//! that disk traffic. This module makes both halves first-class:
//!
//! * [`SwapPolicy`] — victim selection behind the dynamic memory
//!   mapper. The *pinning fence* is not part of the policy: the mapper
//!   never offers an object touched by the current statement as a
//!   candidate, so no policy can evict data out from under a live view
//!   guard. Selection among unpinned candidates is the policy's whole
//!   job, and every policy yields byte-identical application results.
//! * [`SwapImage`] — the on-disk encoding. Compressed images hold the
//!   data section run-length-encoded (reusing [`lots_disk::rle`]) and
//!   the interval twin as an RLE'd XOR-delta against the data: a
//!   partially-dirty object's twin differs from its data only in the
//!   words written this interval, so the twin section shrinks to a
//!   diff. A fresh object's all-zero twin is elided entirely (this is
//!   what keeps §4.3 at "more than 4 GB written" rather than double).
//!   Disk time and store capacity are charged for the encoded bytes,
//!   so compression shows up in the [`lots_sim::DiskModel`] accounting.

use std::borrow::Cow;
use std::collections::HashMap;

use lots_disk::rle::{CorruptImage, RleImage};

use crate::config::SwapPolicyKind;

// ----------------------------------------------------------------------
// Victim selection
// ----------------------------------------------------------------------

/// One evictable object offered to a [`SwapPolicy`]: mapped, unpinned,
/// listed in object-id order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Object id.
    pub obj: u32,
    /// Statement stamp of the object's last access (the LRU key).
    pub last_access: u64,
    /// Object size in bytes.
    pub size: usize,
}

/// A victim-selection policy for the dynamic memory mapper (§3.3).
///
/// Implementations must be deterministic: selection may depend only on
/// the candidate list and on state accumulated through the `on_*`
/// callbacks, never on hash-map iteration order or host properties —
/// the deterministic scheduler (PR 3) gates byte-identical reports
/// across same-seed runs, swap traffic included.
pub trait SwapPolicy: Send {
    /// An object was mapped in or touched by an access check.
    fn on_access(&mut self, obj: u32);

    /// An object left the DMM area (evicted or invalidated); forget
    /// any per-object policy state.
    fn on_remove(&mut self, obj: u32);

    /// Choose the next victim among `candidates` (never empty, id
    /// order). Returning `None` defers to LRU order.
    fn choose(&mut self, candidates: &[Candidate]) -> Option<u32>;
}

/// Build the policy implementation for a configured kind.
pub fn build_policy(kind: SwapPolicyKind) -> Box<dyn SwapPolicy> {
    match kind {
        SwapPolicyKind::Lru => Box::new(LruPolicy),
        SwapPolicyKind::Clock => Box::new(ClockPolicy::default()),
        SwapPolicyKind::SegLru => Box::new(SegLruPolicy::default()),
    }
}

/// Least-recently-used by statement stamp (ties broken by lowest id) —
/// exactly the seed's linear-scan behavior.
#[derive(Debug, Default)]
pub struct LruPolicy;

impl SwapPolicy for LruPolicy {
    fn on_access(&mut self, _obj: u32) {}
    fn on_remove(&mut self, _obj: u32) {}

    fn choose(&mut self, candidates: &[Candidate]) -> Option<u32> {
        candidates
            .iter()
            .min_by_key(|c| (c.last_access, c.obj))
            .map(|c| c.obj)
    }
}

/// CLOCK / second-chance: a hand sweeps the candidate ring; referenced
/// objects get their bit cleared and one more revolution of grace,
/// unreferenced ones are evicted.
#[derive(Debug, Default)]
pub struct ClockPolicy {
    hand: u32,
    referenced: HashMap<u32, bool>,
}

impl SwapPolicy for ClockPolicy {
    fn on_access(&mut self, obj: u32) {
        self.referenced.insert(obj, true);
    }

    fn on_remove(&mut self, obj: u32) {
        self.referenced.remove(&obj);
    }

    fn choose(&mut self, candidates: &[Candidate]) -> Option<u32> {
        // Start the sweep at the hand (candidates are in id order); two
        // passes guarantee a pick even if every bit was set.
        let start = candidates
            .iter()
            .position(|c| c.obj >= self.hand)
            .unwrap_or(0);
        for pass in 0..2 {
            for k in 0..candidates.len() {
                let c = &candidates[(start + k) % candidates.len()];
                let referenced = self.referenced.get(&c.obj).copied().unwrap_or(false);
                if referenced && pass == 0 {
                    self.referenced.insert(c.obj, false); // second chance
                } else if !referenced || pass == 1 {
                    self.hand = c.obj + 1;
                    return Some(c.obj);
                }
            }
        }
        unreachable!("two passes over a non-empty ring always pick");
    }
}

/// Pin-aware segmented LRU: candidates re-referenced since map-in (the
/// hot barrier-interval working set that statement pinning protects
/// only *within* one statement) form a protected segment; single-touch
/// streaming candidates are evicted first, each segment in LRU order.
#[derive(Debug, Default)]
pub struct SegLruPolicy {
    touches: HashMap<u32, u32>,
}

impl SwapPolicy for SegLruPolicy {
    fn on_access(&mut self, obj: u32) {
        let t = self.touches.entry(obj).or_insert(0);
        *t = t.saturating_add(1);
    }

    fn on_remove(&mut self, obj: u32) {
        self.touches.remove(&obj);
    }

    fn choose(&mut self, candidates: &[Candidate]) -> Option<u32> {
        let hot = |c: &&Candidate| self.touches.get(&c.obj).copied().unwrap_or(0) > 1;
        candidates
            .iter()
            .filter(|c| !hot(c))
            .min_by_key(|c| (c.last_access, c.obj))
            .or_else(|| candidates.iter().min_by_key(|c| (c.last_access, c.obj)))
            .map(|c| c.obj)
    }
}

// ----------------------------------------------------------------------
// Swap-image encoding
// ----------------------------------------------------------------------

const FLAG_TWIN: u8 = 1;
const FLAG_ZERO_TWIN: u8 = 2;
const FLAG_COMPRESSED: u8 = 4;

/// The twin section recovered from a decoded image.
pub enum ImageTwin<'a> {
    /// Object had no interval twin when swapped.
    None,
    /// Twin was the all-zero pre-image of a fresh object (elided).
    Zero,
    /// Reconstructed twin bytes (borrowed from the image when the
    /// section was stored verbatim).
    Bytes(Cow<'a, [u8]>),
}

/// Encoder/decoder for swap images (see the module docs for layout).
///
/// Wire format: `[flags u8][pad ×3]` followed by the data section and
/// (if present and non-zero) the twin section. Uncompressed sections
/// are verbatim; compressed sections are [`RleImage::to_bytes`]
/// streams, with the twin encoded as `twin XOR data`.
pub struct SwapImage;

impl SwapImage {
    /// Encode `data` (and its interval twin, if any) into the bytes
    /// handed to the backing store.
    pub fn encode(data: &[u8], twin: Option<&[u8]>, compress: bool) -> Vec<u8> {
        let zero_twin = twin.map(|t| t.iter().all(|&b| b == 0)).unwrap_or(false);
        let stored_twin = if zero_twin { None } else { twin };
        let mut flags = twin.is_some() as u8 * FLAG_TWIN;
        if zero_twin {
            flags |= FLAG_ZERO_TWIN;
        }
        if compress {
            flags |= FLAG_COMPRESSED;
        }
        let mut img = Vec::with_capacity(4 + data.len());
        img.push(flags);
        img.extend_from_slice(&[0u8; 3]);
        if compress {
            img.extend_from_slice(&RleImage::encode(data).to_bytes());
            if let Some(t) = stored_twin {
                debug_assert_eq!(t.len(), data.len());
                let delta: Vec<u8> = t.iter().zip(data).map(|(a, b)| a ^ b).collect();
                img.extend_from_slice(&RleImage::encode(&delta).to_bytes());
            }
        } else {
            img.extend_from_slice(data);
            if let Some(t) = stored_twin {
                debug_assert_eq!(t.len(), data.len());
                img.extend_from_slice(t);
            }
        }
        img
    }

    /// Decode an image produced by [`SwapImage::encode`] back into the
    /// object's `size` data bytes and its twin section. Verbatim
    /// sections are returned borrowed (zero-copy); compressed sections
    /// decode into owned buffers.
    ///
    /// Stored bytes are an *input*, not an invariant: a truncated or
    /// garbage image (torn journal tail, corrupted store) returns a
    /// deterministic [`CorruptImage`] error instead of panicking or
    /// slicing out of bounds.
    pub fn decode(img: &[u8], size: usize) -> Result<(Cow<'_, [u8]>, ImageTwin<'_>), CorruptImage> {
        let corrupt = |at: usize| CorruptImage { at };
        let flags = *img.first().ok_or(corrupt(0))?;
        let body = img.get(4..).ok_or(corrupt(img.len()))?;
        let (data, twin_body): (Cow<'_, [u8]>, &[u8]) = if flags & FLAG_COMPRESSED != 0 {
            let (rle, used) = RleImage::from_bytes(body)?;
            (Cow::Owned(rle.decode()), &body[used..])
        } else {
            let data = body.get(..size).ok_or(corrupt(img.len()))?;
            (Cow::Borrowed(data), &body[size..])
        };
        if data.len() != size {
            return Err(corrupt(4));
        }
        let twin = if flags & FLAG_TWIN == 0 {
            ImageTwin::None
        } else if flags & FLAG_ZERO_TWIN != 0 {
            ImageTwin::Zero
        } else if flags & FLAG_COMPRESSED != 0 {
            let (rle, _) = RleImage::from_bytes(twin_body)?;
            let delta = rle.decode();
            if delta.len() != size {
                return Err(corrupt(img.len() - twin_body.len()));
            }
            ImageTwin::Bytes(Cow::Owned(
                delta.iter().zip(&*data).map(|(a, b)| a ^ b).collect(),
            ))
        } else {
            let t = twin_body.get(..size).ok_or(corrupt(img.len()))?;
            ImageTwin::Bytes(Cow::Borrowed(t))
        };
        Ok((data, twin))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(obj: u32, last_access: u64) -> Candidate {
        Candidate {
            obj,
            last_access,
            size: 4096,
        }
    }

    #[test]
    fn lru_picks_oldest_stamp_lowest_id() {
        let mut p = LruPolicy;
        let cands = [cand(0, 9), cand(1, 3), cand(2, 3), cand(3, 7)];
        assert_eq!(p.choose(&cands), Some(1));
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut p = ClockPolicy::default();
        for obj in 0..3 {
            p.on_access(obj);
        }
        let cands = [cand(0, 1), cand(1, 2), cand(2, 3)];
        // All referenced: the sweep clears 0,1,2 and the second pass
        // evicts 0 (hand wrapped to the start).
        assert_eq!(p.choose(&cands), Some(0));
        p.on_remove(0);
        // 1 and 2 lost their bits in the sweep; hand sits past 0.
        assert_eq!(p.choose(&cands[1..]), Some(1));
        // Re-referencing 2 protects it for one revolution... but it is
        // the only candidate left, so the second pass takes it.
        p.on_remove(1);
        p.on_access(2);
        assert_eq!(p.choose(&cands[2..]), Some(2));
    }

    #[test]
    fn clock_prefers_unreferenced() {
        let mut p = ClockPolicy::default();
        p.on_access(0);
        p.on_access(2);
        let cands = [cand(0, 1), cand(1, 5), cand(2, 2)];
        // 0 is referenced (cleared, skipped); 1 is not → victim, even
        // though its LRU stamp is the newest.
        assert_eq!(p.choose(&cands), Some(1));
    }

    #[test]
    fn seglru_protects_retouched_objects() {
        let mut p = SegLruPolicy::default();
        p.on_access(0);
        p.on_access(0); // 0 is hot (re-referenced since map-in)
        p.on_access(1); // 1 was touched once: streaming
        p.on_access(2);
        let cands = [cand(0, 1), cand(1, 2), cand(2, 3)];
        assert_eq!(p.choose(&cands), Some(1), "oldest cold candidate");
        // Only hot candidates left → fall back to LRU among them.
        p.on_access(2);
        assert_eq!(p.choose(&[cand(0, 1), cand(2, 3)]), Some(0));
        // Eviction resets the touch count: 0 is cold again.
        p.on_remove(0);
        p.on_access(0);
        assert_eq!(p.choose(&[cand(0, 9), cand(2, 3)]), Some(0));
    }

    #[test]
    fn image_roundtrip_all_variants() {
        let data: Vec<u8> = (0..256u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut twin = data.clone();
        twin[40..48].copy_from_slice(&[0xAA; 8]); // partially dirty
        let zeros = vec![0u8; data.len()];
        for compress in [false, true] {
            for (tw, kind) in [
                (None, "none"),
                (Some(&twin), "bytes"),
                (Some(&zeros), "zero"),
            ] {
                let img = SwapImage::encode(&data, tw.map(|t| &t[..]), compress);
                let (d, t) = SwapImage::decode(&img, data.len()).expect("valid image");
                assert_eq!(&*d, &data[..], "data ({kind}, compress={compress})");
                match (tw, t) {
                    (None, ImageTwin::None) => {}
                    (Some(z), ImageTwin::Zero) => assert!(z.iter().all(|&b| b == 0)),
                    (Some(want), ImageTwin::Bytes(got)) => {
                        assert_eq!(&*got, &want[..], "twin ({kind}, compress={compress})")
                    }
                    _ => panic!("twin shape mismatch ({kind}, compress={compress})"),
                }
            }
        }
    }

    #[test]
    fn compressed_partially_dirty_image_shrinks_to_a_diff() {
        // A repetitive 64 KB object with 16 dirty words: the compressed
        // image must be orders of magnitude below 2×64 KB.
        let data: Vec<u8> = std::iter::repeat_n(7u32.to_le_bytes(), 16 * 1024)
            .flatten()
            .collect();
        let mut twin = data.clone();
        for w in 0..16 {
            twin[w * 512..w * 512 + 4].copy_from_slice(&(w as u32).to_le_bytes());
        }
        let img = SwapImage::encode(&data, Some(&twin), true);
        assert!(img.len() < 1024, "compressed image is {} bytes", img.len());
        let raw = SwapImage::encode(&data, Some(&twin), false);
        assert_eq!(raw.len(), 4 + 2 * data.len());
    }

    #[test]
    fn zero_twin_is_elided_in_both_formats() {
        let data = vec![5u8; 4096];
        let zeros = vec![0u8; 4096];
        let raw = SwapImage::encode(&data, Some(&zeros), false);
        assert_eq!(raw.len(), 4 + 4096);
        let comp = SwapImage::encode(&data, Some(&zeros), true);
        assert!(comp.len() < 32, "constant data + elided twin: {comp:?}");
    }

    #[test]
    fn truncated_images_error_at_every_record_boundary() {
        let data: Vec<u8> = (0..64u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut twin = data.clone();
        twin[8..16].copy_from_slice(&[0x5A; 8]);
        for compress in [false, true] {
            for tw in [None, Some(&twin)] {
                let img = SwapImage::encode(&data, tw.map(|t| &t[..]), compress);
                assert!(
                    SwapImage::decode(&img, data.len()).is_ok(),
                    "full image decodes (compress={compress})"
                );
                for cut in 0..img.len() {
                    assert!(
                        SwapImage::decode(&img[..cut], data.len()).is_err(),
                        "prefix of {cut}/{} bytes must error, not panic \
                         (compress={compress}, twin={})",
                        img.len(),
                        tw.is_some(),
                    );
                }
            }
        }
    }

    #[test]
    fn garbage_image_bytes_error_deterministically() {
        assert!(SwapImage::decode(&[], 16).is_err());
        assert!(SwapImage::decode(&[0xFF], 16).is_err());
        // Compressed flag set over random bytes: the RLE parser rejects.
        let garbage = [FLAG_COMPRESSED, 0, 0, 0, 9, 9, 9];
        assert!(SwapImage::decode(&garbage, 16).is_err());
        // Structurally valid RLE that decodes to the wrong length.
        let wrong = SwapImage::encode(&[1u8; 8], None, true);
        assert!(SwapImage::decode(&wrong, 16).is_err());
    }

    #[test]
    fn build_policy_covers_all_kinds() {
        for kind in SwapPolicyKind::ALL {
            let mut p = build_policy(kind);
            p.on_access(3);
            assert_eq!(p.choose(&[cand(3, 1)]), Some(3), "{kind:?}");
        }
    }
}
