//! Runtime configuration for a LOTS cluster.

use lots_net::NodeId;

use crate::layout::SEGMENT_BYTES;

/// Initial-home placement policy for a shared-object allocation
/// (chosen per-alloc via `DsmApi::try_alloc_placed` or per-config via
/// [`AllocConfig::placement`]).
///
/// Placement only picks the *initial* home; the §3.4 migrating-home
/// protocol still moves single-writer objects to their writer at every
/// barrier, so placement composes with migration rather than replacing
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Home = object id modulo cluster size — the historical behaviour
    /// (and JIAJIA's page placement, §4.1).
    #[default]
    RoundRobin,
    /// Home pinned to one node (data that one rank owns logically,
    /// e.g. a coordinator structure).
    Fixed(NodeId),
    /// Home deferred to the first barrier at which the object was
    /// written: the single writer — or the lowest-ranked of several
    /// writers — becomes the home ("first touch" at interval
    /// granularity). Until then every copy is the valid zero-fill, so
    /// no fetch can observe the provisional home.
    FirstTouch,
    /// Home = deterministic hash of `(object id, segment index)` modulo
    /// cluster size — BlobSeer-style consistent placement that spreads
    /// the segments of a striped object without the lockstep regularity
    /// of [`Placement::RoundRobin`]. On an unstriped allocation this
    /// hashes `(id, 0)`.
    ConsistentHash,
}

impl Placement {
    /// Stable label used in reports and bench summaries.
    pub fn label(self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::Fixed(_) => "fixed",
            Placement::FirstTouch => "first-touch",
            Placement::ConsistentHash => "consistent-hash",
        }
    }
}

/// Striping configuration for large objects (the BlobSeer-inspired
/// answer to the single-home bottleneck): allocations larger than
/// [`Striping::segment_bytes`] are split into fixed-size segments, each
/// an ordinary directory object with its *own* home, so concurrent
/// misses on one hot object fan out across the cluster instead of
/// queueing on a single peer.
///
/// Segments inherit the full coherence machinery — twins, word diffs,
/// barrier write notices, swap, home migration — at segment
/// granularity. Writers publish immutable segment versions at each
/// barrier; a guard pins the published snapshot for its lifetime and
/// never observes in-flight writers (see README §"Striped objects &
/// versioning").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Striping {
    /// Segment size in bytes (word-aligned, > 0). Objects of at most
    /// this size stay unstriped; larger ones are split into
    /// `ceil(size / segment_bytes)` segments.
    pub segment_bytes: usize,
    /// Default per-segment placement: [`Placement::RoundRobin`] rotates
    /// homes by `(id + segment) % n`, [`Placement::ConsistentHash`]
    /// hashes `(id, segment)`, [`Placement::Fixed`] pins every segment
    /// to one node, [`Placement::FirstTouch`] defers each segment's
    /// home to its first writer. An explicit `*_placed` allocation
    /// overrides this per object.
    pub placement: Placement,
}

impl Default for Striping {
    fn default() -> Striping {
        Striping {
            segment_bytes: crate::layout::DEFAULT_STRIPE_SEGMENT_BYTES,
            placement: Placement::RoundRobin,
        }
    }
}

impl Striping {
    /// Striping with the given segment size and round-robin segment
    /// homes.
    pub fn segments_of(segment_bytes: usize) -> Striping {
        Striping {
            segment_bytes,
            ..Striping::default()
        }
    }
}

/// Which free extent the DMM allocator picks when several fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FitPolicy {
    /// Approximate best fit through the Figure 4 size-class queues —
    /// the paper's allocator and the historical default.
    #[default]
    BestFit,
    /// First fit in address order (from the region end the size class
    /// grows from): cheaper per allocation, more external
    /// fragmentation under churn — the trade-off the fragmentation
    /// counters in `NodeStats` make visible.
    FirstFit,
}

impl FitPolicy {
    /// Stable label used in reports and bench summaries.
    pub fn label(self) -> &'static str {
        match self {
            FitPolicy::BestFit => "best-fit",
            FitPolicy::FirstFit => "first-fit",
        }
    }
}

/// Object-lifecycle knobs: how the DMM allocator picks free extents
/// and where fresh objects are homed by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocConfig {
    /// Free-extent selection policy of the DMM allocator.
    pub fit: FitPolicy,
    /// Default initial-home placement for `alloc`/`alloc_named`
    /// (overridable per allocation with the `*_placed` variants).
    pub placement: Placement,
}

/// How lock-protected updates propagate (§3.4; the paper's choice is
/// [`LockProtocol::HomelessWriteUpdate`], the ablation keeps the
/// write-invalidate alternative it argues against).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockProtocol {
    /// Updates (on-demand diffs) travel with the lock grant — the
    /// paper's design, efficient for migratory/producer-consumer data.
    HomelessWriteUpdate,
    /// Grant carries invalidations; the acquirer refetches from the
    /// last releaser on access.
    WriteInvalidate,
}

/// How the lock managers store and serve update history (§3.5, Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffMode {
    /// Per-field (per-word) timestamps; diffs computed on demand
    /// against the requester's timestamp — no redundant data (Fig. 7b).
    PerFieldOnDemand,
    /// TreadMarks-style accumulated whole diffs keyed by timestamp;
    /// overlapping updates are re-sent (Fig. 7a) — the *diff
    /// accumulation* problem LOTS eliminates.
    AccumulatedDiffs,
}

/// Which eviction policy the dynamic memory mapper uses when the DMM
/// area is out of contiguous space (§3.3). Every policy respects the
/// statement-pinning fence — objects touched by the current statement
/// are never candidates — and every policy produces byte-identical
/// application results; they differ only in *which* unpinned victim
/// goes to disk, and therefore in swap traffic and virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwapPolicyKind {
    /// Least-recently-used by statement stamp — the paper's §3.3 policy
    /// and the historical default.
    #[default]
    Lru,
    /// CLOCK / second-chance: a rotating hand skips (and clears) a
    /// referenced bit before evicting, approximating LRU at O(1)
    /// bookkeeping per access.
    Clock,
    /// Pin-aware segmented LRU: objects re-referenced since they were
    /// mapped in (the hot barrier-interval working set) are protected;
    /// single-touch streaming objects are evicted first.
    SegLru,
}

impl SwapPolicyKind {
    /// Stable label used in reports and bench summaries.
    pub fn label(self) -> &'static str {
        match self {
            SwapPolicyKind::Lru => "lru",
            SwapPolicyKind::Clock => "clock",
            SwapPolicyKind::SegLru => "seglru",
        }
    }

    /// All selectable policies (test matrices sweep this).
    pub const ALL: [SwapPolicyKind; 3] = [
        SwapPolicyKind::Lru,
        SwapPolicyKind::Clock,
        SwapPolicyKind::SegLru,
    ];
}

/// Swap-subsystem knobs: eviction policy, write-back batching,
/// read-ahead and image compression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapConfig {
    /// Victim-selection policy.
    pub policy: SwapPolicyKind,
    /// Maximum victims written back per eviction trip (≥ 1). A batch
    /// pays the disk's per-operation cost once, so batching amortizes
    /// seeks under heavy eviction churn.
    pub batch_evict: usize,
    /// Stride read-ahead: on a demand swap-in, predict the next
    /// swapped-out object from the recent swap-in stride and start its
    /// disk read early.
    pub read_ahead: bool,
    /// RLE-compress swap images (data section plus the interval twin
    /// stored as a delta against the data). Disk time and backing-store
    /// capacity are charged for the bytes actually stored.
    pub compress: bool,
}

impl Default for SwapConfig {
    fn default() -> SwapConfig {
        SwapConfig {
            policy: SwapPolicyKind::Lru,
            batch_evict: 1,
            read_ahead: false,
            compress: true,
        }
    }
}

impl SwapConfig {
    /// The throughput-tuned bundle used by the large-object benchmarks:
    /// segmented LRU, 8-victim write-back batches, stride read-ahead
    /// and compressed images.
    pub fn tuned() -> SwapConfig {
        SwapConfig {
            policy: SwapPolicyKind::SegLru,
            batch_evict: 8,
            read_ahead: true,
            compress: true,
        }
    }

    /// The pre-overhaul swap path: linear-scan LRU, one victim per
    /// trip, no read-ahead, verbatim images. Benchmarks use this as the
    /// comparison baseline.
    pub fn legacy() -> SwapConfig {
        SwapConfig {
            policy: SwapPolicyKind::Lru,
            batch_evict: 1,
            read_ahead: false,
            compress: false,
        }
    }
}

/// Configuration of one LOTS cluster run.
#[derive(Debug, Clone)]
pub struct LotsConfig {
    /// Capacity of the DMM area arena per node. Paper: 512 MB; tests
    /// and experiments shrink it to force swapping at small scale.
    pub dmm_bytes: usize,
    /// Large-object-space support (dynamic mapping + pinning + swap).
    /// `false` gives LOTS-x, the paper's ablation in §4.1/§4.2 —
    /// objects are mapped permanently and must all fit in the DMM area.
    pub large_object_space: bool,
    /// Lock-path coherence protocol.
    pub lock_protocol: LockProtocol,
    /// Lock-manager diff bookkeeping mode.
    pub diff_mode: DiffMode,
    /// Home migration at barriers (§3.4). Disabling it fixes homes at
    /// their initial assignment (ablation: pure home-based barriers).
    pub home_migration: bool,
    /// Objects strictly smaller than this are "small" and packed
    /// together into pages in the upper half of the DMM area (§3.2).
    pub small_threshold: usize,
    /// Objects at least this large are "large" and allocated upward in
    /// the lower half; sizes in between are "medium", allocated
    /// downward (§3.2).
    pub large_threshold: usize,
    /// Swap-subsystem configuration (policy, batching, read-ahead,
    /// compression). Only meaningful when
    /// [`LotsConfig::large_object_space`] is enabled.
    pub swap: SwapConfig,
    /// Object-lifecycle configuration (allocator fit policy, default
    /// placement).
    pub alloc: AllocConfig,
    /// Large-object striping (`None` keeps every object whole at one
    /// home — the historical behaviour). When set, allocations larger
    /// than [`Striping::segment_bytes`] are split into per-segment
    /// directory objects with independent homes and barrier-published
    /// snapshot versions.
    pub striping: Option<Striping>,
    /// Persistence configuration (`None` — the default — disables the
    /// diff journal entirely: no journal is constructed, no records
    /// are appended, no compaction daemon is registered, and every
    /// report is bit-identical to a run without the persistence
    /// subsystem).
    pub persist: Option<lots_persist::PersistConfig>,
}

impl Default for LotsConfig {
    fn default() -> LotsConfig {
        LotsConfig {
            dmm_bytes: SEGMENT_BYTES as usize,
            large_object_space: true,
            lock_protocol: LockProtocol::HomelessWriteUpdate,
            diff_mode: DiffMode::PerFieldOnDemand,
            home_migration: true,
            small_threshold: 1024,
            large_threshold: 64 * 1024,
            swap: SwapConfig::default(),
            alloc: AllocConfig::default(),
            striping: None,
            persist: None,
        }
    }
}

impl LotsConfig {
    /// A small-arena configuration convenient for tests: forces the
    /// swap machinery to engage at kilobyte scale.
    pub fn small(dmm_bytes: usize) -> LotsConfig {
        LotsConfig {
            dmm_bytes,
            ..LotsConfig::default()
        }
    }

    /// The LOTS-x variant (§4.1): large-object-space support disabled.
    pub fn lots_x(dmm_bytes: usize) -> LotsConfig {
        LotsConfig {
            dmm_bytes,
            large_object_space: false,
            ..LotsConfig::default()
        }
    }

    /// Replace the swap-subsystem configuration.
    #[must_use]
    pub fn with_swap(mut self, swap: SwapConfig) -> LotsConfig {
        self.swap = swap;
        self
    }

    /// Replace the object-lifecycle configuration.
    #[must_use]
    pub fn with_alloc(mut self, alloc: AllocConfig) -> LotsConfig {
        self.alloc = alloc;
        self
    }

    /// Enable large-object striping with the given configuration.
    #[must_use]
    pub fn with_striping(mut self, striping: Striping) -> LotsConfig {
        self.striping = Some(striping);
        self
    }

    /// Enable the persistence subsystem (per-node diff journal,
    /// background compaction, checkpoint manifests) with the given
    /// configuration.
    #[must_use]
    pub fn with_persist(mut self, persist: lots_persist::PersistConfig) -> LotsConfig {
        self.persist = Some(persist);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = LotsConfig::default();
        assert_eq!(c.dmm_bytes, 512 << 20);
        assert!(c.large_object_space);
        assert_eq!(c.lock_protocol, LockProtocol::HomelessWriteUpdate);
        assert_eq!(c.diff_mode, DiffMode::PerFieldOnDemand);
        assert!(c.home_migration);
    }

    #[test]
    fn lots_x_disables_large_object_space() {
        let c = LotsConfig::lots_x(1 << 20);
        assert!(!c.large_object_space);
        assert_eq!(c.dmm_bytes, 1 << 20);
    }

    #[test]
    fn thresholds_ordered() {
        let c = LotsConfig::default();
        assert!(c.small_threshold < c.large_threshold);
    }

    #[test]
    fn swap_defaults_keep_lru_single_victim() {
        let c = LotsConfig::default();
        assert_eq!(c.swap.policy, SwapPolicyKind::Lru);
        assert_eq!(c.swap.batch_evict, 1);
        assert!(!c.swap.read_ahead);
        assert!(c.swap.compress);
        let legacy = SwapConfig::legacy();
        assert!(!legacy.compress);
        let tuned = SwapConfig::tuned();
        assert_eq!(tuned.policy, SwapPolicyKind::SegLru);
        assert!(tuned.batch_evict > 1);
        assert!(tuned.read_ahead);
    }

    #[test]
    fn policy_labels_are_stable() {
        let labels: Vec<&str> = SwapPolicyKind::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["lru", "clock", "seglru"]);
    }

    #[test]
    fn alloc_defaults_preserve_seed_behavior() {
        let c = LotsConfig::default();
        assert_eq!(c.alloc.fit, FitPolicy::BestFit);
        assert_eq!(c.alloc.placement, Placement::RoundRobin);
    }

    #[test]
    fn placement_and_fit_labels_are_stable() {
        assert_eq!(Placement::RoundRobin.label(), "round-robin");
        assert_eq!(Placement::Fixed(3).label(), "fixed");
        assert_eq!(Placement::FirstTouch.label(), "first-touch");
        assert_eq!(Placement::ConsistentHash.label(), "consistent-hash");
        assert_eq!(FitPolicy::BestFit.label(), "best-fit");
        assert_eq!(FitPolicy::FirstFit.label(), "first-fit");
    }

    #[test]
    fn striping_is_off_by_default() {
        assert_eq!(LotsConfig::default().striping, None);
        assert_eq!(LotsConfig::small(1 << 20).striping, None);
        assert_eq!(LotsConfig::lots_x(1 << 20).striping, None);
    }

    #[test]
    fn with_striping_sets_segment_size() {
        let c = LotsConfig::default().with_striping(Striping::segments_of(1 << 20));
        let s = c.striping.unwrap();
        assert_eq!(s.segment_bytes, 1 << 20);
        assert_eq!(s.placement, Placement::RoundRobin);
        assert_eq!(
            Striping::default().segment_bytes,
            crate::layout::DEFAULT_STRIPE_SEGMENT_BYTES
        );
    }
}
