//! Runtime configuration for a LOTS cluster.

use crate::layout::SEGMENT_BYTES;

/// How lock-protected updates propagate (§3.4; the paper's choice is
/// [`LockProtocol::HomelessWriteUpdate`], the ablation keeps the
/// write-invalidate alternative it argues against).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockProtocol {
    /// Updates (on-demand diffs) travel with the lock grant — the
    /// paper's design, efficient for migratory/producer-consumer data.
    HomelessWriteUpdate,
    /// Grant carries invalidations; the acquirer refetches from the
    /// last releaser on access.
    WriteInvalidate,
}

/// How the lock managers store and serve update history (§3.5, Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffMode {
    /// Per-field (per-word) timestamps; diffs computed on demand
    /// against the requester's timestamp — no redundant data (Fig. 7b).
    PerFieldOnDemand,
    /// TreadMarks-style accumulated whole diffs keyed by timestamp;
    /// overlapping updates are re-sent (Fig. 7a) — the *diff
    /// accumulation* problem LOTS eliminates.
    AccumulatedDiffs,
}

/// Configuration of one LOTS cluster run.
#[derive(Debug, Clone)]
pub struct LotsConfig {
    /// Capacity of the DMM area arena per node. Paper: 512 MB; tests
    /// and experiments shrink it to force swapping at small scale.
    pub dmm_bytes: usize,
    /// Large-object-space support (dynamic mapping + pinning + swap).
    /// `false` gives LOTS-x, the paper's ablation in §4.1/§4.2 —
    /// objects are mapped permanently and must all fit in the DMM area.
    pub large_object_space: bool,
    /// Lock-path coherence protocol.
    pub lock_protocol: LockProtocol,
    /// Lock-manager diff bookkeeping mode.
    pub diff_mode: DiffMode,
    /// Home migration at barriers (§3.4). Disabling it fixes homes at
    /// their initial assignment (ablation: pure home-based barriers).
    pub home_migration: bool,
    /// Objects strictly smaller than this are "small" and packed
    /// together into pages in the upper half of the DMM area (§3.2).
    pub small_threshold: usize,
    /// Objects at least this large are "large" and allocated upward in
    /// the lower half; sizes in between are "medium", allocated
    /// downward (§3.2).
    pub large_threshold: usize,
}

impl Default for LotsConfig {
    fn default() -> LotsConfig {
        LotsConfig {
            dmm_bytes: SEGMENT_BYTES as usize,
            large_object_space: true,
            lock_protocol: LockProtocol::HomelessWriteUpdate,
            diff_mode: DiffMode::PerFieldOnDemand,
            home_migration: true,
            small_threshold: 1024,
            large_threshold: 64 * 1024,
        }
    }
}

impl LotsConfig {
    /// A small-arena configuration convenient for tests: forces the
    /// swap machinery to engage at kilobyte scale.
    pub fn small(dmm_bytes: usize) -> LotsConfig {
        LotsConfig {
            dmm_bytes,
            ..LotsConfig::default()
        }
    }

    /// The LOTS-x variant (§4.1): large-object-space support disabled.
    pub fn lots_x(dmm_bytes: usize) -> LotsConfig {
        LotsConfig {
            dmm_bytes,
            large_object_space: false,
            ..LotsConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = LotsConfig::default();
        assert_eq!(c.dmm_bytes, 512 << 20);
        assert!(c.large_object_space);
        assert_eq!(c.lock_protocol, LockProtocol::HomelessWriteUpdate);
        assert_eq!(c.diff_mode, DiffMode::PerFieldOnDemand);
        assert!(c.home_migration);
    }

    #[test]
    fn lots_x_disables_large_object_space() {
        let c = LotsConfig::lots_x(1 << 20);
        assert!(!c.large_object_space);
        assert_eq!(c.dmm_bytes, 1 << 20);
    }

    #[test]
    fn thresholds_ordered() {
        let c = LotsConfig::default();
        assert!(c.small_threshold < c.large_threshold);
    }
}
