//! Cluster bootstrap: spawn the simulated LOTS processes.
//!
//! Each node gets an **application thread** (running the user's SPMD
//! closure against a [`Dsm`] handle) and a **comm thread** — the
//! analogue of the paper's SIGIO handler (§3.6) — that services
//! data-plane requests (object fetches, barrier diff propagation)
//! against the node's shared state.
//!
//! Two execution models are supported, selected by
//! [`ClusterOptions::scheduler`]:
//!
//! * [`SchedulerMode::Deterministic`] (default) — all `2n` threads are
//!   tasks on a cooperative lowest-clock-first turnstile
//!   ([`lots_sim::sched`]). Message delivery, barrier rendezvous and
//!   lock hand-offs park/unpark through the scheduler; nothing waits
//!   on wall-clock timeouts, and two runs with the same
//!   [`ClusterOptions::seed`] produce byte-identical
//!   [`ClusterReport`]s.
//! * [`SchedulerMode::FreeRunning`] — the pre-deterministic model
//!   (threads race the OS scheduler, comm threads poll with a 25 ms
//!   timeout as a safety net). Virtual times vary a few percent
//!   run-to-run; retained for host-nanosecond microbenchmarks.
//!
//! Shutdown is prompt in both modes: teardown pokes every comm thread
//! ([`NetSender::wake`]) instead of waiting out a poll interval.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use lots_analyze::{AnalyzeConfig, RaceDetector, RaceReport};
use lots_disk::{BackingStore, MemStore};
use lots_net::{
    cluster_net, Buffered, Envelope, NetReceiver, NetSender, NodeId, Recv, TrafficStats,
};
use lots_persist::{NodeJournal, PersistStore, RestoredCluster};
use lots_sim::{
    FaultPlan, MachineConfig, NodeStats, SchedHandle, ScheduleScript, Scheduler, SchedulerMode,
    SimClock, SimInstant, TimeCategory, Topology,
};
use parking_lot::Mutex;

use crate::api::Dsm;
use crate::config::LotsConfig;
use crate::consistency::barrier::BarrierService;
use crate::consistency::locks::LockService;
use crate::consistency::SyncCtx;
use crate::diff::WordDiff;
use crate::node::NodeState;
use crate::protocol::messages::Msg;

/// Everything needed to start a cluster run.
pub struct ClusterOptions {
    /// Cluster size.
    pub n: usize,
    /// LOTS protocol configuration.
    pub lots: LotsConfig,
    /// Simulated machine (CPU, network, disk models).
    pub machine: MachineConfig,
    /// Per-link latency/bandwidth overrides on top of the machine's
    /// base network model. [`Topology::uniform`] (the default) keeps
    /// every link on the base model and the scheduler lookahead equal
    /// to [`lots_sim::NetModel::min_latency`].
    pub topology: Topology,
    /// Backing-store factory, one store per node. Defaults to
    /// unbounded in-memory stores timed by the machine's disk model.
    pub store_factory: Box<dyn Fn(NodeId) -> Arc<dyn BackingStore> + Send + Sync>,
    /// Execution model: deterministic turnstile (default) or
    /// free-running threads.
    pub scheduler: SchedulerMode,
    /// Cluster seed: surfaced to applications via
    /// [`crate::DsmApi::seed`] (seeded workloads fold it into their
    /// RNG streams) and echoed in [`ClusterReport::seed`].
    pub seed: u64,
    /// Seeded fault injection (delays, stragglers, node panics).
    pub faults: FaultPlan,
    /// Correctness analysis (off by default — a disabled config adds
    /// one branch per access and leaves virtual times untouched).
    pub analyze: AnalyzeConfig,
    /// Schedule script for [`SchedulerMode::Explore`]: pins the
    /// dispatch order among equivalent-batch permutations. Installed
    /// on the scheduler before launch; `None` means canonical order.
    pub explore: Option<ScheduleScript>,
    /// Journal store for the persistence subsystem. Only consulted
    /// when [`LotsConfig::persist`] is set; `None` then creates a
    /// fresh in-memory store. Pass a shared handle to inspect the
    /// logs after the run (or to restore from them later).
    pub persist_store: Option<PersistStore>,
    /// Restored cluster state to verify a replay against (see
    /// [`restore_cluster`]): each node's journal asserts every sealed
    /// digest and virtual clock it reproduces, and barriers beyond the
    /// restored checkpoint count as replayed.
    pub persist_verify: Option<Arc<RestoredCluster>>,
}

impl ClusterOptions {
    /// Options with the default in-memory backing stores, the
    /// deterministic scheduler, seed 0 and no faults.
    pub fn new(n: usize, lots: LotsConfig, machine: MachineConfig) -> ClusterOptions {
        let disk = machine.disk;
        ClusterOptions {
            n,
            lots,
            machine,
            topology: Topology::uniform(),
            store_factory: Box::new(move |_| Arc::new(MemStore::new(disk))),
            scheduler: SchedulerMode::Deterministic,
            seed: 0,
            faults: FaultPlan::none(),
            analyze: AnalyzeConfig::off(),
            explore: None,
            persist_store: None,
            persist_verify: None,
        }
    }

    /// Replace the backing-store factory (e.g. file-backed spools).
    pub fn with_stores(
        mut self,
        f: impl Fn(NodeId) -> Arc<dyn BackingStore> + Send + Sync + 'static,
    ) -> ClusterOptions {
        self.store_factory = Box::new(f);
        self
    }

    /// Install per-link latency/bandwidth overrides.
    pub fn with_topology(mut self, topology: Topology) -> ClusterOptions {
        self.topology = topology;
        self
    }

    /// Select the execution model.
    pub fn with_scheduler(mut self, mode: SchedulerMode) -> ClusterOptions {
        self.scheduler = mode;
        self
    }

    /// Set the cluster seed (workload data reproducibility).
    pub fn with_seed(mut self, seed: u64) -> ClusterOptions {
        self.seed = seed;
        self
    }

    /// Attach a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> ClusterOptions {
        self.faults = faults;
        self
    }

    /// Enable correctness analysis (e.g. [`AnalyzeConfig::races`]).
    pub fn with_analyze(mut self, analyze: AnalyzeConfig) -> ClusterOptions {
        self.analyze = analyze;
        self
    }

    /// Install a schedule script (see [`SchedulerMode::Explore`]).
    pub fn with_explore_script(mut self, script: ScheduleScript) -> ClusterOptions {
        self.explore = Some(script);
        self
    }

    /// Journal into the given [`PersistStore`] (only meaningful with
    /// [`LotsConfig::persist`] set). The caller keeps a clone to
    /// inspect or restore from after the run.
    pub fn with_persist_store(mut self, store: PersistStore) -> ClusterOptions {
        self.persist_store = Some(store);
        self
    }

    /// Install a restored cluster as the replay-verification oracle
    /// (see [`restore_cluster`]).
    pub fn with_persist_verify(mut self, restored: Arc<RestoredCluster>) -> ClusterOptions {
        self.persist_verify = Some(restored);
        self
    }
}

/// Per-node outcome of a run.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// The node's rank.
    pub me: NodeId,
    /// Final virtual time (the node's execution time).
    pub time: SimInstant,
    /// The node's time/counter statistics.
    pub stats: NodeStats,
    /// The node's traffic counters.
    pub traffic: TrafficStats,
    /// Logical bytes of shared objects registered.
    pub object_bytes: u64,
    /// Bytes left in the swap store at exit — actual store-resident
    /// (post-compression) bytes, what counts against free disk space.
    pub swapped_bytes: u64,
    /// Logical bytes of objects swapped out at exit.
    pub swapped_logical_bytes: u64,
    /// Logical bytes of objects still mapped in the DMM area at exit.
    pub resident_bytes: u64,
    /// DMM fragmentation snapshot at exit (free bytes, largest hole,
    /// external-fragmentation ratio).
    pub frag: crate::alloc::FragStats,
    /// Object-table slots at exit (control-space footprint; bounded
    /// under churn while cumulative allocations grow).
    pub object_slots: usize,
    /// Scheduler dispatches of this node's app + comm tasks (0 under
    /// free-running mode). A pure function of the simulated schedule:
    /// identical across `Deterministic` and `Parallel` runs.
    pub sched_turns: u64,
    /// Wakes delivered to this node's app + comm tasks (0 under
    /// free-running mode); deterministic like `sched_turns`.
    pub sched_wakes: u64,
}

/// Cluster-wide outcome.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-node reports, indexed by rank.
    pub nodes: Vec<NodeReport>,
    /// Execution time: the slowest node's final virtual clock.
    pub exec_time: SimInstant,
    /// The seed the cluster ran with (see [`ClusterOptions::seed`]).
    pub seed: u64,
    /// Whole-run scheduler counters (`None` under free-running mode).
    /// `turns`/`wakes`/`epochs` are engine-independent; the worker
    /// fields describe host execution only.
    pub sched: Option<lots_sim::SchedSummary>,
    /// Race-detector report (`Some` iff analysis was enabled via
    /// [`ClusterOptions::analyze`]); deterministic under the engine
    /// scheduler modes.
    pub races: Option<RaceReport>,
}

impl ClusterReport {
    /// Sum over nodes of a per-node counter.
    pub fn total<F: Fn(&NodeReport) -> u64>(&self, f: F) -> u64 {
        self.nodes.iter().map(f).sum()
    }

    /// Home-load imbalance: max-over-nodes of home bytes served,
    /// divided by the per-node mean, in permille (integer math, so
    /// deterministic). `1000` is a perfectly balanced cluster; a
    /// single-home hotspot on an `n`-node cluster reads `n × 1000`;
    /// `0` means no remote object traffic at all.
    pub fn home_load_ratio_permille(&self) -> u64 {
        let loads: Vec<u64> = self
            .nodes
            .iter()
            .map(|r| r.stats.home_bytes_served())
            .collect();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 0;
        }
        let max = loads.iter().copied().max().unwrap_or(0);
        (max as u128 * loads.len() as u128 * 1000 / total as u128) as u64
    }
}

/// Run an SPMD application on a simulated LOTS cluster.
///
/// `app` is invoked once per node with that node's [`Dsm`]; the call
/// returns each node's result plus the cluster report (virtual
/// execution time, per-node stats and traffic). Under the default
/// deterministic scheduler, same options ⇒ byte-identical report.
pub fn run_cluster<R, F>(opts: ClusterOptions, app: F) -> (Vec<R>, ClusterReport)
where
    R: Send + 'static,
    F: Fn(&Dsm) -> R + Send + Sync + 'static,
{
    let n = opts.n;
    assert!(n >= 1, "cluster needs at least one node");
    let clocks: Vec<SimClock> = (0..n).map(|_| SimClock::new()).collect();
    // Persistence: one journal store for the cluster (caller-supplied
    // or fresh), and — under an engine scheduler — one compaction
    // daemon task per node. With `LotsConfig::persist` unset nothing
    // below exists and the run is bit-identical to earlier builds.
    let persist_cfg = opts.lots.persist.clone();
    let persist_store = persist_cfg.as_ref().map(|_| {
        opts.persist_store
            .clone()
            .unwrap_or_else(|| PersistStore::new(n))
    });
    let compaction_on = persist_cfg.as_ref().is_some_and(|p| p.compaction.enabled);
    // Engine modes: app tasks get ids 0..n, comm tasks n..2n, so clock
    // ties resolve app-first in rank order; both tasks of node i carry
    // node index i (one task per node per epoch). The lookahead window
    // is the minimum latency over the topology's live links, floored
    // above zero so degenerate topologies cannot stall epoch progress.
    let (sched, app_tasks, comm_tasks, persist_tasks) = if opts.scheduler.uses_engine() {
        let s = Scheduler::new(
            opts.scheduler,
            opts.topology.lookahead(&opts.machine.net, n),
        );
        if let Some(script) = &opts.explore {
            s.set_script(script.clone());
        }
        let apps: Vec<SchedHandle> = (0..n)
            .map(|i| s.register(format!("lots-app-{i}"), clocks[i].clone(), i, false))
            .collect();
        let comms: Vec<SchedHandle> = (0..n)
            .map(|i| s.register(format!("lots-comm-{i}"), clocks[i].clone(), i, true))
            .collect();
        // Compaction daemons carry their own clocks: they poll in
        // virtual time independently of the node's app/comm progress,
        // and the engine's one-task-per-node-per-epoch rule keeps the
        // interleaving deterministic.
        let persists: Option<Vec<(SchedHandle, SimClock)>> = compaction_on.then(|| {
            (0..n)
                .map(|i| {
                    let c = SimClock::new();
                    (
                        s.register(format!("lots-persist-{i}"), c.clone(), i, true),
                        c,
                    )
                })
                .collect()
        });
        (Some(s), Some(apps), Some(comms), persists)
    } else {
        // Free-running mode has no virtual-time turnstile to pace a
        // poll loop, so background compaction is engine-only; the
        // journal itself still works.
        (None, None, None, None)
    };
    // delay_for() short-circuits when no delay is configured, so the
    // net layer can take the whole plan whenever anything is active.
    let fault_delays = opts
        .faults
        .is_active()
        .then(|| Arc::new(opts.faults.clone()));
    let net = cluster_net::<Msg>(
        n,
        opts.machine.net,
        opts.topology.clone(),
        comm_tasks.clone(),
        fault_delays,
    );
    let endpoints = net.endpoints;
    if let Some(s) = &sched {
        // If a lost message strands a requester and trips the deadlock
        // detector, its snapshot names the dropped (src, dst, seq).
        let drops = net.drops.clone();
        s.set_diagnostic(move || drops.render());
    }
    let locks = Arc::new(LockService::new(
        n,
        opts.lots.diff_mode,
        opts.lots.lock_protocol,
    ));
    let barrier = Arc::new(BarrierService::new(
        n,
        opts.lots.home_migration,
        Arc::clone(&locks),
    ));
    let shutdown = Arc::new(AtomicBool::new(false));
    let app = Arc::new(app);
    // One detector instance spans the cluster: nodes stamp it through
    // their Dsm hooks, the report is drained after the join below.
    let detector = opts
        .analyze
        .race_detect
        .then(|| Arc::new(RaceDetector::new(n)));

    let mut app_threads = Vec::with_capacity(n);
    let mut comm_threads = Vec::with_capacity(n);
    let mut persist_threads = Vec::new();
    let mut probes = Vec::with_capacity(n);
    let mut poker: Option<NetSender<Msg>> = None;

    for (me, (tx, rx)) in endpoints.into_iter().enumerate() {
        poker.get_or_insert_with(|| tx.clone());
        let clock = clocks[me].clone();
        let stats = NodeStats::new();
        let cpu = opts.machine.cpu.scaled(opts.faults.cpu_factor(me));
        let store = (opts.store_factory)(me);
        let node = Arc::new(Mutex::new(NodeState::new(
            me,
            n,
            opts.lots.clone(),
            cpu,
            store,
            clock.clone(),
            stats.clone(),
        )));
        let (reply_tx, reply_rx) = unbounded::<Envelope<Msg>>();
        let ctx = SyncCtx {
            me,
            clock: clock.clone(),
            stats: stats.clone(),
            traffic: tx.stats().clone(),
            net: opts.machine.net,
            cpu,
            sched: app_tasks.as_ref().map(|t| t[me].clone()),
        };
        probes.push((clock, stats.clone(), tx.stats().clone(), Arc::clone(&node)));

        // Persistence: this node's journal (appended by the app thread
        // after every barrier) and its background compaction daemon.
        let journal = persist_cfg.as_ref().map(|p| {
            let store = persist_store.clone().expect("store exists with persist on");
            let mut j = NodeJournal::new(me, store, p.clone());
            if let Some(restored) = &opts.persist_verify {
                j.set_verify(restored.verify_plan(me));
            }
            Arc::new(Mutex::new(j))
        });
        if let (Some(tasks), Some(journal)) = (&persist_tasks, &journal) {
            let (task, pclock) = tasks[me].clone();
            let daemon_node = Arc::clone(&node);
            let daemon_journal = Arc::clone(journal);
            let daemon_stats = stats.clone();
            let daemon_shutdown = Arc::clone(&shutdown);
            let poll = persist_cfg
                .as_ref()
                .expect("persist on when tasks exist")
                .compaction
                .poll;
            persist_threads.push(
                std::thread::Builder::new()
                    .name(format!("lots-persist-{me}"))
                    .spawn(move || {
                        task.attach();
                        loop {
                            if daemon_shutdown.load(Ordering::Acquire) {
                                task.finish();
                                return;
                            }
                            // Compact under the journal lock, then book
                            // the run's I/O on the node's serial disk
                            // device at daemon time: demand reads and
                            // swap write-backs queue behind it.
                            let out = daemon_journal.lock().maybe_compact();
                            if let Some(out) = out {
                                let done = daemon_node.lock().persist_book_compaction(
                                    pclock.now(),
                                    out.read_bytes,
                                    out.write_bytes,
                                );
                                daemon_stats.count_compaction(out.reclaimed);
                                pclock.advance_to(done);
                            }
                            let next = SimInstant(pclock.now().nanos() + poll.nanos());
                            pclock.advance_to(next);
                            task.yield_until(next);
                        }
                    })
                    .expect("spawn persist daemon"),
            );
        }

        comm_threads.push(
            std::thread::Builder::new()
                .name(format!("lots-comm-{me}"))
                .spawn({
                    let comm = CommThread {
                        node: Arc::clone(&node),
                        net: tx.clone(),
                        rx,
                        reply_tx,
                        shutdown: Arc::clone(&shutdown),
                        me_task: comm_tasks.as_ref().map(|t| t[me].clone()),
                        app_task: app_tasks.as_ref().map(|t| t[me].clone()),
                    };
                    let barrier = Arc::clone(&barrier);
                    let locks = Arc::clone(&locks);
                    move || {
                        let me_task = comm.me_task.clone();
                        let r =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| comm.run()));
                        match r {
                            Ok(()) => {
                                if let Some(t) = &me_task {
                                    t.finish();
                                }
                            }
                            Err(payload) => {
                                // A dead comm thread strands its peers:
                                // poison so they fail loudly — BEFORE
                                // finish(), whose dispatch would otherwise
                                // trip the deadlock detector on the still-
                                // blocked peers and mask this panic.
                                barrier.poison();
                                locks.poison();
                                if let Some(t) = &me_task {
                                    t.finish();
                                }
                                std::panic::resume_unwind(payload);
                            }
                        }
                    }
                })
                .expect("spawn comm thread"),
        );

        let dsm_parts = (
            ctx,
            node,
            tx,
            reply_rx,
            Arc::clone(&locks),
            Arc::clone(&barrier),
        );
        let app = Arc::clone(&app);
        let my_task = app_tasks.as_ref().map(|t| t[me].clone());
        let my_journal = journal;
        let seed = opts.seed;
        let fault_barrier = opts.faults.panic_barrier_for(me);
        let crash_fault = opts.faults.crash_for(me);
        let analyze = detector.clone();
        app_threads.push(
            std::thread::Builder::new()
                .name(format!("lots-app-{me}"))
                .spawn(move || {
                    if let Some(t) = &my_task {
                        t.attach();
                    }
                    let (ctx, node, net, replies, locks, barrier) = dsm_parts;
                    let dsm = Dsm {
                        ctx,
                        node,
                        net,
                        replies,
                        locks,
                        barrier,
                        me,
                        n,
                        seed,
                        fault_barrier,
                        crash_fault,
                        barriers_entered: std::cell::Cell::new(0),
                        live_views: std::cell::Cell::new(0),
                        view_spans: std::cell::RefCell::new(Vec::new()),
                        view_token: std::cell::Cell::new(0),
                        analyze,
                        journal: my_journal,
                    };
                    // A panicking node can never reach the next rendezvous;
                    // poison the sync services so peers blocked in barriers
                    // or lock queues fail loudly instead of hanging forever.
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| app(&dsm)));
                    match result {
                        Ok(r) => {
                            if let Some(t) = &my_task {
                                t.finish();
                            }
                            r
                        }
                        Err(payload) => {
                            dsm.barrier.poison();
                            dsm.locks.poison();
                            if let Some(t) = &my_task {
                                t.finish();
                            }
                            std::panic::resume_unwind(payload);
                        }
                    }
                })
                .expect("spawn app thread"),
        );
    }
    if let Some(s) = &sched {
        s.launch();
    }
    let poker = poker.expect("n >= 1");

    // Join everything first, then propagate the *original* panic (not
    // the secondary "poisoned" panics it induced in peer nodes).
    let joined: Vec<std::thread::Result<R>> = app_threads.into_iter().map(|h| h.join()).collect();
    let results: Vec<R> = if joined.iter().all(|r| r.is_ok()) {
        joined.into_iter().map(|r| r.unwrap()).collect()
    } else {
        let mut primary = None;
        let mut fallback = None;
        for err in joined.into_iter().filter_map(|r| r.err()) {
            let msg = err
                .downcast_ref::<&'static str>()
                .map(|s| s.to_string())
                .or_else(|| err.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            let secondary = msg.contains("peer app thread panicked");
            if secondary {
                fallback.get_or_insert(err);
            } else {
                primary.get_or_insert(err);
            }
        }
        // Don't leak the comm threads while unwinding: stop them, poke
        // them awake, and join before re-raising.
        shutdown.store(true, Ordering::Release);
        for dst in 0..n {
            poker.wake(dst);
        }
        if let Some(tasks) = &persist_tasks {
            for (t, _) in tasks {
                t.wake();
            }
        }
        for h in comm_threads.drain(..) {
            let _ = h.join();
        }
        for h in persist_threads.drain(..) {
            let _ = h.join();
        }
        std::panic::resume_unwind(primary.or(fallback).expect("at least one join error"));
    };
    shutdown.store(true, Ordering::Release);
    // Prompt teardown: poke every comm thread (and in deterministic
    // mode wake its task) instead of waiting out the poll timeout;
    // compaction daemons are woken the same way.
    for dst in 0..n {
        poker.wake(dst);
    }
    if let Some(tasks) = &persist_tasks {
        for (t, _) in tasks {
            t.wake();
        }
    }
    for h in comm_threads {
        h.join().expect("comm thread panicked");
    }
    for h in persist_threads {
        h.join().expect("persist daemon panicked");
    }

    let nodes: Vec<NodeReport> = probes
        .into_iter()
        .enumerate()
        .map(|(me, (clock, stats, traffic, node))| {
            let node = node.lock();
            let (sched_turns, sched_wakes) = match (&app_tasks, &comm_tasks) {
                (Some(apps), Some(comms)) => (
                    apps[me].turns() + comms[me].turns(),
                    apps[me].wakes() + comms[me].wakes(),
                ),
                _ => (0, 0),
            };
            NodeReport {
                me,
                time: clock.now(),
                stats,
                traffic,
                object_bytes: node.total_object_bytes(),
                swapped_bytes: node.swapped_bytes(),
                swapped_logical_bytes: node.swapped_logical_bytes(),
                resident_bytes: node.resident_logical_bytes(),
                frag: node.frag_stats(),
                object_slots: node.object_count(),
                sched_turns,
                sched_wakes,
            }
        })
        .collect();
    let exec_time = nodes
        .iter()
        .map(|r| r.time)
        .max()
        .unwrap_or(SimInstant::ZERO);
    (
        results,
        ClusterReport {
            nodes,
            exec_time,
            seed: opts.seed,
            sched: sched.as_ref().map(|s| s.summary()),
            races: detector.map(|d| d.report()),
        },
    )
}

/// Cold-start restore: re-run `app` against the state rebuilt from a
/// [`PersistStore`] (see [`PersistStore::restore`]), verifying the
/// replay barrier-by-barrier against the original run's journal.
///
/// Restore is an *honest re-execution*: the application restarts from
/// its beginning under the same options and deterministically repeats
/// every barrier interval, journaling into a fresh scratch store. Each
/// node's journal asserts — at every sealed barrier — that the replay
/// reproduces the original log's state digest **and** virtual clock,
/// and panics at the first divergence; barriers beyond the restored
/// checkpoint are counted in
/// [`lots_sim::NodeStats::restore_replay_barriers`]. A passing restore
/// therefore proves the rebuilt-from-log state is byte-identical to
/// the original run's at the checkpoint, and the final results and
/// reports equal the uninterrupted run's exactly.
///
/// `opts` must carry the same cluster shape and [`LotsConfig::persist`]
/// policy as the original run; any `persist_store` in it is replaced
/// with a fresh scratch store so the original logs stay untouched.
pub fn restore_cluster<R, F>(
    restored: Arc<RestoredCluster>,
    mut opts: ClusterOptions,
    app: F,
) -> (Vec<R>, ClusterReport)
where
    R: Send + 'static,
    F: Fn(&Dsm) -> R + Send + Sync + 'static,
{
    assert!(
        opts.lots.persist.is_some(),
        "restore_cluster needs LotsConfig::persist set (the replay re-journals)"
    );
    assert_eq!(
        restored.nodes.len(),
        opts.n,
        "restored cluster size must match the options"
    );
    opts.persist_store = Some(PersistStore::new(opts.n));
    opts.persist_verify = Some(restored);
    run_cluster(opts, app)
}

/// The comm thread: service data-plane requests, forward replies to
/// the application thread.
struct CommThread {
    node: Arc<Mutex<NodeState>>,
    net: NetSender<Msg>,
    rx: NetReceiver<Msg>,
    reply_tx: Sender<Envelope<Msg>>,
    shutdown: Arc<AtomicBool>,
    /// Deterministic mode: this comm thread's own task.
    me_task: Option<SchedHandle>,
    /// Deterministic mode: the sibling app task, woken when a reply is
    /// forwarded to it.
    app_task: Option<SchedHandle>,
}

impl CommThread {
    fn run(mut self) {
        if let Some(me) = self.me_task.clone() {
            // Engine modes: buffer arrivals in virtual order and only
            // service those strictly inside the current turn's horizon
            // — anything a concurrent batch member sends arrives at or
            // beyond the horizon, so the serviced set (and order) is
            // independent of host thread timing. Senders wake this
            // task with each message's arrival time.
            me.attach();
            let mut heap: std::collections::BinaryHeap<Buffered<Msg>> =
                std::collections::BinaryHeap::new();
            loop {
                while let Some(env) = self.rx.try_recv() {
                    heap.push(Buffered::new(env));
                }
                let horizon = me.horizon().nanos();
                while heap.peek().is_some_and(|b| b.arrival_ns() < horizon) {
                    let env = heap.pop().expect("peeked").into_env();
                    if !self.handle(env) {
                        return;
                    }
                    // Servicing may have replied; pick up anything that
                    // landed meanwhile before deciding whether to park.
                    while let Some(env) = self.rx.try_recv() {
                        heap.push(Buffered::new(env));
                    }
                }
                if self.shutdown.load(Ordering::Acquire) {
                    return;
                }
                match heap.peek() {
                    // Future traffic buffered: runnable again at its
                    // arrival — it competes in batch selection like any
                    // other virtual event.
                    Some(b) => me.yield_until(SimInstant(b.arrival_ns())),
                    // Nothing pending: park at virtual infinity until a
                    // sender (or the shutdown poke) wakes us.
                    None => me.block_with(lots_sim::BlockReason::Idle),
                }
            }
        } else {
            // Free-running: poll with a timeout; the shutdown path
            // pokes the channel so teardown does not wait it out.
            loop {
                match self.rx.recv_timeout(Duration::from_millis(25)) {
                    Recv::Message(env) => {
                        if !self.handle(env) {
                            return;
                        }
                    }
                    Recv::Timeout => {
                        if self.shutdown.load(Ordering::Acquire) {
                            return;
                        }
                    }
                    Recv::Disconnected => return,
                }
            }
        }
    }

    /// Service one message; `false` means the loop should exit.
    fn handle(&mut self, env: Envelope<Msg>) -> bool {
        let src = env.src;
        match env.msg {
            Msg::ObjReq { obj } => {
                let (bytes, version, service_done, striped_child) = {
                    let mut st = self.node.lock();
                    // The handler runs when the request arrives
                    // or when the node's own work frees the CPU,
                    // whichever is later; it steals node time.
                    st.stats.charge(TimeCategory::Handler, st.cpu.handler_entry);
                    st.clock.advance(st.cpu.handler_entry);
                    let t0 = st.clock.now().max(env.arrival);
                    let striped_child = st.ctl(obj).is_stripe_child();
                    let (b, v) = st
                        .serve_object(obj)
                        .unwrap_or_else(|e| panic!("serving {obj}: {e}"));
                    st.stats.count_home_request(b.len() as u64);
                    // Disk time charged inside serve_object has
                    // already advanced the clock; the reply can
                    // leave at the later of arrival and now.
                    let done = st.clock.now().max(t0);
                    (b, v, done, striped_child)
                };
                let tx = self.net.send(
                    src,
                    Msg::ObjReply { obj, version },
                    bytes.into(),
                    service_done,
                );
                if striped_child {
                    // Segment serving occupies the home's NIC until the
                    // reply is on the wire: concurrent readers of *one*
                    // home queue behind each other (the single-home
                    // bottleneck), while readers of a striped object
                    // fan out over distinct homes and overlap. Plain
                    // objects keep the seed's accounting bit-for-bit.
                    let st = self.node.lock();
                    st.clock.advance_to(tx.sender_free);
                }
            }
            Msg::DiffSend { obj, ts } => {
                let service_done = {
                    let mut st = self.node.lock();
                    st.stats.charge(TimeCategory::Handler, st.cpu.handler_entry);
                    st.clock.advance(st.cpu.handler_entry);
                    let diff = WordDiff::decode(&env.payload);
                    st.apply_remote_diff(obj, &diff, ts)
                        .unwrap_or_else(|e| panic!("applying diff for {obj}: {e}"));
                    st.clock.now().max(env.arrival)
                };
                self.net
                    .send(src, Msg::DiffAck { obj }, Default::default(), service_done);
            }
            Msg::ObjReply { .. } | Msg::DiffAck { .. } => {
                // Replies to this node's app thread.
                let arrival = env.arrival;
                if self.reply_tx.send(env).is_err() {
                    return false; // app thread gone: shutting down
                }
                if let Some(app) = &self.app_task {
                    app.wake_at(arrival);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{DsmApi, DsmSlice};
    use lots_sim::machine::p4_fedora;
    use lots_sim::PanicFault;

    fn opts(n: usize, dmm: usize) -> ClusterOptions {
        ClusterOptions::new(n, LotsConfig::small(dmm), p4_fedora())
    }

    #[test]
    fn single_node_roundtrip() {
        let (results, report) = run_cluster(opts(1, 64 * 1024), |dsm| {
            let a = dsm.alloc::<i32>(100);
            a.write(5, 42);
            a.read(5)
        });
        assert_eq!(results, vec![42]);
        assert!(report.exec_time.nanos() > 0);
    }

    #[test]
    fn two_nodes_see_writes_after_barrier() {
        let (results, _) = run_cluster(opts(2, 64 * 1024), |dsm| {
            let a = dsm.alloc::<i32>(16);
            if dsm.me() == 0 {
                a.write(3, 77);
            }
            dsm.barrier();
            a.read(3)
        });
        assert_eq!(results, vec![77, 77]);
    }

    #[test]
    fn migrated_home_serves_later_readers() {
        let (results, report) = run_cluster(opts(4, 64 * 1024), |dsm| {
            let a = dsm.alloc::<i32>(64);
            if dsm.me() == 2 {
                a.fill(9);
            }
            dsm.barrier();
            // Home migrated to node 2 (single writer); all others fetch.
            let v = a.read(63);
            dsm.barrier();
            v
        });
        assert_eq!(results, vec![9, 9, 9, 9]);
        // Three fetches of a 256-byte object happened.
        let bytes: u64 = report.total(|n| n.traffic.bytes_sent());
        assert!(bytes > 3 * 256, "traffic {bytes}");
    }

    #[test]
    fn multi_writer_object_merges_at_home() {
        let (results, _) = run_cluster(opts(4, 64 * 1024), |dsm| {
            let a = dsm.alloc::<i32>(4);
            a.write(dsm.me(), dsm.me() as i32 + 1);
            dsm.barrier();
            (0..4).map(|i| a.read(i)).sum::<i32>()
        });
        assert_eq!(results, vec![10, 10, 10, 10]);
    }

    #[test]
    fn lock_updates_propagate_without_barrier() {
        let (results, _) = run_cluster(opts(2, 64 * 1024), |dsm| {
            let a = dsm.alloc::<i32>(8);
            for _ in 0..10 {
                dsm.lock(1);
                let v = a.read(0);
                a.write(0, v + 1);
                dsm.unlock(1);
            }
            dsm.barrier();
            a.read(0)
        });
        // All 20 increments survive iff every grant carried the prior
        // critical sections' updates (no lost updates).
        assert_eq!(results, vec![20, 20]);
    }

    #[test]
    #[should_panic(expected = "node 2 exploded")]
    fn peer_panic_fails_loudly_instead_of_hanging() {
        // Nodes 0, 1 and 3 block at the barrier; node 2 panics before
        // reaching it. Without poisoning this run would hang forever —
        // with it, the original panic propagates out of run_cluster.
        let _ = run_cluster(opts(4, 64 * 1024), |dsm| {
            let a = dsm.alloc::<i32>(16);
            if dsm.me() == 2 {
                panic!("node 2 exploded");
            }
            dsm.barrier();
            a.read(0)
        });
    }

    #[test]
    #[should_panic(expected = "node 1 exploded")]
    fn peer_panic_fails_loudly_in_free_running_mode() {
        let o = opts(2, 64 * 1024).with_scheduler(SchedulerMode::FreeRunning);
        let _ = run_cluster(o, |dsm| {
            let a = dsm.alloc::<i32>(16);
            if dsm.me() == 1 {
                panic!("node 1 exploded");
            }
            dsm.barrier();
            a.read(0)
        });
    }

    #[test]
    fn clock_and_traffic_recorded() {
        let (_, report) = run_cluster(opts(2, 64 * 1024), |dsm| {
            let a = dsm.alloc::<i64>(1024);
            if dsm.me() == 1 {
                a.fill(7);
            }
            dsm.barrier();
            a.read(1023)
        });
        for node in &report.nodes {
            assert!(node.time.nanos() > 0);
            assert!(node.stats.access_checks() > 0);
        }
        assert!(report.exec_time >= report.nodes[0].time);
    }

    fn fingerprint(report: &ClusterReport) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for nd in &report.nodes {
            let _ = write!(
                out,
                "{}:{}:{}:{}:{}:{};",
                nd.me,
                nd.time.nanos(),
                nd.stats.access_checks(),
                nd.traffic.bytes_sent(),
                nd.traffic.msgs_sent(),
                nd.stats.time_in(TimeCategory::SyncWait).nanos(),
            );
        }
        out
    }

    fn contended_kernel(dsm: &Dsm) -> i64 {
        let a = dsm.alloc::<i64>(256);
        let per = 256 / dsm.n();
        let base = dsm.me() * per;
        for i in 0..per {
            a.write(base + i, (base + i) as i64);
        }
        dsm.barrier();
        let mut sum = 0;
        for _ in 0..4 {
            dsm.lock(1);
            let v = a.read(0);
            a.write(0, v + 1);
            dsm.unlock(1);
        }
        dsm.barrier();
        for i in 0..256 {
            sum += a.read(i);
        }
        sum
    }

    #[test]
    fn deterministic_mode_reproduces_reports_exactly() {
        let run = || {
            let (results, report) = run_cluster(opts(4, 256 * 1024), contended_kernel);
            (results, fingerprint(&report))
        };
        let (r1, f1) = run();
        let (r2, f2) = run();
        assert_eq!(r1, r2);
        assert_eq!(f1, f2, "same seed must give byte-identical reports");
    }

    #[test]
    fn free_running_mode_still_computes_correctly() {
        let o = opts(4, 256 * 1024).with_scheduler(SchedulerMode::FreeRunning);
        let (results, report) = run_cluster(o, contended_kernel);
        assert_eq!(results.len(), 4);
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        assert!(report.exec_time.nanos() > 0);
    }

    #[test]
    #[should_panic(expected = "fault injection")]
    fn fault_plan_panics_the_chosen_node() {
        let o = opts(2, 64 * 1024).with_faults(FaultPlan {
            panic_node: Some(PanicFault {
                node: 1,
                at_barrier: 1,
            }),
            ..FaultPlan::none()
        });
        let _ = run_cluster(o, |dsm| {
            let a = dsm.alloc::<i32>(4);
            a.write(dsm.me(), 1);
            dsm.barrier();
            a.read(0)
        });
    }

    #[test]
    fn fault_delays_and_slowdowns_change_times_not_values() {
        let base = run_cluster(opts(2, 64 * 1024), contended_kernel);
        let o = opts(2, 64 * 1024).with_faults(FaultPlan {
            seed: 99,
            max_msg_delay: lots_sim::SimDuration::from_millis(2),
            cpu_slowdown: vec![(1, 2.0)],
            ..FaultPlan::none()
        });
        let perturbed = run_cluster(o, contended_kernel);
        assert_eq!(base.0, perturbed.0, "faulted run must compute same values");
        assert!(
            perturbed.1.exec_time > base.1.exec_time,
            "delays + a straggler must cost virtual time ({} vs {})",
            perturbed.1.exec_time,
            base.1.exec_time
        );
    }

    #[test]
    fn lossy_network_with_retransmission_preserves_values() {
        let base = run_cluster(opts(3, 256 * 1024), contended_kernel);
        let o = opts(3, 256 * 1024).with_faults(FaultPlan {
            seed: 7,
            loss_permille: 60,
            dup_permille: 40,
            reorder_permille: 80,
            ..FaultPlan::none()
        });
        let lossy = run_cluster(o, contended_kernel);
        assert_eq!(base.0, lossy.0, "lossy run must compute the same values");
        let retransmits = lossy.1.total(|n| n.traffic.msgs_retransmitted());
        assert!(retransmits > 0, "6% loss must force some retransmissions");
        assert_eq!(
            lossy.1.total(|n| n.traffic.msgs_dropped()),
            0,
            "the reliable layer must recover every loss"
        );
        assert!(
            lossy.1.exec_time > base.1.exec_time,
            "retransmission timeouts must cost virtual time"
        );
    }

    #[test]
    fn scheduled_partition_heals_and_values_survive() {
        let base = run_cluster(opts(4, 256 * 1024), contended_kernel);
        let o = opts(4, 256 * 1024).with_faults(FaultPlan {
            seed: 11,
            partitions: vec![lots_sim::Partition {
                start: SimInstant(50_000),
                end: SimInstant(3_000_000),
                islanders: vec![3],
            }],
            ..FaultPlan::none()
        });
        let cut = run_cluster(o, contended_kernel);
        assert_eq!(base.0, cut.0, "partitioned run must compute same values");
        assert_eq!(cut.1.total(|n| n.traffic.msgs_dropped()), 0);
    }

    #[test]
    fn crash_rejoin_preserves_values_and_costs_time() {
        let kernel = |dsm: &Dsm| {
            let a = dsm.alloc::<i64>(512);
            let per = 512 / dsm.n();
            let base = dsm.me() * per;
            for i in 0..per {
                a.write(base + i, (base + i) as i64 * 3);
            }
            dsm.barrier();
            let mut sum = 0i64;
            for i in 0..512 {
                sum += a.read(i);
            }
            dsm.barrier();
            sum
        };
        let base = run_cluster(opts(4, 256 * 1024), kernel);
        let o = opts(4, 256 * 1024).with_faults(FaultPlan {
            crash_node: Some(lots_sim::CrashFault {
                node: 1,
                at_barrier: 1,
                reboot: lots_sim::SimDuration::from_millis(50),
            }),
            ..FaultPlan::none()
        });
        let crashed = run_cluster(o, kernel);
        assert_eq!(base.0, crashed.0, "rejoin must preserve every value");
        assert_eq!(crashed.1.total(|n| n.stats.rejoin_rounds()), 1);
        assert!(crashed.1.total(|n| n.stats.rejoin_bytes()) > 0);
        assert!(
            crashed.1.exec_time > base.1.exec_time,
            "the reboot outage must cost virtual time"
        );
    }

    #[test]
    fn mixed_latency_topology_reproduces_exactly() {
        let slow = lots_sim::LinkParams {
            latency: lots_sim::SimDuration::from_micros(900),
            bandwidth_bps: 10_000_000,
        };
        let topo = Topology::uniform().with_symmetric_link(0, 3, slow);
        let run = |mode| {
            let o = opts(4, 256 * 1024)
                .with_topology(topo.clone())
                .with_scheduler(mode);
            let (results, report) = run_cluster(o, contended_kernel);
            (results, fingerprint(&report))
        };
        let (rd, fd) = run(SchedulerMode::Deterministic);
        let (rp, fp) = run(SchedulerMode::Parallel { workers: 4 });
        assert_eq!(rd, rp);
        assert_eq!(fd, fp, "parallel engine must match the sequential oracle");
    }

    #[test]
    fn report_carries_seed() {
        let (_, report) = run_cluster(opts(1, 64 * 1024).with_seed(777), |dsm| dsm.seed());
        assert_eq!(report.seed, 777);
    }

    #[test]
    fn persistence_journals_checkpoints_and_replays_identically() {
        let with_persist = |mut o: ClusterOptions| {
            o.lots = o
                .lots
                .clone()
                .with_persist(lots_persist::PersistConfig::every(1));
            o
        };
        let store = PersistStore::new(3);
        let o = with_persist(opts(3, 256 * 1024)).with_persist_store(store.clone());
        let (r1, rep1) = run_cluster(o, contended_kernel);
        assert!(rep1.total(|n| n.stats.log_records()) > 0);
        assert!(rep1.total(|n| n.stats.log_bytes_appended()) > 0);
        assert!(rep1.total(|n| n.stats.checkpoint_bytes()) > 0);
        let restored = store.restore().expect("journals restore");
        assert_eq!(restored.checkpoint_seq, 2, "both barriers checkpointed");
        // Honest replay against the restored verify plan: every sealed
        // digest and virtual clock must be reproduced exactly.
        let (r2, rep2) = restore_cluster(
            Arc::new(restored),
            with_persist(opts(3, 256 * 1024)),
            contended_kernel,
        );
        assert_eq!(r1, r2, "replay must compute the same values");
        assert_eq!(
            fingerprint(&rep1),
            fingerprint(&rep2),
            "replay must be byte-identical in time and traffic"
        );
    }

    #[test]
    fn torn_journal_tail_replays_beyond_the_checkpoint() {
        let with_persist = |mut o: ClusterOptions| {
            o.lots = o
                .lots
                .clone()
                .with_persist(lots_persist::PersistConfig::every(1));
            o
        };
        let store = PersistStore::new(2);
        let o = with_persist(opts(2, 256 * 1024)).with_persist_store(store.clone());
        let (r1, _) = run_cluster(o, contended_kernel);
        // Tear node 1's log mid-way: restore falls back to the newest
        // manifest both nodes completed, and the replay re-executes
        // (and re-verifies) the barriers beyond it.
        let full = store.log_bytes(1) as usize;
        store.truncate_tail(1, full - full / 3);
        let restored = store.restore().expect("torn log still restores");
        assert!(restored.checkpoint_seq >= 1);
        let (r2, rep2) = restore_cluster(
            Arc::new(restored.clone()),
            with_persist(opts(2, 256 * 1024)),
            contended_kernel,
        );
        assert_eq!(r1, r2);
        if restored.checkpoint_seq < 2 {
            assert!(
                rep2.total(|n| n.stats.restore_replay_barriers()) > 0,
                "barriers beyond the torn checkpoint count as replayed"
            );
        }
    }

    #[test]
    fn rejoin_reads_own_journal_when_persistence_is_on() {
        // One object per node, each written solely by its node, so the
        // migrating-home protocol makes every node (the crash victim
        // included) home of a master after barrier 1.
        let kernel = |dsm: &Dsm| {
            let objs: Vec<_> = (0..dsm.n()).map(|_| dsm.alloc::<i64>(256)).collect();
            for i in 0..256 {
                objs[dsm.me()].write(i, (dsm.me() * 256 + i) as i64 * 3);
            }
            dsm.barrier();
            let mut sum = 0i64;
            for o in &objs {
                for i in 0..256 {
                    sum += o.read(i);
                }
            }
            dsm.barrier();
            sum
        };
        let faults = || FaultPlan {
            crash_node: Some(lots_sim::CrashFault {
                node: 1,
                at_barrier: 1,
                reboot: lots_sim::SimDuration::from_millis(50),
            }),
            ..FaultPlan::none()
        };
        let base = run_cluster(opts(4, 256 * 1024).with_faults(faults()), kernel);
        let mut o = opts(4, 256 * 1024).with_faults(faults());
        o.lots = o.lots.with_persist(lots_persist::PersistConfig::every(1));
        let journaled = run_cluster(o, kernel);
        assert_eq!(base.0, journaled.0, "values survive either rejoin path");
        // Without the journal every rebuilt byte crosses the network.
        assert_eq!(base.1.total(|n| n.stats.rejoin_log_bytes()), 0);
        assert!(base.1.total(|n| n.stats.rejoin_peer_bytes()) > 0);
        // With it, the masters come back from the node's own log and
        // peers only send the directory + post-checkpoint deltas.
        assert!(journaled.1.total(|n| n.stats.rejoin_log_bytes()) > 0);
        assert!(
            journaled.1.total(|n| n.stats.rejoin_peer_bytes())
                < base.1.total(|n| n.stats.rejoin_peer_bytes()),
            "journal rejoin must shift master rebuild off the network"
        );
    }
}
