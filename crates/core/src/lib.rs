//! `lots-core` — a Rust reproduction of **LOTS: A Software DSM
//! Supporting Large Object Space** (Cheung, Wang, Lau — CLUSTER 2004).
//!
//! LOTS is an object-based software distributed shared memory runtime
//! whose shared object space can exceed the process address space:
//! object *data* is dynamically and lazily mapped into a fixed DMM
//! region and swapped to local disk under pressure, while only a trace
//! of per-object control information stays resident (§1, §3.3). On top
//! of that live Scope Consistency (§3.4) and a mixed coherence
//! protocol: homeless write-update at locks, migrating-home
//! write-invalidate at barriers, with per-field timestamps eliminating
//! the diff-accumulation problem (§3.5).
//!
//! # Quick start
//!
//! Applications program against the [`DsmApi`]/[`DsmSlice`] traits —
//! the same code runs on LOTS, the LOTS-x ablation, and the JIAJIA
//! baseline. View guards open a bulk access scope that runs the §4.2
//! access check once and exposes a plain slice:
//!
//! ```
//! use lots_core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig};
//! use lots_sim::machine::p4_fedora;
//!
//! let opts = ClusterOptions::new(2, LotsConfig::small(64 * 1024), p4_fedora());
//! let (sums, report) = run_cluster(opts, |dsm| {
//!     let a = dsm.alloc::<i32>(100);
//!     // Each node writes its half through one mutable view:
//!     // one access check, check-free inner loop, write-back on drop.
//!     let half = 50 * dsm.me();
//!     {
//!         let mut mine = a.view_mut(half..half + 50);
//!         for (i, slot) in mine.iter_mut().enumerate() {
//!             *slot = (half + i) as i32;
//!         }
//!     }
//!     dsm.barrier();
//!     let sum = a.view(0..100).iter().map(|&v| v as i64).sum::<i64>();
//!     sum
//! });
//! assert_eq!(sums, vec![4950, 4950]);
//! assert!(report.exec_time.nanos() > 0);
//! ```
//!
//! The crate is organized like the system in the paper:
//!
//! | paper | module |
//! |---|---|
//! | §3.2 allocator, Fig. 4 queues | [`alloc`] |
//! | Fig. 3 address-space layout | [`layout`] |
//! | §3.3 dynamic mapper, pinning | [`node`] |
//! | §3.4 ScC + mixed protocol | [`consistency`] |
//! | §3.5 diffs, Fig. 7 fix | [`diff`], [`consistency::locks`] |
//! | §3.6 transport | `lots-net` crate |
//! | `Pointer<T>` API | [`api`] |

#![deny(missing_docs)]

pub mod alloc;
pub mod api;
pub mod config;
pub mod consistency;
pub mod diff;
pub mod layout;
pub mod node;
pub mod object;
pub mod pod;
pub mod protocol;
pub mod runtime;
pub mod swap;

pub use alloc::FragStats;
pub use api::{Dsm, DsmApi, DsmSlice, ObjView, ObjViewMut, SharedSlice, StmtGuard};
pub use config::{
    AllocConfig, DiffMode, FitPolicy, LockProtocol, LotsConfig, Placement, Striping, SwapConfig,
    SwapPolicyKind,
};
pub use consistency::locks::LockId;
pub use diff::WordDiff;
pub use lots_analyze::{AnalyzeConfig, RaceReport};
pub use lots_persist::{
    CheckpointPolicy, CompactionConfig, PersistConfig, PersistError, PersistStore, RestoredCluster,
};
pub use lots_sim::{FaultPlan, PanicFault, ScheduleScript, SchedulerMode};
pub use node::{LotsError, SwapAccounting};
pub use object::{Life, NamedAllocReq, ObjectId};
pub use pod::Pod;
pub use runtime::{restore_cluster, run_cluster, ClusterOptions, ClusterReport, NodeReport};
pub use swap::SwapPolicy;
