//! `lots-core` — a Rust reproduction of **LOTS: A Software DSM
//! Supporting Large Object Space** (Cheung, Wang, Lau — CLUSTER 2004).
//!
//! LOTS is an object-based software distributed shared memory runtime
//! whose shared object space can exceed the process address space:
//! object *data* is dynamically and lazily mapped into a fixed DMM
//! region and swapped to local disk under pressure, while only a trace
//! of per-object control information stays resident (§1, §3.3). On top
//! of that live Scope Consistency (§3.4) and a mixed coherence
//! protocol: homeless write-update at locks, migrating-home
//! write-invalidate at barriers, with per-field timestamps eliminating
//! the diff-accumulation problem (§3.5).
//!
//! # Quick start
//!
//! ```
//! use lots_core::{run_cluster, ClusterOptions, LotsConfig};
//! use lots_sim::machine::p4_fedora;
//!
//! let opts = ClusterOptions::new(2, LotsConfig::small(64 * 1024), p4_fedora());
//! let (sums, report) = run_cluster(opts, |dsm| {
//!     let a = dsm.alloc::<i32>(100).unwrap();
//!     // Each node writes its half.
//!     let half = 50 * dsm.me();
//!     for i in 0..50 {
//!         a.write(half + i, (half + i) as i32);
//!     }
//!     dsm.barrier();
//!     (0..100).map(|i| a.read(i) as i64).sum::<i64>()
//! });
//! assert_eq!(sums, vec![4950, 4950]);
//! assert!(report.exec_time.nanos() > 0);
//! ```
//!
//! The crate is organized like the system in the paper:
//!
//! | paper | module |
//! |---|---|
//! | §3.2 allocator, Fig. 4 queues | [`alloc`] |
//! | Fig. 3 address-space layout | [`layout`] |
//! | §3.3 dynamic mapper, pinning | [`node`] |
//! | §3.4 ScC + mixed protocol | [`consistency`] |
//! | §3.5 diffs, Fig. 7 fix | [`diff`], [`consistency::locks`] |
//! | §3.6 transport | `lots-net` crate |
//! | `Pointer<T>` API | [`api`] |

pub mod alloc;
pub mod api;
pub mod config;
pub mod consistency;
pub mod diff;
pub mod layout;
pub mod node;
pub mod object;
pub mod pod;
pub mod protocol;
pub mod runtime;

pub use api::{Dsm, SharedSlice, StmtGuard};
pub use config::{DiffMode, LockProtocol, LotsConfig};
pub use consistency::locks::LockId;
pub use diff::WordDiff;
pub use node::LotsError;
pub use object::ObjectId;
pub use pod::Pod;
pub use runtime::{run_cluster, ClusterOptions, ClusterReport, NodeReport};
