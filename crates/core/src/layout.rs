//! The Figure 3 process-space partition.
//!
//! LOTS claims the middle of the 32-bit process space, `0x5000_0000`
//! through `0xAFFF_FFFF`, and splits it into three equal 512 MB
//! segments: the **DMM area** (dynamically mapped object data), the
//! **twin area** (pre-synchronization copies used to compute diffs) and
//! the **control area** (timestamps and lock information). An object at
//! DMM address `A` has its twin at `A + 0x2000_0000` and its control
//! information at `A + 0x4000_0000`.
//!
//! The reproduction keeps the same *virtual* address arithmetic — all
//! addresses handed to applications are Figure 3 addresses — while
//! backing the DMM and twin segments with arenas of configurable size
//! (`dmm_bytes ≤ 512 MB`), indexed by `addr - DMM_BASE`.

/// Base virtual address of the DMM area.
pub const DMM_BASE: u64 = 0x5000_0000;
/// Base virtual address of the twin area.
pub const TWIN_BASE: u64 = 0x7000_0000;
/// Base virtual address of the control area.
pub const CONTROL_BASE: u64 = 0x9000_0000;
/// First address past the LOTS-managed region.
pub const REGION_END: u64 = 0xB000_0000;
/// Segment size: 512 MB, the paper's DMM-area capacity (which also
/// bounds the size of a single object, §4.3).
pub const SEGMENT_BYTES: u64 = 0x2000_0000;
/// Offset from an object's DMM address to its twin.
pub const TWIN_OFFSET: u64 = 0x2000_0000;
/// Offset from an object's DMM address to its control information.
pub const CONTROL_OFFSET: u64 = 0x4000_0000;

/// A virtual address inside the DMM area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DmmAddr(pub u64);

impl DmmAddr {
    /// Construct from an arena offset.
    #[inline]
    pub fn from_offset(offset: usize) -> DmmAddr {
        debug_assert!((offset as u64) < SEGMENT_BYTES);
        DmmAddr(DMM_BASE + offset as u64)
    }

    /// Arena offset backing this address.
    #[inline]
    pub fn offset(self) -> usize {
        debug_assert!(self.in_dmm());
        (self.0 - DMM_BASE) as usize
    }

    /// The twin-area address of this object (Fig. 3: `A + 0x2000_0000`).
    #[inline]
    pub fn twin(self) -> u64 {
        self.0 + TWIN_OFFSET
    }

    /// The control-area address of this object (`A + 0x4000_0000`).
    #[inline]
    pub fn control(self) -> u64 {
        self.0 + CONTROL_OFFSET
    }

    /// Whether the address lies inside the DMM segment.
    #[inline]
    pub fn in_dmm(self) -> bool {
        (DMM_BASE..DMM_BASE + SEGMENT_BYTES).contains(&self.0)
    }
}

/// OS page size assumed by the small-object packing policy (§3.2) and
/// by the JIAJIA baseline's page granularity.
pub const PAGE_BYTES: usize = 4096;

/// Default stripe-segment size (4 MB) used by
/// [`Striping::default`](crate::config::Striping): large enough that a
/// segment amortizes per-message protocol costs, small enough that a
/// multi-hundred-MB object spreads over dozens of homes. Distinct from
/// [`SEGMENT_BYTES`], the Figure 3 *address-space* segment (512 MB).
pub const DEFAULT_STRIPE_SEGMENT_BYTES: usize = 4 << 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_constants() {
        // The three segments tile 0x5000_0000..0xB000_0000 exactly.
        assert_eq!(DMM_BASE + SEGMENT_BYTES, TWIN_BASE);
        assert_eq!(TWIN_BASE + SEGMENT_BYTES, CONTROL_BASE);
        assert_eq!(CONTROL_BASE + SEGMENT_BYTES, REGION_END);
        assert_eq!(SEGMENT_BYTES, 512 << 20);
    }

    #[test]
    fn paper_offset_rule() {
        // "an object occupying an address A in the DMM area will also
        //  occupy the corresponding address (A+0x20000000) in the twin
        //  area and the control area (A+0x40000000)".
        let a = DmmAddr(0x5000_abcd);
        assert_eq!(a.twin(), 0x7000_abcd);
        assert_eq!(a.control(), 0x9000_abcd);
    }

    #[test]
    fn offset_roundtrip() {
        let a = DmmAddr::from_offset(12345);
        assert_eq!(a.0, DMM_BASE + 12345);
        assert_eq!(a.offset(), 12345);
        assert!(a.in_dmm());
        assert!(!DmmAddr(TWIN_BASE).in_dmm());
    }

    #[test]
    fn single_object_bound_is_dmm_segment() {
        // §4.3: "the single object size is only limited by the size of
        // the DMM area, which is 512MB in our current implementation".
        assert_eq!(SEGMENT_BYTES as usize, 512 * 1024 * 1024);
    }
}
