//! Object identity and per-node control information.
//!
//! §3.2: declaring a shared object generates "a unique,
//! known-to-all-machines object ID … the key to access all internal
//! data structures for the object". Allocation then binds memory and
//! sets the mapping state to *mapped* and the shared state to
//! *initial*. The per-object record below is the "trace of control
//! information" that stays resident while object data itself may be
//! swapped out — the mechanism that lets the object space exceed the
//! process space (§1).

use lots_net::NodeId;

use crate::config::Placement;

/// A staged named allocation, committed cluster-wide at the next
/// barrier: every node replays the same deterministic commit list, so
/// object ids (and the replicated name directory) agree without any
/// lockstep-allocation assumption — the allocating node can be the
/// only caller.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NamedAllocReq {
    /// Directory name (`lookup` key).
    pub name: String,
    /// Requested byte size (element count × element size).
    pub bytes: usize,
    /// Element size, checked by typed `lookup::<T>` calls.
    pub elem_size: usize,
    /// Element count.
    pub len: usize,
    /// Initial-home placement of the committed object.
    pub placement: Placement,
    /// Whether [`NamedAllocReq::placement`] was chosen explicitly by a
    /// `*_placed` call (`true`) or inherited from the config default
    /// (`false`). Explicit placements override the striping config's
    /// per-segment default.
    pub placement_explicit: bool,
}

/// Cluster-wide unique object identifier. Fits in 4 bytes so the
/// user-facing handle keeps the size of a C++ pointer (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Where the object's data currently lives on this node (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// Never materialized here (no local copy yet).
    Unmapped,
    /// Mapped in the DMM area at this arena offset.
    Mapped {
        /// Byte offset of the object's block in the DMM arena.
        offset: usize,
    },
    /// Swapped out to the local backing store.
    OnDisk,
}

/// Lifecycle state of an object-table slot.
///
/// `free(slice)` tombstones the object immediately — every further
/// application access panics like the view-guard fences — and the
/// slot's DMM/twin/control space, swap image and directory entries are
/// reclaimed cluster-wide at the next barrier, after which the slot
/// (and its [`ObjectId`]) is reused by later allocations. The fence
/// persists through the `Free` state, but once the slot is *reused* a
/// stale `Copy` of the old handle aliases the new object — the
/// dangling-pointer hazard of the real system (handles stay 4 bytes,
/// §3.3, so there is no generation tag to catch it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Life {
    /// Allocated and accessible.
    #[default]
    Live,
    /// Freed this interval: data still materialized (the home must
    /// keep serving remote readers until the barrier) but local
    /// application access panics.
    Tombstoned,
    /// Reclaimed at a barrier; the slot awaits reuse.
    Free,
}

/// Coherence state of the local copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Share {
    /// Freshly allocated (zero-filled) — consistent cluster-wide at
    /// version 0, so it counts as valid.
    Initial,
    /// Clean copy at `version`.
    Valid,
    /// Stale: must be refetched from the home on next access.
    Invalid,
}

/// Striping record of a parent object: the application-visible handle
/// of a striped allocation is the *parent*, whose data never
/// materializes; each segment is an ordinary directory object (a
/// *child*) with its own home, twin, version and swap image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeInfo {
    /// Segment size in bytes (word-aligned; the final child may be
    /// shorter).
    pub seg_bytes: usize,
    /// Child object ids in segment order. Allocated as consecutive
    /// slots right after the parent, so every node derives the same
    /// list deterministically.
    pub children: Vec<u32>,
}

impl StripeInfo {
    /// The child id covering byte offset `at` of the parent.
    #[inline]
    pub fn child_at(&self, at: usize) -> u32 {
        self.children[at / self.seg_bytes]
    }
}

/// Per-node, per-object control information (the control-area record).
#[derive(Debug, Clone)]
pub struct ObjCtl {
    /// Object size in bytes (word-aligned).
    pub size: usize,
    /// Current home node. Updated cluster-wide at barrier exit when
    /// the migrating-home protocol moves it (§3.4).
    pub home: NodeId,
    /// Local mapping state.
    pub mapping: Mapping,
    /// Local coherence state.
    pub share: Share,
    /// Version (barrier epoch) of the local copy.
    pub version: u64,
    /// Pinning timestamp: statement counter at last access (§3.3).
    /// Objects with the current statement's stamp are unswappable.
    pub last_access: u64,
    /// Whether an interval twin exists (object written this interval).
    pub twin: bool,
    /// Written since the last barrier (drives barrier write notices).
    pub written: bool,
    /// The backing store holds a current image of this object — a
    /// clean re-eviction can skip the disk write ("every object is
    /// swapped out once", §4.3).
    pub clean_on_disk: bool,
    /// Lifecycle state of this slot (see [`Life`]).
    pub life: Life,
    /// Requested (pre-word-rounding) byte size — `free` validates that
    /// the handle covers the whole original allocation.
    pub req_bytes: usize,
    /// Name in the replicated directory, if this object was allocated
    /// through `alloc_named` (cleared when the slot is reclaimed).
    pub name: Option<String>,
    /// First-touch placement: the home is provisional until the first
    /// barrier at which the object was written assigns the real one.
    pub home_pending: bool,
    /// Striping record if this object is a striped *parent* (its data
    /// never materializes; accesses route to the children).
    pub stripe: Option<StripeInfo>,
    /// `(parent id, segment index)` if this object is a stripe *child*.
    /// Children are invisible to the application and to the name
    /// directory; they are reclaimed with their parent.
    pub parent: Option<(u32, u32)>,
}

impl ObjCtl {
    /// Control state for a fresh object of `size` bytes homed at `home`.
    pub fn new(size: usize, home: NodeId) -> ObjCtl {
        assert!(size > 0, "zero-sized shared objects are not allocatable");
        assert_eq!(size % 4, 0, "object sizes are word-aligned");
        ObjCtl {
            size,
            home,
            mapping: Mapping::Unmapped,
            share: Share::Initial,
            version: 0,
            last_access: 0,
            twin: false,
            written: false,
            clean_on_disk: false,
            life: Life::Live,
            req_bytes: size,
            name: None,
            home_pending: false,
            stripe: None,
            parent: None,
        }
    }

    /// Is this object a striped parent (data routed to children)?
    #[inline]
    pub fn is_striped(&self) -> bool {
        self.stripe.is_some()
    }

    /// Is this object a stripe child (invisible segment object)?
    #[inline]
    pub fn is_stripe_child(&self) -> bool {
        self.parent.is_some()
    }

    /// Is the local copy usable without a remote fetch?
    #[inline]
    pub fn locally_valid(&self) -> bool {
        matches!(self.share, Share::Initial | Share::Valid)
    }

    /// Arena offset if mapped.
    #[inline]
    pub fn offset(&self) -> Option<usize> {
        match self.mapping {
            Mapping::Mapped { offset } => Some(offset),
            _ => None,
        }
    }

    /// Number of 32-bit words in the object.
    #[inline]
    pub fn words(&self) -> usize {
        self.size / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_object_is_initial_unmapped() {
        let c = ObjCtl::new(64, 3);
        assert_eq!(c.mapping, Mapping::Unmapped);
        assert_eq!(c.share, Share::Initial);
        assert!(c.locally_valid());
        assert_eq!(c.offset(), None);
        assert_eq!(c.words(), 16);
        assert_eq!(c.home, 3);
        assert!(!c.twin);
        assert!(!c.written);
    }

    #[test]
    fn mapped_exposes_offset() {
        let mut c = ObjCtl::new(8, 0);
        c.mapping = Mapping::Mapped { offset: 4096 };
        assert_eq!(c.offset(), Some(4096));
    }

    #[test]
    fn invalid_is_not_locally_valid() {
        let mut c = ObjCtl::new(8, 0);
        c.share = Share::Invalid;
        assert!(!c.locally_valid());
        c.share = Share::Valid;
        assert!(c.locally_valid());
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn unaligned_size_rejected() {
        ObjCtl::new(10, 0);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_size_rejected() {
        ObjCtl::new(0, 0);
    }

    #[test]
    fn object_id_display() {
        assert_eq!(ObjectId(17).to_string(), "obj#17");
    }

    #[test]
    fn fresh_object_is_neither_striped_nor_child() {
        let c = ObjCtl::new(64, 0);
        assert!(!c.is_striped());
        assert!(!c.is_stripe_child());
    }

    #[test]
    fn stripe_info_maps_offsets_to_children() {
        let s = StripeInfo {
            seg_bytes: 1024,
            children: vec![7, 8, 9],
        };
        assert_eq!(s.child_at(0), 7);
        assert_eq!(s.child_at(1023), 7);
        assert_eq!(s.child_at(1024), 8);
        assert_eq!(s.child_at(3071), 9);
    }
}
