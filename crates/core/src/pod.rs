//! Plain-old-data element types storable in shared objects.
//!
//! The paper's `Pointer<T>` template works for any C type; in safe Rust
//! the equivalent is a conversion trait to/from little-endian bytes.
//! Word-granular diffing (§3.5 stores a timestamp per *field*, i.e. per
//! 32-bit word) requires element sizes to be multiples of 4 bytes.

/// An element type that can live in the shared object space.
pub trait Pod: Copy + Send + Sync + Default + 'static {
    /// Size in bytes; must be a positive multiple of 4 so diffs stay
    /// word-aligned.
    const SIZE: usize;

    /// Serialize into exactly `Self::SIZE` bytes.
    fn write_to(&self, out: &mut [u8]);

    /// Deserialize from exactly `Self::SIZE` bytes.
    fn read_from(data: &[u8]) -> Self;
}

macro_rules! impl_pod {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            #[inline]
            fn write_to(&self, out: &mut [u8]) {
                out[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn read_from(data: &[u8]) -> Self {
                <$t>::from_le_bytes(data[..Self::SIZE].try_into().expect("pod size"))
            }
        }
    )*};
}

impl_pod!(i32, u32, i64, u64, f32, f64);

/// Pack a slice of elements into a byte vector.
pub fn pack<T: Pod>(items: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; items.len() * T::SIZE];
    for (i, item) in items.iter().enumerate() {
        item.write_to(&mut out[i * T::SIZE..(i + 1) * T::SIZE]);
    }
    out
}

/// Unpack a byte slice into elements.
pub fn unpack<T: Pod>(data: &[u8]) -> Vec<T> {
    assert_eq!(
        data.len() % T::SIZE,
        0,
        "byte length not a multiple of element size"
    );
    data.chunks_exact(T::SIZE).map(T::read_from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_word_multiples() {
        assert_eq!(i32::SIZE % 4, 0);
        assert_eq!(f64::SIZE % 4, 0);
        assert_eq!(u64::SIZE, 8);
    }

    #[test]
    fn roundtrip_each_type() {
        let mut buf = [0u8; 8];
        42i32.write_to(&mut buf);
        assert_eq!(i32::read_from(&buf), 42);
        (-7i64).write_to(&mut buf);
        assert_eq!(i64::read_from(&buf), -7);
        3.5f64.write_to(&mut buf);
        assert_eq!(f64::read_from(&buf), 3.5);
        1.25f32.write_to(&mut buf);
        assert_eq!(f32::read_from(&buf), 1.25);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let xs: Vec<i64> = vec![1, -2, 3, i64::MAX, i64::MIN];
        let bytes = pack(&xs);
        assert_eq!(bytes.len(), 40);
        assert_eq!(unpack::<i64>(&bytes), xs);
    }

    #[test]
    #[should_panic(expected = "multiple of element size")]
    fn unpack_rejects_ragged_input() {
        unpack::<i32>(&[1, 2, 3]);
    }
}
