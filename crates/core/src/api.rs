//! The application-facing LOTS API.
//!
//! [`Dsm`] is one node's handle on the shared object space (the paper's
//! runtime library instance); [`SharedSlice`] is the `Pointer<T>` of
//! §3.2/§3.3 — a small handle holding only the object ID, supporting
//! pointer arithmetic, whose accessors run the status-checking routine
//! that C++ LOTS hides behind operator overloading.

use std::marker::PhantomData;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::Receiver;
use lots_net::{Envelope, NetSender, NodeId};
use lots_sim::{SimInstant, TimeCategory};
use parking_lot::Mutex;

use crate::consistency::barrier::BarrierService;
use crate::consistency::locks::{LockId, LockService};
use crate::consistency::SyncCtx;
use crate::node::{Access, LotsError, NodeState};
use crate::object::ObjectId;
use crate::pod::Pod;
use crate::protocol::messages::Msg;

/// One node's handle on the LOTS shared object space.
///
/// Not `Sync`: each simulated process has exactly one application
/// thread driving its `Dsm` (SPMD style, as in the paper).
pub struct Dsm {
    pub(crate) ctx: SyncCtx,
    pub(crate) node: Arc<Mutex<NodeState>>,
    pub(crate) net: NetSender<Msg>,
    pub(crate) replies: Receiver<Envelope<Msg>>,
    pub(crate) locks: Arc<LockService>,
    pub(crate) barrier: Arc<BarrierService>,
    pub(crate) me: NodeId,
    pub(crate) n: usize,
}

impl Dsm {
    /// This node's rank.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current virtual time on this node.
    pub fn now(&self) -> SimInstant {
        self.ctx.clock.now()
    }

    /// Allocate a shared array of `len` elements (the paper's
    /// `Pointer<T> p; p.alloc(len)`). Collective in the SPMD sense:
    /// every node must perform the same allocations in the same order,
    /// which is what makes the object IDs agree cluster-wide.
    pub fn alloc<T: Pod>(&self, len: usize) -> Result<SharedSlice<'_, T>, LotsError> {
        assert!(len > 0, "cannot allocate an empty shared object");
        let id = self.node.lock().register_object(len * T::SIZE)?;
        Ok(SharedSlice {
            dsm: self,
            id,
            base: 0,
            len,
            _pd: PhantomData,
        })
    }

    /// Charge `ops` element operations of application compute to this
    /// node's virtual clock (the workload cost model).
    pub fn charge_compute(&self, ops: u64) {
        let d = self.ctx.cpu.compute(ops);
        self.ctx.clock.advance(d);
        self.ctx.stats.charge(TimeCategory::Compute, d);
    }

    /// Charge `n` additional access checks without touching data — used
    /// by workloads to account for per-element re-accesses that a bulk
    /// transfer collapsed (every `a[i]` in the paper's C++ runs the
    /// overloaded-operator check, §4.2).
    pub fn charge_access_checks(&self, n: u64) {
        self.node.lock().charge_checks(n);
    }

    /// Group several accesses into one pinning scope — the equivalent
    /// of the multi-operand statement `a[5] = b[5] + c[5]` of §3.3:
    /// every object touched inside stays mapped until the scope ends.
    pub fn statement(&self) -> StmtGuard<'_> {
        self.node.lock().enter_stmt();
        StmtGuard { dsm: self }
    }

    /// Acquire a cluster-wide lock, applying the updates that Scope
    /// Consistency makes visible at this acquire (§3.4).
    pub fn lock(&self, lock: LockId) {
        let grant = self.locks.acquire(lock, &self.ctx);
        let mut node = self.node.lock();
        node.apply_lock_updates(&grant.updates);
        for &(obj, holder) in &grant.invalidate {
            node.wi_invalidate(obj, holder)
                .unwrap_or_else(|e| panic!("lock {lock}: invalidate {obj}: {e}"));
        }
        node.enter_cs(lock);
    }

    /// Release a cluster-wide lock, publishing the critical section's
    /// updates through the homeless write-update protocol.
    pub fn unlock(&self, lock: LockId) {
        self.locks
            .release(lock, &self.ctx, |ts| self.node.lock().exit_cs(lock, ts));
    }

    /// Run `f` inside the critical section guarded by `lock`.
    pub fn with_lock<R>(&self, lock: LockId, f: impl FnOnce() -> R) -> R {
        self.lock(lock);
        let r = f();
        self.unlock(lock);
        r
    }

    /// Global barrier with the migrating-home write-invalidate
    /// protocol (§3.4).
    pub fn barrier(&self) {
        self.try_barrier()
            .unwrap_or_else(|e| panic!("barrier failed: {e}"))
    }

    /// Fallible [`Dsm::barrier`].
    pub fn try_barrier(&self) -> Result<(), LotsError> {
        // Phase A: collect notices and receive the plan.
        let notices = {
            let mut node = self.node.lock();
            let raw = node.barrier_collect()?;
            raw.into_iter()
                .map(|(id, size)| (id, size, node.home_of(id)))
                .collect::<Vec<_>>()
        };
        let plan = self.barrier.enter(&self.ctx, notices);
        // Phase B: propagate diffs of multi-writer objects to homes.
        self.node
            .lock()
            .barrier_prepare(&plan.send_diffs, self.me)?;
        let sends: Vec<(ObjectId, NodeId)> = plan.my_sends(self.me).collect();
        for &(obj, home) in &sends {
            let (payload, ts) = {
                let node = self.node.lock();
                (node.cached_diff(obj).encode(), node.release_ts_of(obj))
            };
            let tx = self.net.send(
                home,
                Msg::DiffSend { obj, ts },
                payload,
                self.ctx.clock.now(),
            );
            self.ctx.clock.advance_to(tx.sender_free);
        }
        let mut pending = sends.len();
        while pending > 0 {
            let env = self.recv_reply();
            match env.msg {
                Msg::DiffAck { .. } => {
                    let before = self.ctx.clock.now();
                    let now = self.ctx.clock.advance_to(env.arrival);
                    self.ctx
                        .stats
                        .charge(TimeCategory::Network, now.saturating_sub(before));
                    pending -= 1;
                }
                other => panic!("unexpected message during barrier: {other:?}"),
            }
        }
        // Phase C: drain, then apply migrations/invalidations.
        let seq = self.barrier.drain(&self.ctx);
        self.node.lock().barrier_finish(&plan.written, seq)?;
        Ok(())
    }

    /// Event-only barrier (`run_barrier()`, §3.6): no memory effects.
    pub fn run_barrier(&self) {
        self.barrier.run_barrier(&self.ctx);
    }

    /// Node statistics (time breakdown, access-check counts, swaps).
    pub fn stats(&self) -> &lots_sim::NodeStats {
        &self.ctx.stats
    }

    /// Network traffic counters of this node.
    pub fn traffic(&self) -> &lots_net::TrafficStats {
        &self.ctx.traffic
    }

    /// Bytes of shared objects registered (cluster-wide logical size).
    pub fn total_object_bytes(&self) -> u64 {
        self.node.lock().total_object_bytes()
    }

    /// Current home node of an object (tests/diagnostics; homes move
    /// at barriers under the migrating-home protocol).
    pub fn object_home(&self, id: ObjectId) -> NodeId {
        self.node.lock().home_of(id)
    }

    /// Is the local copy of `id` usable without a remote fetch?
    pub fn object_locally_valid(&self, id: ObjectId) -> bool {
        self.node.lock().ctl(id).locally_valid()
    }

    /// Is `id` currently mapped in this node's DMM area?
    pub fn object_mapped(&self, id: ObjectId) -> bool {
        self.node.lock().ctl(id).offset().is_some()
    }

    /// Bytes currently swapped out to this node's backing store.
    pub fn swapped_bytes(&self) -> u64 {
        self.node.lock().swapped_bytes()
    }

    // ------------------------------------------------------------------
    // Access plumbing
    // ------------------------------------------------------------------

    /// Run `f` over the object's bytes once the access check passes,
    /// fetching a clean copy from the home on a miss.
    pub(crate) fn with_object<R>(
        &self,
        id: ObjectId,
        write: bool,
        checks: u64,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, LotsError> {
        let mut checks = checks;
        loop {
            let fetch_target = {
                let mut node = self.node.lock();
                match node.begin_access(id, write, checks)? {
                    Access::Ready { offset } => {
                        let size = node.object_size(id);
                        return Ok(f(node.object_bytes_mut(offset, size)));
                    }
                    Access::NeedFetch { home } => home,
                }
            };
            self.fetch_object(id, fetch_target)?;
            // The retry re-runs the (now cheap) check once, as the real
            // system would on returning from the miss handler.
            checks = 1;
        }
    }

    /// Fetch a clean copy of `id` from `target` through the data plane.
    fn fetch_object(&self, id: ObjectId, target: NodeId) -> Result<(), LotsError> {
        assert_ne!(target, self.me, "fetch from self implies corrupted state");
        self.net.send(
            target,
            Msg::ObjReq { obj: id },
            Bytes::new(),
            self.ctx.clock.now(),
        );
        let env = self.recv_reply();
        match env.msg {
            Msg::ObjReply { obj, version } if obj == id => {
                let before = self.ctx.clock.now();
                let now = self.ctx.clock.advance_to(env.arrival);
                self.ctx
                    .stats
                    .charge(TimeCategory::Network, now.saturating_sub(before));
                self.node.lock().install_fetch(id, &env.payload, version)
            }
            other => panic!("unexpected reply while fetching {id}: {other:?}"),
        }
    }

    fn recv_reply(&self) -> Envelope<Msg> {
        self.replies
            .recv()
            .expect("comm thread alive while app running")
    }
}

/// RAII pin scope returned by [`Dsm::statement`].
pub struct StmtGuard<'d> {
    dsm: &'d Dsm,
}

impl Drop for StmtGuard<'_> {
    fn drop(&mut self) {
        self.dsm.node.lock().exit_stmt();
    }
}

/// A typed handle on a shared object — the paper's `Pointer<T>`.
///
/// Supports pointer arithmetic ([`SharedSlice::offset`], §3.3: LOTS
/// "supports a limited set of pointer operations … such as
/// `*(a+4)=1`"). Copyable like a raw pointer.
pub struct SharedSlice<'d, T: Pod> {
    dsm: &'d Dsm,
    id: ObjectId,
    base: usize,
    len: usize,
    _pd: PhantomData<T>,
}

impl<T: Pod> Clone for SharedSlice<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for SharedSlice<'_, T> {}

impl<'d, T: Pod> SharedSlice<'d, T> {
    /// The object's cluster-wide ID.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Elements addressable through this handle.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pointer arithmetic: a handle shifted by `delta` elements.
    pub fn offset(&self, delta: usize) -> SharedSlice<'d, T> {
        assert!(delta <= self.len, "pointer arithmetic out of bounds");
        SharedSlice {
            base: self.base + delta,
            len: self.len - delta,
            ..*self
        }
    }

    #[inline]
    fn byte_at(&self, i: usize) -> usize {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        (self.base + i) * T::SIZE
    }

    /// Read element `i` (one access check).
    pub fn read(&self, i: usize) -> T {
        let at = self.byte_at(i);
        self.dsm
            .with_object(self.id, false, 1, |bytes| T::read_from(&bytes[at..]))
            .unwrap_or_else(|e| panic!("read {}[{i}]: {e}", self.id))
    }

    /// Write element `i` (one access check).
    pub fn write(&self, i: usize, v: T) {
        let at = self.byte_at(i);
        self.dsm
            .with_object(self.id, true, 1, |bytes| v.write_to(&mut bytes[at..]))
            .unwrap_or_else(|e| panic!("write {}[{i}]: {e}", self.id))
    }

    /// Read-modify-write element `i` (two access checks, like `a[i]+=x`).
    pub fn update(&self, i: usize, f: impl FnOnce(T) -> T) {
        let at = self.byte_at(i);
        self.dsm
            .with_object(self.id, true, 2, |bytes| {
                let v = f(T::read_from(&bytes[at..]));
                v.write_to(&mut bytes[at..]);
            })
            .unwrap_or_else(|e| panic!("update {}[{i}]: {e}", self.id))
    }

    /// Bulk read of `out.len()` elements starting at `start`; charged
    /// as one access check per element, like the element loop it
    /// replaces (§4.2's accounting).
    pub fn read_into(&self, start: usize, out: &mut [T]) {
        if out.is_empty() {
            return;
        }
        let at = self.byte_at(start);
        assert!(start + out.len() <= self.len, "bulk read out of bounds");
        self.dsm
            .with_object(self.id, false, out.len() as u64, |bytes| {
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = T::read_from(&bytes[at + k * T::SIZE..]);
                }
            })
            .unwrap_or_else(|e| panic!("bulk read {}: {e}", self.id))
    }

    /// Bulk read returning a fresh vector.
    pub fn read_vec(&self, start: usize, len: usize) -> Vec<T> {
        let mut out = vec![T::default(); len];
        self.read_into(start, &mut out);
        out
    }

    /// Bulk write of `vals` starting at `start` (one check/element).
    pub fn write_from(&self, start: usize, vals: &[T]) {
        if vals.is_empty() {
            return;
        }
        let at = self.byte_at(start);
        assert!(start + vals.len() <= self.len, "bulk write out of bounds");
        self.dsm
            .with_object(self.id, true, vals.len() as u64, |bytes| {
                for (k, v) in vals.iter().enumerate() {
                    v.write_to(&mut bytes[at + k * T::SIZE..]);
                }
            })
            .unwrap_or_else(|e| panic!("bulk write {}: {e}", self.id))
    }

    /// Fill the whole slice with `v`.
    pub fn fill(&self, v: T) {
        let vals = vec![v; self.len];
        self.write_from(0, &vals);
    }

    /// Fallible element read (for tests exercising error paths).
    pub fn try_read(&self, i: usize) -> Result<T, LotsError> {
        let at = self.byte_at(i);
        self.dsm
            .with_object(self.id, false, 1, |bytes| T::read_from(&bytes[at..]))
    }
}

impl<T: Pod> std::fmt::Debug for SharedSlice<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SharedSlice({}, base {}, len {})",
            self.id, self.base, self.len
        )
    }
}
