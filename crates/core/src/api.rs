//! The application-facing shared-memory API.
//!
//! This module defines the **one** interface every workload in this
//! repository programs against, plus its LOTS implementation:
//!
//! * [`DsmApi`] — one node's handle on a shared object space (alloc,
//!   lock/unlock, barrier, cost accounting, stats). Implemented by
//!   [`Dsm`] here (covering both LOTS and the LOTS-x ablation) and by
//!   `lots_jiajia::JiaDsm`, so applications are written once and run
//!   on every system, exactly as the paper ports each app to both
//!   DSMs (§4.1).
//! * [`DsmSlice`] — the paper's `Pointer<T>` (§3.2/§3.3): a small
//!   copyable handle supporting pointer arithmetic whose accessors run
//!   the status-checking routine that C++ LOTS hides behind operator
//!   overloading.
//! * View guards ([`ObjView`]/[`ObjViewMut`] for LOTS) — RAII bulk
//!   access scopes returned by [`DsmSlice::view`]/[`DsmSlice::view_mut`].
//!
//! # Check accounting (§4.2)
//!
//! The paper measures 20–25 ns per software access check and shows SOR
//! spending more than half its time in checks because **every** `a[i]`
//! is a checked access. The accounting rules here mirror that:
//!
//! * **Element ops** ([`DsmSlice::read`], [`DsmSlice::write`],
//!   [`DsmSlice::read_into`], [`DsmSlice::write_from`], …) charge one
//!   access check *per element touched* ([`DsmSlice::update`] charges
//!   two, like `a[i] += x`). They model the paper's original
//!   per-access-check API.
//! * **View guards** charge one access check *per guard*, however many
//!   elements the view spans: the check and miss handling run once at
//!   guard creation, the object stays pinned (§3.3's statement
//!   pinning, subsuming [`Dsm::statement`]) for the guard's lifetime,
//!   and the inner loop runs over a plain `&[T]`/`&mut [T]` with no
//!   further checks. This is the API change that collapses the §4.2
//!   overhead on hot loops.
//! * A guard over an **empty range** touches no object and charges no
//!   checks.
//!
//! Guards buffer their range once at creation (the real system hands
//! out a direct pointer; the simulated cost model is identical), so
//! two rules are enforced with panics in both implementations:
//!
//! 1. Guards must be dropped before the next synchronization operation
//!    ([`DsmApi::barrier`], [`DsmApi::lock`], [`DsmApi::unlock`]) —
//!    sync redefines what the memory contains.
//! 2. While a guard is live, other accesses to the same data may not
//!    overlap it: a write may not overlap any live view, and any
//!    access may not overlap a live mutable view (the buffered
//!    snapshot would go stale, or clobber the access on write-back).
//!    Disjoint ranges — e.g. a read view and a mutable view of
//!    different rows, or of different halves of one object — interleave
//!    freely.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{Receiver, TryRecvError};
use lots_analyze::RaceDetector;
use lots_net::{Envelope, NetSender, NodeId, TrafficStats};
use lots_sim::{CrashFault, NodeStats, SimInstant, TimeCategory};
use parking_lot::Mutex;

use crate::config::Placement;
use crate::consistency::barrier::BarrierService;
use crate::consistency::locks::{LockId, LockService};
use crate::consistency::SyncCtx;
use crate::node::{LotsError, NodeState, RangeAccess};
use crate::object::{NamedAllocReq, ObjectId};
use crate::pod::Pod;
use crate::protocol::messages::Msg;

// ----------------------------------------------------------------------
// The shared-memory traits
// ----------------------------------------------------------------------

/// One node's handle on a shared memory space: the single API every
/// workload is written against (see the module docs).
///
/// Implementations: [`Dsm`] (LOTS and LOTS-x) and `lots_jiajia::JiaDsm`.
pub trait DsmApi {
    /// Errors surfaced by the fallible (`try_*`) surface.
    type Error: std::error::Error + Send + Sync + 'static;

    /// The `Pointer<T>` handle type this system hands out.
    type Slice<'d, T: Pod>: DsmSlice<Elem = T, Error = Self::Error>
    where
        Self: 'd;

    /// This node's rank.
    fn me(&self) -> NodeId;

    /// Cluster size.
    fn n(&self) -> usize;

    /// Current virtual time on this node.
    fn now(&self) -> SimInstant;

    /// The cluster seed (`ClusterOptions::seed` / `JiaOptions::seed`,
    /// default 0). Seeded workloads fold it into their RNG streams so
    /// a run's data set is reproducible end to end from one `u64`.
    fn seed(&self) -> u64;

    /// Allocate a shared array of `len` elements (the paper's
    /// `Pointer<T> p; p.alloc(len)`) under the configuration's default
    /// [`Placement`]. Collective in the SPMD sense: every node must
    /// perform the same allocations in the same order, which is what
    /// makes the handles agree cluster-wide (named allocations lift
    /// this restriction — see [`DsmApi::try_alloc_named`]).
    fn try_alloc<T: Pod>(&self, len: usize) -> Result<Self::Slice<'_, T>, Self::Error>;

    /// Panicking [`DsmApi::try_alloc`].
    fn alloc<T: Pod>(&self, len: usize) -> Self::Slice<'_, T> {
        self.try_alloc(len)
            .unwrap_or_else(|e| panic!("alloc of {len} elements: {e}"))
    }

    /// [`DsmApi::try_alloc`] with an explicit initial-home
    /// [`Placement`] (collective like `try_alloc`; every node must
    /// pass the same placement).
    fn try_alloc_placed<T: Pod>(
        &self,
        len: usize,
        placement: Placement,
    ) -> Result<Self::Slice<'_, T>, Self::Error>;

    /// Panicking [`DsmApi::try_alloc_placed`].
    fn alloc_placed<T: Pod>(&self, len: usize, placement: Placement) -> Self::Slice<'_, T> {
        self.try_alloc_placed(len, placement)
            .unwrap_or_else(|e| panic!("alloc of {len} elements ({placement:?}): {e}"))
    }

    /// Free a shared object. The handle must cover the whole original
    /// allocation (no `offset`/`prefix` sub-slices). The object is
    /// tombstoned immediately — any further access through any handle
    /// panics like the view-guard fences — and its DMM/twin/control
    /// space, swap image and directory entries are reclaimed
    /// **cluster-wide at the next barrier**, riding the barrier's
    /// diff-propagation round; the freed id is then reused by later
    /// allocations. Unlike `alloc`, `free` is *not* collective: any
    /// one node's free reclaims the object everywhere.
    ///
    /// # Fence durability
    ///
    /// Handles are `Copy`, so stale copies can outlive the free — as
    /// dangling pointers do in the real systems — and the fence is
    /// best-effort beyond the tombstone window:
    ///
    /// * **LOTS** keeps the freeing node's fence through reclamation
    ///   (the slot stays `Free`) and drops it only when a later
    ///   allocation *reuses* the slot — from then on a stale handle
    ///   aliases the new object, exactly like a dangling `Pointer<T>`
    ///   in the C++ runtime.
    /// * **JIAJIA** fences tombstoned pages only until the reclaiming
    ///   barrier re-zeroes them: pages, like raw memory, carry no
    ///   identity afterwards, so a stale handle silently reads the
    ///   fresh zero fill (or a later allocation's data). Page-based
    ///   systems cannot do better — one of the object-vs-page contrasts
    ///   the paper draws.
    fn try_free<T: Pod>(&self, slice: Self::Slice<'_, T>) -> Result<(), Self::Error>;

    /// Panicking [`DsmApi::try_free`].
    fn free<T: Pod>(&self, slice: Self::Slice<'_, T>) {
        self.try_free(slice)
            .unwrap_or_else(|e| panic!("free failed: {e}"))
    }

    /// Stage a named allocation of `len` elements under the
    /// configuration's default placement. Named allocations are *not*
    /// collective: any subset of nodes (typically one) stages them,
    /// and they materialize cluster-wide at the next barrier, after
    /// which **every** node — the allocator included — attaches via
    /// [`DsmApi::try_lookup`]. Staging the same name twice (locally or
    /// from two nodes in one interval) is an error/panic.
    fn try_alloc_named<T: Pod>(&self, name: &str, len: usize) -> Result<(), Self::Error>;

    /// Panicking [`DsmApi::try_alloc_named`].
    fn alloc_named<T: Pod>(&self, name: &str, len: usize) {
        self.try_alloc_named::<T>(name, len)
            .unwrap_or_else(|e| panic!("alloc_named({name:?}, {len}): {e}"))
    }

    /// [`DsmApi::try_alloc_named`] with an explicit [`Placement`].
    fn try_alloc_named_placed<T: Pod>(
        &self,
        name: &str,
        len: usize,
        placement: Placement,
    ) -> Result<(), Self::Error>;

    /// Panicking [`DsmApi::try_alloc_named_placed`].
    fn alloc_named_placed<T: Pod>(&self, name: &str, len: usize, placement: Placement) {
        self.try_alloc_named_placed::<T>(name, len, placement)
            .unwrap_or_else(|e| panic!("alloc_named({name:?}, {len}, {placement:?}): {e}"))
    }

    /// Resolve a committed name into a handle. The element type must
    /// match the staging `alloc_named::<T>` call (checked through the
    /// element size recorded in the replicated directory). Names
    /// staged this interval are not yet visible — they commit at the
    /// next barrier.
    fn try_lookup<T: Pod>(&self, name: &str) -> Result<Self::Slice<'_, T>, Self::Error>;

    /// Panicking [`DsmApi::try_lookup`].
    fn lookup<T: Pod>(&self, name: &str) -> Self::Slice<'_, T> {
        self.try_lookup(name)
            .unwrap_or_else(|e| panic!("lookup({name:?}): {e}"))
    }

    /// Fallible [`DsmApi::alloc_chunks`]: `chunks == 0` or
    /// `chunk_len == 0` is rejected with the same error as
    /// `try_alloc(0)` (`EmptyAlloc`), on every system.
    fn try_alloc_chunks<T: Pod>(
        &self,
        chunks: usize,
        chunk_len: usize,
    ) -> Result<Vec<Self::Slice<'_, T>>, Self::Error> {
        if chunks == 0 || chunk_len == 0 {
            // Reject exactly like a zero-length alloc, whatever this
            // system's error type calls it.
            self.try_alloc::<T>(0)?;
            unreachable!("try_alloc(0) must return the empty-alloc error");
        }
        (0..chunks).map(|_| self.try_alloc(chunk_len)).collect()
    }

    /// Allocate `chunks` arrays of `chunk_len` elements each in this
    /// system's natural data layout. The default allocates one object
    /// per chunk — §3.2: "LOTS treats each pointer or row as a separate
    /// object". Page-based systems override this with one flat
    /// allocation whose chunks share pages (the false sharing §4.1
    /// analyses in LU).
    fn alloc_chunks<T: Pod>(&self, chunks: usize, chunk_len: usize) -> Vec<Self::Slice<'_, T>> {
        self.try_alloc_chunks(chunks, chunk_len)
            .unwrap_or_else(|e| panic!("alloc of {chunks} chunks × {chunk_len} elements: {e}"))
    }

    /// Global memory barrier: publish this interval's writes and make
    /// every other node's writes visible (§3.4).
    fn barrier(&self);

    /// Acquire a cluster-wide lock, applying the updates that Scope
    /// Consistency makes visible at this acquire (§3.4).
    fn lock(&self, lock: LockId);

    /// Release a cluster-wide lock, publishing the critical section's
    /// updates.
    fn unlock(&self, lock: LockId);

    /// Run `f` inside the critical section guarded by `lock`.
    fn with_lock<R>(&self, lock: LockId, f: impl FnOnce() -> R) -> R {
        self.lock(lock);
        let r = f();
        self.unlock(lock);
        r
    }

    /// Charge `ops` element operations of application compute to this
    /// node's virtual clock (the workload cost model).
    fn charge_compute(&self, ops: u64);

    /// Charge `n` additional access checks without touching data — the
    /// workload cost-model hook for per-element re-accesses the
    /// object-based system would check (§4.2). A no-op on systems with
    /// no software check (JIAJIA).
    fn charge_access_checks(&self, n: u64);

    /// Node statistics (time breakdown, access-check counts, swaps).
    fn stats(&self) -> &NodeStats;

    /// Network traffic counters of this node.
    fn traffic(&self) -> &TrafficStats;
}

/// A typed handle on a shared array — the paper's `Pointer<T>`.
///
/// Copyable like a raw pointer; supports the paper's pointer
/// arithmetic (§3.3: LOTS "supports a limited set of pointer
/// operations … such as `*(a+4)=1`") via [`DsmSlice::offset`] and
/// [`DsmSlice::prefix`]. All data access goes through the element ops
/// or the view guards; see the module docs for the check-accounting
/// contract of each.
pub trait DsmSlice: Copy + std::fmt::Debug {
    /// Element type stored in the shared array.
    type Elem: Pod;

    /// Error type of the fallible surface (matches the owning
    /// [`DsmApi::Error`]).
    type Error: std::error::Error + Send + Sync + 'static;

    /// Read-only view guard: derefs to `&[Self::Elem]`.
    type View<'g>: Deref<Target = [Self::Elem]>
    where
        Self: 'g;

    /// Mutable view guard: derefs to `&mut [Self::Elem]`, written back
    /// to the shared object when dropped.
    type ViewMut<'g>: DerefMut<Target = [Self::Elem]>
    where
        Self: 'g;

    /// Elements addressable through this handle.
    fn len(&self) -> usize;

    /// Pointer arithmetic: a handle shifted forward by `delta`
    /// elements. `offset(len)` is allowed and yields an explicitly
    /// **empty tail handle**: `is_empty()` is true, empty views and
    /// bulk ops over zero elements succeed, and element accessors
    /// panic with a message naming the empty handle.
    fn offset(&self, delta: usize) -> Self;

    /// Pointer arithmetic: a handle restricted to the first `len`
    /// elements.
    fn prefix(&self, len: usize) -> Self;

    /// Accounting primitive behind every read: a read view over
    /// `range` charging `checks` access checks. Applications normally
    /// call [`DsmSlice::view`] (one check per guard); the element-wise
    /// compat ops call this with per-element check counts.
    fn try_view_checked(
        &self,
        range: Range<usize>,
        checks: u64,
    ) -> Result<Self::View<'_>, Self::Error>;

    /// Accounting primitive behind every write: the mutable
    /// counterpart of [`DsmSlice::try_view_checked`].
    fn try_view_mut_checked(
        &self,
        range: Range<usize>,
        checks: u64,
    ) -> Result<Self::ViewMut<'_>, Self::Error>;

    /// True iff the handle addresses zero elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Open a bulk read scope over `range`: one access check, one miss
    /// resolution, then check-free `&[T]` access for the guard's
    /// lifetime. The guard buffers the range once at creation (the
    /// real system would hand out a direct pointer; the simulated cost
    /// model is identical — no per-element checks).
    fn view(&self, range: Range<usize>) -> Self::View<'_> {
        self.try_view(range.clone())
            .unwrap_or_else(|e| panic!("view {range:?} of {self:?}: {e}"))
    }

    /// Fallible [`DsmSlice::view`].
    fn try_view(&self, range: Range<usize>) -> Result<Self::View<'_>, Self::Error> {
        let checks = !range.is_empty() as u64;
        self.try_view_checked(range, checks)
    }

    /// Open a bulk write scope over `range`: one access check at
    /// creation, check-free `&mut [T]` access for the guard's
    /// lifetime, write-back on drop. The guard buffers the range once
    /// at creation; overlapping accesses to the same data while the
    /// guard is live are rejected with a panic (the snapshot would go
    /// stale or clobber them on write-back).
    fn view_mut(&self, range: Range<usize>) -> Self::ViewMut<'_> {
        self.try_view_mut(range.clone())
            .unwrap_or_else(|e| panic!("view_mut {range:?} of {self:?}: {e}"))
    }

    /// Fallible [`DsmSlice::view_mut`].
    fn try_view_mut(&self, range: Range<usize>) -> Result<Self::ViewMut<'_>, Self::Error> {
        let checks = !range.is_empty() as u64;
        self.try_view_mut_checked(range, checks)
    }

    /// Read element `i` (one access check).
    fn read(&self, i: usize) -> Self::Elem {
        self.try_read(i)
            .unwrap_or_else(|e| panic!("read {self:?}[{i}]: {e}"))
    }

    /// Fallible [`DsmSlice::read`].
    fn try_read(&self, i: usize) -> Result<Self::Elem, Self::Error> {
        element_bounds(self, self.len(), i);
        Ok(self.try_view_checked(i..i + 1, 1)?[0])
    }

    /// Write element `i` (one access check).
    fn write(&self, i: usize, v: Self::Elem) {
        self.try_write(i, v)
            .unwrap_or_else(|e| panic!("write {self:?}[{i}]: {e}"))
    }

    /// Fallible [`DsmSlice::write`].
    fn try_write(&self, i: usize, v: Self::Elem) -> Result<(), Self::Error> {
        element_bounds(self, self.len(), i);
        self.try_view_mut_checked(i..i + 1, 1)?[0] = v;
        Ok(())
    }

    /// Read-modify-write element `i` (two access checks, like
    /// `a[i] += x`).
    fn update(&self, i: usize, f: impl FnOnce(Self::Elem) -> Self::Elem) {
        self.try_update(i, f)
            .unwrap_or_else(|e| panic!("update {self:?}[{i}]: {e}"))
    }

    /// Fallible [`DsmSlice::update`].
    fn try_update(
        &self,
        i: usize,
        f: impl FnOnce(Self::Elem) -> Self::Elem,
    ) -> Result<(), Self::Error> {
        element_bounds(self, self.len(), i);
        let mut g = self.try_view_mut_checked(i..i + 1, 2)?;
        g[0] = f(g[0]);
        Ok(())
    }

    /// Bulk read of `out.len()` elements starting at `start`; charged
    /// as one access check per element, like the element loop it
    /// replaces (§4.2's accounting).
    fn read_into(&self, start: usize, out: &mut [Self::Elem]) {
        self.try_read_into(start, out)
            .unwrap_or_else(|e| panic!("bulk read of {self:?}: {e}"))
    }

    /// Fallible [`DsmSlice::read_into`].
    fn try_read_into(&self, start: usize, out: &mut [Self::Elem]) -> Result<(), Self::Error> {
        if out.is_empty() {
            return Ok(());
        }
        let v = self.try_view_checked(start..start + out.len(), out.len() as u64)?;
        out.copy_from_slice(&v);
        Ok(())
    }

    /// Bulk read returning a fresh vector (one check per element).
    fn read_vec(&self, start: usize, len: usize) -> Vec<Self::Elem> {
        let mut out = vec![Self::Elem::default(); len];
        self.read_into(start, &mut out);
        out
    }

    /// Bulk write of `vals` starting at `start` (one check per
    /// element).
    fn write_from(&self, start: usize, vals: &[Self::Elem]) {
        self.try_write_from(start, vals)
            .unwrap_or_else(|e| panic!("bulk write of {self:?}: {e}"))
    }

    /// Fallible [`DsmSlice::write_from`].
    fn try_write_from(&self, start: usize, vals: &[Self::Elem]) -> Result<(), Self::Error> {
        if vals.is_empty() {
            return Ok(());
        }
        let mut g = self.try_view_mut_checked(start..start + vals.len(), vals.len() as u64)?;
        g.copy_from_slice(vals);
        Ok(())
    }

    /// Fill the whole slice with `v` (one check per element, one
    /// write-only pass).
    fn fill(&self, v: Self::Elem) {
        self.write_from(0, &vec![v; self.len()]);
    }
}

/// Panic with an explicit message when an element accessor is used on
/// an empty (e.g. `offset(len)`) handle or past the end (shared by the
/// [`DsmSlice`] implementations; not part of the application API).
#[doc(hidden)]
pub fn element_bounds(slice: &impl std::fmt::Debug, len: usize, i: usize) {
    if len == 0 {
        panic!("element access on empty handle {slice:?} (offset(len) tail)");
    }
    assert!(i < len, "index {i} out of bounds (len {len}) on {slice:?}");
}

/// Validate a view range against the handle length (shared by the
/// [`DsmSlice`] implementations; not part of the application API).
#[doc(hidden)]
pub fn range_bounds(slice: &impl std::fmt::Debug, len: usize, range: &Range<usize>) {
    assert!(
        range.start <= range.end && range.end <= len,
        "view range {range:?} out of bounds (len {len}) on {slice:?}"
    );
}

// ----------------------------------------------------------------------
// The LOTS implementation
// ----------------------------------------------------------------------

/// One node's handle on the LOTS shared object space (the paper's
/// runtime library instance).
///
/// Not `Sync`: each simulated process has exactly one application
/// thread driving its `Dsm` (SPMD style, as in the paper). The shared
/// API lives on the [`DsmApi`] and [`DsmSlice`] traits; LOTS-specific
/// extras (statement scopes, swap introspection) are inherent methods.
pub struct Dsm {
    pub(crate) ctx: SyncCtx,
    pub(crate) node: Arc<Mutex<NodeState>>,
    pub(crate) net: NetSender<Msg>,
    pub(crate) replies: Receiver<Envelope<Msg>>,
    pub(crate) locks: Arc<LockService>,
    pub(crate) barrier: Arc<BarrierService>,
    pub(crate) me: NodeId,
    pub(crate) n: usize,
    /// Cluster seed surfaced through [`DsmApi::seed`].
    pub(crate) seed: u64,
    /// Fault injection: panic on entering this (1-based) barrier.
    pub(crate) fault_barrier: Option<u64>,
    /// Fault injection: crash after completing this fault's barrier,
    /// then rejoin (see [`NodeState::crash_rejoin`]).
    pub(crate) crash_fault: Option<CrashFault>,
    /// Barriers this node has entered (drives `fault_barrier`).
    pub(crate) barriers_entered: Cell<u64>,
    /// Live view guards; synchronization ops assert this is zero.
    pub(crate) live_views: Cell<u32>,
    /// Byte spans of live non-empty guards, used to reject conflicting
    /// same-object accesses (a stale-snapshot/lost-update hazard with
    /// buffered guards).
    pub(crate) view_spans: RefCell<Vec<ViewSpan>>,
    /// Token source for [`ViewSpan`] registration.
    pub(crate) view_token: Cell<u64>,
    /// ScC race detector, shared cluster-wide when analysis is on
    /// (see [`lots_analyze::AnalyzeConfig`]). `None` costs one branch
    /// per access and leaves virtual times untouched.
    pub(crate) analyze: Option<Arc<RaceDetector>>,
    /// Persistence journal (`Some` iff `LotsConfig::persist` is set):
    /// appended after every completed barrier, shared with the node's
    /// background compaction daemon. `None` skips the whole subsystem
    /// — one branch per barrier, virtual times untouched.
    pub(crate) journal: Option<Arc<Mutex<lots_persist::NodeJournal>>>,
}

/// One live guard's byte extent (see [`Dsm::view_spans`]).
pub(crate) struct ViewSpan {
    token: u64,
    obj: u32,
    start: usize,
    end: usize,
    mutable: bool,
}

impl DsmApi for Dsm {
    type Error = LotsError;
    type Slice<'d, T: Pod> = SharedSlice<'d, T>;

    fn me(&self) -> NodeId {
        self.me
    }

    fn n(&self) -> usize {
        self.n
    }

    fn now(&self) -> SimInstant {
        self.ctx.clock.now()
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn try_alloc<T: Pod>(&self, len: usize) -> Result<SharedSlice<'_, T>, LotsError> {
        if len == 0 {
            return Err(LotsError::EmptyAlloc);
        }
        let (id, striped) = {
            let mut node = self.node.lock();
            let id = node.register_object(len * T::SIZE)?;
            (id, node.stripe_of(id).is_some())
        };
        Ok(SharedSlice {
            dsm: self,
            id,
            base: 0,
            len,
            striped,
            _pd: PhantomData,
        })
    }

    fn try_alloc_placed<T: Pod>(
        &self,
        len: usize,
        placement: Placement,
    ) -> Result<SharedSlice<'_, T>, LotsError> {
        if len == 0 {
            return Err(LotsError::EmptyAlloc);
        }
        let (id, striped) = {
            let mut node = self.node.lock();
            let id = node.register_object_placed(len * T::SIZE, placement)?;
            (id, node.stripe_of(id).is_some())
        };
        Ok(SharedSlice {
            dsm: self,
            id,
            base: 0,
            len,
            striped,
            _pd: PhantomData,
        })
    }

    fn try_free<T: Pod>(&self, slice: SharedSlice<'_, T>) -> Result<(), LotsError> {
        // Same fence as the sync operations: a buffered guard over a
        // dying object would write back into a reclaimed slot.
        self.assert_no_views_of(slice.id, "free");
        if slice.base != 0 {
            return Err(LotsError::BadFree {
                obj: slice.id,
                reason: format!(
                    "handle is offset {} elements into the object — free \
                     needs the original allocation handle",
                    slice.base
                ),
            });
        }
        self.node.lock().free_object(slice.id, slice.len * T::SIZE)
    }

    fn try_alloc_named<T: Pod>(&self, name: &str, len: usize) -> Result<(), LotsError> {
        let placement = self.node.lock().cfg.alloc.placement;
        self.stage_named_req::<T>(name, len, placement, false)
    }

    fn try_alloc_named_placed<T: Pod>(
        &self,
        name: &str,
        len: usize,
        placement: Placement,
    ) -> Result<(), LotsError> {
        self.stage_named_req::<T>(name, len, placement, true)
    }

    fn try_lookup<T: Pod>(&self, name: &str) -> Result<SharedSlice<'_, T>, LotsError> {
        let (id, len, striped) = {
            let node = self.node.lock();
            let (id, len) = node.lookup_named(name, T::SIZE)?;
            (id, len, node.stripe_of(id).is_some())
        };
        Ok(SharedSlice {
            dsm: self,
            id,
            base: 0,
            len,
            striped,
            _pd: PhantomData,
        })
    }

    fn barrier(&self) {
        self.try_barrier()
            .unwrap_or_else(|e| panic!("barrier failed: {e}"))
    }

    fn lock(&self, lock: LockId) {
        self.assert_no_live_views("lock");
        let grant = self.locks.acquire(lock, &self.ctx);
        // Happens-before edge lands only once the grant is actually
        // held, so a racing acquirer can't observe it early.
        if let Some(d) = &self.analyze {
            d.on_lock_acquire(self.me, lock);
        }
        let mut node = self.node.lock();
        node.apply_lock_updates(&grant.updates);
        for &(obj, holder) in &grant.invalidate {
            node.wi_invalidate(obj, holder)
                .unwrap_or_else(|e| panic!("lock {lock}: invalidate {obj}: {e}"));
        }
        node.enter_cs(lock);
    }

    fn unlock(&self, lock: LockId) {
        self.assert_no_live_views("unlock");
        // Publish the clock before the service hands the lock on —
        // the next acquirer must join everything done in this CS.
        if let Some(d) = &self.analyze {
            d.on_lock_release(self.me, lock);
        }
        self.locks
            .release(lock, &self.ctx, |ts| self.node.lock().exit_cs(lock, ts));
    }

    fn charge_compute(&self, ops: u64) {
        let d = self.ctx.cpu.compute(ops);
        self.ctx.clock.advance(d);
        self.ctx.stats.charge(TimeCategory::Compute, d);
    }

    fn charge_access_checks(&self, n: u64) {
        self.node.lock().charge_checks(n);
    }

    fn stats(&self) -> &NodeStats {
        &self.ctx.stats
    }

    fn traffic(&self) -> &TrafficStats {
        &self.ctx.traffic
    }
}

impl Dsm {
    /// Group several accesses into one pinning scope — the equivalent
    /// of the multi-operand statement `a[5] = b[5] + c[5]` of §3.3:
    /// every object touched inside stays mapped until the scope ends.
    /// View guards open the same kind of scope implicitly.
    pub fn statement(&self) -> StmtGuard<'_> {
        self.node.lock().enter_stmt();
        StmtGuard { dsm: self }
    }

    /// Fallible [`DsmApi::barrier`].
    pub fn try_barrier(&self) -> Result<(), LotsError> {
        self.assert_no_live_views("barrier");
        let entered = self.barriers_entered.get() + 1;
        self.barriers_entered.set(entered);
        if self.fault_barrier == Some(entered) {
            panic!(
                "fault injection: node {} killed entering barrier {entered}",
                self.me
            );
        }
        // Stamp the detector before the rendezvous: the node that
        // completes the barrier must see every earlier node's clock.
        if let Some(d) = &self.analyze {
            d.on_barrier_enter(self.me);
        }
        // Phase A: collect notices plus the interval's staged frees
        // and named allocations, and receive the plan.
        let (notices, frees, named) = {
            let mut node = self.node.lock();
            let notices = node.barrier_collect()?;
            let (frees, named) = node.take_lifecycle();
            (notices, frees, named)
        };
        let plan = self.barrier.enter(&self.ctx, notices, frees, named);
        // Phase B: propagate diffs of multi-writer objects to homes.
        self.node
            .lock()
            .barrier_prepare(&plan.send_diffs, self.me)?;
        let sends: Vec<(ObjectId, NodeId)> = plan.my_sends(self.me).collect();
        for &(obj, home) in &sends {
            let (payload, ts) = {
                let node = self.node.lock();
                (node.cached_diff(obj).encode(), node.release_ts_of(obj))
            };
            let tx = self.net.send(
                home,
                Msg::DiffSend { obj, ts },
                payload,
                self.ctx.clock.now(),
            );
            self.ctx.clock.advance_to(tx.sender_free);
        }
        let mut pending = sends.len();
        while pending > 0 {
            let env = self.recv_reply();
            match env.msg {
                Msg::DiffAck { .. } => {
                    let before = self.ctx.clock.now();
                    let now = self.ctx.clock.advance_to(env.arrival);
                    self.ctx
                        .stats
                        .charge(TimeCategory::Network, now.saturating_sub(before));
                    pending -= 1;
                }
                other => panic!("unexpected message during barrier: {other:?}"),
            }
        }
        // Phase C: drain, then apply migrations/invalidations, reclaim
        // the freed set, and commit named allocations.
        let seq = self.barrier.drain(&self.ctx);
        self.node
            .lock()
            .barrier_finish(&plan.written, &plan.freed, &plan.named, seq)?;
        // Persistence: journal the interval just published (before the
        // crash-fault check below — the paper's crash model dies right
        // *after* a completed barrier, so that barrier's records are on
        // the log the rejoin reads back).
        self.journal_barrier(&plan.written, seq)?;
        // Only after the full rendezvous: the exit clock joins every
        // node's enter stamp, starting a fresh interval.
        if let Some(d) = &self.analyze {
            d.on_barrier_exit(self.me);
        }
        if self
            .crash_fault
            .as_ref()
            .is_some_and(|c| c.at_barrier == entered)
        {
            self.crash_rejoin_now()?;
        }
        Ok(())
    }

    /// Fault injection: the node dies right after completing the chosen
    /// barrier and comes back through the rejoin protocol. State moves
    /// per [`NodeState::crash_rejoin`]; this wrapper charges the reboot
    /// outage and the analytic directory/image rebuild transfer (the
    /// same modeling style as the lock/barrier control plane) and
    /// surfaces the rejoin counters.
    fn crash_rejoin_now(&self) -> Result<(), LotsError> {
        let fault = self.crash_fault.as_ref().expect("checked by caller");
        let summary = self.node.lock().crash_rejoin()?;
        // The outage: the node is simply gone while it reboots.
        self.ctx.clock.advance(fault.reboot);
        self.ctx.stats.charge(TimeCategory::SyncWait, fault.reboot);
        // With the journal on, the node rebuilds its home-owned
        // masters from its own checkpointed log — a local blocking
        // disk read — and peers only re-send the directory/name table
        // plus the deltas appended after the checkpoint. Without it,
        // peers re-send the full master images (the PR-era protocol).
        let peer_bytes = match &self.journal {
            Some(journal) => {
                let (log_bytes, since) = {
                    let j = journal.lock();
                    (j.log_bytes_at_checkpoint(), j.log_bytes_since_checkpoint())
                };
                if log_bytes > 0 {
                    self.node.lock().persist_read_blocking(log_bytes);
                    self.ctx.stats.count_rejoin_log_bytes(log_bytes);
                }
                summary.directory_bytes + since
            }
            None => summary.directory_bytes + summary.master_bytes,
        };
        let d = self.ctx.net.request_reply(64, peer_bytes as usize);
        self.ctx.clock.advance(d);
        self.ctx.stats.charge(TimeCategory::Network, d);
        self.ctx.traffic.record_send(64, 1);
        self.ctx.traffic.record_recv(peer_bytes as usize);
        self.ctx.stats.count_rejoin(peer_bytes);
        Ok(())
    }

    /// Persistence hook, run after every completed barrier: snapshot
    /// the post-barrier directory, name table and written home-owned
    /// masters, append one deterministic record batch to the node's
    /// journal, and book the bytes on the node's serial disk device as
    /// a write-behind batch — the application never stalls on journal
    /// I/O.
    fn journal_barrier(&self, written: &[(ObjectId, NodeId)], seq: u64) -> Result<(), LotsError> {
        let Some(journal) = &self.journal else {
            return Ok(());
        };
        let mut j = journal.lock();
        let mut node = self.node.lock();
        let input = lots_persist::BarrierInput {
            seq,
            clock_nanos: self.ctx.clock.now().nanos(),
            live: node.persist_live_meta(),
            names: node.persist_names(),
            written_home: node.persist_written_content(written)?,
            extents: if j.checkpoint_due(seq) {
                node.persist_extents()
            } else {
                Vec::new()
            },
        };
        let out = j.append_barrier(input);
        node.persist_book_log_write(&out.write_sizes);
        self.ctx.stats.count_log_append(out.records, out.bytes);
        if out.checkpoint_bytes > 0 {
            self.ctx.stats.count_checkpoint(out.checkpoint_bytes);
        }
        if out.replayed {
            self.ctx.stats.count_restore_replay_barrier();
        }
        Ok(())
    }

    /// Event-only barrier (`run_barrier()`, §3.6): no memory effects.
    ///
    /// Deliberately invisible to the race detector: the paper defines
    /// it as a pure rendezvous with no memory semantics, so it orders
    /// *events*, not accesses — treating it as a happens-before edge
    /// would hide real ScC races.
    pub fn run_barrier(&self) {
        self.barrier.run_barrier(&self.ctx);
    }

    /// Bytes of shared objects registered (cluster-wide logical size).
    pub fn total_object_bytes(&self) -> u64 {
        self.node.lock().total_object_bytes()
    }

    /// Current home node of an object (tests/diagnostics; homes move
    /// at barriers under the migrating-home protocol).
    pub fn object_home(&self, id: ObjectId) -> NodeId {
        self.node.lock().home_of(id)
    }

    /// Is the local copy of `id` usable without a remote fetch?
    pub fn object_locally_valid(&self, id: ObjectId) -> bool {
        self.node.lock().ctl(id).locally_valid()
    }

    /// Is `id` currently mapped in this node's DMM area?
    pub fn object_mapped(&self, id: ObjectId) -> bool {
        self.node.lock().ctl(id).offset().is_some()
    }

    /// Bytes currently held by this node's backing store — the actual
    /// (post-compression) store-resident size.
    pub fn swapped_bytes(&self) -> u64 {
        self.node.lock().swapped_bytes()
    }

    /// Snapshot and cross-check the node's swap accounting (resident
    /// vs swapped vs materialized bytes, including the cumulative
    /// free/dematerialization counters); panics if the incremental
    /// counters drifted from the mapping states.
    pub fn swap_accounting(&self) -> crate::node::SwapAccounting {
        self.node.lock().swap_accounting()
    }

    /// Fragmentation snapshot of this node's DMM allocator (free
    /// bytes, largest hole, external-fragmentation ratio).
    pub fn frag_stats(&self) -> crate::alloc::FragStats {
        self.node.lock().frag_stats()
    }

    /// Object-table slots on this node (live + tombstoned + reusable).
    /// Bounded by the peak working set under alloc/free churn, however
    /// large the cumulative allocation history grows — the control-
    /// space half of address reuse.
    pub fn object_slots(&self) -> usize {
        self.node.lock().object_count()
    }

    fn assert_no_live_views(&self, what: &str) {
        assert_eq!(
            self.live_views.get(),
            0,
            "{what} while view guards are live — drop views before synchronizing"
        );
    }

    /// Panic (fence-style) if any live guard covers `obj`.
    fn assert_no_views_of(&self, obj: ObjectId, what: &str) {
        assert!(
            !self.view_spans.borrow().iter().any(|s| s.obj == obj.0),
            "{what} of {obj} while a view guard over it is live — drop it first"
        );
    }

    /// Reject an access to `obj`'s byte `range` that conflicts with a
    /// live guard: a write may not overlap any view, a read may not
    /// overlap a mutable view (the buffered snapshot would go stale or
    /// clobber the access on write-back).
    fn check_view_conflict(&self, obj: ObjectId, range: &Range<usize>, write: bool) {
        if self.live_views.get() == 0 {
            return;
        }
        for s in self.view_spans.borrow().iter() {
            if s.obj == obj.0 && s.start < range.end && range.start < s.end && (write || s.mutable)
            {
                panic!(
                    "{} bytes {}..{} of {obj} overlap a live {} view ({}..{}) — drop it first",
                    if write { "write to" } else { "read of" },
                    range.start,
                    range.end,
                    if s.mutable { "mutable" } else { "read" },
                    s.start,
                    s.end
                );
            }
        }
    }

    /// Record an application access with the race detector. A no-op
    /// branch when analysis is off; never advances virtual time.
    ///
    /// Reads of **striped** objects are not recorded: a striped read
    /// pins the segment versions published at the last barrier (the
    /// snapshot the writer can no longer touch), so a concurrent
    /// in-flight write is not a data race — the reader provably sees
    /// the pre-write version. Writes are still recorded: two writers
    /// hitting one segment in the same interval race exactly as they
    /// would on an unstriped object.
    fn analyze_access(&self, obj: ObjectId, range: &Range<usize>, write: bool, striped: bool) {
        if striped && !write {
            return;
        }
        if let Some(d) = &self.analyze {
            d.on_access(self.me, obj.0, range.start as u64, range.end as u64, write);
        }
    }

    /// Register a live guard's span (after conflict checking it).
    fn register_view_span(
        &self,
        obj: ObjectId,
        range: &Range<usize>,
        mutable: bool,
        striped: bool,
    ) -> Option<u64> {
        if range.is_empty() {
            return None;
        }
        self.check_view_conflict(obj, range, mutable);
        // A guard is one logical access over its whole span: mutable
        // views count as writes, read views as reads.
        self.analyze_access(obj, range, mutable, striped);
        let token = self.view_token.get();
        self.view_token.set(token + 1);
        self.view_spans.borrow_mut().push(ViewSpan {
            token,
            obj: obj.0,
            start: range.start,
            end: range.end,
            mutable,
        });
        Some(token)
    }

    /// Stage a named allocation, recording whether the placement was an
    /// explicit `*_placed` choice (explicit placements override the
    /// striping config's per-segment default).
    fn stage_named_req<T: Pod>(
        &self,
        name: &str,
        len: usize,
        placement: Placement,
        placement_explicit: bool,
    ) -> Result<(), LotsError> {
        if len == 0 {
            return Err(LotsError::EmptyAlloc);
        }
        self.node.lock().stage_named(NamedAllocReq {
            name: name.to_string(),
            bytes: len * T::SIZE,
            elem_size: T::SIZE,
            len,
            placement,
            placement_explicit,
        })
    }

    /// Number of segments backing `id`: the stripe-child count of a
    /// striped object, `1` for an ordinary single-home object
    /// (tests/diagnostics).
    pub fn segment_count(&self, id: ObjectId) -> usize {
        self.node
            .lock()
            .stripe_of(id)
            .map_or(1, |s| s.children.len())
    }

    /// Current home of every segment of `id`, in segment order — a
    /// one-element vector for unstriped objects (tests/diagnostics;
    /// homes move at barriers under the migrating-home protocol).
    pub fn segment_homes(&self, id: ObjectId) -> Vec<NodeId> {
        let node = self.node.lock();
        match node.stripe_of(id) {
            Some(s) => {
                let children = s.children.clone();
                children
                    .into_iter()
                    .map(|c| node.home_of(ObjectId(c)))
                    .collect()
            }
            None => vec![node.home_of(id)],
        }
    }

    // ------------------------------------------------------------------
    // Access plumbing
    // ------------------------------------------------------------------

    /// Run `f` over byte range `bytes` of object `id` once the access
    /// check passes, fetching whatever the range needs from its home —
    /// or, for a striped object, from every covered segment's home in
    /// one parallel fan-out. `f` sees exactly the range's bytes
    /// (`bytes.len()` long), not the whole object.
    pub(crate) fn with_range<R>(
        &self,
        id: ObjectId,
        bytes: Range<usize>,
        write: bool,
        checks: u64,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, LotsError> {
        let mut f = Some(f);
        let mut checks = checks;
        loop {
            let fetches = {
                let mut node = self.node.lock();
                match node.begin_access_range(id, &bytes, write, checks)? {
                    RangeAccess::Ready { offset } => {
                        let g = f.take().expect("with_range resolves at most once");
                        let from = offset + bytes.start;
                        return Ok(g(node.object_bytes_mut(from, bytes.len())));
                    }
                    RangeAccess::Striped => {
                        let g = f.take().expect("with_range resolves at most once");
                        return Ok(node.striped_range_run(id, &bytes, write, g));
                    }
                    RangeAccess::Fetch(list) => list,
                }
            };
            self.fetch_objects(&fetches)?;
            // The retry re-runs the (now cheap) check once, as the real
            // system would on returning from the miss handler.
            checks = 1;
        }
    }

    /// Fetch clean copies of several objects through the data plane in
    /// one round: all requests leave now (the NIC pipelines the tiny
    /// request headers), and the replies — served by *distinct* homes
    /// for a striped range — overlap in flight. The caller's clock
    /// advances to the last arrival, so a range striped over `k` homes
    /// pays roughly one segment's transfer time, not `k` of them.
    fn fetch_objects(&self, targets: &[(ObjectId, NodeId)]) -> Result<(), LotsError> {
        let t0 = self.ctx.clock.now();
        for &(id, target) in targets {
            assert_ne!(target, self.me, "fetch from self implies corrupted state");
            self.net
                .send(target, Msg::ObjReq { obj: id }, Bytes::new(), t0);
        }
        let mut pending = targets.len();
        while pending > 0 {
            let env = self.recv_reply();
            match env.msg {
                Msg::ObjReply { obj, version } if targets.iter().any(|&(id, _)| id == obj) => {
                    let before = self.ctx.clock.now();
                    let now = self.ctx.clock.advance_to(env.arrival);
                    self.ctx
                        .stats
                        .charge(TimeCategory::Network, now.saturating_sub(before));
                    self.node.lock().install_fetch(obj, &env.payload, version)?;
                    pending -= 1;
                }
                other => panic!("unexpected reply while fetching {targets:?}: {other:?}"),
            }
        }
        Ok(())
    }

    fn recv_reply(&self) -> Envelope<Msg> {
        if let Some(h) = &self.ctx.sched {
            // Engine modes: park on the scheduler; the comm task wakes
            // us (with the reply's arrival time) after it forwards the
            // envelope. The `Reply` reason tells the conservative
            // lock-grant gate this task cannot issue a lock request
            // before the reply's (lookahead-bounded) arrival.
            loop {
                match self.replies.try_recv() {
                    Ok(env) => return env,
                    Err(TryRecvError::Empty) => h.block_with(lots_sim::BlockReason::Reply),
                    Err(TryRecvError::Disconnected) => {
                        panic!("comm thread gone while app waiting for a reply")
                    }
                }
            }
        } else {
            self.replies
                .recv()
                .expect("comm thread alive while app running")
        }
    }
}

/// RAII pin scope returned by [`Dsm::statement`].
pub struct StmtGuard<'d> {
    dsm: &'d Dsm,
}

impl Drop for StmtGuard<'_> {
    fn drop(&mut self) {
        self.dsm.node.lock().exit_stmt();
    }
}

/// A typed handle on a LOTS shared object — the paper's `Pointer<T>`.
///
/// All access methods live on the [`DsmSlice`] trait; the inherent
/// surface only exposes the LOTS object identity.
pub struct SharedSlice<'d, T: Pod> {
    dsm: &'d Dsm,
    id: ObjectId,
    base: usize,
    len: usize,
    /// Whether the object is striped (cached at handle creation; drives
    /// the snapshot-read exemption in the race detector).
    striped: bool,
    _pd: PhantomData<T>,
}

impl<T: Pod> Clone for SharedSlice<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for SharedSlice<'_, T> {}

impl<T: Pod> SharedSlice<'_, T> {
    /// The object's cluster-wide ID.
    pub fn id(&self) -> ObjectId {
        self.id
    }
}

impl<'d, T: Pod> DsmSlice for SharedSlice<'d, T> {
    type Elem = T;
    type Error = LotsError;
    type View<'g>
        = ObjView<'g, T>
    where
        Self: 'g;
    type ViewMut<'g>
        = ObjViewMut<'g, T>
    where
        Self: 'g;

    fn len(&self) -> usize {
        self.len
    }

    fn offset(&self, delta: usize) -> Self {
        assert!(delta <= self.len, "pointer arithmetic out of bounds");
        SharedSlice {
            base: self.base + delta,
            len: self.len - delta,
            ..*self
        }
    }

    fn prefix(&self, len: usize) -> Self {
        assert!(len <= self.len, "pointer arithmetic out of bounds");
        SharedSlice { len, ..*self }
    }

    fn try_view_checked(
        &self,
        range: Range<usize>,
        checks: u64,
    ) -> Result<ObjView<'_, T>, LotsError> {
        range_bounds(self, self.len, &range);
        let bytes = (self.base + range.start) * T::SIZE..(self.base + range.end) * T::SIZE;
        let mut view = ObjView {
            pin: ViewPin::new(self.dsm, self.id, bytes.clone(), false, self.striped),
            data: Vec::new(),
        };
        if !range.is_empty() {
            let n = range.len();
            view.data = self.dsm.with_range(self.id, bytes, false, checks, |b| {
                (0..n).map(|k| T::read_from(&b[k * T::SIZE..])).collect()
            })?;
        }
        Ok(view)
    }

    // Element and bulk ops: the trait defaults (guard-based) are
    // semantically right but allocate a buffer per call; these direct
    // overrides keep the §4.2 fast path at one table lookup, exactly
    // like the seed's element-wise implementation.

    fn try_read(&self, i: usize) -> Result<T, LotsError> {
        element_bounds(self, self.len, i);
        let at = (self.base + i) * T::SIZE;
        self.dsm
            .check_view_conflict(self.id, &(at..at + T::SIZE), false);
        self.dsm
            .analyze_access(self.id, &(at..at + T::SIZE), false, self.striped);
        self.dsm
            .with_range(self.id, at..at + T::SIZE, false, 1, |b| T::read_from(b))
    }

    fn try_write(&self, i: usize, v: T) -> Result<(), LotsError> {
        element_bounds(self, self.len, i);
        let at = (self.base + i) * T::SIZE;
        self.dsm
            .check_view_conflict(self.id, &(at..at + T::SIZE), true);
        self.dsm
            .analyze_access(self.id, &(at..at + T::SIZE), true, self.striped);
        self.dsm
            .with_range(self.id, at..at + T::SIZE, true, 1, |b| v.write_to(b))
    }

    fn try_update(&self, i: usize, f: impl FnOnce(T) -> T) -> Result<(), LotsError> {
        element_bounds(self, self.len, i);
        let at = (self.base + i) * T::SIZE;
        self.dsm
            .check_view_conflict(self.id, &(at..at + T::SIZE), true);
        self.dsm
            .analyze_access(self.id, &(at..at + T::SIZE), true, self.striped);
        self.dsm
            .with_range(self.id, at..at + T::SIZE, true, 2, |b| {
                let v = f(T::read_from(b));
                v.write_to(b);
            })
    }

    fn try_read_into(&self, start: usize, out: &mut [T]) -> Result<(), LotsError> {
        if out.is_empty() {
            return Ok(());
        }
        range_bounds(self, self.len, &(start..start + out.len()));
        let at = (self.base + start) * T::SIZE;
        let span = at..at + out.len() * T::SIZE;
        self.dsm.check_view_conflict(self.id, &span, false);
        self.dsm.analyze_access(self.id, &span, false, self.striped);
        self.dsm
            .with_range(self.id, span, false, out.len() as u64, |b| {
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = T::read_from(&b[k * T::SIZE..]);
                }
            })
    }

    fn try_write_from(&self, start: usize, vals: &[T]) -> Result<(), LotsError> {
        if vals.is_empty() {
            return Ok(());
        }
        range_bounds(self, self.len, &(start..start + vals.len()));
        let at = (self.base + start) * T::SIZE;
        let span = at..at + vals.len() * T::SIZE;
        self.dsm.check_view_conflict(self.id, &span, true);
        self.dsm.analyze_access(self.id, &span, true, self.striped);
        self.dsm
            .with_range(self.id, span, true, vals.len() as u64, |b| {
                for (k, v) in vals.iter().enumerate() {
                    v.write_to(&mut b[k * T::SIZE..]);
                }
            })
    }

    fn try_view_mut_checked(
        &self,
        range: Range<usize>,
        checks: u64,
    ) -> Result<ObjViewMut<'_, T>, LotsError> {
        range_bounds(self, self.len, &range);
        let bytes = (self.base + range.start) * T::SIZE..(self.base + range.end) * T::SIZE;
        let mut view = ObjViewMut {
            pin: ViewPin::new(self.dsm, self.id, bytes.clone(), true, self.striped),
            id: self.id,
            at: bytes.start,
            data: Vec::new(),
        };
        if !range.is_empty() {
            let n = range.len();
            // The write access runs the check, resolves a miss, creates
            // the twin and marks the object dirty once, up front; the
            // guard's write-back then costs nothing extra.
            view.data = self.dsm.with_range(self.id, bytes, true, checks, |b| {
                (0..n).map(|k| T::read_from(&b[k * T::SIZE..])).collect()
            })?;
        }
        Ok(view)
    }
}

impl<T: Pod> std::fmt::Debug for SharedSlice<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SharedSlice({}, base {}, len {})",
            self.id, self.base, self.len
        )
    }
}

/// Shared bookkeeping of both guard types: a statement pin scope, the
/// guard's registered byte span, and the live-view count that sync
/// operations assert on.
struct ViewPin<'d> {
    dsm: &'d Dsm,
    token: Option<u64>,
}

impl<'d> ViewPin<'d> {
    fn new(
        dsm: &'d Dsm,
        obj: ObjectId,
        bytes: Range<usize>,
        mutable: bool,
        striped: bool,
    ) -> ViewPin<'d> {
        let token = dsm.register_view_span(obj, &bytes, mutable, striped);
        dsm.node.lock().enter_stmt();
        dsm.live_views.set(dsm.live_views.get() + 1);
        ViewPin { dsm, token }
    }
}

impl Drop for ViewPin<'_> {
    fn drop(&mut self) {
        if let Some(token) = self.token {
            self.dsm
                .view_spans
                .borrow_mut()
                .retain(|s| s.token != token);
        }
        self.dsm.node.lock().exit_stmt();
        self.dsm.live_views.set(self.dsm.live_views.get() - 1);
    }
}

/// Read view guard over a LOTS object (returned by
/// [`DsmSlice::view`]): the access check and any miss handling ran
/// once at creation, and the object stays pinned in the DMM area until
/// the guard drops.
pub struct ObjView<'d, T: Pod> {
    pin: ViewPin<'d>,
    data: Vec<T>,
}

impl<T: Pod> Deref for ObjView<'_, T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        let _ = &self.pin;
        &self.data
    }
}

/// Mutable view guard over a LOTS object (returned by
/// [`DsmSlice::view_mut`]): one access check at creation, the object
/// pinned for the guard's lifetime, and the buffered elements written
/// back to the shared object on drop.
pub struct ObjViewMut<'d, T: Pod> {
    pin: ViewPin<'d>,
    id: ObjectId,
    at: usize,
    data: Vec<T>,
}

impl<T: Pod> Deref for ObjViewMut<'_, T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T: Pod> DerefMut for ObjViewMut<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Pod> Drop for ObjViewMut<'_, T> {
    fn drop(&mut self) {
        if self.data.is_empty() {
            return;
        }
        let data = std::mem::take(&mut self.data);
        let span = self.at..self.at + data.len() * T::SIZE;
        // Zero further checks: the check ran at guard creation, and the
        // pin guarantees the object is still mapped.
        self.pin
            .dsm
            .with_range(self.id, span, true, 0, |b| {
                for (k, v) in data.iter().enumerate() {
                    v.write_to(&mut b[k * T::SIZE..]);
                }
            })
            .unwrap_or_else(|e| panic!("view_mut write-back of {}: {e}", self.id));
    }
}
