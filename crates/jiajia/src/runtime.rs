//! JIAJIA cluster bootstrap: app thread + comm (SIGIO) thread per node,
//! mirroring the LOTS runtime so measurements are comparable — the
//! same deterministic lowest-clock-first scheduler (default), the same
//! seed/fault plumbing, the same prompt-shutdown pokes. Keeping the
//! execution models identical is what makes LOTS-vs-JIAJIA deltas
//! attributable to the protocols, not the harness.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use lots_analyze::{AnalyzeConfig, RaceDetector, RaceReport};
use lots_core::consistency::SyncCtx;
use lots_core::diff::WordDiff;
use lots_core::Placement;
use lots_net::{
    cluster_net, Buffered, Envelope, NetReceiver, NetSender, NodeId, Recv, TrafficStats,
};
use lots_persist::{NodeJournal, PersistConfig, PersistStore, RestoredCluster};
use lots_sim::{
    FaultPlan, MachineConfig, NodeStats, SchedHandle, ScheduleScript, Scheduler, SchedulerMode,
    SimClock, SimInstant, TimeCategory, Topology,
};
use parking_lot::Mutex;

use crate::api::{JMsg, JiaDsm};
use crate::node::JiaNode;
use crate::services::{JiaBarrier, JiaLocks};

/// Options for a JIAJIA cluster run.
pub struct JiaOptions {
    /// Cluster size.
    pub n: usize,
    /// Shared-space size (v1.1 default limit: 128 MB, §2 of the paper).
    pub shared_bytes: usize,
    /// Simulated machine (CPU, network, disk models).
    pub machine: MachineConfig,
    /// Per-link latency/bandwidth overrides on top of the machine's
    /// base network model (see [`Topology`]).
    pub topology: Topology,
    /// Execution model: deterministic turnstile (default) or
    /// free-running threads.
    pub scheduler: SchedulerMode,
    /// Cluster seed, surfaced via `DsmApi::seed` and the report.
    pub seed: u64,
    /// Seeded fault injection (delays, stragglers, node panics).
    pub faults: FaultPlan,
    /// Default page placement for unadorned allocations (the
    /// per-alloc `*_placed` variants override it).
    pub placement: Placement,
    /// Correctness analysis (off by default — a disabled config adds
    /// one branch per access and leaves virtual times untouched).
    pub analyze: AnalyzeConfig,
    /// Schedule script for [`SchedulerMode::Explore`]: pins the
    /// dispatch order among equivalent-batch permutations.
    pub explore: Option<ScheduleScript>,
    /// Persistence configuration (`None` — the default — disables the
    /// diff journal entirely and the run is bit-identical to earlier
    /// builds). JIAJIA journals *page* diffs: the journal's object id
    /// is the page index.
    pub persist: Option<PersistConfig>,
    /// Journal store for the persistence subsystem. Only consulted
    /// when [`JiaOptions::persist`] is set; `None` then creates a
    /// fresh private store. Keep a clone to restore from it later.
    pub persist_store: Option<PersistStore>,
    /// Restored state to verify a replay against (installed by
    /// [`restore_jiajia_cluster`]; not set by hand).
    pub persist_verify: Option<Arc<RestoredCluster>>,
}

impl JiaOptions {
    /// Options with the deterministic scheduler, seed 0, no faults,
    /// round-robin placement.
    pub fn new(n: usize, shared_bytes: usize, machine: MachineConfig) -> JiaOptions {
        JiaOptions {
            n,
            shared_bytes,
            machine,
            topology: Topology::uniform(),
            scheduler: SchedulerMode::Deterministic,
            seed: 0,
            faults: FaultPlan::none(),
            placement: Placement::RoundRobin,
            analyze: AnalyzeConfig::off(),
            explore: None,
            persist: None,
            persist_store: None,
            persist_verify: None,
        }
    }

    /// Enable the persistence journal (see [`PersistConfig`]).
    pub fn with_persist(mut self, persist: PersistConfig) -> JiaOptions {
        self.persist = Some(persist);
        self
    }

    /// Use a caller-owned journal store (only meaningful with
    /// [`JiaOptions::persist`] set). The caller keeps a clone to
    /// restore from it after the run.
    pub fn with_persist_store(mut self, store: PersistStore) -> JiaOptions {
        self.persist_store = Some(store);
        self
    }

    /// Set the default page placement.
    pub fn with_placement(mut self, placement: Placement) -> JiaOptions {
        self.placement = placement;
        self
    }

    /// Install per-link latency/bandwidth overrides.
    pub fn with_topology(mut self, topology: Topology) -> JiaOptions {
        self.topology = topology;
        self
    }

    /// Select the execution model.
    pub fn with_scheduler(mut self, mode: SchedulerMode) -> JiaOptions {
        self.scheduler = mode;
        self
    }

    /// Set the cluster seed.
    pub fn with_seed(mut self, seed: u64) -> JiaOptions {
        self.seed = seed;
        self
    }

    /// Attach a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> JiaOptions {
        self.faults = faults;
        self
    }

    /// Enable correctness analysis (e.g. [`AnalyzeConfig::races`]).
    pub fn with_analyze(mut self, analyze: AnalyzeConfig) -> JiaOptions {
        self.analyze = analyze;
        self
    }

    /// Install a schedule script (see [`SchedulerMode::Explore`]).
    pub fn with_explore_script(mut self, script: ScheduleScript) -> JiaOptions {
        self.explore = Some(script);
        self
    }
}

/// Per-node outcome.
#[derive(Debug, Clone)]
pub struct JiaNodeReport {
    /// The node's rank.
    pub me: NodeId,
    /// Final virtual time.
    pub time: SimInstant,
    /// The node's time/counter statistics.
    pub stats: NodeStats,
    /// The node's traffic counters.
    pub traffic: TrafficStats,
    /// Scheduler dispatches of this node's app + comm tasks (0 under
    /// free-running mode). A pure function of the simulated schedule:
    /// identical across `Deterministic` and `Parallel` runs.
    pub sched_turns: u64,
    /// Wakes delivered to this node's app + comm tasks (0 under
    /// free-running mode); deterministic like `sched_turns`.
    pub sched_wakes: u64,
}

/// Cluster-wide outcome.
#[derive(Debug, Clone)]
pub struct JiaReport {
    /// Per-node reports, indexed by rank.
    pub nodes: Vec<JiaNodeReport>,
    /// Execution time: the slowest node's final virtual clock.
    pub exec_time: SimInstant,
    /// The seed the cluster ran with.
    pub seed: u64,
    /// Whole-run scheduler counters (`None` under free-running mode).
    /// `turns`/`wakes`/`epochs` are engine-independent; the worker
    /// fields describe host execution only.
    pub sched: Option<lots_sim::SchedSummary>,
    /// Race-detector report (`Some` iff analysis was enabled via
    /// [`JiaOptions::analyze`]); deterministic under the engine
    /// scheduler modes.
    pub races: Option<RaceReport>,
}

/// Run an SPMD application on a simulated JIAJIA cluster.
pub fn run_jiajia_cluster<R, F>(opts: JiaOptions, app: F) -> (Vec<R>, JiaReport)
where
    R: Send + 'static,
    F: Fn(&JiaDsm) -> R + Send + Sync + 'static,
{
    let n = opts.n;
    assert!(n >= 1);
    assert!(
        opts.faults.crash_node.is_none(),
        "crash-rejoin is a LOTS-only fault: JIAJIA keeps no per-node swap \
         store to rebuild from (use loss/partition faults here instead)"
    );
    let clocks: Vec<SimClock> = (0..n).map(|_| SimClock::new()).collect();
    // Persistence: one journal store for the cluster (caller-supplied
    // or fresh), and — under an engine scheduler — one compaction
    // daemon task per node (see the LOTS runtime for the full
    // argument; free-running mode journals but never compacts).
    let persist_cfg = opts.persist.clone();
    let persist_store = persist_cfg.as_ref().map(|_| {
        opts.persist_store
            .clone()
            .unwrap_or_else(|| PersistStore::new(n))
    });
    let compaction_on = persist_cfg.as_ref().is_some_and(|p| p.compaction.enabled);
    let (sched, app_tasks, comm_tasks, persist_tasks) = if opts.scheduler.uses_engine() {
        let s = Scheduler::new(
            opts.scheduler,
            opts.topology.lookahead(&opts.machine.net, n),
        );
        if let Some(script) = &opts.explore {
            s.set_script(script.clone());
        }
        let apps: Vec<SchedHandle> = (0..n)
            .map(|i| s.register(format!("jia-app-{i}"), clocks[i].clone(), i, false))
            .collect();
        let comms: Vec<SchedHandle> = (0..n)
            .map(|i| s.register(format!("jia-comm-{i}"), clocks[i].clone(), i, true))
            .collect();
        let persists: Option<Vec<(SchedHandle, SimClock)>> = compaction_on.then(|| {
            (0..n)
                .map(|i| {
                    let c = SimClock::new();
                    (
                        s.register(format!("jia-persist-{i}"), c.clone(), i, true),
                        c,
                    )
                })
                .collect()
        });
        (Some(s), Some(apps), Some(comms), persists)
    } else {
        (None, None, None, None)
    };
    // delay_for() short-circuits when no delay is configured, so the
    // net layer can take the whole plan whenever anything is active.
    let fault_delays = opts
        .faults
        .is_active()
        .then(|| Arc::new(opts.faults.clone()));
    let net = cluster_net::<JMsg>(
        n,
        opts.machine.net,
        opts.topology.clone(),
        comm_tasks.clone(),
        fault_delays,
    );
    let endpoints = net.endpoints;
    if let Some(s) = &sched {
        // Deadlock snapshots name any message dropped past its retries.
        let drops = net.drops.clone();
        s.set_diagnostic(move || drops.render());
    }
    let barrier = Arc::new(JiaBarrier::new(n));
    let locks = Arc::new(JiaLocks::new(n));
    let shutdown = Arc::new(AtomicBool::new(false));
    let app = Arc::new(app);
    // One detector instance spans the cluster: nodes stamp it through
    // their JiaDsm hooks, the report is drained after the join below.
    let detector = opts
        .analyze
        .race_detect
        .then(|| Arc::new(RaceDetector::new(n)));

    let mut app_threads = Vec::with_capacity(n);
    let mut comm_threads = Vec::with_capacity(n);
    let mut persist_threads = Vec::new();
    let mut probes = Vec::with_capacity(n);
    let mut poker: Option<NetSender<JMsg>> = None;

    for (me, (tx, rx)) in endpoints.into_iter().enumerate() {
        poker.get_or_insert_with(|| tx.clone());
        let clock = clocks[me].clone();
        let stats = NodeStats::new();
        let cpu = opts.machine.cpu.scaled(opts.faults.cpu_factor(me));
        let node = Arc::new(Mutex::new({
            let mut jn = JiaNode::new(me, n, opts.shared_bytes, cpu, clock.clone(), stats.clone());
            jn.default_placement = opts.placement;
            if persist_cfg.is_some() {
                jn.enable_persist_disk(opts.machine.disk);
            }
            jn
        }));
        // Persistence: this node's journal (appended by the app thread
        // after every barrier) and its background compaction daemon.
        let journal = persist_cfg.as_ref().map(|p| {
            let store = persist_store.clone().expect("store exists with persist on");
            let mut j = NodeJournal::new(me, store, p.clone());
            if let Some(restored) = &opts.persist_verify {
                j.set_verify(restored.verify_plan(me));
            }
            Arc::new(Mutex::new(j))
        });
        if let (Some(tasks), Some(journal)) = (&persist_tasks, &journal) {
            let (task, pclock) = tasks[me].clone();
            let daemon_node = Arc::clone(&node);
            let daemon_journal = Arc::clone(journal);
            let daemon_stats = stats.clone();
            let daemon_shutdown = Arc::clone(&shutdown);
            let poll = persist_cfg
                .as_ref()
                .expect("persist on when tasks exist")
                .compaction
                .poll;
            persist_threads.push(
                std::thread::Builder::new()
                    .name(format!("jia-persist-{me}"))
                    .spawn(move || {
                        task.attach();
                        loop {
                            if daemon_shutdown.load(Ordering::Acquire) {
                                task.finish();
                                return;
                            }
                            let out = daemon_journal.lock().maybe_compact();
                            if let Some(out) = out {
                                let done = daemon_node.lock().persist_book_compaction(
                                    pclock.now(),
                                    out.read_bytes,
                                    out.write_bytes,
                                );
                                daemon_stats.count_compaction(out.reclaimed);
                                pclock.advance_to(done);
                            }
                            let next = SimInstant(pclock.now().nanos() + poll.nanos());
                            pclock.advance_to(next);
                            task.yield_until(next);
                        }
                    })
                    .expect("spawn persist daemon"),
            );
        }
        let (reply_tx, reply_rx) = unbounded::<Envelope<JMsg>>();
        let ctx = SyncCtx {
            me,
            clock: clock.clone(),
            stats: stats.clone(),
            traffic: tx.stats().clone(),
            net: opts.machine.net,
            cpu,
            sched: app_tasks.as_ref().map(|t| t[me].clone()),
        };
        probes.push((clock, stats, tx.stats().clone()));

        comm_threads.push(
            std::thread::Builder::new()
                .name(format!("jia-comm-{me}"))
                .spawn({
                    let comm = CommThread {
                        node: Arc::clone(&node),
                        net: tx.clone(),
                        rx,
                        reply_tx,
                        shutdown: Arc::clone(&shutdown),
                        me_task: comm_tasks.as_ref().map(|t| t[me].clone()),
                        app_task: app_tasks.as_ref().map(|t| t[me].clone()),
                    };
                    let barrier = Arc::clone(&barrier);
                    let locks = Arc::clone(&locks);
                    move || {
                        let me_task = comm.me_task.clone();
                        let r =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| comm.run()));
                        match r {
                            Ok(()) => {
                                if let Some(t) = &me_task {
                                    t.finish();
                                }
                            }
                            Err(payload) => {
                                // Poison BEFORE finish(): finish's dispatch
                                // would otherwise trip the deadlock detector
                                // on still-blocked peers and mask this panic.
                                barrier.poison();
                                locks.poison();
                                if let Some(t) = &me_task {
                                    t.finish();
                                }
                                std::panic::resume_unwind(payload);
                            }
                        }
                    }
                })
                .expect("spawn comm thread"),
        );

        let parts = (
            ctx,
            node,
            tx,
            reply_rx,
            Arc::clone(&barrier),
            Arc::clone(&locks),
        );
        let app = Arc::clone(&app);
        let my_task = app_tasks.as_ref().map(|t| t[me].clone());
        let seed = opts.seed;
        let fault_barrier = opts.faults.panic_barrier_for(me);
        let analyze = detector.clone();
        let my_journal = journal;
        app_threads.push(
            std::thread::Builder::new()
                .name(format!("jia-app-{me}"))
                .spawn(move || {
                    if let Some(t) = &my_task {
                        t.attach();
                    }
                    let (ctx, node, net, replies, barrier, locks) = parts;
                    let dsm = JiaDsm {
                        ctx,
                        node,
                        net,
                        replies,
                        barrier,
                        locks,
                        me,
                        n,
                        seed,
                        fault_barrier,
                        barriers_entered: std::cell::Cell::new(0),
                        live_views: std::cell::Cell::new(0),
                        view_spans: std::cell::RefCell::new(Vec::new()),
                        view_token: std::cell::Cell::new(0),
                        analyze,
                        journal: my_journal,
                    };
                    // A panicking node can never reach the next
                    // rendezvous; poison the sync services so peers
                    // fail loudly instead of hanging forever.
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| app(&dsm)));
                    match result {
                        Ok(r) => {
                            if let Some(t) = &my_task {
                                t.finish();
                            }
                            r
                        }
                        Err(payload) => {
                            dsm.barrier.poison();
                            dsm.locks.poison();
                            if let Some(t) = &my_task {
                                t.finish();
                            }
                            std::panic::resume_unwind(payload);
                        }
                    }
                })
                .expect("spawn app thread"),
        );
    }
    if let Some(s) = &sched {
        s.launch();
    }
    let poker = poker.expect("n >= 1");

    // Join everything first, then propagate the *original* panic (not
    // the secondary "poisoned" panics it induced in peer nodes).
    let joined: Vec<std::thread::Result<R>> = app_threads.into_iter().map(|h| h.join()).collect();
    let results: Vec<R> = if joined.iter().all(|r| r.is_ok()) {
        joined.into_iter().map(|r| r.unwrap()).collect()
    } else {
        let mut primary = None;
        let mut fallback = None;
        for err in joined.into_iter().filter_map(|r| r.err()) {
            let msg = err
                .downcast_ref::<&'static str>()
                .map(|s| s.to_string())
                .or_else(|| err.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            let secondary = msg.contains("peer app thread panicked");
            if secondary {
                fallback.get_or_insert(err);
            } else {
                primary.get_or_insert(err);
            }
        }
        // Don't leak the comm threads while unwinding: stop them, poke
        // them awake, and join before re-raising.
        shutdown.store(true, Ordering::Release);
        for dst in 0..n {
            poker.wake(dst);
        }
        if let Some(tasks) = &persist_tasks {
            for (t, _) in tasks {
                t.wake();
            }
        }
        for h in comm_threads.drain(..) {
            let _ = h.join();
        }
        for h in persist_threads.drain(..) {
            let _ = h.join();
        }
        std::panic::resume_unwind(primary.or(fallback).expect("at least one join error"));
    };
    shutdown.store(true, Ordering::Release);
    for dst in 0..n {
        poker.wake(dst);
    }
    if let Some(tasks) = &persist_tasks {
        for (t, _) in tasks {
            t.wake();
        }
    }
    for h in comm_threads {
        h.join().expect("comm thread panicked");
    }
    for h in persist_threads {
        h.join().expect("persist daemon panicked");
    }

    let nodes: Vec<JiaNodeReport> = probes
        .into_iter()
        .enumerate()
        .map(|(me, (clock, stats, traffic))| {
            let (sched_turns, sched_wakes) = match (&app_tasks, &comm_tasks) {
                (Some(apps), Some(comms)) => (
                    apps[me].turns() + comms[me].turns(),
                    apps[me].wakes() + comms[me].wakes(),
                ),
                _ => (0, 0),
            };
            JiaNodeReport {
                me,
                time: clock.now(),
                stats,
                traffic,
                sched_turns,
                sched_wakes,
            }
        })
        .collect();
    let exec_time = nodes
        .iter()
        .map(|r| r.time)
        .max()
        .unwrap_or(SimInstant::ZERO);
    (
        results,
        JiaReport {
            nodes,
            exec_time,
            seed: opts.seed,
            sched: sched.as_ref().map(|s| s.summary()),
            races: detector.map(|d| d.report()),
        },
    )
}

/// Cold-start restore of a JIAJIA cluster: re-run `app` against the
/// state rebuilt from a [`PersistStore`], verifying the replay
/// barrier-by-barrier against the original run's journal — the exact
/// analogue of `lots_core::runtime::restore_cluster` (see its docs for
/// the honest-re-execution argument). `opts` must carry the same
/// cluster shape and [`JiaOptions::persist`] policy as the original
/// run; any `persist_store` in it is replaced with a fresh scratch
/// store so the original logs stay untouched.
pub fn restore_jiajia_cluster<R, F>(
    restored: Arc<RestoredCluster>,
    mut opts: JiaOptions,
    app: F,
) -> (Vec<R>, JiaReport)
where
    R: Send + 'static,
    F: Fn(&JiaDsm) -> R + Send + Sync + 'static,
{
    assert!(
        opts.persist.is_some(),
        "restore_jiajia_cluster needs JiaOptions::persist set (the replay re-journals)"
    );
    assert_eq!(
        restored.nodes.len(),
        opts.n,
        "restored cluster size must match the options"
    );
    opts.persist_store = Some(PersistStore::new(opts.n));
    opts.persist_verify = Some(restored);
    run_jiajia_cluster(opts, app)
}

/// The comm thread (see the LOTS counterpart in `lots_core::runtime`).
struct CommThread {
    node: Arc<Mutex<JiaNode>>,
    net: NetSender<JMsg>,
    rx: NetReceiver<JMsg>,
    reply_tx: Sender<Envelope<JMsg>>,
    shutdown: Arc<AtomicBool>,
    me_task: Option<SchedHandle>,
    app_task: Option<SchedHandle>,
}

impl CommThread {
    fn run(mut self) {
        if let Some(me) = self.me_task.clone() {
            // Engine modes: buffer arrivals in virtual order and only
            // service those strictly inside the current turn's horizon
            // (see the LOTS comm loop for the full argument).
            me.attach();
            let mut heap: std::collections::BinaryHeap<Buffered<JMsg>> =
                std::collections::BinaryHeap::new();
            loop {
                while let Some(env) = self.rx.try_recv() {
                    heap.push(Buffered::new(env));
                }
                let horizon = me.horizon().nanos();
                while heap.peek().is_some_and(|b| b.arrival_ns() < horizon) {
                    let env = heap.pop().expect("peeked").into_env();
                    if !self.handle(env) {
                        return;
                    }
                    while let Some(env) = self.rx.try_recv() {
                        heap.push(Buffered::new(env));
                    }
                }
                if self.shutdown.load(Ordering::Acquire) {
                    return;
                }
                match heap.peek() {
                    Some(b) => me.yield_until(SimInstant(b.arrival_ns())),
                    None => me.block_with(lots_sim::BlockReason::Idle),
                }
            }
        } else {
            loop {
                match self.rx.recv_timeout(Duration::from_millis(25)) {
                    Recv::Message(env) => {
                        if !self.handle(env) {
                            return;
                        }
                    }
                    Recv::Timeout => {
                        if self.shutdown.load(Ordering::Acquire) {
                            return;
                        }
                    }
                    Recv::Disconnected => return,
                }
            }
        }
    }

    fn handle(&mut self, env: Envelope<JMsg>) -> bool {
        let src = env.src;
        match env.msg {
            JMsg::PageReq { page } => {
                let (bytes, version, done) = {
                    let mut st = self.node.lock();
                    st.stats.charge(TimeCategory::Handler, st.cpu.handler_entry);
                    st.clock.advance(st.cpu.handler_entry);
                    let (b, v) = st.serve_page(page as usize);
                    st.stats.count_home_request(b.len() as u64);
                    (b, v, st.clock.now().max(env.arrival))
                };
                self.net
                    .send(src, JMsg::PageReply { page, version }, bytes.into(), done);
            }
            JMsg::DiffSend { page } => {
                let done = {
                    let mut st = self.node.lock();
                    st.stats.charge(TimeCategory::Handler, st.cpu.handler_entry);
                    st.clock.advance(st.cpu.handler_entry);
                    let diff = WordDiff::decode(&env.payload);
                    st.apply_remote_diff(page as usize, &diff);
                    st.clock.now().max(env.arrival)
                };
                self.net
                    .send(src, JMsg::DiffAck { page }, Default::default(), done);
            }
            JMsg::PageReply { .. } | JMsg::DiffAck { .. } => {
                let arrival = env.arrival;
                if self.reply_tx.send(env).is_err() {
                    return false;
                }
                if let Some(app) = &self.app_task {
                    app.wake_at(arrival);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lots_core::{DsmApi, DsmSlice};
    use lots_sim::machine::p4_fedora;

    fn opts(n: usize) -> JiaOptions {
        JiaOptions::new(n, 256 * 4096, p4_fedora())
    }

    #[test]
    fn single_node_roundtrip() {
        let (results, report) = run_jiajia_cluster(opts(1), |dsm| {
            let a = dsm.alloc::<i32>(100);
            a.write(5, 42);
            dsm.barrier();
            a.read(5)
        });
        assert_eq!(results, vec![42]);
        // Home-local accesses cost nothing in a page DSM (no software
        // checks — §4.1 factor 2); only the barrier accrues time.
        assert!(report.exec_time.nanos() > 0);
    }

    #[test]
    fn writes_visible_after_barrier() {
        let (results, _) = run_jiajia_cluster(opts(2), |dsm| {
            let a = dsm.alloc::<i32>(2048);
            if dsm.me() == 1 {
                // Page 0's home is node 0: node 1 writes a non-home page.
                a.write(3, 77);
            }
            dsm.barrier();
            a.read(3)
        });
        assert_eq!(results, vec![77, 77]);
    }

    #[test]
    fn false_sharing_merges_at_home() {
        let (results, report) = run_jiajia_cluster(opts(4), |dsm| {
            let a = dsm.alloc::<i32>(8); // one page, 4 writers
            a.write(dsm.me(), dsm.me() as i32 + 1);
            dsm.barrier();
            (0..4).map(|i| a.read(i)).sum::<i32>()
        });
        assert_eq!(results, vec![10, 10, 10, 10]);
        // Write-write false sharing: three non-home writers each sent a
        // whole-page-fault + diff; readers refetched the page.
        let faults: u64 = report.nodes.iter().map(|n| n.stats.page_faults()).sum();
        assert!(faults >= 6, "faults {faults}");
    }

    #[test]
    fn lock_transfers_updates_via_home() {
        let (results, _) = run_jiajia_cluster(opts(2), |dsm| {
            let a = dsm.alloc::<i32>(4);
            for _ in 0..10 {
                dsm.lock(1);
                let v = a.read(0);
                a.write(0, v + 1);
                dsm.unlock(1);
            }
            dsm.barrier();
            a.read(0)
        });
        assert_eq!(results, vec![20, 20]);
    }

    #[test]
    #[should_panic(expected = "node 1 exploded")]
    fn peer_panic_fails_loudly_instead_of_hanging() {
        let _ = run_jiajia_cluster(opts(2), |dsm| {
            let a = dsm.alloc::<i32>(16);
            if dsm.me() == 1 {
                panic!("node 1 exploded");
            }
            dsm.barrier();
            a.read(0)
        });
    }

    #[test]
    fn page_granularity_traffic() {
        // Reading one i32 from a remote page moves a whole 4 KB page.
        let (_, report) = run_jiajia_cluster(opts(2), |dsm| {
            let a = dsm.alloc::<i32>(2048);
            if dsm.me() == 0 {
                a.write(0, 1);
            }
            dsm.barrier();
            a.read(0)
        });
        let bytes: u64 = report.nodes.iter().map(|n| n.traffic.bytes_sent()).sum();
        assert!(bytes >= 4096, "page fetch moves ≥ one page, got {bytes}");
    }

    #[test]
    fn lossy_network_with_retransmission_preserves_values() {
        let kernel = |dsm: &JiaDsm| {
            let a = dsm.alloc::<i32>(2048);
            a.write(dsm.me() * 16, dsm.me() as i32 + 1);
            dsm.barrier();
            (0..3).map(|i| a.read(i * 16)).sum::<i32>()
        };
        let base = run_jiajia_cluster(opts(3), kernel);
        let o = opts(3).with_faults(FaultPlan {
            seed: 5,
            loss_permille: 80,
            dup_permille: 40,
            ..FaultPlan::none()
        });
        let lossy = run_jiajia_cluster(o, kernel);
        assert_eq!(base.0, lossy.0, "lossy run must compute the same values");
        let dropped: u64 = lossy.1.nodes.iter().map(|n| n.traffic.msgs_dropped()).sum();
        assert_eq!(dropped, 0, "the reliable layer must recover every loss");
        assert!(lossy.1.exec_time >= base.1.exec_time);
    }

    #[test]
    #[should_panic(expected = "crash-rejoin is a LOTS-only fault")]
    fn crash_fault_is_rejected_up_front() {
        let o = opts(2).with_faults(FaultPlan {
            crash_node: Some(lots_sim::CrashFault {
                node: 1,
                at_barrier: 1,
                reboot: lots_sim::SimDuration::from_millis(1),
            }),
            ..FaultPlan::none()
        });
        let _ = run_jiajia_cluster(o, |dsm| dsm.me());
    }

    #[test]
    fn persistence_journals_checkpoints_and_replays_identically() {
        let kernel = |dsm: &JiaDsm| {
            let a = dsm.alloc::<i32>(2048);
            a.write(dsm.me() * 16, dsm.me() as i32 + 1);
            dsm.barrier();
            let s: i32 = (0..3).map(|i| a.read(i * 16)).sum();
            dsm.barrier();
            s
        };
        let store = PersistStore::new(3);
        let o = opts(3)
            .with_persist(PersistConfig::every(1))
            .with_persist_store(store.clone());
        let (r1, rep1) = run_jiajia_cluster(o, kernel);
        assert!(
            rep1.nodes
                .iter()
                .map(|n| n.stats.log_records())
                .sum::<u64>()
                > 0
        );
        assert!(
            rep1.nodes
                .iter()
                .map(|n| n.stats.checkpoint_bytes())
                .sum::<u64>()
                > 0
        );
        let restored = store.restore().expect("journals restore");
        assert_eq!(restored.checkpoint_seq, 2, "both barriers checkpointed");
        let (r2, rep2) = restore_jiajia_cluster(
            Arc::new(restored),
            opts(3).with_persist(PersistConfig::every(1)),
            kernel,
        );
        assert_eq!(r1, r2, "replay must compute the same values");
        let fp = |rep: &JiaReport| -> String {
            rep.nodes
                .iter()
                .map(|nd| {
                    format!(
                        "{}:{}:{}:{};",
                        nd.me,
                        nd.time.nanos(),
                        nd.stats.page_faults(),
                        nd.traffic.bytes_sent()
                    )
                })
                .collect()
        };
        assert_eq!(fp(&rep1), fp(&rep2), "replay must be byte-identical");
    }

    #[test]
    fn persistence_off_leaves_reports_unchanged() {
        let kernel = |dsm: &JiaDsm| {
            let a = dsm.alloc::<i32>(2048);
            a.write(dsm.me() * 8, 7);
            dsm.barrier();
            a.read(8)
        };
        let plain = run_jiajia_cluster(opts(2), kernel);
        let journaled = run_jiajia_cluster(opts(2).with_persist(PersistConfig::every(1)), kernel);
        assert_eq!(plain.0, journaled.0);
        // The journal is write-behind and JIAJIA reads nothing back
        // from disk mid-run, so virtual times are unchanged.
        assert_eq!(plain.1.exec_time, journaled.1.exec_time);
        assert_eq!(plain.1.nodes[0].stats.log_records(), 0);
        assert!(journaled.1.nodes[0].stats.log_records() > 0);
    }

    #[test]
    fn deterministic_mode_reproduces_reports_exactly() {
        let kernel = |dsm: &JiaDsm| {
            let a = dsm.alloc::<i32>(2048);
            a.write(dsm.me() * 8, dsm.me() as i32 + 1);
            dsm.barrier();
            dsm.lock(3);
            let v = a.read(0);
            a.write(0, v + 1);
            dsm.unlock(3);
            dsm.barrier();
            a.read(0) + a.read(8)
        };
        let run = || {
            let (results, report) = run_jiajia_cluster(opts(3), kernel);
            let fp: String = report
                .nodes
                .iter()
                .map(|nd| {
                    format!(
                        "{}:{}:{}:{};",
                        nd.me,
                        nd.time.nanos(),
                        nd.stats.page_faults(),
                        nd.traffic.bytes_sent()
                    )
                })
                .collect();
            (results, fp)
        };
        let (r1, f1) = run();
        let (r2, f2) = run();
        assert_eq!(r1, r2);
        assert_eq!(f1, f2, "same seed must give byte-identical reports");
    }
}
