//! Application-facing JIAJIA API, mirroring the LOTS API shape so the
//! paper's workloads run unchanged on both systems.

use std::marker::PhantomData;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::Receiver;
use lots_core::consistency::SyncCtx;
use lots_core::pod::Pod;
use lots_net::{Envelope, NetSender, NodeId, WireSize};
use lots_sim::{SimInstant, TimeCategory};
use parking_lot::Mutex;

use crate::node::{JiaError, JiaNode, PageAccess};
use crate::services::{JiaBarrier, JiaLocks};

/// Data-plane messages between JIAJIA nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JMsg {
    PageReq { page: u32 },
    PageReply { page: u32, version: u64 },
    DiffSend { page: u32 },
    DiffAck { page: u32 },
}

impl WireSize for JMsg {
    fn wire_size(&self) -> usize {
        match self {
            JMsg::PageReq { .. } => 2 + 4,
            JMsg::PageReply { .. } => 2 + 4 + 8,
            JMsg::DiffSend { .. } => 2 + 4,
            JMsg::DiffAck { .. } => 2 + 4,
        }
    }
}

/// One node's handle on the JIAJIA shared space.
pub struct JiaDsm {
    pub(crate) ctx: SyncCtx,
    pub(crate) node: Arc<Mutex<JiaNode>>,
    pub(crate) net: NetSender<JMsg>,
    pub(crate) replies: Receiver<Envelope<JMsg>>,
    pub(crate) barrier: Arc<JiaBarrier>,
    pub(crate) locks: Arc<JiaLocks>,
    pub(crate) me: NodeId,
    pub(crate) n: usize,
}

impl JiaDsm {
    pub fn me(&self) -> NodeId {
        self.me
    }

    pub fn n(&self) -> usize {
        self.n
    }

    pub fn now(&self) -> SimInstant {
        self.ctx.clock.now()
    }

    /// `jia_alloc`: allocate a shared array of `len` elements.
    pub fn alloc<T: Pod>(&self, len: usize) -> Result<JiaSlice<'_, T>, JiaError> {
        let addr = self.node.lock().jia_alloc(len * T::SIZE)?;
        Ok(JiaSlice {
            dsm: self,
            addr,
            len,
            _pd: PhantomData,
        })
    }

    /// Charge `ops` element operations of application compute.
    pub fn charge_compute(&self, ops: u64) {
        let d = self.ctx.cpu.compute(ops);
        self.ctx.clock.advance(d);
        self.ctx.stats.charge(TimeCategory::Compute, d);
    }

    /// Global barrier: flush diffs to homes, exchange write notices,
    /// invalidate written pages.
    pub fn barrier(&self) {
        let (diffs, notices) = self.node.lock().flush_dirty();
        self.flush_diffs(diffs);
        let round = self.barrier.enter(&self.ctx, notices);
        // A page stays valid at its sole writer (it holds the newest
        // data); everyone else — including the writers of a falsely
        // shared page — must refetch from the home.
        let stale: Vec<u32> = round
            .written
            .iter()
            .filter(|n| n.multi || n.writer != self.me)
            .map(|n| n.page)
            .collect();
        let mut node = self.node.lock();
        node.invalidate(&stale, round.seq);
        // Version bookkeeping for pages this node kept.
        let kept: Vec<u32> = round
            .written
            .iter()
            .filter(|n| !n.multi && n.writer == self.me)
            .map(|n| n.page)
            .collect();
        node.bump_versions(&kept, round.seq);
    }

    /// Acquire a lock, invalidating pages its notices name.
    pub fn lock(&self, lock: u32) {
        let invalidate = self.locks.acquire(lock, &self.ctx);
        // Version bump is barrier-scoped; locks just invalidate.
        self.node.lock().invalidate(&invalidate, 0);
    }

    /// Release a lock: flush this interval's diffs to homes and attach
    /// the write notices to the lock.
    pub fn unlock(&self, lock: u32) {
        let (diffs, notices) = self.node.lock().flush_dirty();
        self.flush_diffs(diffs);
        self.locks.release(lock, &self.ctx, notices);
    }

    pub fn with_lock<R>(&self, lock: u32, f: impl FnOnce() -> R) -> R {
        self.lock(lock);
        let r = f();
        self.unlock(lock);
        r
    }

    pub fn stats(&self) -> &lots_sim::NodeStats {
        &self.ctx.stats
    }

    pub fn traffic(&self) -> &lots_net::TrafficStats {
        &self.ctx.traffic
    }

    fn flush_diffs(&self, diffs: Vec<(u32, lots_core::WordDiff)>) {
        let mut pending = 0usize;
        for (page, diff) in diffs {
            let home = self.node.lock().page_home(page as usize);
            debug_assert_ne!(home, self.me);
            let tx = self.net.send(
                home,
                JMsg::DiffSend { page },
                diff.encode(),
                self.ctx.clock.now(),
            );
            self.ctx.clock.advance_to(tx.sender_free);
            pending += 1;
        }
        while pending > 0 {
            let env = self.recv_reply();
            match env.msg {
                JMsg::DiffAck { .. } => {
                    let before = self.ctx.clock.now();
                    let now = self.ctx.clock.advance_to(env.arrival);
                    self.ctx
                        .stats
                        .charge(TimeCategory::Network, now.saturating_sub(before));
                    pending -= 1;
                }
                other => panic!("unexpected message during flush: {other:?}"),
            }
        }
    }

    /// Access orchestration: fault in pages until the range is usable.
    pub(crate) fn with_range<R>(
        &self,
        addr: usize,
        len: usize,
        write: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> R {
        loop {
            let (page, home) = {
                let mut node = self.node.lock();
                let access = if write {
                    node.begin_write(addr, len)
                } else {
                    node.begin_read(addr, len)
                };
                match access {
                    PageAccess::Ready => return f(node.bytes_mut(addr, len)),
                    PageAccess::NeedFetch { page, home } => (page, home),
                }
            };
            self.fetch_page(page, home);
        }
    }

    /// Fetch one page from its home (one fault service round trip).
    fn fetch_page(&self, page: usize, home: NodeId) {
        self.net.send(
            home,
            JMsg::PageReq { page: page as u32 },
            Bytes::new(),
            self.ctx.clock.now(),
        );
        let env = self.recv_reply();
        match env.msg {
            JMsg::PageReply { page, version } => {
                let before = self.ctx.clock.now();
                let now = self.ctx.clock.advance_to(env.arrival);
                self.ctx
                    .stats
                    .charge(TimeCategory::Network, now.saturating_sub(before));
                self.node
                    .lock()
                    .install_page(page as usize, &env.payload, version);
            }
            other => panic!("unexpected reply while fetching page: {other:?}"),
        }
    }

    fn recv_reply(&self) -> Envelope<JMsg> {
        self.replies
            .recv()
            .expect("comm thread alive while app running")
    }
}

/// A typed handle on a JIAJIA shared array (flat addresses — ordinary
/// pointers in real JIAJIA).
pub struct JiaSlice<'d, T: Pod> {
    dsm: &'d JiaDsm,
    addr: usize,
    len: usize,
    _pd: PhantomData<T>,
}

impl<T: Pod> Clone for JiaSlice<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for JiaSlice<'_, T> {}

impl<'d, T: Pod> JiaSlice<'d, T> {
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address of element 0 (diagnostics; shows page alignment).
    pub fn addr(&self) -> usize {
        self.addr
    }

    /// Pointer arithmetic.
    pub fn offset(&self, delta: usize) -> JiaSlice<'d, T> {
        assert!(delta <= self.len);
        JiaSlice {
            addr: self.addr + delta * T::SIZE,
            len: self.len - delta,
            ..*self
        }
    }

    #[inline]
    fn at(&self, i: usize) -> usize {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.addr + i * T::SIZE
    }

    pub fn read(&self, i: usize) -> T {
        self.dsm
            .with_range(self.at(i), T::SIZE, false, |b| T::read_from(b))
    }

    pub fn write(&self, i: usize, v: T) {
        self.dsm
            .with_range(self.at(i), T::SIZE, true, |b| v.write_to(b))
    }

    pub fn update(&self, i: usize, f: impl FnOnce(T) -> T) {
        self.dsm.with_range(self.at(i), T::SIZE, true, |b| {
            f(T::read_from(b)).write_to(b)
        })
    }

    pub fn read_into(&self, start: usize, out: &mut [T]) {
        if out.is_empty() {
            return;
        }
        assert!(start + out.len() <= self.len, "bulk read out of bounds");
        self.dsm
            .with_range(self.at(start), out.len() * T::SIZE, false, |b| {
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = T::read_from(&b[k * T::SIZE..]);
                }
            })
    }

    pub fn read_vec(&self, start: usize, len: usize) -> Vec<T> {
        let mut out = vec![T::default(); len];
        self.read_into(start, &mut out);
        out
    }

    pub fn write_from(&self, start: usize, vals: &[T]) {
        if vals.is_empty() {
            return;
        }
        assert!(start + vals.len() <= self.len, "bulk write out of bounds");
        self.dsm
            .with_range(self.at(start), vals.len() * T::SIZE, true, |b| {
                for (k, v) in vals.iter().enumerate() {
                    v.write_to(&mut b[k * T::SIZE..]);
                }
            })
    }

    pub fn fill(&self, v: T) {
        let vals = vec![v; self.len];
        self.write_from(0, &vals);
    }
}

impl<T: Pod> std::fmt::Debug for JiaSlice<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JiaSlice(addr {:#x}, len {})", self.addr, self.len)
    }
}
