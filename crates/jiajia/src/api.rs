//! Application-facing JIAJIA API: the same [`DsmApi`]/[`DsmSlice`]
//! traits the LOTS system implements, so the paper's workloads run
//! unchanged on both systems (§4.1).
//!
//! Accounting differences from LOTS are captured inside the trait
//! impl: JIAJIA runs no per-access software check (page protection
//! hardware does the work), so `charge_access_checks` is a no-op and
//! view guards charge page faults only on actual misses. The flat
//! address space is captured by the `alloc_chunks` override: chunks of
//! one allocation are consecutive ranges of shared pages, so chunks
//! that are not page-multiples share pages — the false sharing §4.1
//! analyses in LU.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{Receiver, TryRecvError};
use lots_analyze::RaceDetector;
use lots_core::api::{element_bounds, range_bounds};
use lots_core::consistency::SyncCtx;
use lots_core::pod::Pod;
use lots_core::{DsmApi, DsmSlice, NamedAllocReq, Placement};
use lots_net::{Envelope, NetSender, NodeId, TrafficStats, WireSize};
use lots_sim::{NodeStats, SimInstant, TimeCategory};
use parking_lot::Mutex;

use crate::node::{JiaError, JiaNode, PageAccess};
use crate::services::{JiaBarrier, JiaLocks};

/// Data-plane messages between JIAJIA nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JMsg {
    /// Fault-service request for one page.
    PageReq {
        /// Page number.
        page: u32,
    },
    /// Home's reply carrying the page bytes.
    PageReply {
        /// Page number.
        page: u32,
        /// Barrier epoch of the served copy.
        version: u64,
    },
    /// A flushed interval diff for a non-home page.
    DiffSend {
        /// Page number.
        page: u32,
    },
    /// Home's acknowledgement of an applied diff.
    DiffAck {
        /// Page number.
        page: u32,
    },
}

impl WireSize for JMsg {
    fn wire_size(&self) -> usize {
        match self {
            JMsg::PageReq { .. } => 2 + 4,
            JMsg::PageReply { .. } => 2 + 4 + 8,
            JMsg::DiffSend { .. } => 2 + 4,
            JMsg::DiffAck { .. } => 2 + 4,
        }
    }
}

/// One node's handle on the JIAJIA shared space.
pub struct JiaDsm {
    pub(crate) ctx: SyncCtx,
    pub(crate) node: Arc<Mutex<JiaNode>>,
    pub(crate) net: NetSender<JMsg>,
    pub(crate) replies: Receiver<Envelope<JMsg>>,
    pub(crate) barrier: Arc<JiaBarrier>,
    pub(crate) locks: Arc<JiaLocks>,
    pub(crate) me: NodeId,
    pub(crate) n: usize,
    /// Cluster seed surfaced through [`DsmApi::seed`].
    pub(crate) seed: u64,
    /// Fault injection: panic on entering this (1-based) barrier.
    pub(crate) fault_barrier: Option<u64>,
    /// Barriers this node has entered (drives `fault_barrier`).
    pub(crate) barriers_entered: Cell<u64>,
    /// Live view guards; synchronization ops assert this is zero.
    pub(crate) live_views: Cell<u32>,
    /// Byte spans of live non-empty guards (flat shared addresses),
    /// used to reject conflicting overlapping accesses — the
    /// stale-snapshot/lost-update hazard of buffered guards.
    pub(crate) view_spans: RefCell<Vec<ViewSpan>>,
    /// Token source for [`ViewSpan`] registration.
    pub(crate) view_token: Cell<u64>,
    /// ScC race detector, shared cluster-wide when analysis is on
    /// (see [`lots_analyze::AnalyzeConfig`]). Race objects on the
    /// JIAJIA side are *pages*: accesses are split on page bounds.
    pub(crate) analyze: Option<Arc<RaceDetector>>,
    /// Persistence journal (`Some` iff [`crate::JiaOptions::persist`]
    /// is set): appended after every barrier, pages as objects.
    pub(crate) journal: Option<Arc<Mutex<lots_persist::NodeJournal>>>,
}

/// One live guard's byte extent in the flat shared space.
pub(crate) struct ViewSpan {
    token: u64,
    start: usize,
    end: usize,
    mutable: bool,
}

impl DsmApi for JiaDsm {
    type Error = JiaError;
    type Slice<'d, T: Pod> = JiaSlice<'d, T>;

    fn me(&self) -> NodeId {
        self.me
    }

    fn n(&self) -> usize {
        self.n
    }

    fn now(&self) -> SimInstant {
        self.ctx.clock.now()
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    /// `jia_alloc`: allocate a shared array of `len` elements.
    fn try_alloc<T: Pod>(&self, len: usize) -> Result<JiaSlice<'_, T>, JiaError> {
        if len == 0 {
            return Err(JiaError::EmptyAlloc);
        }
        let addr = self.node.lock().jia_alloc(len * T::SIZE)?;
        Ok(JiaSlice {
            dsm: self,
            addr,
            len,
            _pd: PhantomData,
        })
    }

    /// `jia_alloc` with an explicit page placement ([`Placement`]
    /// drives the per-page home assignment of §4.1).
    fn try_alloc_placed<T: Pod>(
        &self,
        len: usize,
        placement: Placement,
    ) -> Result<JiaSlice<'_, T>, JiaError> {
        if len == 0 {
            return Err(JiaError::EmptyAlloc);
        }
        let addr = self
            .node
            .lock()
            .jia_alloc_placed(len * T::SIZE, placement)?;
        Ok(JiaSlice {
            dsm: self,
            addr,
            len,
            _pd: PhantomData,
        })
    }

    /// Page-granular free: tombstones the allocation's pages
    /// immediately and reclaims the range cluster-wide at the next
    /// barrier.
    fn try_free<T: Pod>(&self, slice: JiaSlice<'_, T>) -> Result<(), JiaError> {
        self.assert_no_views_over(slice.addr, slice.len * T::SIZE, "free");
        self.node.lock().free_alloc(slice.addr, slice.len * T::SIZE)
    }

    fn try_alloc_named<T: Pod>(&self, name: &str, len: usize) -> Result<(), JiaError> {
        let placement = self.node.lock().default_placement;
        self.try_alloc_named_placed::<T>(name, len, placement)
    }

    fn try_alloc_named_placed<T: Pod>(
        &self,
        name: &str,
        len: usize,
        placement: Placement,
    ) -> Result<(), JiaError> {
        if len == 0 {
            return Err(JiaError::EmptyAlloc);
        }
        self.node.lock().stage_named(NamedAllocReq {
            name: name.to_string(),
            bytes: len * T::SIZE,
            elem_size: T::SIZE,
            len,
            placement,
            // JIAJIA has no striping config to override; the flag only
            // matters to the LOTS segment-placement logic.
            placement_explicit: true,
        })
    }

    fn try_lookup<T: Pod>(&self, name: &str) -> Result<JiaSlice<'_, T>, JiaError> {
        let (addr, len) = self.node.lock().lookup_named(name, T::SIZE)?;
        Ok(JiaSlice {
            dsm: self,
            addr,
            len,
            _pd: PhantomData,
        })
    }

    /// One flat allocation carved into `chunks` consecutive ranges —
    /// real JIAJIA has no object granularity, so chunks share pages
    /// wherever `chunk_len` is not a page multiple.
    fn try_alloc_chunks<T: Pod>(
        &self,
        chunks: usize,
        chunk_len: usize,
    ) -> Result<Vec<JiaSlice<'_, T>>, JiaError> {
        if chunks == 0 || chunk_len == 0 {
            return Err(JiaError::EmptyAlloc);
        }
        let flat = self.try_alloc::<T>(chunks * chunk_len)?;
        Ok((0..chunks)
            .map(|c| flat.offset(c * chunk_len).prefix(chunk_len))
            .collect())
    }

    /// Global barrier: flush diffs to homes, exchange write notices,
    /// invalidate written pages.
    fn barrier(&self) {
        self.assert_no_live_views("barrier");
        let entered = self.barriers_entered.get() + 1;
        self.barriers_entered.set(entered);
        if self.fault_barrier == Some(entered) {
            panic!(
                "fault injection: node {} killed entering barrier {entered}",
                self.me
            );
        }
        let (diffs, notices) = self.node.lock().flush_dirty();
        self.flush_diffs(diffs);
        let (frees, named) = self.node.lock().take_lifecycle();
        // Stamp the detector before the rendezvous: the node that
        // completes the barrier must see every earlier node's clock.
        if let Some(d) = &self.analyze {
            d.on_barrier_enter(self.me);
        }
        let round = self.barrier.enter(&self.ctx, notices, frees, named);
        let mut node = self.node.lock();
        // First-touch placement resolves before invalidation, so the
        // new home keeps its (authoritative) copy.
        node.resolve_pending_homes(&round.written);
        // A page stays valid at its sole writer (it holds the newest
        // data); everyone else — including the writers of a falsely
        // shared page — must refetch from the home.
        let stale: Vec<u32> = round
            .written
            .iter()
            .filter(|n| n.multi || n.writer != self.me)
            .map(|n| n.page)
            .collect();
        node.invalidate(&stale, round.seq);
        // Version bookkeeping for pages this node kept.
        let kept: Vec<u32> = round
            .written
            .iter()
            .filter(|n| !n.multi && n.writer == self.me)
            .map(|n| n.page)
            .collect();
        node.bump_versions(&kept, round.seq);
        // Reclaim the cluster-agreed freed ranges and commit the named
        // allocations (deterministic order on every node).
        node.finish_lifecycle(&round.freed, &round.named, round.seq);
        drop(node);
        // Journal the completed interval (diffs of home-owned written
        // pages, lifecycle records, checkpoint manifest when due).
        self.journal_barrier(&round.written, round.seq);
        // Only after the full rendezvous: the exit clock joins every
        // node's enter stamp, starting a fresh interval.
        if let Some(d) = &self.analyze {
            d.on_barrier_exit(self.me);
        }
    }

    /// Acquire a lock, invalidating pages its notices name.
    fn lock(&self, lock: u32) {
        self.assert_no_live_views("lock");
        let invalidate = self.locks.acquire(lock, &self.ctx);
        // Happens-before edge lands only once the grant is actually
        // held, so a racing acquirer can't observe it early.
        if let Some(d) = &self.analyze {
            d.on_lock_acquire(self.me, lock);
        }
        // Version bump is barrier-scoped; locks just invalidate.
        self.node.lock().invalidate(&invalidate, 0);
    }

    /// Release a lock: flush this interval's diffs to homes and attach
    /// the write notices to the lock.
    fn unlock(&self, lock: u32) {
        self.assert_no_live_views("unlock");
        let (diffs, notices) = self.node.lock().flush_dirty();
        self.flush_diffs(diffs);
        // Publish the clock before the service hands the lock on —
        // the next acquirer must join everything done in this CS.
        if let Some(d) = &self.analyze {
            d.on_lock_release(self.me, lock);
        }
        self.locks.release(lock, &self.ctx, notices);
    }

    fn charge_compute(&self, ops: u64) {
        let d = self.ctx.cpu.compute(ops);
        self.ctx.clock.advance(d);
        self.ctx.stats.charge(TimeCategory::Compute, d);
    }

    /// No-op: a page-based system runs no software access check —
    /// §4.1's "factor 2" overhead exists only on the object side.
    fn charge_access_checks(&self, _n: u64) {}

    fn stats(&self) -> &NodeStats {
        &self.ctx.stats
    }

    fn traffic(&self) -> &TrafficStats {
        &self.ctx.traffic
    }
}

impl JiaDsm {
    fn assert_no_live_views(&self, what: &str) {
        assert_eq!(
            self.live_views.get(),
            0,
            "{what} while view guards are live — drop views before synchronizing"
        );
    }

    /// Panic (fence-style) if any live guard overlaps
    /// `[addr, addr + len)`.
    fn assert_no_views_over(&self, addr: usize, len: usize, what: &str) {
        assert!(
            !self
                .view_spans
                .borrow()
                .iter()
                .any(|s| s.start < addr + len && addr < s.end),
            "{what} of shared bytes {addr:#x}..{:#x} while a view guard over them \
             is live — drop it first",
            addr + len
        );
    }

    /// Reject an access to shared bytes `range` conflicting with a
    /// live guard: a write may not overlap any view, a read may not
    /// overlap a mutable view (the buffered snapshot would go stale or
    /// clobber the access on write-back).
    fn check_view_conflict(&self, range: &Range<usize>, write: bool) {
        if self.live_views.get() == 0 {
            return;
        }
        for s in self.view_spans.borrow().iter() {
            if s.start < range.end && range.start < s.end && (write || s.mutable) {
                panic!(
                    "{} shared bytes {:#x}..{:#x} overlap a live {} view ({:#x}..{:#x}) — drop it first",
                    if write { "write to" } else { "read of" },
                    range.start,
                    range.end,
                    if s.mutable { "mutable" } else { "read" },
                    s.start,
                    s.end
                );
            }
        }
    }

    /// Register a live guard's span (after conflict checking it).
    fn register_view_span(&self, range: &Range<usize>, mutable: bool) -> Option<u64> {
        if range.is_empty() {
            return None;
        }
        self.check_view_conflict(range, mutable);
        let token = self.view_token.get();
        self.view_token.set(token + 1);
        self.view_spans.borrow_mut().push(ViewSpan {
            token,
            start: range.start,
            end: range.end,
            mutable,
        });
        Some(token)
    }

    /// Append one completed barrier interval to the persistence
    /// journal (no-op when the journal is off). Lock order matches the
    /// compaction daemon: journal first, then node.
    fn journal_barrier(&self, written: &[crate::services::PageNotice], seq: u64) {
        let Some(journal) = &self.journal else {
            return;
        };
        let mut j = journal.lock();
        let mut node = self.node.lock();
        let input = lots_persist::BarrierInput {
            seq,
            clock_nanos: self.ctx.clock.now().nanos(),
            live: node.persist_live_meta(),
            names: node.persist_names(),
            written_home: node.persist_written_content(written),
            extents: if j.checkpoint_due(seq) {
                node.persist_extents()
            } else {
                Vec::new()
            },
        };
        let out = j.append_barrier(input);
        node.persist_book_log_write(&out.write_sizes);
        self.ctx.stats.count_log_append(out.records, out.bytes);
        if out.checkpoint_bytes > 0 {
            self.ctx.stats.count_checkpoint(out.checkpoint_bytes);
        }
        if out.replayed {
            self.ctx.stats.count_restore_replay_barrier();
        }
    }

    fn flush_diffs(&self, diffs: Vec<(u32, lots_core::WordDiff)>) {
        let mut pending = 0usize;
        for (page, diff) in diffs {
            let home = self.node.lock().page_home(page as usize);
            debug_assert_ne!(home, self.me);
            let tx = self.net.send(
                home,
                JMsg::DiffSend { page },
                diff.encode(),
                self.ctx.clock.now(),
            );
            self.ctx.clock.advance_to(tx.sender_free);
            pending += 1;
        }
        while pending > 0 {
            let env = self.recv_reply();
            match env.msg {
                JMsg::DiffAck { .. } => {
                    let before = self.ctx.clock.now();
                    let now = self.ctx.clock.advance_to(env.arrival);
                    self.ctx
                        .stats
                        .charge(TimeCategory::Network, now.saturating_sub(before));
                    pending -= 1;
                }
                other => panic!("unexpected message during flush: {other:?}"),
            }
        }
    }

    /// Access orchestration: fault in pages until the range is usable.
    pub(crate) fn with_range<R>(
        &self,
        addr: usize,
        len: usize,
        write: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> R {
        // Race objects are pages here (the system's coherence unit):
        // split the flat range on page bounds, one record per page.
        if let Some(d) = &self.analyze {
            for (page, off, chunk) in crate::page::split_range(addr, len) {
                d.on_access(
                    self.me,
                    page as u32,
                    off as u64,
                    (off + chunk) as u64,
                    write,
                );
            }
        }
        loop {
            let (page, home) = {
                let mut node = self.node.lock();
                let access = if write {
                    node.begin_write(addr, len)
                } else {
                    node.begin_read(addr, len)
                };
                match access {
                    PageAccess::Ready => return f(node.bytes_mut(addr, len)),
                    PageAccess::NeedFetch { page, home } => (page, home),
                }
            };
            self.fetch_page(page, home);
        }
    }

    /// Fetch one page from its home (one fault service round trip).
    fn fetch_page(&self, page: usize, home: NodeId) {
        self.net.send(
            home,
            JMsg::PageReq { page: page as u32 },
            Bytes::new(),
            self.ctx.clock.now(),
        );
        let env = self.recv_reply();
        match env.msg {
            JMsg::PageReply { page, version } => {
                let before = self.ctx.clock.now();
                let now = self.ctx.clock.advance_to(env.arrival);
                self.ctx
                    .stats
                    .charge(TimeCategory::Network, now.saturating_sub(before));
                self.node
                    .lock()
                    .install_page(page as usize, &env.payload, version);
            }
            other => panic!("unexpected reply while fetching page: {other:?}"),
        }
    }

    fn recv_reply(&self) -> Envelope<JMsg> {
        if let Some(h) = &self.ctx.sched {
            // Deterministic mode: park on the turnstile; the comm task
            // wakes us after forwarding the envelope.
            loop {
                match self.replies.try_recv() {
                    Ok(env) => return env,
                    Err(TryRecvError::Empty) => h.block(),
                    Err(TryRecvError::Disconnected) => {
                        panic!("comm thread gone while app waiting for a reply")
                    }
                }
            }
        } else {
            self.replies
                .recv()
                .expect("comm thread alive while app running")
        }
    }
}

/// A typed handle on a JIAJIA shared array (flat addresses — ordinary
/// pointers in real JIAJIA). All access methods live on the
/// [`DsmSlice`] trait.
pub struct JiaSlice<'d, T: Pod> {
    dsm: &'d JiaDsm,
    addr: usize,
    len: usize,
    _pd: PhantomData<T>,
}

impl<T: Pod> Clone for JiaSlice<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for JiaSlice<'_, T> {}

impl<T: Pod> JiaSlice<'_, T> {
    /// Byte address of element 0 (diagnostics; shows page alignment).
    pub fn addr(&self) -> usize {
        self.addr
    }
}

impl<'d, T: Pod> DsmSlice for JiaSlice<'d, T> {
    type Elem = T;
    type Error = JiaError;
    type View<'g>
        = PageView<'g, T>
    where
        Self: 'g;
    type ViewMut<'g>
        = PageViewMut<'g, T>
    where
        Self: 'g;

    fn len(&self) -> usize {
        self.len
    }

    fn offset(&self, delta: usize) -> Self {
        assert!(delta <= self.len, "pointer arithmetic out of bounds");
        JiaSlice {
            addr: self.addr + delta * T::SIZE,
            len: self.len - delta,
            ..*self
        }
    }

    fn prefix(&self, len: usize) -> Self {
        assert!(len <= self.len, "pointer arithmetic out of bounds");
        JiaSlice { len, ..*self }
    }

    fn try_view_checked(
        &self,
        range: Range<usize>,
        _checks: u64,
    ) -> Result<PageView<'_, T>, JiaError> {
        range_bounds(self, self.len, &range);
        let bytes = self.addr + range.start * T::SIZE..self.addr + range.end * T::SIZE;
        let mut view = PageView {
            pin: JiaViewPin::new(self.dsm, bytes, false),
            data: Vec::new(),
        };
        if !range.is_empty() {
            let addr = self.addr + range.start * T::SIZE;
            let n = range.len();
            view.data = self.dsm.with_range(addr, n * T::SIZE, false, |b| {
                (0..n).map(|k| T::read_from(&b[k * T::SIZE..])).collect()
            });
        }
        Ok(view)
    }

    // Direct element/bulk overrides, mirroring the LOTS impl: keep the
    // hot path free of per-call buffer allocation.

    fn try_read(&self, i: usize) -> Result<T, JiaError> {
        element_bounds(self, self.len, i);
        let at = self.addr + i * T::SIZE;
        self.dsm.check_view_conflict(&(at..at + T::SIZE), false);
        Ok(self.dsm.with_range(at, T::SIZE, false, |b| T::read_from(b)))
    }

    fn try_write(&self, i: usize, v: T) -> Result<(), JiaError> {
        element_bounds(self, self.len, i);
        let at = self.addr + i * T::SIZE;
        self.dsm.check_view_conflict(&(at..at + T::SIZE), true);
        self.dsm.with_range(at, T::SIZE, true, |b| v.write_to(b));
        Ok(())
    }

    fn try_update(&self, i: usize, f: impl FnOnce(T) -> T) -> Result<(), JiaError> {
        element_bounds(self, self.len, i);
        let at = self.addr + i * T::SIZE;
        self.dsm.check_view_conflict(&(at..at + T::SIZE), true);
        self.dsm
            .with_range(at, T::SIZE, true, |b| f(T::read_from(b)).write_to(b));
        Ok(())
    }

    fn try_read_into(&self, start: usize, out: &mut [T]) -> Result<(), JiaError> {
        if out.is_empty() {
            return Ok(());
        }
        range_bounds(self, self.len, &(start..start + out.len()));
        let at = self.addr + start * T::SIZE;
        self.dsm
            .check_view_conflict(&(at..at + out.len() * T::SIZE), false);
        self.dsm.with_range(
            self.addr + start * T::SIZE,
            out.len() * T::SIZE,
            false,
            |b| {
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = T::read_from(&b[k * T::SIZE..]);
                }
            },
        );
        Ok(())
    }

    fn try_write_from(&self, start: usize, vals: &[T]) -> Result<(), JiaError> {
        if vals.is_empty() {
            return Ok(());
        }
        range_bounds(self, self.len, &(start..start + vals.len()));
        let at = self.addr + start * T::SIZE;
        self.dsm
            .check_view_conflict(&(at..at + vals.len() * T::SIZE), true);
        self.dsm.with_range(
            self.addr + start * T::SIZE,
            vals.len() * T::SIZE,
            true,
            |b| {
                for (k, v) in vals.iter().enumerate() {
                    v.write_to(&mut b[k * T::SIZE..]);
                }
            },
        );
        Ok(())
    }

    fn try_view_mut_checked(
        &self,
        range: Range<usize>,
        _checks: u64,
    ) -> Result<PageViewMut<'_, T>, JiaError> {
        range_bounds(self, self.len, &range);
        let bytes = self.addr + range.start * T::SIZE..self.addr + range.end * T::SIZE;
        let mut view = PageViewMut {
            pin: JiaViewPin::new(self.dsm, bytes, true),
            addr: self.addr + range.start * T::SIZE,
            data: Vec::new(),
        };
        if !range.is_empty() {
            let addr = view.addr;
            let n = range.len();
            // The write walk faults pages in and twins them once, up
            // front; the guard's write-back then costs nothing extra.
            view.data = self.dsm.with_range(addr, n * T::SIZE, true, |b| {
                (0..n).map(|k| T::read_from(&b[k * T::SIZE..])).collect()
            });
        }
        Ok(view)
    }
}

impl<T: Pod> std::fmt::Debug for JiaSlice<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JiaSlice(addr {:#x}, len {})", self.addr, self.len)
    }
}

/// Live-view bookkeeping shared by both guard types.
struct JiaViewPin<'d> {
    dsm: &'d JiaDsm,
    token: Option<u64>,
}

impl<'d> JiaViewPin<'d> {
    fn new(dsm: &'d JiaDsm, bytes: Range<usize>, mutable: bool) -> JiaViewPin<'d> {
        let token = dsm.register_view_span(&bytes, mutable);
        dsm.live_views.set(dsm.live_views.get() + 1);
        JiaViewPin { dsm, token }
    }
}

impl Drop for JiaViewPin<'_> {
    fn drop(&mut self) {
        if let Some(token) = self.token {
            self.dsm
                .view_spans
                .borrow_mut()
                .retain(|s| s.token != token);
        }
        self.dsm.live_views.set(self.dsm.live_views.get() - 1);
    }
}

/// Read view guard over JIAJIA pages (returned by [`DsmSlice::view`]):
/// the page-fault walk ran once at creation.
pub struct PageView<'d, T: Pod> {
    pin: JiaViewPin<'d>,
    data: Vec<T>,
}

impl<T: Pod> Deref for PageView<'_, T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        let _ = &self.pin;
        &self.data
    }
}

/// Mutable view guard over JIAJIA pages (returned by
/// [`DsmSlice::view_mut`]): pages faulted and twinned once at
/// creation, buffered elements written back on drop.
pub struct PageViewMut<'d, T: Pod> {
    pin: JiaViewPin<'d>,
    addr: usize,
    data: Vec<T>,
}

impl<T: Pod> Deref for PageViewMut<'_, T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T: Pod> DerefMut for PageViewMut<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Pod> Drop for PageViewMut<'_, T> {
    fn drop(&mut self) {
        if self.data.is_empty() {
            return;
        }
        let data = std::mem::take(&mut self.data);
        let addr = self.addr;
        self.pin
            .dsm
            .with_range(addr, data.len() * T::SIZE, true, |b| {
                for (k, v) in data.iter().enumerate() {
                    v.write_to(&mut b[k * T::SIZE..]);
                }
            });
    }
}
