//! `lots-jiajia` — the paper's evaluation baseline: a JIAJIA-v1.1-like
//! page-based, home-based software DSM under Scope Consistency, built
//! on the same network/time substrates as the LOTS reproduction so the
//! two systems are compared exactly as §4.1 compares them.
//!
//! Key contrasts with LOTS that the Figure 8 experiments exercise:
//!
//! * **page granularity** (4 KB) → read-write and write-write false
//!   sharing on row-structured data (LU);
//! * **fixed, round-robin homes** → only `1/p` of migratory data is
//!   home-local (ME), and every non-home write pays a diff flush;
//! * **no per-access software check** → no object-based overhead, but
//!   SIGSEGV-modeled fault costs on misses;
//! * **bounded shared space** (128 MB in v1.1) → no large-object
//!   support at all.

pub mod api;
pub mod node;
pub mod page;
pub mod runtime;
pub mod services;

pub use api::{JMsg, JiaDsm, JiaSlice, PageView, PageViewMut};
pub use node::JiaError;
pub use page::PAGE_BYTES;
pub use runtime::{
    restore_jiajia_cluster, run_jiajia_cluster, JiaNodeReport, JiaOptions, JiaReport,
};
