//! Page table for the JIAJIA baseline.
//!
//! JIAJIA v1.1 (Hu, Shi, Tang — HPCN'99) is a *page-based, home-based*
//! software DSM under Scope Consistency. Shared memory is carved into
//! 4 KB pages; each page has a fixed home assigned **round-robin** at
//! allocation (the paper's §4.1 notes this placement when explaining
//! ME's behaviour). Non-home copies are cached on access and
//! invalidated when any other node writes the page.

use lots_net::NodeId;

/// Page size (same as the OS page granularity LOTS assumes).
pub const PAGE_BYTES: usize = 4096;

/// Coherence state of the local copy of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// No usable local copy (must fetch from home on access).
    Invalid,
    /// Clean local copy (home copies are always valid).
    Valid,
}

/// Per-node control record for one shared page.
#[derive(Debug, Clone)]
pub struct PageCtl {
    pub home: NodeId,
    pub state: PageState,
    /// Barrier epoch of the local copy.
    pub version: u64,
    /// Twin exists (page written by this node this interval).
    pub twin: bool,
    /// Written by this node since the last synchronization flush.
    pub written: bool,
    /// The allocation covering this page was freed this interval:
    /// application access panics (use-after-free fence) until the next
    /// barrier reclaims and re-zeroes the page.
    pub freed: bool,
    /// First-touch placement: the home is provisional until the first
    /// barrier at which the page was written assigns the real one.
    pub pending: bool,
}

impl PageCtl {
    pub fn new(home: NodeId) -> PageCtl {
        PageCtl {
            home,
            // Fresh shared memory is zero everywhere: all copies agree.
            state: PageState::Valid,
            version: 0,
            twin: false,
            written: false,
            freed: false,
            pending: false,
        }
    }
}

/// Index arithmetic helpers.
#[inline]
pub fn page_of(addr: usize) -> usize {
    addr / PAGE_BYTES
}

#[inline]
pub fn page_base(page: usize) -> usize {
    page * PAGE_BYTES
}

/// Split the byte range `[addr, addr+len)` into per-page subranges.
pub fn split_range(addr: usize, len: usize) -> impl Iterator<Item = (usize, usize, usize)> {
    // Yields (page, offset_in_page, len_in_page).
    let mut cur = addr;
    let end = addr + len;
    std::iter::from_fn(move || {
        if cur >= end {
            return None;
        }
        let page = page_of(cur);
        let off = cur - page_base(page);
        let take = (PAGE_BYTES - off).min(end - cur);
        cur += take;
        Some((page, off, take))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_is_valid_zero() {
        let p = PageCtl::new(2);
        assert_eq!(p.state, PageState::Valid);
        assert_eq!(p.home, 2);
        assert!(!p.twin);
        assert!(!p.written);
    }

    #[test]
    fn page_arithmetic() {
        assert_eq!(page_of(0), 0);
        assert_eq!(page_of(4095), 0);
        assert_eq!(page_of(4096), 1);
        assert_eq!(page_base(3), 12288);
    }

    #[test]
    fn split_range_within_one_page() {
        let parts: Vec<_> = split_range(100, 200).collect();
        assert_eq!(parts, vec![(0, 100, 200)]);
    }

    #[test]
    fn split_range_spanning_pages() {
        let parts: Vec<_> = split_range(4000, 5000).collect();
        assert_eq!(parts, vec![(0, 4000, 96), (1, 0, 4096), (2, 0, 808)]);
        let total: usize = parts.iter().map(|&(_, _, l)| l).sum();
        assert_eq!(total, 5000);
    }

    #[test]
    fn split_range_page_aligned() {
        let parts: Vec<_> = split_range(8192, 8192).collect();
        assert_eq!(parts, vec![(2, 0, 4096), (3, 0, 4096)]);
    }
}
