//! Per-node state of the JIAJIA baseline: the shared-space mirror,
//! page cache, twins and diff bookkeeping — plus the page-granular
//! object lifecycle (free-list allocation, free/reclaim, the
//! replicated name directory) mirroring the LOTS surface.

use std::collections::{BTreeMap, HashMap};

use lots_core::diff::WordDiff;
use lots_core::{NamedAllocReq, Placement};
use lots_net::NodeId;
use lots_sim::{
    CpuModel, DiskModel, DiskQueue, NodeStats, SimClock, SimDuration, SimInstant, TimeCategory,
};

use crate::page::{page_base, split_range, PageCtl, PageState, PAGE_BYTES};

/// Errors surfaced to applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JiaError {
    /// JIAJIA's shared space is bounded (128 MB in v1.1, §2): the
    /// "application too large to fit" failure mode LOTS removes.
    OutOfSharedMemory {
        /// Bytes the failed allocation needed.
        requested: usize,
        /// Total shared-space bytes.
        limit: usize,
    },
    /// Zero-length allocation: shared arrays must hold at least one
    /// element.
    EmptyAlloc,
    /// Access through a handle to a freed allocation — the lifecycle
    /// analogue of the view-guard fences.
    UseAfterFree {
        /// Base address of the freed allocation.
        addr: usize,
    },
    /// `free` called with a handle that does not cover one whole
    /// original allocation.
    BadFree {
        /// Address the handle points at.
        addr: usize,
        /// What was wrong with the handle.
        reason: String,
    },
    /// `lookup` of a name with no committed directory entry.
    NameNotFound {
        /// The looked-up name.
        name: String,
    },
    /// Typed `lookup::<T>` with the wrong element size.
    NameTypeMismatch {
        /// The looked-up name.
        name: String,
        /// Element size recorded in the directory.
        expected: usize,
        /// Element size of the requested `T`.
        actual: usize,
    },
    /// `alloc_named` with a name already in the directory or staged.
    DuplicateName {
        /// The conflicting name.
        name: String,
    },
    /// `Placement::Fixed` naming a node outside the cluster — rejected
    /// deterministically at allocation (or staging) time, before any
    /// free-list or directory state changes.
    BadPlacement {
        /// The out-of-range node the placement asked for.
        requested: NodeId,
        /// Cluster size (valid nodes are `0..n`).
        n: usize,
    },
}

impl std::fmt::Display for JiaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JiaError::OutOfSharedMemory { requested, limit } => write!(
                f,
                "jia_alloc of {requested} bytes exceeds the {limit}-byte shared space"
            ),
            JiaError::EmptyAlloc => write!(f, "cannot allocate an empty shared array"),
            JiaError::UseAfterFree { addr } => write!(
                f,
                "use after free: allocation at {addr:#x} was freed — handles to it \
                 are fenced off like the view-guard fences"
            ),
            JiaError::BadFree { addr, reason } => {
                write!(f, "free of allocation at {addr:#x} rejected: {reason}")
            }
            JiaError::NameNotFound { name } => write!(
                f,
                "no committed object named {name:?} (named allocations materialize \
                 at the next barrier)"
            ),
            JiaError::NameTypeMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "object {name:?} holds {expected}-byte elements, lookup asked for \
                 {actual}-byte elements"
            ),
            JiaError::DuplicateName { name } => {
                write!(f, "an object named {name:?} already exists")
            }
            JiaError::BadPlacement { requested, n } => write!(
                f,
                "Placement::Fixed({requested}) outside the cluster (valid nodes are 0..{n})"
            ),
        }
    }
}

impl std::error::Error for JiaError {}

/// Result of a page access attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageAccess {
    Ready,
    /// `page` faulted; fetch it from `home` and retry (successive
    /// SIGSEGVs fault a range in one page at a time).
    NeedFetch {
        page: usize,
        home: NodeId,
    },
}

/// One live allocation (page-granular, as `jia_alloc` rounds to
/// pages).
#[derive(Debug, Clone)]
struct JiaAlloc {
    /// Pages covered.
    pages: usize,
    /// Requested byte size (pre-rounding); `free` must match it.
    bytes: usize,
    /// Freed this interval (tombstoned until the barrier reclaims).
    tombstoned: bool,
    /// Directory name, if allocated through `alloc_named`.
    name: Option<String>,
}

/// One replicated name-directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct JiaNamedEntry {
    addr: usize,
    elem_size: usize,
    len: usize,
}

/// Per-node JIAJIA state (behind a mutex, shared with the comm thread).
pub struct JiaNode {
    pub me: NodeId,
    pub n: usize,
    /// Local mirror of the whole shared space.
    mem: Vec<u8>,
    pages: Vec<PageCtl>,
    twins: HashMap<u32, Vec<u8>>,
    /// Pages this node wrote since the last flush.
    dirty: Vec<u32>,
    /// Free page extents: first page → page count (first-fit lowest,
    /// coalesced on reclaim). Every node performs the same allocations
    /// and replays the same barrier-agreed reclamations, so addresses
    /// agree cluster-wide.
    free_pages: BTreeMap<usize, usize>,
    /// Live (and tombstoned) allocations by base address.
    allocs: BTreeMap<usize, JiaAlloc>,
    /// Replicated name directory (changes only at barriers).
    names: HashMap<String, JiaNamedEntry>,
    /// Freed allocations staged this interval: (first page, pages).
    freed_pending: Vec<(u32, u32)>,
    /// Named allocations staged this interval.
    pending_named: Vec<NamedAllocReq>,
    /// Default placement for unadorned allocs.
    pub default_placement: Placement,
    /// Serial local-disk device for the persistence journal. JIAJIA
    /// itself never touches disk (no swap); the device exists only
    /// when the run enables the `lots-persist` journal.
    diskq: Option<DiskQueue>,
    pub clock: SimClock,
    pub stats: NodeStats,
    pub cpu: CpuModel,
}

impl JiaNode {
    pub fn new(
        me: NodeId,
        n: usize,
        shared_bytes: usize,
        cpu: CpuModel,
        clock: SimClock,
        stats: NodeStats,
    ) -> JiaNode {
        assert_eq!(
            shared_bytes % PAGE_BYTES,
            0,
            "shared space is page-granular"
        );
        let n_pages = shared_bytes / PAGE_BYTES;
        JiaNode {
            me,
            n,
            mem: vec![0u8; shared_bytes],
            // Round-robin home allocation on pages (paper §4.1).
            pages: (0..n_pages).map(|p| PageCtl::new(p % n)).collect(),
            twins: HashMap::new(),
            dirty: Vec::new(),
            free_pages: std::iter::once((0, n_pages)).collect(),
            allocs: BTreeMap::new(),
            names: HashMap::new(),
            freed_pending: Vec::new(),
            pending_named: Vec::new(),
            default_placement: Placement::RoundRobin,
            diskq: None,
            clock,
            stats,
            cpu,
        }
    }

    /// Attach the local-disk device the persistence journal books its
    /// I/O on (called once at bootstrap when the journal is enabled).
    pub fn enable_persist_disk(&mut self, model: DiskModel) {
        self.diskq = Some(DiskQueue::new(model));
    }

    fn charge(&self, cat: TimeCategory, d: SimDuration) {
        self.clock.advance(d);
        self.stats.charge(cat, d);
    }

    /// Allocate `bytes` of shared space (JIAJIA's `jia_alloc`) under
    /// the node's default placement. Collective: every node performs
    /// the same allocations, so addresses agree.
    pub fn jia_alloc(&mut self, bytes: usize) -> Result<usize, JiaError> {
        self.jia_alloc_placed(bytes, self.default_placement)
    }

    /// [`JiaNode::jia_alloc`] with an explicit page placement.
    /// First-fit over the free page extents: the lowest-addressed
    /// extent that fits — freed ranges are *reused*, so a cumulative
    /// allocation history far beyond `shared_bytes` fits a fixed
    /// space. `jia_alloc` rounds to pages, so distinct allocations
    /// never share a page (but rows *within* one allocation do — the
    /// false sharing the paper analyses in LU).
    pub fn jia_alloc_placed(
        &mut self,
        bytes: usize,
        placement: Placement,
    ) -> Result<usize, JiaError> {
        self.check_placement(placement)?;
        let limit = self.mem.len();
        let pages = bytes.div_ceil(PAGE_BYTES).max(1);
        let Some(first) = self
            .free_pages
            .iter()
            .find(|&(_, &len)| len >= pages)
            .map(|(&p, _)| p)
        else {
            return Err(JiaError::OutOfSharedMemory {
                requested: bytes,
                limit,
            });
        };
        let extent = self.free_pages.remove(&first).expect("extent exists");
        if extent > pages {
            self.free_pages.insert(first + pages, extent - pages);
        }
        for p in first..first + pages {
            let (home, pending) = match placement {
                Placement::RoundRobin => (p % self.n, false),
                Placement::Fixed(node) => {
                    debug_assert!(node < self.n, "check_placement validated this");
                    (node, false)
                }
                Placement::FirstTouch => (p % self.n, true),
                Placement::ConsistentHash => (
                    (lots_core::node::stripe_hash(p as u32, 0) as usize) % self.n,
                    false,
                ),
            };
            let mut ctl = PageCtl::new(home);
            ctl.pending = pending;
            ctl.version = self.pages[p].version;
            self.pages[p] = ctl;
        }
        self.allocs.insert(
            page_base(first),
            JiaAlloc {
                pages,
                bytes,
                tombstoned: false,
                name: None,
            },
        );
        Ok(page_base(first))
    }

    // ------------------------------------------------------------------
    // Object lifecycle: free, named objects (tombstone → barrier
    // reclamation, page-granular)
    // ------------------------------------------------------------------

    /// Free a live allocation: tombstone its pages immediately (every
    /// further application access panics with the use-after-free
    /// fence) and stage the range for cluster-wide reclamation at the
    /// next barrier.
    pub fn free_alloc(&mut self, addr: usize, bytes: usize) -> Result<(), JiaError> {
        let Some(info) = self.allocs.get(&addr) else {
            return Err(JiaError::BadFree {
                addr,
                reason: "not the base address of a live allocation — free needs \
                         the original allocation handle"
                    .into(),
            });
        };
        if info.tombstoned {
            return Err(JiaError::UseAfterFree { addr });
        }
        if info.bytes != bytes {
            return Err(JiaError::BadFree {
                addr,
                reason: format!(
                    "handle covers {bytes} bytes, the allocation holds {}",
                    info.bytes
                ),
            });
        }
        let pages = info.pages;
        let first = addr / PAGE_BYTES;
        self.allocs.get_mut(&addr).expect("checked").tombstoned = true;
        for p in first..first + pages {
            self.pages[p].freed = true;
            // The tombstone publishes nothing: drop pending diffs.
            self.twins.remove(&(p as u32));
            self.pages[p].twin = false;
        }
        self.dirty
            .retain(|&p| !(first..first + pages).contains(&(p as usize)));
        self.freed_pending.push((first as u32, pages as u32));
        Ok(())
    }

    /// Reject a `Fixed` placement naming a node outside the cluster —
    /// *before* any allocation state changes, so the failure has no
    /// side effects (mirrors `lots_core`'s `BadPlacement`).
    fn check_placement(&self, placement: Placement) -> Result<(), JiaError> {
        match placement {
            Placement::Fixed(node) if node >= self.n => Err(JiaError::BadPlacement {
                requested: node,
                n: self.n,
            }),
            _ => Ok(()),
        }
    }

    /// Stage a named allocation for commit at the next barrier.
    pub fn stage_named(&mut self, req: NamedAllocReq) -> Result<(), JiaError> {
        self.check_placement(req.placement)?;
        if self.names.contains_key(&req.name)
            || self.pending_named.iter().any(|p| p.name == req.name)
        {
            return Err(JiaError::DuplicateName { name: req.name });
        }
        if req.len == 0 {
            return Err(JiaError::EmptyAlloc);
        }
        self.pending_named.push(req);
        Ok(())
    }

    /// Resolve a committed name, checking the recorded element size.
    pub fn lookup_named(&self, name: &str, elem_size: usize) -> Result<(usize, usize), JiaError> {
        let entry = self.names.get(name).ok_or_else(|| JiaError::NameNotFound {
            name: name.to_string(),
        })?;
        if self.allocs.get(&entry.addr).is_none_or(|a| a.tombstoned) {
            return Err(JiaError::UseAfterFree { addr: entry.addr });
        }
        if entry.elem_size != elem_size {
            return Err(JiaError::NameTypeMismatch {
                name: name.to_string(),
                expected: entry.elem_size,
                actual: elem_size,
            });
        }
        Ok((entry.addr, entry.len))
    }

    /// Take the interval's staged frees and named allocations for the
    /// barrier rendezvous.
    pub fn take_lifecycle(&mut self) -> (Vec<(u32, u32)>, Vec<NamedAllocReq>) {
        (
            std::mem::take(&mut self.freed_pending),
            std::mem::take(&mut self.pending_named),
        )
    }

    /// First-touch resolution at barrier exit: a pending page written
    /// this interval is re-homed to its (lowest-ranked) writer when it
    /// had exactly one — safe, because the writer's copy equals the
    /// provisional home's copy once the diff flush is acknowledged.
    /// Multi-writer pending pages keep the provisional home (the diffs
    /// already merged there).
    pub fn resolve_pending_homes(&mut self, written: &[crate::services::PageNotice]) {
        for notice in written {
            let p = notice.page as usize;
            if !self.pages[p].pending || self.pages[p].freed {
                continue;
            }
            if !notice.multi {
                self.pages[p].home = notice.writer;
            }
            self.pages[p].pending = false;
        }
    }

    /// Barrier exit: reclaim the cluster-agreed freed ranges (zero the
    /// pages back to the fresh-allocation state on every node, return
    /// the range to the free list, drop directory entries) and commit
    /// the agreed named allocations in deterministic order.
    pub fn finish_lifecycle(&mut self, freed: &[(u32, u32)], named: &[NamedAllocReq], seq: u64) {
        for &(first, pages) in freed {
            self.reclaim_range(first as usize, pages as usize, seq);
        }
        for req in named {
            assert!(
                !self.names.contains_key(&req.name),
                "named object {:?} committed twice (two nodes staged the same \
                 name in one interval)",
                req.name
            );
            let addr = self
                .jia_alloc_placed(req.bytes, req.placement)
                .unwrap_or_else(|e| panic!("committing named {:?}: {e}", req.name));
            self.allocs.get_mut(&addr).expect("just allocated").name = Some(req.name.clone());
            self.names.insert(
                req.name.clone(),
                JiaNamedEntry {
                    addr,
                    elem_size: req.elem_size,
                    len: req.len,
                },
            );
        }
    }

    /// Reclaim one freed page range: every node resets the pages to
    /// the fresh state (zero bytes, valid, round-robin home at `seq`),
    /// so a reuse starts from a cluster-consistent zero fill.
    fn reclaim_range(&mut self, first: usize, pages: usize, seq: u64) {
        let addr = page_base(first);
        if let Some(info) = self.allocs.remove(&addr) {
            debug_assert_eq!(info.pages, pages, "free range disagrees with allocation");
            if let Some(name) = info.name {
                self.names.remove(&name);
            }
            self.stats.count_object_freed((pages * PAGE_BYTES) as u64);
        }
        for p in first..first + pages {
            self.twins.remove(&(p as u32));
            self.mem[page_base(p)..page_base(p) + PAGE_BYTES].fill(0);
            let mut ctl = PageCtl::new(p % self.n);
            ctl.version = seq;
            self.pages[p] = ctl;
        }
        self.dirty
            .retain(|&p| !(first..first + pages).contains(&(p as usize)));
        // Return the range to the free list, coalescing neighbours.
        let mut start = first;
        let mut len = pages;
        if let Some((&p_off, &p_len)) = self.free_pages.range(..first).next_back() {
            if p_off + p_len == first {
                self.free_pages.remove(&p_off);
                start = p_off;
                len += p_len;
            }
        }
        if let Some(&n_len) = self.free_pages.get(&(first + pages)) {
            self.free_pages.remove(&(first + pages));
            len += n_len;
        }
        self.free_pages.insert(start, len);
    }

    /// Free shared pages (diagnostics; the space a fresh allocation
    /// could still take).
    pub fn free_page_count(&self) -> usize {
        self.free_pages.values().sum()
    }

    /// Live (non-tombstoned) allocations.
    pub fn live_allocs(&self) -> usize {
        self.allocs.values().filter(|a| !a.tombstoned).count()
    }

    /// Panic with the use-after-free fence if any page of
    /// `[addr, addr+len)` is tombstoned.
    fn fence_freed(&self, addr: usize, len: usize) {
        for (page, _, _) in split_range(addr, len) {
            assert!(
                !self.pages[page].freed,
                "use after free: shared bytes {:#x}..{:#x} belong to a freed \
                 allocation — handles to it are fenced off like the view-guard \
                 fences",
                addr,
                addr + len
            );
        }
    }

    /// Begin a read of `[addr, addr+len)`: returns the first page that
    /// needs fetching, if any (the caller fetches and retries).
    pub fn begin_read(&mut self, addr: usize, len: usize) -> PageAccess {
        self.fence_freed(addr, len);
        for (page, _, _) in split_range(addr, len) {
            let ctl = &self.pages[page];
            if ctl.home != self.me && ctl.state == PageState::Invalid {
                // SIGSEGV read fault + handler.
                self.stats.count_page_fault();
                self.charge(TimeCategory::AccessCheck, self.cpu.page_fault);
                return PageAccess::NeedFetch {
                    page,
                    home: ctl.home,
                };
            }
        }
        PageAccess::Ready
    }

    /// Begin a write: like a read, plus twin creation (write fault) on
    /// the first write to each non-home page this interval.
    pub fn begin_write(&mut self, addr: usize, len: usize) -> PageAccess {
        self.fence_freed(addr, len);
        for (page, _, _) in split_range(addr, len) {
            let home = self.pages[page].home;
            if home != self.me && self.pages[page].state == PageState::Invalid {
                self.stats.count_page_fault();
                self.charge(TimeCategory::AccessCheck, self.cpu.page_fault);
                return PageAccess::NeedFetch { page, home };
            }
        }
        for (page, _, _) in split_range(addr, len) {
            let is_home = self.pages[page].home == self.me;
            if !self.pages[page].written {
                self.pages[page].written = true;
                self.dirty.push(page as u32);
            }
            if !is_home && !self.pages[page].twin {
                // Write fault: twin the page before first modification.
                self.stats.count_page_fault();
                self.charge(TimeCategory::AccessCheck, self.cpu.page_fault);
                let base = page_base(page);
                self.twins
                    .insert(page as u32, self.mem[base..base + PAGE_BYTES].to_vec());
                self.pages[page].twin = true;
                self.charge(TimeCategory::Diffing, self.cpu.diffing(PAGE_BYTES as u64));
            }
        }
        PageAccess::Ready
    }

    /// Raw memory access after `begin_read`/`begin_write` returned
    /// `Ready`.
    pub fn bytes(&self, addr: usize, len: usize) -> &[u8] {
        &self.mem[addr..addr + len]
    }

    pub fn bytes_mut(&mut self, addr: usize, len: usize) -> &mut [u8] {
        &mut self.mem[addr..addr + len]
    }

    /// Install a page fetched from its home.
    pub fn install_page(&mut self, page: usize, data: &[u8], version: u64) {
        debug_assert_eq!(data.len(), PAGE_BYTES);
        let base = page_base(page);
        self.mem[base..base + PAGE_BYTES].copy_from_slice(data);
        self.pages[page].state = PageState::Valid;
        self.pages[page].version = version;
    }

    /// Home-side page service (comm thread).
    ///
    /// Senders address by the *cluster-agreed* home; this node's own
    /// table may still lag behind it. Allocation and first-touch
    /// bookkeeping are replayed by each app thread at its own virtual
    /// time, so when this node straggles (e.g. blocked on a
    /// retransmission-delayed fetch), a request for a page it is the
    /// agreed home of can arrive before the local replay runs. The
    /// mirror is still authoritative: reclamation zeroed it at least
    /// one network latency earlier (the freeing barrier's exit), which
    /// the conservative engine wall-orders before this service.
    pub fn serve_page(&mut self, page: usize) -> (Vec<u8>, u64) {
        let base = page_base(page);
        (
            self.mem[base..base + PAGE_BYTES].to_vec(),
            self.pages[page].version,
        )
    }

    /// Home-side diff application (comm thread).
    ///
    /// Like [`JiaNode::serve_page`], the sender addressed the
    /// cluster-agreed home; the local table may not have replayed the
    /// allocation that made this node home yet. Applying the word diff
    /// touches only the mirror, which commutes with that lagging
    /// bookkeeping — the table converges at this node's next replay.
    pub fn apply_remote_diff(&mut self, page: usize, diff: &WordDiff) {
        let base = page_base(page);
        diff.apply(&mut self.mem[base..base + PAGE_BYTES]);
        self.charge(
            TimeCategory::Diffing,
            self.cpu.diffing(diff.changed_words() as u64 * 4),
        );
    }

    /// Take the current dirty set, producing for each non-home page its
    /// diff (to flush to the home) and for each page its write notice.
    /// Twins are consumed; `written` flags reset.
    pub fn flush_dirty(&mut self) -> (Vec<(u32, WordDiff)>, Vec<u32>) {
        let dirty = std::mem::take(&mut self.dirty);
        let mut diffs = Vec::new();
        let mut notices = Vec::with_capacity(dirty.len());
        for page in dirty {
            let p = page as usize;
            notices.push(page);
            self.pages[p].written = false;
            if self.pages[p].home == self.me {
                continue; // home writes are already in place
            }
            let twin = self
                .twins
                .remove(&page)
                .expect("dirty non-home page has twin");
            self.pages[p].twin = false;
            let base = page_base(p);
            let diff = WordDiff::compute(&twin, &self.mem[base..base + PAGE_BYTES]);
            self.charge(TimeCategory::Diffing, self.cpu.diffing(PAGE_BYTES as u64));
            if !diff.is_empty() {
                self.stats.count_diff(diff.wire_size() as u64);
                diffs.push((page, diff));
            }
        }
        (diffs, notices)
    }

    /// Invalidate cached copies of pages written by other nodes
    /// (applied at barrier exit / lock acquire).
    pub fn invalidate(&mut self, pages: &[u32], seq: u64) {
        for &page in pages {
            let p = page as usize;
            if self.pages[p].home == self.me {
                self.pages[p].version = seq;
            } else {
                self.pages[p].state = PageState::Invalid;
            }
        }
    }

    /// Record the barrier epoch on pages whose local copy stayed valid
    /// (this node was the sole writer).
    pub fn bump_versions(&mut self, pages: &[u32], seq: u64) {
        for &page in pages {
            self.pages[page as usize].version = seq;
        }
    }

    // ------------------------------------------------------------------
    // Persistence hooks (journal snapshots + disk booking). Pages play
    // the role LOTS objects play: the journal's "object id" is the
    // page index, its content a whole 4 KB page.
    // ------------------------------------------------------------------

    /// Pages of live (non-tombstoned) allocations as journal metadata.
    pub fn persist_live_meta(&self) -> Vec<lots_persist::ObjMeta> {
        let mut out = Vec::new();
        for (&addr, alloc) in &self.allocs {
            if alloc.tombstoned {
                continue;
            }
            let first = addr / PAGE_BYTES;
            for p in first..first + alloc.pages {
                out.push(lots_persist::ObjMeta {
                    id: p as u32,
                    home: self.pages[p].home as u32,
                    version: self.pages[p].version,
                    bytes: PAGE_BYTES as u64,
                    parent: None,
                });
            }
        }
        out
    }

    /// The replicated name directory as journal metadata (names bind
    /// to their allocation's first page).
    pub fn persist_names(&self) -> Vec<lots_persist::NamedMeta> {
        self.names
            .iter()
            .map(|(name, entry)| lots_persist::NamedMeta {
                name: name.clone(),
                id: (entry.addr / PAGE_BYTES) as u32,
                elem_size: entry.elem_size as u32,
                len: entry.len as u64,
            })
            .collect()
    }

    /// Extent map for checkpoint manifests: the shared space is a flat
    /// always-resident mirror, so every live page is one mapped extent
    /// at its own byte address.
    pub fn persist_extents(&self) -> Vec<lots_persist::Extent> {
        self.persist_live_meta()
            .into_iter()
            .map(|m| lots_persist::Extent {
                id: m.id,
                addr: (m.id as u64) * PAGE_BYTES as u64,
                bytes: PAGE_BYTES as u64,
                mapped: true,
            })
            .collect()
    }

    /// Post-barrier content of this node's home-owned written pages
    /// (the masters the journal makes durable). Must run after the
    /// barrier's home resolution and reclamation.
    pub fn persist_written_content(
        &self,
        written: &[crate::services::PageNotice],
    ) -> Vec<(u32, Vec<u8>)> {
        written
            .iter()
            .filter(|n| {
                let p = n.page as usize;
                self.pages[p].home == self.me && !self.pages[p].freed
            })
            .map(|n| {
                let base = page_base(n.page as usize);
                (n.page, self.mem[base..base + PAGE_BYTES].to_vec())
            })
            .collect()
    }

    /// Book the journal's write-behind batch on the local disk device.
    /// The app keeps running — only later reads queue behind it.
    pub fn persist_book_log_write(&mut self, sizes: &[u64]) {
        if sizes.is_empty() {
            return;
        }
        let now = self.clock.now();
        if let Some(dq) = &mut self.diskq {
            dq.write_batch(now, sizes);
        }
    }

    /// Book one compaction run (read the squashed prefix, then a
    /// write-behind put of the rewritten log) at daemon time `now`;
    /// returns when the device delivers the read.
    pub fn persist_book_compaction(
        &mut self,
        now: SimInstant,
        read_bytes: u64,
        write_bytes: u64,
    ) -> SimInstant {
        let Some(dq) = &mut self.diskq else {
            return now;
        };
        let op = dq.read(now, read_bytes);
        if write_bytes > 0 {
            dq.write_batch(op.done, &[write_bytes]);
        }
        op.done
    }

    /// Number of pages in the shared space.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    pub fn page_home(&self, page: usize) -> NodeId {
        self.pages[page].home
    }

    pub fn shared_bytes(&self) -> usize {
        self.mem.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lots_sim::machine::pentium4_2ghz;

    fn node(me: NodeId, n: usize) -> JiaNode {
        JiaNode::new(
            me,
            n,
            64 * PAGE_BYTES,
            pentium4_2ghz(),
            SimClock::new(),
            NodeStats::new(),
        )
    }

    #[test]
    fn homes_round_robin() {
        let n = node(0, 4);
        assert_eq!(n.page_home(0), 0);
        assert_eq!(n.page_home(1), 1);
        assert_eq!(n.page_home(5), 1);
        assert_eq!(n.page_home(7), 3);
    }

    #[test]
    fn alloc_is_page_rounded_and_deterministic() {
        let mut a = node(0, 2);
        let mut b = node(1, 2);
        assert_eq!(a.jia_alloc(100).unwrap(), b.jia_alloc(100).unwrap());
        assert_eq!(a.jia_alloc(5000).unwrap(), 4096);
        assert_eq!(b.jia_alloc(5000).unwrap(), 4096);
        assert_eq!(a.jia_alloc(1).unwrap(), 4096 + 8192);
    }

    #[test]
    fn alloc_limit_enforced() {
        let mut a = node(0, 2);
        assert!(a.jia_alloc(63 * PAGE_BYTES).is_ok());
        assert!(matches!(
            a.jia_alloc(2 * PAGE_BYTES),
            Err(JiaError::OutOfSharedMemory { .. })
        ));
    }

    #[test]
    fn local_write_then_read() {
        let mut n = node(0, 2);
        let addr = n.jia_alloc(8192).unwrap();
        assert_eq!(n.begin_write(addr, 8), PageAccess::Ready);
        n.bytes_mut(addr, 8).copy_from_slice(&7u64.to_le_bytes());
        assert_eq!(n.begin_read(addr, 8), PageAccess::Ready);
        assert_eq!(u64::from_le_bytes(n.bytes(addr, 8).try_into().unwrap()), 7);
    }

    #[test]
    fn non_home_write_creates_twin_and_diff() {
        let mut n = node(1, 2); // page 0's home is node 0
        let addr = n.jia_alloc(4096).unwrap();
        assert_eq!(n.begin_write(addr, 4), PageAccess::Ready);
        n.bytes_mut(addr, 4).copy_from_slice(&5u32.to_le_bytes());
        let (diffs, notices) = n.flush_dirty();
        assert_eq!(notices, vec![0]);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].0, 0);
        let words: Vec<(u32, u32)> = diffs[0].1.iter_words().collect();
        assert_eq!(words, vec![(0, 5)]);
        assert!(n.stats.page_faults() >= 1, "write fault charged");
    }

    #[test]
    fn home_write_produces_notice_but_no_diff() {
        let mut n = node(0, 2);
        let addr = n.jia_alloc(4096).unwrap();
        n.begin_write(addr, 4);
        n.bytes_mut(addr, 4).copy_from_slice(&5u32.to_le_bytes());
        let (diffs, notices) = n.flush_dirty();
        assert!(diffs.is_empty());
        assert_eq!(notices, vec![0]);
    }

    #[test]
    fn invalidation_forces_refetch() {
        let mut n = node(1, 2);
        let addr = n.jia_alloc(4096).unwrap();
        assert_eq!(
            n.begin_read(addr, 4),
            PageAccess::Ready,
            "initially valid zeros"
        );
        n.invalidate(&[0], 1);
        assert_eq!(
            n.begin_read(addr, 4),
            PageAccess::NeedFetch { page: 0, home: 0 }
        );
        n.install_page(0, &vec![9u8; PAGE_BYTES], 1);
        assert_eq!(n.begin_read(addr, 4), PageAccess::Ready);
        assert_eq!(n.bytes(addr, 1)[0], 9);
    }

    #[test]
    fn home_invalidation_just_bumps_version() {
        let mut n = node(0, 2);
        n.invalidate(&[0], 3);
        assert_eq!(
            n.begin_read(0, 4),
            PageAccess::Ready,
            "home copy never invalid"
        );
    }

    #[test]
    fn free_tombstones_pages_then_reclaim_reuses_the_range() {
        let mut n = node(0, 2);
        let a = n.jia_alloc(2 * PAGE_BYTES).unwrap();
        let b = n.jia_alloc(PAGE_BYTES).unwrap();
        assert_eq!(n.begin_write(a, 8), PageAccess::Ready);
        n.bytes_mut(a, 4).copy_from_slice(&7u32.to_le_bytes());
        n.free_alloc(a, 2 * PAGE_BYTES).unwrap();
        // Double free and size mismatch are rejected.
        assert!(matches!(
            n.free_alloc(a, 2 * PAGE_BYTES),
            Err(JiaError::UseAfterFree { .. })
        ));
        assert!(matches!(n.free_alloc(b, 17), Err(JiaError::BadFree { .. })));
        // The freed write never flushes.
        let (diffs, notices) = n.flush_dirty();
        assert!(diffs.is_empty());
        assert!(notices.is_empty(), "freed pages publish nothing");
        let (frees, _) = n.take_lifecycle();
        assert_eq!(frees, vec![(0, 2)]);
        n.finish_lifecycle(&frees, &[], 1);
        assert_eq!(n.bytes(a, 4), &[0, 0, 0, 0], "reclaim zero-fills");
        assert_eq!(n.live_allocs(), 1);
        // Reuse: the next two-page allocation takes the freed range.
        let c = n.jia_alloc(2 * PAGE_BYTES).unwrap();
        assert_eq!(c, a, "lowest freed range is reused first");
    }

    #[test]
    #[should_panic(expected = "use after free")]
    fn tombstoned_page_access_is_fenced() {
        let mut n = node(0, 2);
        let a = n.jia_alloc(PAGE_BYTES).unwrap();
        n.free_alloc(a, PAGE_BYTES).unwrap();
        let _ = n.begin_read(a, 4);
    }

    #[test]
    fn named_commit_lookup_and_free() {
        let mut n = node(0, 2);
        n.stage_named(NamedAllocReq {
            name: "grid".into(),
            bytes: 64,
            elem_size: 4,
            len: 16,
            placement: Placement::RoundRobin,
            placement_explicit: false,
        })
        .unwrap();
        assert!(matches!(
            n.lookup_named("grid", 4),
            Err(JiaError::NameNotFound { .. })
        ));
        let (frees, named) = n.take_lifecycle();
        n.finish_lifecycle(&frees, &named, 1);
        let (addr, len) = n.lookup_named("grid", 4).unwrap();
        assert_eq!(len, 16);
        assert!(matches!(
            n.lookup_named("grid", 8),
            Err(JiaError::NameTypeMismatch { .. })
        ));
        n.free_alloc(addr, 64).unwrap();
        let (frees, _) = n.take_lifecycle();
        n.finish_lifecycle(&frees, &[], 2);
        assert!(matches!(
            n.lookup_named("grid", 4),
            Err(JiaError::NameNotFound { .. })
        ));
    }

    #[test]
    fn placement_homes_pages() {
        let mut n = node(0, 4);
        let fixed = n
            .jia_alloc_placed(2 * PAGE_BYTES, Placement::Fixed(3))
            .unwrap();
        assert_eq!(n.page_home(fixed / PAGE_BYTES), 3);
        assert_eq!(n.page_home(fixed / PAGE_BYTES + 1), 3);
        let ft = n
            .jia_alloc_placed(PAGE_BYTES, Placement::FirstTouch)
            .unwrap();
        let p = ft / PAGE_BYTES;
        assert!(n.pages[p].pending);
        // A single-writer notice re-homes the pending page.
        n.resolve_pending_homes(&[crate::services::PageNotice {
            page: p as u32,
            writer: 2,
            multi: false,
        }]);
        assert_eq!(n.page_home(p), 2);
        assert!(!n.pages[p].pending);
    }

    #[test]
    fn writes_spanning_pages_dirty_both() {
        let mut n = node(0, 1);
        let addr = n.jia_alloc(2 * PAGE_BYTES).unwrap();
        n.begin_write(addr + PAGE_BYTES - 4, 8);
        n.bytes_mut(addr + PAGE_BYTES - 4, 8).fill(1);
        let (_, notices) = n.flush_dirty();
        assert_eq!(notices, vec![0, 1]);
    }
}
