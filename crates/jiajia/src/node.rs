//! Per-node state of the JIAJIA baseline: the shared-space mirror,
//! page cache, twins and diff bookkeeping.

use std::collections::HashMap;

use lots_core::diff::WordDiff;
use lots_net::NodeId;
use lots_sim::{CpuModel, NodeStats, SimClock, SimDuration, TimeCategory};

use crate::page::{page_base, split_range, PageCtl, PageState, PAGE_BYTES};

/// Errors surfaced to applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JiaError {
    /// JIAJIA's shared space is bounded (128 MB in v1.1, §2): the
    /// "application too large to fit" failure mode LOTS removes.
    OutOfSharedMemory {
        /// Bytes the failed allocation needed.
        requested: usize,
        /// Total shared-space bytes.
        limit: usize,
    },
    /// Zero-length allocation: shared arrays must hold at least one
    /// element.
    EmptyAlloc,
}

impl std::fmt::Display for JiaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JiaError::OutOfSharedMemory { requested, limit } => write!(
                f,
                "jia_alloc of {requested} bytes exceeds the {limit}-byte shared space"
            ),
            JiaError::EmptyAlloc => write!(f, "cannot allocate an empty shared array"),
        }
    }
}

impl std::error::Error for JiaError {}

/// Result of a page access attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageAccess {
    Ready,
    /// `page` faulted; fetch it from `home` and retry (successive
    /// SIGSEGVs fault a range in one page at a time).
    NeedFetch {
        page: usize,
        home: NodeId,
    },
}

/// Per-node JIAJIA state (behind a mutex, shared with the comm thread).
pub struct JiaNode {
    pub me: NodeId,
    pub n: usize,
    /// Local mirror of the whole shared space.
    mem: Vec<u8>,
    pages: Vec<PageCtl>,
    twins: HashMap<u32, Vec<u8>>,
    /// Pages this node wrote since the last flush.
    dirty: Vec<u32>,
    alloc_cursor: usize,
    pub clock: SimClock,
    pub stats: NodeStats,
    pub cpu: CpuModel,
}

impl JiaNode {
    pub fn new(
        me: NodeId,
        n: usize,
        shared_bytes: usize,
        cpu: CpuModel,
        clock: SimClock,
        stats: NodeStats,
    ) -> JiaNode {
        assert_eq!(
            shared_bytes % PAGE_BYTES,
            0,
            "shared space is page-granular"
        );
        let n_pages = shared_bytes / PAGE_BYTES;
        JiaNode {
            me,
            n,
            mem: vec![0u8; shared_bytes],
            // Round-robin home allocation on pages (paper §4.1).
            pages: (0..n_pages).map(|p| PageCtl::new(p % n)).collect(),
            twins: HashMap::new(),
            dirty: Vec::new(),
            alloc_cursor: 0,
            clock,
            stats,
            cpu,
        }
    }

    fn charge(&self, cat: TimeCategory, d: SimDuration) {
        self.clock.advance(d);
        self.stats.charge(cat, d);
    }

    /// Bump-allocate `bytes` of shared space (JIAJIA's `jia_alloc`).
    /// Every node performs the same allocations, so addresses agree.
    pub fn jia_alloc(&mut self, bytes: usize) -> Result<usize, JiaError> {
        let limit = self.mem.len();
        // jia_alloc rounds to pages, so distinct allocations never
        // share a page (but rows *within* one allocation do — the false
        // sharing the paper analyses in LU).
        let rounded = bytes.div_ceil(PAGE_BYTES) * PAGE_BYTES;
        if self.alloc_cursor + rounded > limit {
            return Err(JiaError::OutOfSharedMemory {
                requested: bytes,
                limit,
            });
        }
        let addr = self.alloc_cursor;
        self.alloc_cursor += rounded;
        Ok(addr)
    }

    /// Begin a read of `[addr, addr+len)`: returns the first page that
    /// needs fetching, if any (the caller fetches and retries).
    pub fn begin_read(&mut self, addr: usize, len: usize) -> PageAccess {
        for (page, _, _) in split_range(addr, len) {
            let ctl = &self.pages[page];
            if ctl.home != self.me && ctl.state == PageState::Invalid {
                // SIGSEGV read fault + handler.
                self.stats.count_page_fault();
                self.charge(TimeCategory::AccessCheck, self.cpu.page_fault);
                return PageAccess::NeedFetch {
                    page,
                    home: ctl.home,
                };
            }
        }
        PageAccess::Ready
    }

    /// Begin a write: like a read, plus twin creation (write fault) on
    /// the first write to each non-home page this interval.
    pub fn begin_write(&mut self, addr: usize, len: usize) -> PageAccess {
        for (page, _, _) in split_range(addr, len) {
            let home = self.pages[page].home;
            if home != self.me && self.pages[page].state == PageState::Invalid {
                self.stats.count_page_fault();
                self.charge(TimeCategory::AccessCheck, self.cpu.page_fault);
                return PageAccess::NeedFetch { page, home };
            }
        }
        for (page, _, _) in split_range(addr, len) {
            let is_home = self.pages[page].home == self.me;
            if !self.pages[page].written {
                self.pages[page].written = true;
                self.dirty.push(page as u32);
            }
            if !is_home && !self.pages[page].twin {
                // Write fault: twin the page before first modification.
                self.stats.count_page_fault();
                self.charge(TimeCategory::AccessCheck, self.cpu.page_fault);
                let base = page_base(page);
                self.twins
                    .insert(page as u32, self.mem[base..base + PAGE_BYTES].to_vec());
                self.pages[page].twin = true;
                self.charge(TimeCategory::Diffing, self.cpu.diffing(PAGE_BYTES as u64));
            }
        }
        PageAccess::Ready
    }

    /// Raw memory access after `begin_read`/`begin_write` returned
    /// `Ready`.
    pub fn bytes(&self, addr: usize, len: usize) -> &[u8] {
        &self.mem[addr..addr + len]
    }

    pub fn bytes_mut(&mut self, addr: usize, len: usize) -> &mut [u8] {
        &mut self.mem[addr..addr + len]
    }

    /// Install a page fetched from its home.
    pub fn install_page(&mut self, page: usize, data: &[u8], version: u64) {
        debug_assert_eq!(data.len(), PAGE_BYTES);
        let base = page_base(page);
        self.mem[base..base + PAGE_BYTES].copy_from_slice(data);
        self.pages[page].state = PageState::Valid;
        self.pages[page].version = version;
    }

    /// Home-side page service (comm thread).
    pub fn serve_page(&mut self, page: usize) -> (Vec<u8>, u64) {
        debug_assert_eq!(self.pages[page].home, self.me, "page served by home only");
        let base = page_base(page);
        (
            self.mem[base..base + PAGE_BYTES].to_vec(),
            self.pages[page].version,
        )
    }

    /// Home-side diff application (comm thread).
    pub fn apply_remote_diff(&mut self, page: usize, diff: &WordDiff) {
        debug_assert_eq!(self.pages[page].home, self.me);
        let base = page_base(page);
        diff.apply(&mut self.mem[base..base + PAGE_BYTES]);
        self.charge(
            TimeCategory::Diffing,
            self.cpu.diffing(diff.changed_words() as u64 * 4),
        );
    }

    /// Take the current dirty set, producing for each non-home page its
    /// diff (to flush to the home) and for each page its write notice.
    /// Twins are consumed; `written` flags reset.
    pub fn flush_dirty(&mut self) -> (Vec<(u32, WordDiff)>, Vec<u32>) {
        let dirty = std::mem::take(&mut self.dirty);
        let mut diffs = Vec::new();
        let mut notices = Vec::with_capacity(dirty.len());
        for page in dirty {
            let p = page as usize;
            notices.push(page);
            self.pages[p].written = false;
            if self.pages[p].home == self.me {
                continue; // home writes are already in place
            }
            let twin = self
                .twins
                .remove(&page)
                .expect("dirty non-home page has twin");
            self.pages[p].twin = false;
            let base = page_base(p);
            let diff = WordDiff::compute(&twin, &self.mem[base..base + PAGE_BYTES]);
            self.charge(TimeCategory::Diffing, self.cpu.diffing(PAGE_BYTES as u64));
            if !diff.is_empty() {
                self.stats.count_diff(diff.wire_size() as u64);
                diffs.push((page, diff));
            }
        }
        (diffs, notices)
    }

    /// Invalidate cached copies of pages written by other nodes
    /// (applied at barrier exit / lock acquire).
    pub fn invalidate(&mut self, pages: &[u32], seq: u64) {
        for &page in pages {
            let p = page as usize;
            if self.pages[p].home == self.me {
                self.pages[p].version = seq;
            } else {
                self.pages[p].state = PageState::Invalid;
            }
        }
    }

    /// Record the barrier epoch on pages whose local copy stayed valid
    /// (this node was the sole writer).
    pub fn bump_versions(&mut self, pages: &[u32], seq: u64) {
        for &page in pages {
            self.pages[page as usize].version = seq;
        }
    }

    /// Number of pages in the shared space.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    pub fn page_home(&self, page: usize) -> NodeId {
        self.pages[page].home
    }

    pub fn shared_bytes(&self) -> usize {
        self.mem.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lots_sim::machine::pentium4_2ghz;

    fn node(me: NodeId, n: usize) -> JiaNode {
        JiaNode::new(
            me,
            n,
            64 * PAGE_BYTES,
            pentium4_2ghz(),
            SimClock::new(),
            NodeStats::new(),
        )
    }

    #[test]
    fn homes_round_robin() {
        let n = node(0, 4);
        assert_eq!(n.page_home(0), 0);
        assert_eq!(n.page_home(1), 1);
        assert_eq!(n.page_home(5), 1);
        assert_eq!(n.page_home(7), 3);
    }

    #[test]
    fn alloc_is_page_rounded_and_deterministic() {
        let mut a = node(0, 2);
        let mut b = node(1, 2);
        assert_eq!(a.jia_alloc(100).unwrap(), b.jia_alloc(100).unwrap());
        assert_eq!(a.jia_alloc(5000).unwrap(), 4096);
        assert_eq!(b.jia_alloc(5000).unwrap(), 4096);
        assert_eq!(a.jia_alloc(1).unwrap(), 4096 + 8192);
    }

    #[test]
    fn alloc_limit_enforced() {
        let mut a = node(0, 2);
        assert!(a.jia_alloc(63 * PAGE_BYTES).is_ok());
        assert!(matches!(
            a.jia_alloc(2 * PAGE_BYTES),
            Err(JiaError::OutOfSharedMemory { .. })
        ));
    }

    #[test]
    fn local_write_then_read() {
        let mut n = node(0, 2);
        let addr = n.jia_alloc(8192).unwrap();
        assert_eq!(n.begin_write(addr, 8), PageAccess::Ready);
        n.bytes_mut(addr, 8).copy_from_slice(&7u64.to_le_bytes());
        assert_eq!(n.begin_read(addr, 8), PageAccess::Ready);
        assert_eq!(u64::from_le_bytes(n.bytes(addr, 8).try_into().unwrap()), 7);
    }

    #[test]
    fn non_home_write_creates_twin_and_diff() {
        let mut n = node(1, 2); // page 0's home is node 0
        let addr = n.jia_alloc(4096).unwrap();
        assert_eq!(n.begin_write(addr, 4), PageAccess::Ready);
        n.bytes_mut(addr, 4).copy_from_slice(&5u32.to_le_bytes());
        let (diffs, notices) = n.flush_dirty();
        assert_eq!(notices, vec![0]);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].0, 0);
        let words: Vec<(u32, u32)> = diffs[0].1.iter_words().collect();
        assert_eq!(words, vec![(0, 5)]);
        assert!(n.stats.page_faults() >= 1, "write fault charged");
    }

    #[test]
    fn home_write_produces_notice_but_no_diff() {
        let mut n = node(0, 2);
        let addr = n.jia_alloc(4096).unwrap();
        n.begin_write(addr, 4);
        n.bytes_mut(addr, 4).copy_from_slice(&5u32.to_le_bytes());
        let (diffs, notices) = n.flush_dirty();
        assert!(diffs.is_empty());
        assert_eq!(notices, vec![0]);
    }

    #[test]
    fn invalidation_forces_refetch() {
        let mut n = node(1, 2);
        let addr = n.jia_alloc(4096).unwrap();
        assert_eq!(
            n.begin_read(addr, 4),
            PageAccess::Ready,
            "initially valid zeros"
        );
        n.invalidate(&[0], 1);
        assert_eq!(
            n.begin_read(addr, 4),
            PageAccess::NeedFetch { page: 0, home: 0 }
        );
        n.install_page(0, &vec![9u8; PAGE_BYTES], 1);
        assert_eq!(n.begin_read(addr, 4), PageAccess::Ready);
        assert_eq!(n.bytes(addr, 1)[0], 9);
    }

    #[test]
    fn home_invalidation_just_bumps_version() {
        let mut n = node(0, 2);
        n.invalidate(&[0], 3);
        assert_eq!(
            n.begin_read(0, 4),
            PageAccess::Ready,
            "home copy never invalid"
        );
    }

    #[test]
    fn writes_spanning_pages_dirty_both() {
        let mut n = node(0, 1);
        let addr = n.jia_alloc(2 * PAGE_BYTES).unwrap();
        n.begin_write(addr + PAGE_BYTES - 4, 8);
        n.bytes_mut(addr + PAGE_BYTES - 4, 8).fill(1);
        let (_, notices) = n.flush_dirty();
        assert_eq!(notices, vec![0, 1]);
    }
}
