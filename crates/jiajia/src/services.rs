//! JIAJIA synchronization services: home-based ScC barrier and locks.
//!
//! Like the LOTS services, the rendezvous/queueing is real in-process
//! synchronization while control-message costs are charged analytically
//! (DESIGN.md §2). The key protocol differences from LOTS:
//!
//! * diffs are **eagerly flushed to fixed homes** at every release and
//!   barrier entry (home-based, no migration);
//! * synchronization carries **write notices only** — invalidations,
//!   never data (write-invalidate on both paths).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use lots_core::consistency::SyncCtx;
use lots_core::protocol::messages::ctl;
use lots_core::NamedAllocReq;
use lots_net::NodeId;
use lots_sim::{BlockReason, SchedHandle, SimDuration, SimInstant, TimeCategory};
use parking_lot::{Condvar, Mutex};

/// One aggregated write notice: the page, one of its writers, and
/// whether more than one node wrote it (write-write false sharing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageNotice {
    pub page: u32,
    pub writer: NodeId,
    pub multi: bool,
}

/// Barrier outcome: every page written in the interval (union of all
/// nodes' notices), the freed page ranges and named allocations every
/// node must replay on exit, plus the barrier sequence number.
pub struct JiaBarrierRound {
    pub written: Arc<Vec<PageNotice>>,
    /// Freed ranges (first page, pages), union over nodes, sorted.
    pub freed: Arc<Vec<(u32, u32)>>,
    /// Named allocations in deterministic commit order (staging node,
    /// then staging order).
    pub named: Arc<Vec<NamedAllocReq>>,
    pub seq: u64,
}

struct BarState {
    seq: u64,
    gen: u64,
    count: usize,
    enter_max: SimInstant,
    /// The *virtual* last arriver — lex-max `(arrive, node)` — and its
    /// per-entry handler cost. Exit processing is charged at this
    /// node's CPU speed, not the physically-last thread's (which races
    /// under the parallel engine once CPU-slowdown faults differ).
    enter_last: (SimInstant, NodeId, SimDuration),
    notices: Vec<(u32, NodeId)>,
    frees: BTreeSet<(u32, u32)>,
    named: Vec<(NodeId, usize, NamedAllocReq)>,
    result: Option<Arc<Vec<PageNotice>>>,
    freed_result: Option<Arc<Vec<(u32, u32)>>>,
    named_result: Option<Arc<Vec<NamedAllocReq>>>,
    exit_time: SimInstant,
    /// Set when a node's app thread panicked: waiters must unblock and
    /// propagate instead of waiting for an impossible rendezvous.
    poisoned: bool,
    /// Deterministic mode: turnstile-parked waiters (re-registered on
    /// every wake; drained by the last arriver or by poison).
    sched_waiters: Vec<SchedHandle>,
}

/// The cluster barrier (single rendezvous: diffs are acked before
/// entering, so the exit can carry the invalidation set directly).
pub struct JiaBarrier {
    n: usize,
    state: Mutex<BarState>,
    cv: Condvar,
}

impl JiaBarrier {
    pub fn new(n: usize) -> JiaBarrier {
        JiaBarrier {
            n,
            state: Mutex::new(BarState {
                seq: 1,
                gen: 0,
                count: 0,
                enter_max: SimInstant::ZERO,
                enter_last: (SimInstant::ZERO, 0, SimDuration::ZERO),
                notices: Vec::new(),
                frees: BTreeSet::new(),
                named: Vec::new(),
                result: None,
                freed_result: None,
                named_result: None,
                exit_time: SimInstant::ZERO,
                poisoned: false,
                sched_waiters: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Mark the cluster as dead after an app-thread panic and wake all
    /// waiters so they fail loudly instead of hanging.
    pub fn poison(&self) {
        let mut st = self.state.lock();
        st.poisoned = true;
        self.cv.notify_all();
        for w in st.sched_waiters.drain(..) {
            w.wake();
        }
    }

    fn check_poison(st: &BarState) {
        if st.poisoned {
            panic!("barrier poisoned: a peer app thread panicked (see its panic above)");
        }
    }

    pub fn enter(
        &self,
        ctx: &SyncCtx,
        notices: Vec<u32>,
        frees: Vec<(u32, u32)>,
        named: Vec<NamedAllocReq>,
    ) -> JiaBarrierRound {
        let mut st = self.state.lock();
        Self::check_poison(&st);
        let my_gen = st.gen;
        let wait_from = ctx.clock.now();
        let named_bytes: usize = named.iter().map(|r| ctl::WRITE_NOTICE + r.name.len()).sum();
        let bytes = ctl::BARRIER_ENTER
            + notices.len() * ctl::WRITE_NOTICE
            + frees.len() * ctl::PLAN_ENTRY
            + named_bytes;
        ctx.traffic.record_send(bytes, ctx.net.fragments(bytes));
        let arrive = ctx.clock.now() + ctx.net.one_way(bytes);
        st.enter_max = st.enter_max.max(arrive);
        if (arrive, ctx.me) >= (st.enter_last.0, st.enter_last.1) {
            st.enter_last = (arrive, ctx.me, ctx.cpu.handler_entry);
        }
        st.notices.extend(notices.into_iter().map(|p| (p, ctx.me)));
        st.frees.extend(frees);
        for (idx, req) in named.into_iter().enumerate() {
            st.named.push((ctx.me, idx, req));
        }
        st.count += 1;
        let seq = st.seq;
        if st.count == self.n {
            let mut raw = std::mem::take(&mut st.notices);
            raw.sort_unstable();
            // Pages of a freed allocation drop out of the round: the
            // free wins over concurrent writes.
            let freed_pages: BTreeSet<u32> = st
                .frees
                .iter()
                .flat_map(|&(first, pages)| first..first + pages)
                .collect();
            let mut written: Vec<PageNotice> = Vec::with_capacity(raw.len());
            for (page, writer) in raw {
                if freed_pages.contains(&page) {
                    continue;
                }
                match written.last_mut() {
                    Some(last) if last.page == page => last.multi = true,
                    _ => written.push(PageNotice {
                        page,
                        writer,
                        multi: false,
                    }),
                }
            }
            let freed: Vec<(u32, u32)> = std::mem::take(&mut st.frees).into_iter().collect();
            // Commit order: staging node, then staging order — a pure
            // function of the interval's calls, independent of the
            // rendezvous arrival order.
            let mut named_keyed = std::mem::take(&mut st.named);
            named_keyed.sort_by_key(|k| (k.0, k.1));
            let named_list: Vec<NamedAllocReq> =
                named_keyed.into_iter().map(|(_, _, r)| r).collect();
            st.exit_time = st.enter_max
                + SimDuration(st.enter_last.2 .0 * self.n as u64)
                + SimDuration(250 * (written.len() + freed.len() + named_list.len()) as u64);
            st.result = Some(Arc::new(written));
            st.freed_result = Some(Arc::new(freed));
            st.named_result = Some(Arc::new(named_list));
            st.seq += 1;
            st.count = 0;
            st.enter_max = SimInstant::ZERO;
            st.enter_last = (SimInstant::ZERO, 0, SimDuration::ZERO);
            st.gen += 1;
            self.cv.notify_all();
            for w in st.sched_waiters.drain(..) {
                w.wake();
            }
        } else if let Some(h) = ctx.sched.clone() {
            while st.gen == my_gen {
                st = lots_core::consistency::sched_wait_step(
                    &self.state,
                    st,
                    |s| &mut s.sched_waiters,
                    &h,
                    BlockReason::Barrier,
                );
                Self::check_poison(&st);
            }
        } else {
            while st.gen == my_gen {
                self.cv.wait(&mut st);
                Self::check_poison(&st);
            }
        }
        let written = Arc::clone(st.result.as_ref().expect("result set by last arriver"));
        let freed = Arc::clone(st.freed_result.as_ref().expect("set by last arriver"));
        let named = Arc::clone(st.named_result.as_ref().expect("set by last arriver"));
        let exit = st.exit_time;
        drop(st);
        let exit_named_bytes: usize = named.iter().map(|r| ctl::WRITE_NOTICE + r.name.len()).sum();
        let exit_bytes =
            ctl::BARRIER_EXIT + (written.len() + freed.len()) * ctl::PLAN_ENTRY + exit_named_bytes;
        ctx.traffic.record_recv(exit_bytes);
        let now = ctx.clock.advance_to(exit + ctx.net.one_way(exit_bytes));
        ctx.stats
            .charge(TimeCategory::SyncWait, now.saturating_sub(wait_from));
        JiaBarrierRound {
            written,
            freed,
            named,
            seq,
        }
    }
}

struct LockState {
    ts: u64,
    holder: Option<NodeId>,
    /// Waiters ordered by virtual request arrival `(req_arrive, node)`
    /// — the grant order is a pure function of virtual time (see the
    /// LOTS lock service for the full argument).
    waiters: BTreeSet<(u64, NodeId)>,
    release_time: SimInstant,
    /// Write notices: page → (last release ts, writer). A `BTreeMap`
    /// so the grant's invalidation list is page-ordered by
    /// construction — iteration order here reaches the wire.
    notices: BTreeMap<u32, (u64, NodeId)>,
    seen: Vec<u64>,
    /// Deterministic mode: turnstile-parked waiters on this lock.
    sched_waiters: Vec<SchedHandle>,
}

struct LockEntry {
    state: Mutex<LockState>,
    cv: Condvar,
}

/// Home-based ScC locks: grants carry invalidation notices only.
pub struct JiaLocks {
    n: usize,
    locks: Mutex<BTreeMap<u32, Arc<LockEntry>>>,
    /// Set when a node's app thread panicked; waiters unblock and
    /// propagate instead of waiting on a holder that will never release.
    poisoned: std::sync::atomic::AtomicBool,
}

impl JiaLocks {
    pub fn new(n: usize) -> JiaLocks {
        JiaLocks {
            n,
            locks: Mutex::new(BTreeMap::new()),
            poisoned: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// See [`JiaBarrier::poison`].
    pub fn poison(&self) {
        self.poisoned
            .store(true, std::sync::atomic::Ordering::Release);
        let locks = self.locks.lock();
        for entry in locks.values() {
            // Hold the entry mutex while notifying: a waiter that has
            // already checked the flag but not yet parked would
            // otherwise miss this wake-up and sleep forever.
            let mut st = entry.state.lock();
            entry.cv.notify_all();
            for w in st.sched_waiters.drain(..) {
                w.wake();
            }
        }
    }

    fn check_poison(&self) {
        if self.poisoned.load(std::sync::atomic::Ordering::Acquire) {
            panic!("lock service poisoned: a peer app thread panicked (see its panic above)");
        }
    }

    fn entry(&self, lock: u32) -> Arc<LockEntry> {
        let mut locks = self.locks.lock();
        Arc::clone(locks.entry(lock).or_insert_with(|| {
            Arc::new(LockEntry {
                state: Mutex::new(LockState {
                    ts: 0,
                    holder: None,
                    waiters: BTreeSet::new(),
                    release_time: SimInstant::ZERO,
                    notices: BTreeMap::new(),
                    seen: vec![0; self.n],
                    sched_waiters: Vec::new(),
                }),
                cv: Condvar::new(),
            })
        }))
    }

    /// Acquire: blocks in virtual request-arrival order; returns the
    /// pages to invalidate. Under the virtual-time engine the front
    /// waiter of a free lock parks on the conservative grant gate
    /// ([`SchedHandle::block_gated`]) so a grant is observed only once
    /// no earlier-sorting request can still appear; the gate bounds
    /// competing requests, not the holder's release, so the condition
    /// is re-checked after promotion.
    pub fn acquire(&self, lock: u32, ctx: &SyncCtx) -> Vec<u32> {
        let entry = self.entry(lock);
        let mut st = entry.state.lock();
        let wait_from = ctx.clock.now();
        let req_arrive = ctx.clock.now() + ctx.net.one_way(ctl::LOCK_ACQ);
        ctx.traffic.record_send(ctl::LOCK_ACQ, 1);
        self.check_poison();
        let key = (req_arrive.nanos(), ctx.me);
        st.waiters.insert(key);
        if let Some(h) = ctx.sched.clone() {
            loop {
                if st.holder.is_none() && st.waiters.first() == Some(&key) {
                    drop(st);
                    h.block_gated(req_arrive, ctx.me);
                    st = entry.state.lock();
                    self.check_poison();
                    if st.holder.is_none() && st.waiters.first() == Some(&key) {
                        break;
                    }
                } else {
                    st = lots_core::consistency::sched_wait_step(
                        &entry.state,
                        st,
                        |s| &mut s.sched_waiters,
                        &h,
                        BlockReason::LockQueue {
                            at: req_arrive.nanos(),
                            rank: ctx.me,
                        },
                    );
                    self.check_poison();
                }
            }
        } else {
            while st.holder.is_some() || st.waiters.first() != Some(&key) {
                entry.cv.wait(&mut st);
                self.check_poison();
            }
        }
        st.waiters.remove(&key);
        st.holder = Some(ctx.me);
        let seen = st.seen[ctx.me];
        // BTreeMap iteration is page-ordered, so the invalidation
        // list needs no defensive sort.
        let invalidate: Vec<u32> = st
            .notices
            .iter()
            .filter(|&(_, &(ts, writer))| ts > seen && writer != ctx.me)
            .map(|(&p, _)| p)
            .collect();
        st.seen[ctx.me] = st.ts;
        let grant_issued = req_arrive.max(st.release_time) + ctx.cpu.handler_entry;
        let grant_bytes = ctl::LOCK_GRANT + invalidate.len() * 8;
        drop(st);
        ctx.traffic.record_recv(grant_bytes);
        let now = ctx
            .clock
            .advance_to(grant_issued + ctx.net.one_way(grant_bytes));
        ctx.stats
            .charge(TimeCategory::SyncWait, now.saturating_sub(wait_from));
        invalidate
    }

    /// Release with the pages this node wrote (diffs were already
    /// flushed to homes by the caller).
    pub fn release(&self, lock: u32, ctx: &SyncCtx, written: Vec<u32>) {
        let entry = self.entry(lock);
        let mut st = entry.state.lock();
        assert_eq!(st.holder, Some(ctx.me), "releasing a lock not held");
        st.ts += 1;
        let ts = st.ts;
        for page in written {
            st.notices.insert(page, (ts, ctx.me));
        }
        st.seen[ctx.me] = ts;
        let rel_bytes = ctl::LOCK_REL + 8;
        ctx.traffic.record_send(rel_bytes, 1);
        let arrive = ctx.clock.now() + ctx.net.one_way(rel_bytes);
        st.release_time = st.release_time.max(arrive) + ctx.cpu.handler_entry;
        st.holder = None;
        entry.cv.notify_all();
        for w in st.sched_waiters.drain(..) {
            w.wake();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lots_net::TrafficStats;
    use lots_sim::machine::{fast_ethernet, pentium4_2ghz};
    use lots_sim::{NodeStats, SimClock};

    fn ctx(me: NodeId) -> SyncCtx {
        SyncCtx {
            me,
            clock: SimClock::new(),
            stats: NodeStats::new(),
            traffic: TrafficStats::new(),
            net: fast_ethernet(),
            cpu: pentium4_2ghz(),
            sched: None,
        }
    }

    #[test]
    fn barrier_unions_notices_and_marks_false_sharing() {
        let b = Arc::new(JiaBarrier::new(3));
        let mut handles = Vec::new();
        for me in 0..3usize {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let c = ctx(me);
                // Page 5 is written by everyone (false sharing); the
                // others have single writers.
                let round = b.enter(&c, vec![me as u32, 10 + me as u32, 5], vec![], vec![]);
                (round.written, round.seq)
            }));
        }
        for h in handles {
            let (written, seq) = h.join().unwrap();
            assert_eq!(seq, 1);
            let pages: Vec<u32> = written.iter().map(|n| n.page).collect();
            assert_eq!(pages, vec![0, 1, 2, 5, 10, 11, 12]);
            for n in written.iter() {
                if n.page == 5 {
                    assert!(n.multi, "page 5 has three writers");
                } else {
                    assert!(!n.multi);
                    assert_eq!(n.writer as u32, n.page % 10);
                }
            }
        }
    }

    #[test]
    fn lock_notices_gate_on_seen_ts() {
        let l = JiaLocks::new(2);
        let c0 = ctx(0);
        let c1 = ctx(1);
        l.acquire(1, &c0);
        l.release(1, &c0, vec![4, 5]);
        assert_eq!(l.acquire(1, &c1), vec![4, 5]);
        l.release(1, &c1, vec![]);
        // Re-acquire by node 1: nothing new.
        assert_eq!(l.acquire(1, &c1), Vec::<u32>::new());
        l.release(1, &c1, vec![]);
        // Node 0 still sees node 1's... nothing (node 1 wrote nothing).
        assert_eq!(l.acquire(1, &c0), Vec::<u32>::new());
        l.release(1, &c0, vec![]);
    }

    #[test]
    fn lock_excludes_and_chains_time() {
        let l = Arc::new(JiaLocks::new(2));
        let c0 = ctx(0);
        l.acquire(9, &c0);
        c0.clock.advance(lots_sim::SimDuration::from_millis(20));
        l.release(9, &c0, vec![]);
        let c1 = ctx(1);
        l.acquire(9, &c1);
        assert!(c1.clock.now().nanos() >= 20_000_000);
        l.release(9, &c1, vec![]);
    }
}
