//! Check-accounting acceptance: the view-guard inner loops must
//! collapse the §4.2 software-check overhead by at least an order of
//! magnitude versus the element-wise port, without changing results.

use lots_apps::runner::{run_app, RunConfig, System};
use lots_apps::sor::{sor_sequential, SorParams};
use lots_sim::machine::p4_fedora;

#[test]
fn sor_views_run_10x_fewer_checks_than_elementwise() {
    let params = SorParams { n: 32, iters: 4 };
    let p = 2;
    let out = run_app(&RunConfig::new(System::Lots, p, p4_fedora()), params);
    assert_eq!(out.combined.checksum, sor_sequential(params), "correctness");

    // The seed's element-wise path charged, per row per sweep: n checks
    // for each of the up-to-3 stencil-source rows read (read_chunk),
    // n re-access checks (the b[r][c±1] accounting), and n checks for
    // the row write — ≥ 4n even ignoring boundary rows and the init/
    // checksum phases. Summed over 2·iters sweeps and all n rows of
    // the cluster:
    let n = params.n as u64;
    let elementwise_floor = 2 * params.iters as u64 * n * 4 * n;
    assert!(
        out.access_checks * 10 <= elementwise_floor,
        "view guards must cut checks ≥10×: got {} checks vs element-wise floor {}",
        out.access_checks,
        elementwise_floor
    );
    // And the guard path is itself accounted: at least one check per
    // row update (4 guards per row), so the counter is not silently
    // zero.
    assert!(
        out.access_checks >= 2 * params.iters as u64 * n,
        "guard checks must still be counted, got {}",
        out.access_checks
    );
}
