//! Every workload, on every system, must produce the sequential
//! reference result — the correctness backbone behind Figure 8: the
//! curves are only comparable because all three systems compute the
//! same answer.

use lots_apps::runner::{run_app, RunConfig, System};
use lots_apps::{lu, me, rx, sor};
use lots_sim::machine::p4_fedora;

const SYSTEMS: [System; 3] = [System::Lots, System::LotsX, System::Jiajia];

fn cfg(system: System, n: usize) -> RunConfig {
    let mut c = RunConfig::new(system, n, p4_fedora());
    // Small DMM keeps LOTS's swap machinery exercised even at test scale
    // (but large enough for LOTS-x to hold everything).
    c.dmm_bytes = 8 << 20;
    c.shared_bytes = 32 << 20;
    c
}

#[test]
fn sor_matches_sequential_on_all_systems() {
    let params = sor::SorParams { n: 32, iters: 8 };
    let expected = sor::sor_sequential(params);
    for system in SYSTEMS {
        for p in [1usize, 2, 4] {
            let out = run_app(&cfg(system, p), params);
            assert_eq!(
                out.combined.checksum,
                expected,
                "SOR {} p={p}",
                system.label()
            );
        }
    }
}

#[test]
fn lu_matches_sequential_on_all_systems() {
    let params = lu::LuParams { n: 24 };
    let expected = lu::lu_sequential(params);
    for system in SYSTEMS {
        for p in [1usize, 2, 4] {
            let out = run_app(&cfg(system, p), params);
            assert_eq!(
                out.combined.checksum,
                expected,
                "LU {} p={p}",
                system.label()
            );
        }
    }
}

#[test]
fn me_matches_sequential_on_all_systems() {
    for p in [1usize, 2, 4] {
        let params = me::MeParams {
            total: 512,
            seed: 11,
        };
        let expected = me::me_sequential(params, p);
        for system in SYSTEMS {
            let out = run_app(&cfg(system, p), params);
            assert_eq!(
                out.combined.checksum,
                expected,
                "ME {} p={p}",
                system.label()
            );
        }
    }
}

#[test]
fn rx_matches_sequential_on_all_systems() {
    for p in [1usize, 2, 4] {
        let params = rx::RxParams {
            total: 4096,
            passes: 2,
            seed: 5,
        };
        let expected = rx::rx_sequential(params, p);
        for system in SYSTEMS {
            let out = run_app(&cfg(system, p), params);
            assert_eq!(
                out.combined.checksum,
                expected,
                "RX {} p={p}",
                system.label()
            );
        }
    }
}

#[test]
fn lots_swapping_engages_under_pressure_without_changing_results() {
    // A DMM too small for the SOR working set: correctness must be
    // preserved while objects cycle through the backing store.
    // 128-column rows are 1 KB each (medium class, lower half); two
    // matrices × 128 rows ≫ the 48 KB lower half of a 96 KB arena.
    let params = sor::SorParams { n: 128, iters: 4 };
    let expected = sor::sor_sequential(params);
    let mut c = RunConfig::new(System::Lots, 2, p4_fedora());
    c.dmm_bytes = 96 * 1024;
    let out = run_app(&c, params);
    assert_eq!(out.combined.checksum, expected);
    assert!(out.swaps_out > 0, "swap machinery must engage");
    assert!(out.swaps_in > 0);
}
