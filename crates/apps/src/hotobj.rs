//! Hot-object workload: many readers plus rotating writers hammering
//! **one** large named object — the access pattern that exposes the
//! single-home bottleneck striping was built to kill.
//!
//! One node stages a named `u64` array (`"hot"`); after it commits,
//! the object is divided into `n` equal chunks. An **init phase**
//! writes every chunk with an incompressible value stream (under
//! striping, chunk `c`'s single writer is node `c`, so the
//! migrating-home protocol settles chunk `c`'s segments at node `c`;
//! under the single-home baseline, node 0 writes everything and every
//! segment stays homed there). Then `rounds` timed rounds run: in
//! round `r` the rotating writer `(r-1) % n` rewrites its chunk while
//! **every** node bulk-reads the rotating cold chunk `(me + r) % n`
//! through one view guard, and a barrier publishes the round.
//!
//! Node `n-1`'s read always lands on the chunk being rewritten *in
//! that same round*, so every round exercises the snapshot-versioning
//! contract: the reader must observe the segment versions published at
//! the preceding barrier, never the writer's in-flight bytes. The
//! checksum every node accumulates is reproduced bit-for-bit by
//! [`model_node_checksum`], a plain sequential replay of that
//! visibility rule, on striped and unstriped configurations alike —
//! the proof that striping changes *where bytes live*, never *what
//! readers see*.
//!
//! Aggregate read throughput ([`HotParams::read_bytes`] over the timed
//! elapsed) is the benchmark metric: with per-segment homes it scales
//! with the node count, while the single-home baseline queues every
//! reply on one NIC.

use lots_core::{DsmApi, DsmSlice};

use crate::adapter::{AppResult, DsmProgram};

/// Name of the shared hot object.
pub const HOT_NAME: &str = "hot";

/// Hot-object parameters.
#[derive(Debug, Clone, Copy)]
pub struct HotParams {
    /// `u64` elements of the hot object (must divide evenly by the
    /// cluster size).
    pub elems: usize,
    /// Timed rounds (must stay below the cluster size so no node ever
    /// reads the chunk it is itself rewriting).
    pub rounds: usize,
    /// Single-home init: node 0 writes every chunk, so under a
    /// `Placement::Fixed(0)` striping config with home migration off
    /// every segment stays homed at node 0 (the baseline). `false`
    /// spreads the init over the cluster, one chunk per node.
    pub single_home: bool,
}

impl HotParams {
    /// The benchmark shape: a 256 MB object (32 Mi `u64`s), three
    /// timed rounds, distributed init.
    pub fn bench() -> HotParams {
        HotParams {
            elems: 32 << 20,
            rounds: 3,
            single_home: false,
        }
    }

    /// A CI-sized shape (8 MB object) exercising the same schedule.
    pub fn smoke() -> HotParams {
        HotParams {
            elems: 1 << 20,
            rounds: 3,
            single_home: false,
        }
    }

    /// Logical bytes of the hot object.
    pub fn object_bytes(&self) -> u64 {
        self.elems as u64 * 8
    }

    /// Bytes bulk-read over the timed section, cluster-wide: every
    /// node reads one `1/n` chunk per round, so each round covers the
    /// whole object once.
    pub fn read_bytes(&self) -> u64 {
        self.rounds as u64 * self.object_bytes()
    }
}

/// SplitMix64 finalizer — full-width output, so the fill stream is
/// incompressible (a compressible fill would let the swap/serve paths
/// cheat the byte counts).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Value of global element `g` as of write event `event` (0 = the init
/// fill, `r` = the round-`r` rewrite of its chunk). The seed is
/// pre-mixed so its entropy reaches every bit: a raw `seed ^ g` over a
/// power-of-two chunk merely permutes the chunk's input set for small
/// seeds, making the wrapping-sum checksum seed-blind.
pub fn fill_value(seed: u64, event: usize, g: usize) -> u64 {
    mix(mix(seed) ^ ((event as u64) << 40) ^ g as u64)
}

/// The write event visible to a round-`r` read of chunk `c` (Scope
/// Consistency: round `r'`'s rewrite of chunk `r' - 1 (mod n)` is
/// published at the barrier *ending* round `r'`, so it is visible to
/// reads in rounds strictly after `r'`). The in-flight rewrite of the
/// current round is never visible — that's the snapshot contract.
fn visible_event(c: usize, r: usize) -> usize {
    if r >= c + 2 {
        c + 1
    } else {
        0
    }
}

/// The checksum node `me` of an `n`-node [`run_hot_object`] run must
/// report: a sequential replay of its read schedule under the
/// barrier-published visibility rule.
pub fn model_node_checksum(params: &HotParams, seed: u64, n: usize, me: usize) -> u64 {
    let chunk = params.elems / n;
    let mut checksum = 0u64;
    for r in 1..=params.rounds {
        let c = (me + r) % n;
        let e = visible_event(c, r);
        for j in 0..chunk {
            checksum = checksum.wrapping_add(fill_value(seed, e, c * chunk + j));
        }
    }
    checksum
}

/// The cluster-combined checksum (wrapping sum over nodes).
pub fn model_checksum(params: &HotParams, seed: u64, n: usize) -> u64 {
    (0..n).fold(0u64, |a, me| {
        a.wrapping_add(model_node_checksum(params, seed, n, me))
    })
}

/// Run the hot-object workload on one node; call from every node.
pub fn run_hot_object<D: DsmApi>(dsm: &D, params: &HotParams) -> AppResult {
    let (n, me, seed) = (dsm.n(), dsm.me(), dsm.seed());
    assert!(
        params.rounds < n,
        "rounds must stay below the cluster size so no node reads its own rewrite"
    );
    assert_eq!(params.elems % n, 0, "chunks must divide evenly");
    let chunk = params.elems / n;
    if me == 0 {
        dsm.alloc_named::<u64>(HOT_NAME, params.elems);
    }
    dsm.barrier();
    let hot = dsm.lookup::<u64>(HOT_NAME);
    // One whole-chunk rewrite: a single mutable view guard (one access
    // check, one fan-out to the covered segments).
    let write_chunk = |c: usize, event: usize| {
        let base = c * chunk;
        {
            let mut v = hot.view_mut(base..base + chunk);
            for (j, slot) in v.iter_mut().enumerate() {
                *slot = fill_value(seed, event, base + j);
            }
        }
        dsm.charge_compute(chunk as u64);
    };
    if params.single_home {
        if me == 0 {
            for c in 0..n {
                write_chunk(c, 0);
            }
        }
    } else {
        write_chunk(me, 0);
    }
    // Publish the init fill; the migrating-home protocol settles each
    // chunk's segments at its single init writer.
    dsm.barrier();
    let t0 = dsm.now();
    let mut checksum = 0u64;
    for r in 1..=params.rounds {
        if me == (r - 1) % n {
            write_chunk(me, r);
        }
        let c = (me + r) % n;
        let base = c * chunk;
        let sum = hot
            .view(base..base + chunk)
            .iter()
            .fold(0u64, |a, &v| a.wrapping_add(v));
        dsm.charge_compute(chunk as u64);
        checksum = checksum.wrapping_add(sum);
        dsm.barrier();
    }
    AppResult {
        checksum,
        elapsed: dsm.now().saturating_sub(t0),
    }
}

impl DsmProgram for HotParams {
    fn run<D: DsmApi>(&self, dsm: &D) -> AppResult {
        run_hot_object(dsm, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_is_deterministic_and_seed_sensitive() {
        let p = HotParams {
            elems: 256,
            rounds: 3,
            single_home: false,
        };
        assert_eq!(model_checksum(&p, 7, 4), model_checksum(&p, 7, 4));
        assert_ne!(model_checksum(&p, 7, 4), model_checksum(&p, 8, 4));
    }

    #[test]
    fn visibility_rule_hides_the_inflight_round() {
        // Round 1 reads see only the init fill.
        for c in 0..4 {
            assert_eq!(visible_event(c, 1), 0);
        }
        // Chunk 0 is rewritten in round 1, visible from round 2 on.
        assert_eq!(visible_event(0, 2), 1);
        assert_eq!(visible_event(0, 3), 1);
        // Chunk 1 is rewritten in round 2: invisible to round 2's own
        // reads (the snapshot contract), visible in round 3.
        assert_eq!(visible_event(1, 2), 0);
        assert_eq!(visible_event(1, 3), 2);
    }

    #[test]
    fn read_volume_covers_the_object_each_round() {
        let p = HotParams::smoke();
        assert_eq!(p.read_bytes(), 3 * p.object_bytes());
        assert_eq!(p.object_bytes(), 8 << 20);
    }

    use crate::runner::{run_app, RunConfig, System};
    use lots_sim::machine::p4_fedora;

    const TINY: HotParams = HotParams {
        elems: 4096,
        rounds: 3,
        single_home: false,
    };

    #[test]
    fn striped_run_matches_the_sequential_model() {
        let mut cfg = RunConfig::new(System::Lots, 4, p4_fedora());
        cfg.seed = 11;
        cfg.lots_tweak = |c| {
            c.striping = Some(lots_core::Striping::segments_of(4 << 10));
        };
        let out = run_app(&cfg, TINY);
        assert_eq!(out.combined.checksum, model_checksum(&TINY, 11, 4));
        for (me, r) in out.per_node.iter().enumerate() {
            assert_eq!(
                r.checksum,
                model_node_checksum(&TINY, 11, 4, me),
                "node {me}"
            );
        }
        // Striped init + rotating writers → versions flow every barrier.
        assert!(out.versions_published > 0);
        assert!(out.versions_reclaimed > 0);
    }

    #[test]
    fn single_home_baseline_matches_the_same_model() {
        let mut cfg = RunConfig::new(System::Lots, 4, p4_fedora());
        cfg.seed = 11;
        cfg.lots_tweak = |c| {
            c.striping = Some(lots_core::Striping {
                segment_bytes: 4 << 10,
                placement: lots_core::Placement::Fixed(0),
            });
            c.home_migration = false;
        };
        let single = HotParams {
            single_home: true,
            ..TINY
        };
        let out = run_app(&cfg, single);
        // Same visible values as the distributed-init striped run.
        assert_eq!(out.combined.checksum, model_checksum(&TINY, 11, 4));
        // Everything is served by node 0: maximal imbalance, n × 1000.
        assert_eq!(out.home_load_ratio_permille, 4000);
    }
}
