//! Uniform harness for running a workload on LOTS, LOTS-x or JIAJIA
//! and harvesting comparable measurements — the shape of every Figure 8
//! data point.
//!
//! Since every workload is generic over [`lots_core::DsmApi`], this is
//! pure dispatch: pick the system, boot its cluster, hand each node's
//! handle to the same [`DsmProgram`].

use lots_core::{run_cluster, AnalyzeConfig, ClusterOptions, LotsConfig, RaceReport};
use lots_jiajia::{run_jiajia_cluster, JiaOptions};
use lots_sim::{
    FaultPlan, MachineConfig, SchedulerMode, SimDuration, SimInstant, TimeCategory, Topology,
};

use crate::adapter::{combine, AppResult, DsmProgram};

/// The three systems of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// The full LOTS system.
    Lots,
    /// LOTS without large-object-space support (§4.1/§4.2 ablation).
    LotsX,
    /// The page-based JIAJIA v1.1 baseline.
    Jiajia,
}

impl System {
    /// Human-readable label used in tables and plots.
    pub fn label(self) -> &'static str {
        match self {
            System::Lots => "LOTS",
            System::LotsX => "LOTS-x",
            System::Jiajia => "JIAJIA",
        }
    }
}

/// One run's configuration.
pub struct RunConfig {
    /// Which system executes the workload.
    pub system: System,
    /// Cluster size.
    pub n: usize,
    /// Simulated machine (CPU, network, disk models).
    pub machine: MachineConfig,
    /// DMM arena per node (LOTS) — shrink to engage swapping.
    pub dmm_bytes: usize,
    /// Shared space (JIAJIA).
    pub shared_bytes: usize,
    /// Protocol knobs for ablations (applied to LOTS/LOTS-x).
    pub lots_tweak: fn(&mut LotsConfig),
    /// Cluster seed: folded into the seeded workloads' RNG streams and
    /// surfaced in the reports.
    pub seed: u64,
    /// Execution model (deterministic turnstile by default).
    pub scheduler: SchedulerMode,
    /// Seeded fault injection.
    pub faults: FaultPlan,
    /// Per-link latency/bandwidth overrides (uniform by default).
    pub topology: Topology,
    /// Correctness analysis (off by default; enabling it never
    /// changes virtual times or workload results).
    pub analyze: AnalyzeConfig,
    /// Persistence journal configuration (`None` — the default —
    /// disables it; measurements are then bit-identical to earlier
    /// builds). Applies to every system: LOTS journals object diffs,
    /// JIAJIA page diffs.
    pub persist: Option<lots_core::PersistConfig>,
    /// Caller-owned journal store, to restore from after the run (only
    /// meaningful with [`RunConfig::persist`] set).
    pub persist_store: Option<lots_core::PersistStore>,
}

impl RunConfig {
    /// Defaults: 64 MB DMM arenas, 128 MB JIAJIA shared space, the
    /// deterministic scheduler, seed 0, no faults.
    pub fn new(system: System, n: usize, machine: MachineConfig) -> RunConfig {
        RunConfig {
            system,
            n,
            machine,
            dmm_bytes: 64 << 20,
            shared_bytes: 128 << 20,
            lots_tweak: |_| {},
            seed: 0,
            scheduler: SchedulerMode::Deterministic,
            faults: FaultPlan::none(),
            topology: Topology::uniform(),
            analyze: AnalyzeConfig::off(),
            persist: None,
            persist_store: None,
        }
    }

    /// Enable the persistence journal (see
    /// [`lots_core::PersistConfig`]), optionally with a caller-owned
    /// store to restore from later.
    pub fn with_persist(
        mut self,
        persist: lots_core::PersistConfig,
        store: Option<lots_core::PersistStore>,
    ) -> RunConfig {
        self.persist = Some(persist);
        self.persist_store = store;
        self
    }

    /// Install per-link latency/bandwidth overrides.
    pub fn with_topology(mut self, topology: Topology) -> RunConfig {
        self.topology = topology;
        self
    }
}

/// Harvested measurements of one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Cluster-combined checksum and timed-section duration.
    pub combined: AppResult,
    /// Per-node results.
    pub per_node: Vec<AppResult>,
    /// Full virtual execution time (slowest node, includes init).
    pub exec_time: SimInstant,
    /// Total bytes sent on the interconnect.
    pub bytes_sent: u64,
    /// Total messages sent on the interconnect.
    pub msgs_sent: u64,
    /// Software access checks run (object-based systems only).
    pub access_checks: u64,
    /// SIGSEGV-modeled page faults (page-based systems only).
    pub page_faults: u64,
    /// Objects swapped out to the backing store.
    pub swaps_out: u64,
    /// Objects swapped back in.
    pub swaps_in: u64,
    /// Bytes actually written to the backing stores (post-compression).
    pub swap_out_bytes: u64,
    /// Batched eviction trips booked on the disk devices.
    pub swap_batches: u64,
    /// Swap-ins served from the read-ahead buffers.
    pub prefetch_hits: u64,
    /// Object/page requests this cluster's homes served (summed).
    pub home_requests_served: u64,
    /// Payload bytes those home replies carried (summed).
    pub home_bytes_served: u64,
    /// Hottest-home load imbalance: max per-node `home_bytes_served`
    /// over the per-node mean, in permille (1000 = perfectly even;
    /// `n × 1000` = one node served everything; 0 = no home traffic).
    pub home_load_ratio_permille: u64,
    /// Immutable segment versions published at barriers (striped
    /// objects; LOTS/LOTS-x only).
    pub versions_published: u64,
    /// Superseded segment versions reclaimed at barriers (striped
    /// objects; LOTS/LOTS-x only).
    pub versions_reclaimed: u64,
    /// Reclamation events of the lifecycle API summed over nodes:
    /// every node reclaims its local slot of a freed object, so one
    /// cluster-wide `free` counts `n` times here (divide by the
    /// cluster size for distinct objects).
    pub objects_freed: u64,
    /// Worst per-node external fragmentation of the DMM allocator at
    /// exit, in permille (LOTS/LOTS-x; 0 on page-based systems).
    pub frag_permille_max: u64,
    /// Largest per-node object-table slot count at exit (LOTS/LOTS-x;
    /// 0 on page-based systems). Bounded under churn while cumulative
    /// allocations grow — the control-space half of address reuse.
    pub object_slots_max: usize,
    /// Messages the lossy transport dropped past their retry budget
    /// (always 0 while retransmission is enabled).
    pub msgs_dropped: u64,
    /// Retransmission attempts the reliable layer paid for.
    pub msgs_retransmitted: u64,
    /// Duplicates discarded by the receive path's dedupe filters.
    pub dups_filtered: u64,
    /// Crash-rejoin rounds completed (LOTS/LOTS-x only).
    pub rejoin_rounds: u64,
    /// Total bytes those rejoins moved (local journal read-back plus
    /// peer traffic — the sum of the two fields below).
    pub rejoin_bytes: u64,
    /// Rejoin bytes read back from the node's own journal (persistence
    /// on; 0 otherwise).
    pub rejoin_log_bytes: u64,
    /// Rejoin bytes peers sent over the network (the directory plus —
    /// journal off — every rebuilt master, or — journal on — only the
    /// post-checkpoint deltas).
    pub rejoin_peer_bytes: u64,
    /// Persistence-journal records appended (0 with the journal off).
    pub log_records: u64,
    /// Persistence-journal bytes appended (write-behind).
    pub log_bytes_appended: u64,
    /// Background compaction runs completed.
    pub compaction_runs: u64,
    /// Journal bytes compaction squashed away.
    pub compaction_bytes_reclaimed: u64,
    /// Checkpoint manifest bytes written (part of `log_bytes_appended`).
    pub checkpoint_bytes: u64,
    /// Barriers re-executed beyond the checkpoint during a restore
    /// replay (0 outside `restore_cluster`/`restore_jiajia_cluster`).
    pub restore_replay_barriers: u64,
    /// Summed node time in access checking.
    pub time_access_check: SimDuration,
    /// Summed node time in large-object bookkeeping (mapping, pinning).
    pub time_large_object: SimDuration,
    /// Summed node time blocked on the network.
    pub time_network: SimDuration,
    /// Summed node time blocked in synchronization.
    pub time_sync: SimDuration,
    /// Summed node time in backing-store I/O.
    pub time_disk: SimDuration,
    /// Summed node time in application compute.
    pub time_compute: SimDuration,
    /// Whole-run scheduler counters (`None` under free-running mode).
    /// `turns`/`wakes`/`epochs` are pure functions of the simulated
    /// schedule and agree between `Deterministic` and `Parallel`;
    /// `max_concurrent`/`worker_busy_ns` describe host execution only.
    pub sched: Option<lots_sim::SchedSummary>,
    /// Race-detector report (`Some` iff [`RunConfig::analyze`] asked
    /// for race detection).
    pub races: Option<RaceReport>,
}

impl RunOutcome {
    /// The paper's reported metric: the slowest node's timed section.
    pub fn time_secs(&self) -> f64 {
        self.combined.elapsed.as_secs_f64()
    }
}

/// Hottest-home-over-mean ratio in permille for a per-node
/// `home_bytes_served` series (the same math as
/// `lots_core::ClusterReport::home_load_ratio_permille`, for systems
/// whose report lacks the helper).
fn home_load_ratio_permille(per_node: impl Iterator<Item = u64>) -> u64 {
    let (mut max, mut total, mut n) = (0u64, 0u64, 0u64);
    for b in per_node {
        max = max.max(b);
        total += b;
        n += 1;
    }
    (max * n * 1000).checked_div(total).unwrap_or(0)
}

/// Run `prog` on the configured system and cluster size.
pub fn run_app<P: DsmProgram>(cfg: &RunConfig, prog: P) -> RunOutcome {
    match cfg.system {
        System::Lots | System::LotsX => {
            let mut lots = if cfg.system == System::Lots {
                LotsConfig::small(cfg.dmm_bytes)
            } else {
                LotsConfig::lots_x(cfg.dmm_bytes)
            };
            (cfg.lots_tweak)(&mut lots);
            if let Some(p) = &cfg.persist {
                lots = lots.with_persist(p.clone());
            }
            let mut opts = ClusterOptions::new(cfg.n, lots, cfg.machine)
                .with_seed(cfg.seed)
                .with_scheduler(cfg.scheduler)
                .with_faults(cfg.faults.clone())
                .with_topology(cfg.topology.clone())
                .with_analyze(cfg.analyze);
            if let Some(store) = &cfg.persist_store {
                opts = opts.with_persist_store(store.clone());
            }
            let (results, report) = run_cluster(opts, move |dsm| prog.run(dsm));
            let sum = |cat: TimeCategory| -> SimDuration {
                SimDuration(report.nodes.iter().map(|n| n.stats.time_in(cat).0).sum())
            };
            RunOutcome {
                combined: combine(&results),
                per_node: results,
                exec_time: report.exec_time,
                bytes_sent: report.total(|n| n.traffic.bytes_sent()),
                msgs_sent: report.total(|n| n.traffic.msgs_sent()),
                access_checks: report.total(|n| n.stats.access_checks()),
                page_faults: 0,
                swaps_out: report.total(|n| n.stats.swaps_out()),
                swaps_in: report.total(|n| n.stats.swaps_in()),
                swap_out_bytes: report.total(|n| n.stats.swap_out_bytes()),
                swap_batches: report.total(|n| n.stats.swap_batches()),
                prefetch_hits: report.total(|n| n.stats.prefetch_hits()),
                home_requests_served: report.total(|n| n.stats.home_requests_served()),
                home_bytes_served: report.total(|n| n.stats.home_bytes_served()),
                home_load_ratio_permille: report.home_load_ratio_permille(),
                versions_published: report.total(|n| n.stats.versions_published()),
                versions_reclaimed: report.total(|n| n.stats.versions_reclaimed()),
                objects_freed: report.total(|n| n.stats.objects_freed()),
                frag_permille_max: report
                    .nodes
                    .iter()
                    .map(|n| n.frag.external_frag_permille)
                    .max()
                    .unwrap_or(0),
                object_slots_max: report
                    .nodes
                    .iter()
                    .map(|n| n.object_slots)
                    .max()
                    .unwrap_or(0),
                msgs_dropped: report.total(|n| n.traffic.msgs_dropped()),
                msgs_retransmitted: report.total(|n| n.traffic.msgs_retransmitted()),
                dups_filtered: report.total(|n| n.traffic.dups_filtered()),
                rejoin_rounds: report.total(|n| n.stats.rejoin_rounds()),
                rejoin_bytes: report.total(|n| n.stats.rejoin_bytes()),
                rejoin_log_bytes: report.total(|n| n.stats.rejoin_log_bytes()),
                rejoin_peer_bytes: report.total(|n| n.stats.rejoin_peer_bytes()),
                log_records: report.total(|n| n.stats.log_records()),
                log_bytes_appended: report.total(|n| n.stats.log_bytes_appended()),
                compaction_runs: report.total(|n| n.stats.compaction_runs()),
                compaction_bytes_reclaimed: report.total(|n| n.stats.compaction_bytes_reclaimed()),
                checkpoint_bytes: report.total(|n| n.stats.checkpoint_bytes()),
                restore_replay_barriers: report.total(|n| n.stats.restore_replay_barriers()),
                time_access_check: sum(TimeCategory::AccessCheck),
                time_large_object: sum(TimeCategory::LargeObject),
                time_network: sum(TimeCategory::Network),
                time_sync: sum(TimeCategory::SyncWait),
                time_disk: sum(TimeCategory::Disk),
                time_compute: sum(TimeCategory::Compute),
                sched: report.sched,
                races: report.races,
            }
        }
        System::Jiajia => {
            let mut opts = JiaOptions::new(cfg.n, cfg.shared_bytes, cfg.machine)
                .with_seed(cfg.seed)
                .with_scheduler(cfg.scheduler)
                .with_faults(cfg.faults.clone())
                .with_topology(cfg.topology.clone())
                .with_analyze(cfg.analyze);
            if let Some(p) = &cfg.persist {
                opts = opts.with_persist(p.clone());
            }
            if let Some(store) = &cfg.persist_store {
                opts = opts.with_persist_store(store.clone());
            }
            let (results, report) = run_jiajia_cluster(opts, move |dsm| prog.run(dsm));
            let sum = |cat: TimeCategory| -> SimDuration {
                SimDuration(report.nodes.iter().map(|n| n.stats.time_in(cat).0).sum())
            };
            RunOutcome {
                combined: combine(&results),
                per_node: results,
                exec_time: report.exec_time,
                bytes_sent: report.nodes.iter().map(|n| n.traffic.bytes_sent()).sum(),
                msgs_sent: report.nodes.iter().map(|n| n.traffic.msgs_sent()).sum(),
                access_checks: 0,
                page_faults: report.nodes.iter().map(|n| n.stats.page_faults()).sum(),
                swaps_out: 0,
                swaps_in: 0,
                swap_out_bytes: 0,
                swap_batches: 0,
                prefetch_hits: 0,
                home_requests_served: report
                    .nodes
                    .iter()
                    .map(|n| n.stats.home_requests_served())
                    .sum(),
                home_bytes_served: report
                    .nodes
                    .iter()
                    .map(|n| n.stats.home_bytes_served())
                    .sum(),
                home_load_ratio_permille: home_load_ratio_permille(
                    report.nodes.iter().map(|n| n.stats.home_bytes_served()),
                ),
                versions_published: 0,
                versions_reclaimed: 0,
                objects_freed: report.nodes.iter().map(|n| n.stats.objects_freed()).sum(),
                frag_permille_max: 0,
                object_slots_max: 0,
                msgs_dropped: report.nodes.iter().map(|n| n.traffic.msgs_dropped()).sum(),
                msgs_retransmitted: report
                    .nodes
                    .iter()
                    .map(|n| n.traffic.msgs_retransmitted())
                    .sum(),
                dups_filtered: report.nodes.iter().map(|n| n.traffic.dups_filtered()).sum(),
                rejoin_rounds: 0,
                rejoin_bytes: 0,
                rejoin_log_bytes: 0,
                rejoin_peer_bytes: 0,
                log_records: report.nodes.iter().map(|n| n.stats.log_records()).sum(),
                log_bytes_appended: report
                    .nodes
                    .iter()
                    .map(|n| n.stats.log_bytes_appended())
                    .sum(),
                compaction_runs: report.nodes.iter().map(|n| n.stats.compaction_runs()).sum(),
                compaction_bytes_reclaimed: report
                    .nodes
                    .iter()
                    .map(|n| n.stats.compaction_bytes_reclaimed())
                    .sum(),
                checkpoint_bytes: report
                    .nodes
                    .iter()
                    .map(|n| n.stats.checkpoint_bytes())
                    .sum(),
                restore_replay_barriers: report
                    .nodes
                    .iter()
                    .map(|n| n.stats.restore_replay_barriers())
                    .sum(),
                time_access_check: sum(TimeCategory::AccessCheck),
                time_large_object: SimDuration::ZERO,
                time_network: sum(TimeCategory::Network),
                time_sync: sum(TimeCategory::SyncWait),
                time_disk: SimDuration::ZERO,
                time_compute: sum(TimeCategory::Compute),
                sched: report.sched,
                races: report.races,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::alloc_chunked;
    use lots_core::DsmApi;
    use lots_sim::machine::p4_fedora;

    struct TrivialKernel;

    impl DsmProgram for TrivialKernel {
        fn run<D: DsmApi>(&self, dsm: &D) -> AppResult {
            let a = alloc_chunked::<i64, D>(dsm, 4, 16);
            if dsm.me() == 0 {
                for c in 0..4 {
                    a.write(c, 3, (c * 10) as i64);
                }
            }
            dsm.barrier();
            let sum: i64 = (0..4).map(|c| a.read(c, 3)).sum();
            AppResult {
                checksum: sum as u64,
                elapsed: lots_sim::SimDuration::ZERO,
            }
        }
    }

    #[test]
    fn all_systems_agree_on_a_trivial_kernel() {
        for system in [System::Lots, System::LotsX, System::Jiajia] {
            let cfg = RunConfig::new(system, 2, p4_fedora());
            let out = run_app(&cfg, TrivialKernel);
            assert_eq!(out.combined.checksum, 2 * 60, "{}", system.label());
        }
    }

    struct CounterKernel;

    impl DsmProgram for CounterKernel {
        fn run<D: DsmApi>(&self, dsm: &D) -> AppResult {
            let a = alloc_chunked::<i64, D>(dsm, 2, 1024);
            a.write(dsm.me() % 2, 0, 1);
            dsm.barrier();
            let _ = a.read(0, 0);
            AppResult {
                checksum: 0,
                elapsed: lots_sim::SimDuration::ZERO,
            }
        }
    }

    #[test]
    fn outcome_carries_system_specific_counters() {
        let lots = run_app(&RunConfig::new(System::Lots, 2, p4_fedora()), CounterKernel);
        assert!(lots.access_checks > 0);
        assert_eq!(lots.page_faults, 0);
        let jia = run_app(
            &RunConfig::new(System::Jiajia, 2, p4_fedora()),
            CounterKernel,
        );
        assert_eq!(jia.access_checks, 0);
        assert!(jia.page_faults > 0);
    }
}
