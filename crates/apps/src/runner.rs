//! Uniform harness for running a workload on LOTS, LOTS-x or JIAJIA
//! and harvesting comparable measurements — the shape of every Figure 8
//! data point.

use lots_core::{run_cluster, ClusterOptions, LotsConfig};
use lots_jiajia::{run_jiajia_cluster, JiaOptions};
use lots_sim::{MachineConfig, SimDuration, SimInstant, TimeCategory};

use crate::adapter::{combine, AppResult, DsmCtx};

/// The three systems of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    Lots,
    /// LOTS without large-object-space support (§4.1/§4.2 ablation).
    LotsX,
    Jiajia,
}

impl System {
    pub fn label(self) -> &'static str {
        match self {
            System::Lots => "LOTS",
            System::LotsX => "LOTS-x",
            System::Jiajia => "JIAJIA",
        }
    }
}

/// One run's configuration.
pub struct RunConfig {
    pub system: System,
    pub n: usize,
    pub machine: MachineConfig,
    /// DMM arena per node (LOTS) — shrink to engage swapping.
    pub dmm_bytes: usize,
    /// Shared space (JIAJIA).
    pub shared_bytes: usize,
    /// Protocol knobs for ablations (applied to LOTS/LOTS-x).
    pub lots_tweak: fn(&mut LotsConfig),
}

impl RunConfig {
    pub fn new(system: System, n: usize, machine: MachineConfig) -> RunConfig {
        RunConfig {
            system,
            n,
            machine,
            dmm_bytes: 64 << 20,
            shared_bytes: 128 << 20,
            lots_tweak: |_| {},
        }
    }
}

/// Harvested measurements of one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    pub combined: AppResult,
    pub per_node: Vec<AppResult>,
    /// Full virtual execution time (slowest node, includes init).
    pub exec_time: SimInstant,
    pub bytes_sent: u64,
    pub msgs_sent: u64,
    pub access_checks: u64,
    pub page_faults: u64,
    pub swaps_out: u64,
    pub swaps_in: u64,
    pub time_access_check: SimDuration,
    pub time_large_object: SimDuration,
    pub time_network: SimDuration,
    pub time_sync: SimDuration,
    pub time_disk: SimDuration,
    pub time_compute: SimDuration,
}

impl RunOutcome {
    /// The paper's reported metric: the slowest node's timed section.
    pub fn time_secs(&self) -> f64 {
        self.combined.elapsed.as_secs_f64()
    }
}

/// Run `app` on the configured system and cluster size.
pub fn run_app<F>(cfg: &RunConfig, app: F) -> RunOutcome
where
    F: Fn(DsmCtx<'_>) -> AppResult + Send + Sync + 'static,
{
    match cfg.system {
        System::Lots | System::LotsX => {
            let mut lots = if cfg.system == System::Lots {
                LotsConfig::small(cfg.dmm_bytes)
            } else {
                LotsConfig::lots_x(cfg.dmm_bytes)
            };
            (cfg.lots_tweak)(&mut lots);
            let opts = ClusterOptions::new(cfg.n, lots, cfg.machine);
            let (results, report) = run_cluster(opts, move |dsm| app(DsmCtx::Lots(dsm)));
            let sum = |cat: TimeCategory| -> SimDuration {
                SimDuration(report.nodes.iter().map(|n| n.stats.time_in(cat).0).sum())
            };
            RunOutcome {
                combined: combine(&results),
                per_node: results,
                exec_time: report.exec_time,
                bytes_sent: report.total(|n| n.traffic.bytes_sent()),
                msgs_sent: report.total(|n| n.traffic.msgs_sent()),
                access_checks: report.total(|n| n.stats.access_checks()),
                page_faults: 0,
                swaps_out: report.total(|n| n.stats.swaps_out()),
                swaps_in: report.total(|n| n.stats.swaps_in()),
                time_access_check: sum(TimeCategory::AccessCheck),
                time_large_object: sum(TimeCategory::LargeObject),
                time_network: sum(TimeCategory::Network),
                time_sync: sum(TimeCategory::SyncWait),
                time_disk: sum(TimeCategory::Disk),
                time_compute: sum(TimeCategory::Compute),
            }
        }
        System::Jiajia => {
            let opts = JiaOptions::new(cfg.n, cfg.shared_bytes, cfg.machine);
            let (results, report) = run_jiajia_cluster(opts, move |dsm| app(DsmCtx::Jia(dsm)));
            let sum = |cat: TimeCategory| -> SimDuration {
                SimDuration(report.nodes.iter().map(|n| n.stats.time_in(cat).0).sum())
            };
            RunOutcome {
                combined: combine(&results),
                per_node: results,
                exec_time: report.exec_time,
                bytes_sent: report.nodes.iter().map(|n| n.traffic.bytes_sent()).sum(),
                msgs_sent: report.nodes.iter().map(|n| n.traffic.msgs_sent()).sum(),
                access_checks: 0,
                page_faults: report.nodes.iter().map(|n| n.stats.page_faults()).sum(),
                swaps_out: 0,
                swaps_in: 0,
                time_access_check: sum(TimeCategory::AccessCheck),
                time_large_object: SimDuration::ZERO,
                time_network: sum(TimeCategory::Network),
                time_sync: sum(TimeCategory::SyncWait),
                time_disk: SimDuration::ZERO,
                time_compute: sum(TimeCategory::Compute),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lots_sim::machine::p4_fedora;

    #[test]
    fn lots_and_jiajia_agree_on_a_trivial_kernel() {
        let kernel = |dsm: DsmCtx<'_>| {
            let a = dsm.alloc_chunked::<i64>(4, 16);
            if dsm.me() == 0 {
                for c in 0..4 {
                    a.write(c, 3, (c * 10) as i64);
                }
            }
            dsm.barrier();
            let sum: i64 = (0..4).map(|c| a.read(c, 3)).sum();
            AppResult {
                checksum: sum as u64,
                elapsed: lots_sim::SimDuration::ZERO,
            }
        };
        for system in [System::Lots, System::LotsX, System::Jiajia] {
            let cfg = RunConfig::new(system, 2, p4_fedora());
            let out = run_app(&cfg, kernel);
            assert_eq!(out.combined.checksum, 2 * 60, "{}", system.label());
        }
    }

    #[test]
    fn outcome_carries_system_specific_counters() {
        let kernel = |dsm: DsmCtx<'_>| {
            let a = dsm.alloc_chunked::<i64>(2, 1024);
            a.write(dsm.me() % 2, 0, 1);
            dsm.barrier();
            let _ = a.read(0, 0);
            AppResult {
                checksum: 0,
                elapsed: lots_sim::SimDuration::ZERO,
            }
        };
        let lots = run_app(&RunConfig::new(System::Lots, 2, p4_fedora()), kernel);
        assert!(lots.access_checks > 0);
        assert_eq!(lots.page_faults, 0);
        let jia = run_app(&RunConfig::new(System::Jiajia, 2, p4_fedora()), kernel);
        assert_eq!(jia.access_checks, 0);
        assert!(jia.page_faults > 0);
    }
}
