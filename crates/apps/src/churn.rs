//! Object-churn workload: a rolling working set under alloc/free
//! pressure — the dynamic-allocation behaviour Sears & van Ingen's
//! fragmentation study says large-object stores live or die by, and
//! the §3.2 "large object space" claim exercised the way a
//! long-running application would.
//!
//! Every phase allocates a fresh generation of objects (cycling
//! through the [`Placement`] policies), fills it, publishes it at a
//! barrier, samples the live window, and frees the generation that
//! fell out of the window — so the **cumulative** allocation history
//! grows without bound while the live set stays fixed. Address and
//! slot reuse is what lets the run complete inside a fixed DMM arena
//! (LOTS), a fixed mapped space (LOTS-x) and a fixed shared space
//! (JIAJIA).
//!
//! Each phase also stages one **named** checkpoint object from a
//! single node (`alloc_named`, no lockstep-allocation), which every
//! node attaches to by [`lookup`] one barrier later, reads, and a
//! single (different) node frees — covering the whole lifecycle API
//! on all three systems.
//!
//! The checksum every node accumulates is reproduced bit-for-bit by
//! [`model_checksum`], a plain sequential model, so any corruption
//! through swap, reuse, reclamation or the name directory is caught.
//!
//! [`lookup`]: lots_core::DsmApi::lookup

use std::collections::VecDeque;

use lots_core::{DsmApi, DsmSlice, Placement};

use crate::adapter::{AppResult, DsmProgram};

/// Elements of the leading bulk-view sample per object.
const SAMPLE: usize = 16;

/// Churn parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChurnParams {
    /// Phases (generations) to run.
    pub phases: usize,
    /// Objects allocated per generation.
    pub objs_per_phase: usize,
    /// `u32` elements per object.
    pub elems: usize,
    /// Generations kept live after their phase (the rolling window).
    pub retain: usize,
    /// Elements of each phase's named checkpoint object.
    pub ckpt_elems: usize,
}

impl ChurnParams {
    /// The CI/bench configuration: 64 generations of 4 × 64 KB objects
    /// with a one-generation window — 16 MB of cumulative allocations
    /// through a working set under 1 MB.
    pub fn smoke() -> ChurnParams {
        ChurnParams {
            phases: 64,
            objs_per_phase: 4,
            elems: 16 * 1024,
            retain: 1,
            ckpt_elems: 16,
        }
    }

    /// Cumulative logical bytes allocated over the whole run
    /// (generations plus named checkpoints) — the number that must
    /// dwarf the fixed arena.
    pub fn cumulative_bytes(&self) -> u64 {
        let gens = (self.phases * self.objs_per_phase * self.elems * 4) as u64;
        let ckpts = (self.phases * self.ckpt_elems * 4) as u64;
        gens + ckpts
    }

    /// Total allocations performed (generations plus checkpoints).
    pub fn total_allocations(&self) -> u64 {
        (self.phases * self.objs_per_phase + self.phases) as u64
    }

    /// Peak concurrently-allocated logical bytes: the live window,
    /// the freshly allocated generation, and the tombstoned one
    /// awaiting its barrier, plus up to three live checkpoints.
    pub fn peak_live_bytes(&self) -> u64 {
        let gens = ((self.retain + 2) * self.objs_per_phase * self.elems * 4) as u64;
        gens + 3 * (self.ckpt_elems * 4) as u64
    }
}

/// SplitMix64 finalizer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic fill value of element `i` of object `obj` in
/// generation `gen`.
pub fn fill_value(seed: u64, gen: usize, obj: usize, i: usize) -> u32 {
    mix(seed ^ ((gen as u64) << 42) ^ ((obj as u64) << 21) ^ i as u64) as u32
}

/// Deterministic value of element `j` of generation `gen`'s named
/// checkpoint.
pub fn ckpt_value(seed: u64, gen: usize, j: usize) -> u32 {
    fill_value(seed, gen, 0x1F_FFFF, j)
}

/// The placement policy generation `gen` allocates under (cycles
/// through all three; results are placement-independent by
/// construction, so the checksum also proves placement correctness).
pub fn placement_for(gen: usize, n: usize) -> Placement {
    match gen % 3 {
        0 => Placement::RoundRobin,
        1 => Placement::FirstTouch,
        _ => Placement::Fixed(gen % n),
    }
}

fn ckpt_name(gen: usize) -> String {
    format!("ckpt-{gen}")
}

/// The per-object sample the checksum accumulates: one bulk view over
/// the first [`SAMPLE`] elements plus three spot reads.
fn sample_indices(elems: usize) -> [usize; 3] {
    [0, elems / 3, elems - 1]
}

/// What [`run_churn`]'s sampling of one object contributes, computed
/// from the value function alone (the sequential model's side).
fn model_sample(seed: u64, gen: usize, obj: usize, elems: usize) -> u64 {
    let mut sum = (0..SAMPLE)
        .map(|i| fill_value(seed, gen, obj, i) as u64)
        .fold(0u64, |a, v| a.wrapping_add(v));
    for i in sample_indices(elems) {
        sum = sum.wrapping_add(fill_value(seed, gen, obj, i) as u64);
    }
    sum
}

/// The checksum every node of a [`run_churn`] run must report: a
/// plain sequential replay of the sampling schedule.
pub fn model_checksum(params: &ChurnParams, seed: u64) -> u64 {
    let mut checksum = 0u64;
    let mut live: VecDeque<usize> = VecDeque::new();
    for p in 0..params.phases {
        live.push_back(p);
        if p >= 1 {
            for j in 0..params.ckpt_elems {
                checksum = checksum.wrapping_add(ckpt_value(seed, p - 1, j) as u64);
            }
        }
        for &q in &live {
            for k in 0..params.objs_per_phase {
                checksum = checksum.wrapping_add(model_sample(seed, q, k, params.elems));
            }
        }
        while live.len() > params.retain {
            live.pop_front();
        }
    }
    checksum
}

/// Run the churn workload on one node; call from every node.
pub fn run_churn<D: DsmApi>(dsm: &D, params: &ChurnParams) -> AppResult {
    let (n, me, seed) = (dsm.n(), dsm.me(), dsm.seed());
    let t0 = dsm.now();
    let mut checksum = 0u64;
    let mut live: VecDeque<(usize, Vec<D::Slice<'_, u32>>)> = VecDeque::new();
    for p in 0..params.phases {
        // A fresh generation, cycling the placement policies. Plain
        // allocs are SPMD-collective, so every node participates.
        let gen: Vec<D::Slice<'_, u32>> = (0..params.objs_per_phase)
            .map(|_| dsm.alloc_placed::<u32>(params.elems, placement_for(p, n)))
            .collect();
        // One node (alone!) stages this phase's named checkpoint; it
        // materializes for everyone at the barrier below.
        if me == p % n {
            dsm.alloc_named::<u32>(&ckpt_name(p), params.ckpt_elems);
        }
        // Fill my share of the generation: one mutable view (one
        // access check) per object.
        for (k, s) in gen.iter().enumerate() {
            if k % n == me {
                {
                    let mut v = s.view_mut(0..params.elems);
                    for (i, slot) in v.iter_mut().enumerate() {
                        *slot = fill_value(seed, p, k, i);
                    }
                }
                dsm.charge_compute(params.elems as u64);
            }
        }
        live.push_back((p, gen));
        // Publishes the fills, commits the named checkpoint, and
        // reclaims the generation freed last phase.
        dsm.barrier();
        // The checkpoint owner writes it (readable after the *next*
        // barrier, per Scope Consistency).
        if me == p % n {
            let ck = dsm.lookup::<u32>(&ckpt_name(p));
            let vals: Vec<u32> = (0..params.ckpt_elems)
                .map(|j| ckpt_value(seed, p, j))
                .collect();
            ck.write_from(0, &vals);
            dsm.charge_compute(params.ckpt_elems as u64);
        }
        // Every node attaches to the previous checkpoint by name,
        // reads it, and one node (not necessarily the writer) frees it.
        if p >= 1 {
            let ck = dsm.lookup::<u32>(&ckpt_name(p - 1));
            let sum: u64 = ck
                .view(0..params.ckpt_elems)
                .iter()
                .map(|&v| v as u64)
                .fold(0u64, |a, v| a.wrapping_add(v));
            checksum = checksum.wrapping_add(sum);
            dsm.charge_compute(params.ckpt_elems as u64);
            if me == p % n {
                dsm.free(ck);
            }
        }
        // Sample the live window.
        for (_q, gen) in &live {
            for s in gen.iter() {
                let mut sum: u64 = s
                    .view(0..SAMPLE)
                    .iter()
                    .map(|&v| v as u64)
                    .fold(0u64, |a, v| a.wrapping_add(v));
                for i in sample_indices(params.elems) {
                    sum = sum.wrapping_add(s.read(i) as u64);
                }
                checksum = checksum.wrapping_add(sum);
                dsm.charge_compute((SAMPLE + 3) as u64);
            }
        }
        // Retire the generation that fell out of the window: each
        // object is freed by the single node that filled it.
        while live.len() > params.retain {
            let (_q, gen) = live.pop_front().expect("non-empty");
            for (k, s) in gen.into_iter().enumerate() {
                if k % n == me {
                    dsm.free(s);
                }
            }
        }
    }
    // Reclaim the tail of staged frees so exit-time accounting (store
    // emptiness, fragmentation) reflects the retired history.
    dsm.barrier();
    AppResult {
        checksum,
        elapsed: dsm.now().saturating_sub(t0),
    }
}

impl DsmProgram for ChurnParams {
    fn run<D: DsmApi>(&self, dsm: &D) -> AppResult {
        run_churn(dsm, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_is_deterministic_and_seed_sensitive() {
        let p = ChurnParams {
            phases: 5,
            objs_per_phase: 2,
            elems: 64,
            retain: 1,
            ckpt_elems: 4,
        };
        assert_eq!(model_checksum(&p, 7), model_checksum(&p, 7));
        assert_ne!(model_checksum(&p, 7), model_checksum(&p, 8));
    }

    #[test]
    fn placement_cycles_all_policies() {
        assert_eq!(placement_for(0, 4), Placement::RoundRobin);
        assert_eq!(placement_for(1, 4), Placement::FirstTouch);
        assert_eq!(placement_for(2, 4), Placement::Fixed(2));
        assert_eq!(placement_for(5, 4), Placement::Fixed(1));
    }

    #[test]
    fn smoke_params_overcommit_by_8x() {
        let p = ChurnParams::smoke();
        assert!(p.cumulative_bytes() >= 8 * (1 << 20));
        assert!(p.peak_live_bytes() < (1 << 20));
    }
}
