//! ME — parallel merge sort (§4.1).
//!
//! "Objects in ME share a migratory access pattern. When two sorted
//! sub-arrays are merged together in one of the merging phases, one of
//! the processes handles the merging. Thus at any time, half of the
//! total data is migrated." With JIAJIA's round-robin page homes only
//! `1/p` of the merged data is home-local; LOTS's migrating-home
//! protocol moves the home to the merger, making half of it local.
//!
//! "ME does not show a speedup for increasing number of processes,
//! because only the merging time is counted while the local sorting
//! time is excluded" — the timer here likewise starts after the initial
//! runs are written and the cluster synchronizes.

use lots_core::DsmApi;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::adapter::{alloc_chunked, AppResult, DsmProgram};

/// ME parameters: `total` keys, sorted by `p` processes (`p` must be a
/// power of two and divide `total`).
#[derive(Debug, Clone, Copy)]
pub struct MeParams {
    /// Number of keys across the cluster.
    pub total: usize,
    /// RNG seed for the key set.
    pub seed: u64,
}

impl DsmProgram for MeParams {
    fn run<D: DsmApi>(&self, dsm: &D) -> AppResult {
        me(dsm, *self)
    }
}

/// The keys node `me` contributes (pre-sorted locally, as in the paper).
pub fn local_run(params: MeParams, p: usize, me: usize) -> Vec<i64> {
    let per = params.total / p;
    let mut rng = StdRng::seed_from_u64(params.seed ^ (me as u64).wrapping_mul(0x9E37_79B9));
    let mut keys: Vec<i64> = (0..per).map(|_| rng.gen_range(0..1_000_000_000)).collect();
    keys.sort_unstable();
    keys
}

fn merge(a: &[i64], b: &[i64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Run ME on one node; call from every node.
pub fn me<D: DsmApi>(dsm: &D, params: MeParams) -> AppResult {
    let (p, rank) = (dsm.n(), dsm.me());
    // Fold the cluster seed in so one `ClusterOptions::seed` (default
    // 0: a no-op) reproduces the whole data set end to end.
    let params = MeParams {
        seed: params.seed ^ dsm.seed(),
        ..params
    };
    assert!(p.is_power_of_two(), "ME requires a power-of-two cluster");
    assert_eq!(params.total % p, 0);
    let per = params.total / p;
    // Two generations of the key space, ping-ponged between phases.
    let gen_a = alloc_chunked::<i64, D>(dsm, p, per);
    let gen_b = alloc_chunked::<i64, D>(dsm, p, per);

    // Local sort phase (excluded from timing, §4.1).
    let run = local_run(params, p, rank);
    gen_a.scatter(rank * per, &run);
    dsm.barrier();
    let t0 = dsm.now();

    let phases = p.trailing_zeros();
    let (mut src, mut dst) = (&gen_a, &gen_b);
    for j in 1..=phases {
        let group = 1usize << j; // chunks per merged run after this phase
        if rank % group == 0 {
            let half = group / 2;
            let run_len = per * half;
            // Read the two sorted runs (one ours, one migrating here):
            // one view guard per chunk, not one check per key.
            let mut left = vec![0i64; run_len];
            let mut right = vec![0i64; run_len];
            src.gather_into(rank * per, &mut left);
            src.gather_into((rank + half) * per, &mut right);
            let merged = merge(&left, &right);
            dsm.charge_compute(2 * merged.len() as u64);
            dst.scatter(rank * per, &merged);
        }
        dsm.barrier();
        std::mem::swap(&mut src, &mut dst);
    }

    // The sorted result lives in `src` (after the last swap). Checksum
    // verifies order and content: node 0 walks it, others contribute 0.
    let mut checksum = 0u64;
    if rank == 0 {
        let mut prev = i64::MIN;
        for chunk in 0..p {
            for &v in src.view(chunk, 0..per).iter() {
                assert!(v >= prev, "merge result out of order");
                prev = v;
                checksum = checksum.wrapping_mul(1_000_003).wrapping_add(v as u64);
            }
        }
    }
    dsm.barrier();
    AppResult {
        checksum,
        elapsed: dsm.now().saturating_sub(t0),
    }
}

/// Sequential reference: same keys, fully sorted, same checksum walk.
pub fn me_sequential(params: MeParams, p: usize) -> u64 {
    let mut all: Vec<i64> = (0..p).flat_map(|me| local_run(params, p, me)).collect();
    all.sort_unstable();
    all.iter().fold(0u64, |acc, &v| {
        acc.wrapping_mul(1_000_003).wrapping_add(v as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_runs_are_sorted_and_deterministic() {
        let p = MeParams {
            total: 1024,
            seed: 42,
        };
        let r1 = local_run(p, 4, 2);
        let r2 = local_run(p, 4, 2);
        assert_eq!(r1, r2);
        assert!(r1.windows(2).all(|w| w[0] <= w[1]));
        assert_ne!(local_run(p, 4, 0), local_run(p, 4, 1));
    }

    #[test]
    fn merge_is_correct() {
        assert_eq!(merge(&[1, 3, 5], &[2, 4, 6]), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(merge(&[], &[1]), vec![1]);
        assert_eq!(merge(&[1, 1], &[1]), vec![1, 1, 1]);
    }

    #[test]
    fn sequential_checksum_stable() {
        let p = MeParams {
            total: 512,
            seed: 7,
        };
        assert_eq!(me_sequential(p, 4), me_sequential(p, 4));
        // The checksum is over the *same multiset* regardless of p.
        assert_eq!(me_sequential(p, 2), me_sequential(p, 2));
    }
}
