//! The Test 2 program (§4.3, Table 1): exercise the large object space.
//!
//! "The machines try to allocate a shared large 2-dimension integer
//! array of X rows, with a total size exceeding 4 GB. … The program is
//! made simple (just adding some numbers held by each process) … In
//! this program, every object is swapped out once, thus more than 4 GB
//! data is written to the disk. It is expected the execution time is to
//! be dominated by the disk access time."
//!
//! The kernel is generic over [`DsmApi`] like every other workload; at
//! paper scale only LOTS can actually run it (JIAJIA's `try_alloc`
//! fails beyond its 128 MB shared space, LOTS-x beyond the DMM area —
//! precisely the §1 motivation), and the fallible surface reports that
//! as an error instead of a panic.

use lots_core::{DsmApi, DsmSlice};
use lots_sim::{SimDuration, TimeCategory};

/// Test 2 parameters: `rows × row_elems` 32-bit integers.
#[derive(Debug, Clone, Copy)]
pub struct LargeObjParams {
    /// X in the paper's Table 1.
    pub rows: usize,
    /// Elements per row (paper-scale: 1 M ints = 4 MB rows).
    pub row_elems: usize,
}

impl LargeObjParams {
    /// Logical size of the shared array.
    pub fn total_bytes(&self) -> u64 {
        self.rows as u64 * self.row_elems as u64 * 4
    }
}

/// Per-node outcome.
#[derive(Debug, Clone, Copy)]
pub struct LargeObjOutcome {
    /// This node's partial sum.
    pub sum: i64,
    /// Virtual time of the timed section.
    pub elapsed: SimDuration,
    /// Virtual time spent in backing-store I/O — the paper's "disk
    /// read/write time due to the large object space support".
    pub disk_time: SimDuration,
    /// Objects swapped out during the run.
    pub swaps_out: u64,
    /// Objects swapped back in during the run.
    pub swaps_in: u64,
    /// Bytes actually written to the backing store (post-compression).
    pub swap_out_bytes: u64,
    /// Bytes actually read back from the backing store.
    pub swap_in_bytes: u64,
    /// Batched eviction trips booked on the disk device.
    pub swap_batches: u64,
    /// Swap-ins served from the read-ahead buffer.
    pub prefetch_hits: u64,
}

/// Deterministic fill value of row `r`.
pub fn row_value(r: usize) -> i32 {
    (r % 97) as i32 + 1
}

/// Expected grand total over all rows.
pub fn expected_sum(params: LargeObjParams) -> i64 {
    (0..params.rows)
        .map(|r| row_value(r) as i64 * params.row_elems as i64)
        .sum()
}

/// Run Test 2 on one node; call from every node of the cluster.
pub fn large_object_test<D: DsmApi>(
    dsm: &D,
    params: LargeObjParams,
) -> Result<LargeObjOutcome, D::Error> {
    let (p, me) = (dsm.n(), dsm.me());
    // Every node declares every row (the handles are global); each
    // row's data materializes only where it is touched.
    let rows: Vec<D::Slice<'_, i32>> = (0..params.rows)
        .map(|_| dsm.try_alloc::<i32>(params.row_elems))
        .collect::<Result<_, _>>()?;
    dsm.barrier();
    let t0 = dsm.now();
    let disk0 = dsm.stats().time_in(TimeCategory::Disk);
    let (out0, in0) = (dsm.stats().swaps_out(), dsm.stats().swaps_in());
    let (ob0, ib0) = (dsm.stats().swap_out_bytes(), dsm.stats().swap_in_bytes());
    let (bat0, pre0) = (dsm.stats().swap_batches(), dsm.stats().prefetch_hits());

    // Write phase: fill my rows, one view guard (one access check) per
    // row. As the DMM area fills, earlier rows are swapped out — each
    // exactly once.
    for r in (me..params.rows).step_by(p) {
        rows[r]
            .try_view_mut(0..params.row_elems)?
            .fill(row_value(r));
    }
    dsm.barrier();

    // Read phase: sum my rows back — swapped-out rows stream in from
    // the local disk.
    let mut sum = 0i64;
    for r in (me..params.rows).step_by(p) {
        sum += rows[r]
            .try_view(0..params.row_elems)?
            .iter()
            .map(|&v| v as i64)
            .sum::<i64>();
        dsm.charge_compute(params.row_elems as u64);
    }
    dsm.barrier();

    Ok(LargeObjOutcome {
        sum,
        elapsed: dsm.now().saturating_sub(t0),
        disk_time: dsm
            .stats()
            .time_in(TimeCategory::Disk)
            .saturating_sub(disk0),
        swaps_out: dsm.stats().swaps_out() - out0,
        swaps_in: dsm.stats().swaps_in() - in0,
        swap_out_bytes: dsm.stats().swap_out_bytes() - ob0,
        swap_in_bytes: dsm.stats().swap_in_bytes() - ib0,
        swap_batches: dsm.stats().swap_batches() - bat0,
        prefetch_hits: dsm.stats().prefetch_hits() - pre0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_sum_matches_hand_count() {
        let p = LargeObjParams {
            rows: 3,
            row_elems: 10,
        };
        // rows 0,1,2 → values 1,2,3 → (1+2+3)*10
        assert_eq!(expected_sum(p), 60);
        assert_eq!(p.total_bytes(), 120);
    }

    #[test]
    fn row_values_cycle() {
        assert_eq!(row_value(0), 1);
        assert_eq!(row_value(96), 97);
        assert_eq!(row_value(97), 1);
    }
}
