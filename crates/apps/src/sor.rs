//! SOR — successive red-black iterations (§4.1).
//!
//! "The two matrices (red and black) are divided into p horizontal
//! slices, and each process is responsible to update its own slice in
//! each of the two matrices, according to the values of the adjacent
//! positions in the other matrix. … each object (row) is updated by a
//! single process throughout the whole program, and only the rows at
//! the edge of the slices are read-shared by two processes."
//!
//! This single-writer row pattern is the migrating-home protocol's best
//! case: after the first barrier every row's home is its slice owner
//! and stays there; inter-node traffic reduces to the slice-edge rows.
//!
//! The inner loop runs through **view guards**: each of the four rows
//! a stencil update touches is resolved by one access check when its
//! guard opens, and the `b[i][j±1]` re-reads inside the loop are plain
//! slice indexing — this collapses the §4.2 per-element check overhead
//! that dominated the element-wise port (the paper measured 30–37 s of
//! a 55 s SOR run in checking).

use lots_core::DsmApi;

use crate::adapter::{alloc_chunked, AppResult, DsmProgram};

/// SOR parameters: `n` is the grid dimension (n rows × n cols per
/// matrix), `iters` the iteration count (paper: 256).
#[derive(Debug, Clone, Copy)]
pub struct SorParams {
    /// Grid dimension.
    pub n: usize,
    /// Red+black iteration count.
    pub iters: usize,
}

impl DsmProgram for SorParams {
    fn run<D: DsmApi>(&self, dsm: &D) -> AppResult {
        sor(dsm, *self)
    }
}

/// Deterministic initial value of cell `(r, c)` of the black matrix.
pub fn init_black(r: usize, c: usize) -> f64 {
    ((r * 31 + c * 17) % 101) as f64 / 10.0
}

/// Deterministic initial value of cell `(r, c)` of the red matrix.
pub fn init_red(r: usize, c: usize) -> f64 {
    ((r * 13 + c * 29) % 97) as f64 / 10.0
}

/// Rows `[lo, hi)` of node `me`'s slice.
pub fn slice_of(n: usize, p: usize, me: usize) -> (usize, usize) {
    (n * me / p, n * (me + 1) / p)
}

/// One stencil update of `dst[r]` from the other matrix's rows.
fn update_row(dst: &mut [f64], above: Option<&[f64]>, same: &[f64], below: Option<&[f64]>) {
    let n = dst.len();
    for c in 0..n {
        let up = above.map_or(0.0, |r| r[c]);
        let down = below.map_or(0.0, |r| r[c]);
        let left = if c > 0 { same[c - 1] } else { 0.0 };
        let right = if c + 1 < n { same[c + 1] } else { 0.0 };
        dst[c] = 0.25 * (up + down + left + right);
    }
}

/// Run SOR on one node; call from every node of the cluster.
pub fn sor<D: DsmApi>(dsm: &D, params: SorParams) -> AppResult {
    let (n, p, me) = (params.n, dsm.n(), dsm.me());
    assert!(n >= p, "grid smaller than cluster");
    let red = alloc_chunked::<f64, D>(dsm, n, n);
    let black = alloc_chunked::<f64, D>(dsm, n, n);
    let (lo, hi) = slice_of(n, p, me);

    // Initialization: every row written by its slice owner only, one
    // guard (one check) per row.
    for r in lo..hi {
        let mut row = red.view_mut(r, 0..n);
        for (c, v) in row.iter_mut().enumerate() {
            *v = init_red(r, c);
        }
        drop(row);
        let mut row = black.view_mut(r, 0..n);
        for (c, v) in row.iter_mut().enumerate() {
            *v = init_black(r, c);
        }
    }
    dsm.barrier();
    let t0 = dsm.now();

    for _ in 0..params.iters {
        // Red sweep reads black, then black sweep reads red.
        for phase in 0..2 {
            let (src, out) = if phase == 0 {
                (&black, &red)
            } else {
                (&red, &black)
            };
            for r in lo..hi {
                // Four guards, four checks; the stencil's per-element
                // accesses (including b[r][c±1]) are then unchecked
                // slice reads.
                let above = (r > 0).then(|| src.view(r - 1, 0..n));
                let same = src.view(r, 0..n);
                let below = (r + 1 < n).then(|| src.view(r + 1, 0..n));
                let mut dst = out.view_mut(r, 0..n);
                update_row(&mut dst, above.as_deref(), &same, below.as_deref());
                dsm.charge_compute(4 * n as u64);
            }
            dsm.barrier();
        }
    }

    // Checksum over the node's own slice (order-independent bits sum).
    let mut checksum = 0u64;
    for r in lo..hi {
        for v in red.view(r, 0..n).iter() {
            checksum = checksum.wrapping_add(v.to_bits());
        }
        for v in black.view(r, 0..n).iter() {
            checksum = checksum.wrapping_add(v.to_bits());
        }
    }
    AppResult {
        checksum,
        elapsed: dsm.now().saturating_sub(t0),
    }
}

/// Sequential reference returning the same checksum.
pub fn sor_sequential(params: SorParams) -> u64 {
    let n = params.n;
    let mut red: Vec<Vec<f64>> = (0..n)
        .map(|r| (0..n).map(|c| init_red(r, c)).collect())
        .collect();
    let mut black: Vec<Vec<f64>> = (0..n)
        .map(|r| (0..n).map(|c| init_black(r, c)).collect())
        .collect();
    let mut dst = vec![0.0f64; n];
    for _ in 0..params.iters {
        for phase in 0..2 {
            let (src, out) = if phase == 0 {
                (&black, &mut red)
            } else {
                (&red, &mut black)
            };
            for r in 0..n {
                let above = (r > 0).then(|| src[r - 1].as_slice());
                let below = (r + 1 < n).then(|| src[r + 1].as_slice());
                update_row(&mut dst, above, &src[r], below);
                out[r].copy_from_slice(&dst);
            }
        }
    }
    let mut checksum = 0u64;
    for r in 0..n {
        for &v in &red[r] {
            checksum = checksum.wrapping_add(v.to_bits());
        }
        for &v in &black[r] {
            checksum = checksum.wrapping_add(v.to_bits());
        }
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_partition_rows() {
        let mut covered = 0;
        for me in 0..4 {
            let (lo, hi) = slice_of(10, 4, me);
            covered += hi - lo;
            assert!(lo <= hi);
        }
        assert_eq!(covered, 10);
        assert_eq!(slice_of(10, 4, 0), (0, 2));
        assert_eq!(slice_of(10, 4, 3), (7, 10));
    }

    #[test]
    fn sequential_reference_is_deterministic() {
        let p = SorParams { n: 16, iters: 4 };
        assert_eq!(sor_sequential(p), sor_sequential(p));
    }

    #[test]
    fn stencil_handles_boundaries() {
        let mut dst = vec![0.0; 3];
        update_row(&mut dst, None, &[1.0, 2.0, 3.0], None);
        assert_eq!(dst, vec![0.5, 1.0, 0.5]);
    }
}
