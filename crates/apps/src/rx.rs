//! RX — radix sort over 256 shared buckets (§4.1).
//!
//! "256 shared buckets (objects) are initialized to store the numbers
//! during sorting. Each bucket, of size an integral multiple of a page,
//! is accessed by a processor at a time (concurrent access is
//! prohibited by barriers). However, during the execution, 1/p of the
//! total number of buckets are always accessed by a single process,
//! while others are accessed alternatively by two processes."
//!
//! Each pass has a *fill* phase (the bucket's fill owner gathers keys
//! with that digit) and a *drain* phase (the drain owner writes them to
//! their sorted positions and clears the bucket). Buckets whose fill
//! and drain owners coincide (exactly 1/p of them) are single-process;
//! the rest ping-pong between two writers — the pattern that makes
//! migrating-home "give little benefit, since the bucket will be
//! requested next by the process that originally owns it", which is why
//! LOTS falls behind JIAJIA at larger p in Figure 8(d).

use lots_core::DsmApi;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::adapter::{alloc_chunked, AppResult, DsmProgram};

/// Number of radix buckets (one 8-bit digit).
pub const BUCKETS: usize = 256;
/// Elements per page (u32 keys): buckets are page multiples (§4.1).
const PAGE_ELEMS: usize = 1024;

/// RX parameters: `total` keys, `passes` 8-bit digit passes (2 passes
/// sort by the low 16 bits — the paper's "small problem sizes").
#[derive(Debug, Clone, Copy)]
pub struct RxParams {
    /// Number of keys across the cluster.
    pub total: usize,
    /// 8-bit digit passes (1–4).
    pub passes: u32,
    /// RNG seed for the key set.
    pub seed: u64,
}

impl DsmProgram for RxParams {
    fn run<D: DsmApi>(&self, dsm: &D) -> AppResult {
        rx(dsm, *self)
    }
}

/// The process that fills bucket `b` (contiguous digit ranges).
pub fn fill_owner(b: usize, p: usize) -> usize {
    b * p / BUCKETS
}

/// The process that drains bucket `b` (strided).
pub fn drain_owner(b: usize, p: usize) -> usize {
    b % p
}

/// Key set for node `me`.
pub fn local_keys(params: RxParams, p: usize, me: usize) -> Vec<u32> {
    let per = params.total / p;
    let mut rng = StdRng::seed_from_u64(params.seed ^ (me as u64).wrapping_mul(0xDEAD_BEEF));
    let mask = (1u64 << (8 * params.passes)) - 1;
    (0..per).map(|_| (rng.gen::<u64>() & mask) as u32).collect()
}

/// Bucket capacity in elements (page multiple, with headroom).
fn bucket_capacity(total: usize) -> usize {
    let avg = total.div_ceil(BUCKETS);
    // Uniform keys need little skew headroom; keep buckets snug so the
    // object granularity matches what the paper's page-multiple buckets
    // actually carried (count word + keys + 25 % slack).
    (avg + avg / 4 + 64).div_ceil(PAGE_ELEMS) * PAGE_ELEMS
}

/// Run RX on one node; call from every node.
pub fn rx<D: DsmApi>(dsm: &D, params: RxParams) -> AppResult {
    let (p, rank) = (dsm.n(), dsm.me());
    // Fold the cluster seed in so one `ClusterOptions::seed` (default
    // 0: a no-op) reproduces the whole data set end to end.
    let params = RxParams {
        seed: params.seed ^ dsm.seed(),
        ..params
    };
    assert_eq!(params.total % p, 0);
    assert!(params.passes >= 1 && params.passes <= 4);
    let per = params.total / p;
    let cap = bucket_capacity(params.total);
    // Shared key space, one chunk per process.
    let keys = alloc_chunked::<u32, D>(dsm, p, per);
    // 256 bucket objects: slot 0 is the element count.
    let buckets = alloc_chunked::<u32, D>(dsm, BUCKETS, cap);
    // Per-bucket counts for prefix computation (one small shared object).
    let counts = alloc_chunked::<u32, D>(dsm, 1, BUCKETS);

    keys.scatter(rank * per, &local_keys(params, p, rank));
    dsm.barrier();
    let t0 = dsm.now();

    for pass in 0..params.passes {
        let shift = 8 * pass;
        // ---- fill: each fill owner gathers its digit range from the
        // whole key space (one view per chunk, not one check per key).
        let all_keys = {
            let mut buf = vec![0u32; params.total];
            keys.gather_into(0, &mut buf);
            buf
        };
        let my_lo = (rank * BUCKETS).div_ceil(p);
        let my_hi = ((rank + 1) * BUCKETS).div_ceil(p).min(BUCKETS);
        let mut gathered: Vec<Vec<u32>> = vec![Vec::new(); my_hi.saturating_sub(my_lo)];
        for &k in &all_keys {
            let d = ((k >> shift) & 0xFF) as usize;
            if d >= my_lo && d < my_hi {
                gathered[d - my_lo].push(k);
            }
        }
        dsm.charge_compute(all_keys.len() as u64);
        for (i, keys_in_bucket) in gathered.iter().enumerate() {
            let b = my_lo + i;
            debug_assert_eq!(fill_owner(b, p), rank);
            assert!(
                keys_in_bucket.len() < cap,
                "bucket overflow: {} keys, capacity {cap}",
                keys_in_bucket.len()
            );
            let mut img = buckets.view_mut(b, 0..keys_in_bucket.len() + 1);
            img[0] = keys_in_bucket.len() as u32;
            img[1..].copy_from_slice(keys_in_bucket);
            drop(img);
            counts.write(0, b, keys_in_bucket.len() as u32);
        }
        dsm.barrier();

        // ---- drain: each drain owner writes its buckets' keys to
        // their global sorted positions and clears the bucket.
        let all_counts: Vec<u32> = counts.view(0, 0..BUCKETS).to_vec();
        let mut offsets = vec![0usize; BUCKETS + 1];
        for b in 0..BUCKETS {
            offsets[b + 1] = offsets[b] + all_counts[b] as usize;
        }
        debug_assert_eq!(offsets[BUCKETS], params.total);
        for b in 0..BUCKETS {
            if drain_owner(b, p) != rank {
                continue;
            }
            let cnt = all_counts[b] as usize;
            if cnt > 0 {
                let data = buckets.view(b, 0..cnt + 1);
                debug_assert_eq!(data[0] as usize, cnt);
                keys.scatter(offsets[b], &data[1..]);
                dsm.charge_compute(cnt as u64);
            }
            // Clearing the count is the ping-pong write: the bucket's
            // last writer alternates fill-owner ↔ drain-owner.
            buckets.write(b, 0, 0);
        }
        dsm.barrier();
    }

    // Checksum my chunk; verify global order from node 0.
    let mask = (1u64 << (8 * params.passes)) - 1;
    let mut checksum = 0u64;
    for &v in keys.view(rank, 0..per).iter() {
        checksum = checksum.wrapping_add((v as u64) & mask);
    }
    if rank == 0 {
        let mut buf = vec![0u32; params.total];
        keys.gather_into(0, &mut buf);
        assert!(
            buf.windows(2).all(|w| w[0] <= w[1]),
            "radix result out of order"
        );
    }
    dsm.barrier();
    AppResult {
        checksum,
        elapsed: dsm.now().saturating_sub(t0),
    }
}

/// Sequential reference checksum (the sorted multiset's sum, chunked
/// the same way so per-node checksums add up identically).
pub fn rx_sequential(params: RxParams, p: usize) -> u64 {
    let mask = (1u64 << (8 * params.passes)) - 1;
    let mut all: Vec<u32> = (0..p).flat_map(|me| local_keys(params, p, me)).collect();
    all.sort_unstable();
    all.iter().map(|&v| (v as u64) & mask).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_maps_cover_the_claim() {
        // Exactly 1/p of buckets have fill == drain owner.
        for p in [2usize, 4, 8, 16] {
            let single = (0..BUCKETS)
                .filter(|&b| fill_owner(b, p) == drain_owner(b, p))
                .count();
            assert_eq!(single, BUCKETS / p, "p={p}");
        }
    }

    #[test]
    fn ping_pong_buckets_have_two_distinct_owners() {
        for b in 0..BUCKETS {
            let f = fill_owner(b, 4);
            let d = drain_owner(b, 4);
            assert!(f < 4 && d < 4);
        }
    }

    #[test]
    fn bucket_capacity_is_page_multiple() {
        for total in [1 << 14, 1 << 16, 1 << 20] {
            assert_eq!(bucket_capacity(total) % PAGE_ELEMS, 0);
            assert!(bucket_capacity(total) * BUCKETS > total);
        }
    }

    #[test]
    fn keys_fit_passes_mask() {
        let params = RxParams {
            total: 4096,
            passes: 2,
            seed: 3,
        };
        for k in local_keys(params, 4, 1) {
            assert!(k <= 0xFFFF);
        }
    }

    #[test]
    fn sequential_checksum_deterministic() {
        let params = RxParams {
            total: 4096,
            passes: 2,
            seed: 3,
        };
        assert_eq!(rx_sequential(params, 4), rx_sequential(params, 4));
    }
}
