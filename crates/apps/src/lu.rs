//! LU — LU factorization without pivoting on a diagonally dominant
//! matrix (§4.1).
//!
//! "One process always updates a row in the source matrix to do the
//! factorization, while all others will read the result of that row to
//! update the rows they are responsible to update. If the row size does
//! not fit an integral multiple of pages, both read-write and
//! write-write false sharing can occur" — on page-based JIAJIA. In
//! LOTS "each row is a unique object; false sharing will not happen,
//! since only one process will write to a particular row at any time",
//! which is where the paper reports up to ~80 % improvement.
//!
//! Each elimination step opens one read view of the pivot row and one
//! mutable view of the tail of every owned row below it: two access
//! checks per updated row instead of two checks per *element*.

use lots_core::DsmApi;

use crate::adapter::{alloc_chunked, AppResult, DsmProgram};

/// LU parameters: the matrix is `n × n`, rows distributed cyclically.
#[derive(Debug, Clone, Copy)]
pub struct LuParams {
    /// Matrix dimension.
    pub n: usize,
}

impl DsmProgram for LuParams {
    fn run<D: DsmApi>(&self, dsm: &D) -> AppResult {
        lu(dsm, *self)
    }
}

/// Rows per ownership block (block-cyclic distribution: balances the
/// elimination while keeping most same-owner rows contiguous, as
/// DSM-era LU kernels did).
pub const BLOCK_ROWS: usize = 8;

/// Row owner under block-cyclic distribution.
pub fn owner(row: usize, p: usize) -> usize {
    (row / BLOCK_ROWS) % p
}

/// Deterministic, diagonally dominant initial matrix.
pub fn init_elem(n: usize, r: usize, c: usize) -> f64 {
    if r == c {
        n as f64 + 2.0
    } else {
        ((r * 7 + c * 13) % 19) as f64 / 19.0
    }
}

/// Run LU on one node; call from every node.
pub fn lu<D: DsmApi>(dsm: &D, params: LuParams) -> AppResult {
    let (n, p, me) = (params.n, dsm.n(), dsm.me());
    assert!(n >= p);
    let a = alloc_chunked::<f64, D>(dsm, n, n);

    // Row owners write their rows (one guard per row).
    for r in (0..n).filter(|&r| owner(r, p) == me) {
        let mut row = a.view_mut(r, 0..n);
        for (c, v) in row.iter_mut().enumerate() {
            *v = init_elem(n, r, c);
        }
    }
    dsm.barrier();
    let t0 = dsm.now();

    for k in 0..n {
        {
            // Everyone reads the pivot row (its owner reads locally):
            // one check, shared by every row update of this step.
            let pivot = a.view(k, 0..n);
            let pivot_val = pivot[k];
            // Update the rows I own below k through the tail view.
            for r in (k + 1..n).filter(|&r| owner(r, p) == me) {
                let mut row = a.view_mut(r, k..n);
                let factor = row[0] / pivot_val;
                row[0] = factor; // store the L entry in place (Doolittle)
                for c in k + 1..n {
                    row[c - k] -= factor * pivot[c];
                }
                dsm.charge_compute(2 * (n - k) as u64);
            }
        }
        dsm.barrier();
    }

    // Checksum over my rows of the factored matrix.
    let mut checksum = 0u64;
    for r in (0..n).filter(|&r| owner(r, p) == me) {
        for v in a.view(r, 0..n).iter() {
            checksum = checksum.wrapping_add(v.to_bits());
        }
    }
    AppResult {
        checksum,
        elapsed: dsm.now().saturating_sub(t0),
    }
}

/// Sequential reference with identical arithmetic order.
pub fn lu_sequential(params: LuParams) -> u64 {
    let n = params.n;
    let mut a: Vec<Vec<f64>> = (0..n)
        .map(|r| (0..n).map(|c| init_elem(n, r, c)).collect())
        .collect();
    for k in 0..n {
        let pivot = a[k].clone();
        let pivot_val = pivot[k];
        for row in a.iter_mut().take(n).skip(k + 1) {
            let factor = row[k] / pivot_val;
            row[k] = factor;
            for c in k + 1..n {
                row[c] -= factor * pivot[c];
            }
        }
    }
    let mut checksum = 0u64;
    for row in &a {
        for &v in row {
            checksum = checksum.wrapping_add(v.to_bits());
        }
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_block_cyclic() {
        assert_eq!(owner(0, 4), 0);
        assert_eq!(owner(7, 4), 0);
        assert_eq!(owner(8, 4), 1);
        assert_eq!(owner(31, 4), 3);
        assert_eq!(owner(32, 4), 0);
        // Every node owns rows for n >> blocks.
        let owners: std::collections::HashSet<usize> = (0..64).map(|r| owner(r, 4)).collect();
        assert_eq!(owners.len(), 4);
    }

    #[test]
    fn matrix_is_diagonally_dominant() {
        let n = 32;
        for r in 0..n {
            let diag = init_elem(n, r, r).abs();
            let off: f64 = (0..n)
                .filter(|&c| c != r)
                .map(|c| init_elem(n, r, c).abs())
                .sum();
            assert!(diag > off, "row {r}: {diag} <= {off}");
        }
    }

    #[test]
    fn sequential_lu_reconstructs_matrix() {
        // Verify L·U ≈ A on a small instance.
        let n = 8;
        let orig: Vec<Vec<f64>> = (0..n)
            .map(|r| (0..n).map(|c| init_elem(n, r, c)).collect())
            .collect();
        let mut a = orig.clone();
        for k in 0..n {
            let pivot = a[k].clone();
            for row in a.iter_mut().take(n).skip(k + 1) {
                let factor = row[k] / pivot[k];
                row[k] = factor;
                for c in k + 1..n {
                    row[c] -= factor * pivot[c];
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0;
                #[allow(clippy::needless_range_loop)] // triangular indexing, clearer as indices
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { a[i][k] };
                    let u = if k <= j { a[k][j] } else { 0.0 };
                    if k < i {
                        sum += l * u;
                    } else {
                        sum += u;
                    }
                }
                assert!(
                    (sum - orig[i][j]).abs() < 1e-9,
                    "A[{i}][{j}]: {sum} vs {}",
                    orig[i][j]
                );
            }
        }
    }
}
