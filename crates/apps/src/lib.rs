//! `lots-apps` — the paper's evaluation workloads, written **once**,
//! generically over [`lots_core::DsmApi`], and runnable on LOTS,
//! LOTS-x and the JIAJIA baseline (§4.1), plus the Test 2
//! large-object-space program (§4.3). No kernel contains a per-system
//! branch; the system-specific data layout lives behind
//! [`lots_core::DsmApi::alloc_chunks`] and hot loops run through view
//! guards ([`lots_core::DsmSlice::view`]/[`lots_core::DsmSlice::view_mut`]).
//!
//! | app | §4.1 access pattern | favoured protocol |
//! |---|---|---|
//! | [`me`] merge sort | migratory (mergers own half the data) | migrating home |
//! | [`lu`] factorization | single row writer, many readers | object granularity (no false sharing) |
//! | [`sor`] red-black | single writer per row, edge rows read-shared | migrating home |
//! | [`rx`] radix sort | 1/p buckets single-owner, rest ping-pong | fixed home (JIAJIA) at large p |
//! | [`largeobj`] Test 2 | streaming writes/reads over > 4 GB | LOTS only |
//! | [`churn`] object churn | rolling alloc/free window, named checkpoints | the lifecycle API (free/named/placement) |
//! | [`hotobj`] hot object | many readers + rotating writers on one large object | striping (per-segment homes + snapshots) |

pub mod adapter;
pub mod churn;
pub mod hotobj;
pub mod largeobj;
pub mod lu;
pub mod me;
pub mod runner;
pub mod rx;
pub mod sor;

pub use adapter::{alloc_chunked, combine, AppResult, Chunked, DsmProgram};
pub use runner::{run_app, RunConfig, RunOutcome, System};
