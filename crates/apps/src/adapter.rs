//! One workload source, two DSMs.
//!
//! The paper ports each application to both LOTS and JIAJIA (§4.1).
//! [`DsmCtx`] is the thin seam that lets this crate's kernels run
//! unchanged on either system. [`Chunked`] realizes the paper's data
//! layout on each: in LOTS every chunk (row, run, bucket) is its own
//! shared object (§3.2: "LOTS treats each pointer or row as a separate
//! object"); in JIAJIA the chunks are consecutive ranges of one flat
//! allocation, so chunks that are not page-multiples share pages —
//! the false sharing §4.1 analyses in LU.

use lots_core::{Dsm, Pod, SharedSlice};
use lots_jiajia::{JiaDsm, JiaSlice};
use lots_sim::SimInstant;

/// Which DSM a workload runs on.
#[derive(Clone, Copy)]
pub enum DsmCtx<'d> {
    Lots(&'d Dsm),
    Jia(&'d JiaDsm),
}

impl<'d> DsmCtx<'d> {
    pub fn me(&self) -> usize {
        match self {
            DsmCtx::Lots(d) => d.me(),
            DsmCtx::Jia(d) => d.me(),
        }
    }

    pub fn n(&self) -> usize {
        match self {
            DsmCtx::Lots(d) => d.n(),
            DsmCtx::Jia(d) => d.n(),
        }
    }

    pub fn now(&self) -> SimInstant {
        match self {
            DsmCtx::Lots(d) => d.now(),
            DsmCtx::Jia(d) => d.now(),
        }
    }

    pub fn barrier(&self) {
        match self {
            DsmCtx::Lots(d) => d.barrier(),
            DsmCtx::Jia(d) => d.barrier(),
        }
    }

    pub fn lock(&self, l: u32) {
        match self {
            DsmCtx::Lots(d) => d.lock(l),
            DsmCtx::Jia(d) => d.lock(l),
        }
    }

    pub fn unlock(&self, l: u32) {
        match self {
            DsmCtx::Lots(d) => d.unlock(l),
            DsmCtx::Jia(d) => d.unlock(l),
        }
    }

    pub fn charge_compute(&self, ops: u64) {
        match self {
            DsmCtx::Lots(d) => d.charge_compute(ops),
            DsmCtx::Jia(d) => d.charge_compute(ops),
        }
    }

    /// Account per-element accesses a bulk transfer collapsed. Only the
    /// object-based system pays the software check (§4.1 factor 2).
    pub fn charge_access_checks(&self, n: u64) {
        match self {
            DsmCtx::Lots(d) => d.charge_access_checks(n),
            DsmCtx::Jia(_) => {}
        }
    }

    /// Allocate `chunks × chunk_len` elements in the paper's layout for
    /// this DSM.
    pub fn alloc_chunked<T: Pod>(&self, chunks: usize, chunk_len: usize) -> Chunked<'d, T> {
        assert!(chunks > 0 && chunk_len > 0);
        let inner = match self {
            DsmCtx::Lots(d) => ChunkedInner::Lots(
                (0..chunks)
                    .map(|_| d.alloc::<T>(chunk_len).expect("LOTS allocation failed"))
                    .collect(),
            ),
            DsmCtx::Jia(d) => ChunkedInner::Jia(
                d.alloc::<T>(chunks * chunk_len)
                    .expect("JIAJIA allocation failed"),
            ),
        };
        Chunked {
            inner,
            chunks,
            chunk_len,
        }
    }
}

enum ChunkedInner<'d, T: Pod> {
    Lots(Vec<SharedSlice<'d, T>>),
    Jia(JiaSlice<'d, T>),
}

/// A chunked shared array (matrix rows, sort runs, radix buckets).
pub struct Chunked<'d, T: Pod> {
    inner: ChunkedInner<'d, T>,
    pub chunks: usize,
    pub chunk_len: usize,
}

impl<T: Pod> Chunked<'_, T> {
    pub fn len(&self) -> usize {
        self.chunks * self.chunk_len
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    pub fn read(&self, chunk: usize, i: usize) -> T {
        debug_assert!(i < self.chunk_len);
        match &self.inner {
            ChunkedInner::Lots(objs) => objs[chunk].read(i),
            ChunkedInner::Jia(a) => a.read(chunk * self.chunk_len + i),
        }
    }

    pub fn write(&self, chunk: usize, i: usize, v: T) {
        debug_assert!(i < self.chunk_len);
        match &self.inner {
            ChunkedInner::Lots(objs) => objs[chunk].write(i, v),
            ChunkedInner::Jia(a) => a.write(chunk * self.chunk_len + i, v),
        }
    }

    pub fn update(&self, chunk: usize, i: usize, f: impl FnOnce(T) -> T) {
        match &self.inner {
            ChunkedInner::Lots(objs) => objs[chunk].update(i, f),
            ChunkedInner::Jia(a) => a.update(chunk * self.chunk_len + i, f),
        }
    }

    /// Bulk read within one chunk.
    pub fn read_span_into(&self, chunk: usize, start: usize, out: &mut [T]) {
        debug_assert!(start + out.len() <= self.chunk_len);
        match &self.inner {
            ChunkedInner::Lots(objs) => objs[chunk].read_into(start, out),
            ChunkedInner::Jia(a) => a.read_into(chunk * self.chunk_len + start, out),
        }
    }

    pub fn read_chunk(&self, chunk: usize) -> Vec<T> {
        let mut out = vec![T::default(); self.chunk_len];
        self.read_span_into(chunk, 0, &mut out);
        out
    }

    /// Bulk write within one chunk.
    pub fn write_span(&self, chunk: usize, start: usize, vals: &[T]) {
        debug_assert!(start + vals.len() <= self.chunk_len);
        match &self.inner {
            ChunkedInner::Lots(objs) => objs[chunk].write_from(start, vals),
            ChunkedInner::Jia(a) => a.write_from(chunk * self.chunk_len + start, vals),
        }
    }

    pub fn write_chunk(&self, chunk: usize, vals: &[T]) {
        debug_assert_eq!(vals.len(), self.chunk_len);
        self.write_span(chunk, 0, vals);
    }

    /// Bulk read across chunk boundaries, `global` in flat elements.
    pub fn read_global_into(&self, global: usize, out: &mut [T]) {
        let mut pos = global;
        let mut done = 0usize;
        while done < out.len() {
            let chunk = pos / self.chunk_len;
            let off = pos % self.chunk_len;
            let take = (self.chunk_len - off).min(out.len() - done);
            self.read_span_into(chunk, off, &mut out[done..done + take]);
            pos += take;
            done += take;
        }
    }

    /// Bulk write across chunk boundaries.
    pub fn write_global(&self, global: usize, vals: &[T]) {
        let mut pos = global;
        let mut done = 0usize;
        while done < vals.len() {
            let chunk = pos / self.chunk_len;
            let off = pos % self.chunk_len;
            let take = (self.chunk_len - off).min(vals.len() - done);
            self.write_span(chunk, off, &vals[done..done + take]);
            pos += take;
            done += take;
        }
    }
}

/// Per-node outcome of one workload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppResult {
    /// Order-independent checksum of the node's share of the result.
    pub checksum: u64,
    /// Virtual time from the post-initialization barrier to completion
    /// (the paper's ME timing explicitly excludes local sorting, §4.1).
    pub elapsed: lots_sim::SimDuration,
}

/// Combine per-node results: checksums add modulo 2⁶⁴, elapsed is the
/// slowest node (execution time).
pub fn combine(results: &[AppResult]) -> AppResult {
    AppResult {
        checksum: results
            .iter()
            .fold(0u64, |acc, r| acc.wrapping_add(r.checksum)),
        elapsed: results
            .iter()
            .map(|r| r.elapsed)
            .max()
            .unwrap_or(lots_sim::SimDuration::ZERO),
    }
}
