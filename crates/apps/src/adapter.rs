//! One workload source, every DSM.
//!
//! The paper ports each application to both LOTS and JIAJIA (§4.1).
//! Here the port is free: workloads are written once against
//! [`lots_core::DsmApi`]/[`lots_core::DsmSlice`] and run unchanged on
//! LOTS, LOTS-x and JIAJIA. [`Chunked`] realizes the paper's data
//! layout on each system through [`DsmApi::alloc_chunks`]: on LOTS
//! every chunk (row, run, bucket) is its own shared object (§3.2:
//! "LOTS treats each pointer or row as a separate object"); on JIAJIA
//! the chunks are consecutive ranges of one flat allocation, so chunks
//! that are not page-multiples share pages — the false sharing §4.1
//! analyses in LU.

use lots_core::{DsmApi, DsmSlice, Pod};
use std::ops::Range;

/// A workload runnable on any [`DsmApi`] implementation — the unit the
/// runner dispatches. Implemented by each app's parameter struct.
pub trait DsmProgram: Send + Sync + 'static {
    /// Run the workload on one node of the cluster.
    fn run<D: DsmApi>(&self, dsm: &D) -> AppResult;
}

/// A chunked shared array (matrix rows, sort runs, radix buckets) in
/// the owning system's natural layout.
pub struct Chunked<S> {
    parts: Vec<S>,
    /// Number of chunks.
    pub chunks: usize,
    /// Elements per chunk.
    pub chunk_len: usize,
}

/// Allocate `chunks × chunk_len` elements in the paper's layout for
/// this DSM (one object per chunk on LOTS, one flat page range on
/// JIAJIA).
pub fn alloc_chunked<T: Pod, D: DsmApi>(
    dsm: &D,
    chunks: usize,
    chunk_len: usize,
) -> Chunked<D::Slice<'_, T>> {
    Chunked {
        parts: dsm.alloc_chunks(chunks, chunk_len),
        chunks,
        chunk_len,
    }
}

impl<S: DsmSlice> Chunked<S> {
    /// Total elements across all chunks.
    pub fn len(&self) -> usize {
        self.chunks * self.chunk_len
    }

    /// Chunked arrays are never empty (allocation asserts non-zero).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `Pointer<T>` handle of one chunk.
    pub fn chunk(&self, c: usize) -> S {
        self.parts[c]
    }

    /// Bulk read scope over `range` of chunk `c`: one access check.
    pub fn view(&self, c: usize, range: Range<usize>) -> S::View<'_> {
        self.parts[c].view(range)
    }

    /// Bulk write scope over `range` of chunk `c`: one access check,
    /// write-back when the guard drops.
    pub fn view_mut(&self, c: usize, range: Range<usize>) -> S::ViewMut<'_> {
        self.parts[c].view_mut(range)
    }

    /// Read element `i` of chunk `c` (one access check).
    pub fn read(&self, c: usize, i: usize) -> S::Elem {
        self.parts[c].read(i)
    }

    /// Write element `i` of chunk `c` (one access check).
    pub fn write(&self, c: usize, i: usize, v: S::Elem) {
        self.parts[c].write(i, v)
    }

    /// Read-modify-write element `i` of chunk `c` (two checks).
    pub fn update(&self, c: usize, i: usize, f: impl FnOnce(S::Elem) -> S::Elem) {
        self.parts[c].update(i, f)
    }

    /// Bulk read of `out.len()` elements starting at flat element
    /// `global`, crossing chunk boundaries; one view guard (one access
    /// check) per chunk touched.
    pub fn gather_into(&self, global: usize, out: &mut [S::Elem]) {
        let mut pos = global;
        let mut done = 0usize;
        while done < out.len() {
            let chunk = pos / self.chunk_len;
            let off = pos % self.chunk_len;
            let take = (self.chunk_len - off).min(out.len() - done);
            out[done..done + take].copy_from_slice(&self.parts[chunk].view(off..off + take));
            pos += take;
            done += take;
        }
    }

    /// Bulk write of `vals` starting at flat element `global`, crossing
    /// chunk boundaries; one view guard per chunk touched.
    pub fn scatter(&self, global: usize, vals: &[S::Elem]) {
        let mut pos = global;
        let mut done = 0usize;
        while done < vals.len() {
            let chunk = pos / self.chunk_len;
            let off = pos % self.chunk_len;
            let take = (self.chunk_len - off).min(vals.len() - done);
            self.parts[chunk]
                .view_mut(off..off + take)
                .copy_from_slice(&vals[done..done + take]);
            pos += take;
            done += take;
        }
    }
}

/// Per-node outcome of one workload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppResult {
    /// Order-independent checksum of the node's share of the result.
    pub checksum: u64,
    /// Virtual time from the post-initialization barrier to completion
    /// (the paper's ME timing explicitly excludes local sorting, §4.1).
    pub elapsed: lots_sim::SimDuration,
}

/// Combine per-node results: checksums add modulo 2⁶⁴, elapsed is the
/// slowest node (execution time).
pub fn combine(results: &[AppResult]) -> AppResult {
    AppResult {
        checksum: results
            .iter()
            .fold(0u64, |acc, r| acc.wrapping_add(r.checksum)),
        elapsed: results
            .iter()
            .map(|r| r.elapsed)
            .max()
            .unwrap_or(lots_sim::SimDuration::ZERO),
    }
}
