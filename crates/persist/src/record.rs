//! Journal record wire format.
//!
//! Every record is framed `[payload_len u32][crc u32][kind u8]`
//! `[payload…]`, all little-endian, with the CRC-32 (IEEE) computed
//! over the kind byte plus payload. Decoding is strict: a truncated
//! frame, a checksum mismatch, or trailing payload bytes all yield
//! `None` — a torn append therefore cuts the readable log exactly at
//! the last intact record, never mid-record.
//!
//! Object content never appears raw: interval diffs carry the XOR of
//! the new master against the previously journaled content, and both
//! diffs and compacted images are RLE-compressed with the same
//! word-granular code the swap store uses ([`lots_disk::RleImage`]),
//! so repetitive workloads keep their logs small.

use std::collections::BTreeMap;

/// Durable metadata for one live object (or page, under JIAJIA), as
/// recorded in [`Record::Alloc`] and checkpoint manifests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjMeta {
    /// Object id (page index under JIAJIA).
    pub id: u32,
    /// Home node at the time of the record.
    pub home: u32,
    /// Version as of the recording barrier (the barrier sequence at
    /// which the home last published). Carried for manifests' version
    /// vectors; excluded from state digests because each node's copy
    /// version evolves locally and is not derivable from the record
    /// stream alone.
    pub version: u64,
    /// Logical size in bytes.
    pub bytes: u64,
    /// `Some((parent_id, segment_index))` for a striped segment child.
    pub parent: Option<(u32, u32)>,
}

/// Durable name-table entry ([`Record::NameCommit`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedMeta {
    /// The committed global name.
    pub name: String,
    /// Object id the name is bound to.
    pub id: u32,
    /// Element size of the named allocation.
    pub elem_size: u32,
    /// Element count of the named allocation.
    pub len: u64,
}

/// One DMM extent in a checkpoint manifest's extent map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extent {
    /// Object occupying the extent.
    pub id: u32,
    /// Arena offset (or swap key for on-disk objects).
    pub addr: u64,
    /// Extent length in bytes.
    pub bytes: u64,
    /// `true` if resident in the DMM arena, `false` if swapped out.
    pub mapped: bool,
}

/// Payload of a [`Record::Manifest`]: everything a cold restore needs
/// besides the log prefix the manifest pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestBody {
    /// Barrier sequence this manifest checkpoints.
    pub seq: u64,
    /// State digest at `seq`; must equal the matching seal's digest.
    pub digest: u64,
    /// Full replicated directory (id order).
    pub dir: Vec<ObjMeta>,
    /// Full name table (name order).
    pub names: Vec<NamedMeta>,
    /// This node's DMM extent map.
    pub extents: Vec<Extent>,
}

/// One journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// An object entered the directory (also emitted on slot reuse,
    /// after the matching [`Record::Free`]).
    Alloc(ObjMeta),
    /// An object left the directory at a barrier.
    Free {
        /// The reclaimed object id.
        id: u32,
    },
    /// A global name was committed (new binding or rebinding).
    NameCommit(NamedMeta),
    /// A name was unbound.
    NameDrop {
        /// The dropped name.
        name: String,
    },
    /// An object's home moved.
    HomeMigrate {
        /// The migrating object.
        id: u32,
        /// Its new home node.
        home: u32,
    },
    /// One published interval diff for a home-owned object: the RLE
    /// byte stream of (new content XOR previously journaled content).
    Diff {
        /// The object written this interval.
        id: u32,
        /// Barrier sequence that published the diff.
        seq: u64,
        /// `RleImage::to_bytes` of the XOR delta.
        delta: Vec<u8>,
    },
    /// Barrier seal: closes the records of one barrier interval.
    Seal {
        /// Barrier sequence.
        seq: u64,
        /// The node's virtual clock (nanoseconds) at the barrier.
        clock: u64,
        /// Digest of the node's durable state at `seq`
        /// (see [`state_digest`]).
        digest: u64,
    },
    /// Checkpoint manifest (follows the seal of the same barrier).
    Manifest(Box<ManifestBody>),
    /// A compacted object image: consolidated content at barrier
    /// `upto_seq`, replacing every earlier diff of the object.
    Compacted {
        /// The consolidated object.
        id: u32,
        /// Barrier sequence the image is current at.
        upto_seq: u64,
        /// `RleImage::to_bytes` of the full content.
        image: Vec<u8>,
    },
    /// Marks that every diff at or below `upto_seq` has been squashed,
    /// even when the run left no consolidated images (no live
    /// home-owned masters at the horizon). Restore must not try to
    /// re-verify seals at or below the newest horizon.
    CompactionHorizon {
        /// Newest barrier the compactor squashed up to.
        upto_seq: u64,
    },
}

const KIND_ALLOC: u8 = 1;
const KIND_FREE: u8 = 2;
const KIND_NAME_COMMIT: u8 = 3;
const KIND_NAME_DROP: u8 = 4;
const KIND_HOME_MIGRATE: u8 = 5;
const KIND_DIFF: u8 = 6;
const KIND_SEAL: u8 = 7;
const KIND_MANIFEST: u8 = 8;
const KIND_COMPACTED: u8 = 9;
const KIND_COMPACTION_HORIZON: u8 = 10;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3 polynomial) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit streaming hash (state digests).
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Fold `bytes` into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Fold one little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Fold one little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

/// Digest of one node's durable state at barrier `seq`: directory
/// membership (id, home, size, striping parent — versions excluded,
/// see [`ObjMeta::version`]), the name table, and the content of every
/// home-owned master this node has journaled. Sealed into every
/// [`Record::Seal`]; a restore fold recomputes it from the records
/// alone, so any divergence between journal and replay is caught at
/// the exact barrier it appears.
pub fn state_digest(
    seq: u64,
    dir: &BTreeMap<u32, ObjMeta>,
    names: &BTreeMap<String, NamedMeta>,
    shadows: &BTreeMap<u32, Vec<u8>>,
) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(seq);
    h.write_u64(dir.len() as u64);
    for (id, m) in dir {
        h.write_u32(*id);
        h.write_u32(m.home);
        h.write_u64(m.bytes);
        match m.parent {
            Some((p, s)) => {
                h.write(&[1]);
                h.write_u32(p);
                h.write_u32(s);
            }
            None => h.write(&[0]),
        }
    }
    h.write_u64(names.len() as u64);
    for (name, nm) in names {
        h.write_u64(name.len() as u64);
        h.write(name.as_bytes());
        h.write_u32(nm.id);
        h.write_u32(nm.elem_size);
        h.write_u64(nm.len);
    }
    h.write_u64(shadows.len() as u64);
    for (id, content) in shadows {
        h.write_u32(*id);
        h.write_u64(content.len() as u64);
        h.write(content);
    }
    h.finish()
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_meta(out: &mut Vec<u8>, m: &ObjMeta) {
    put_u32(out, m.id);
    put_u32(out, m.home);
    put_u64(out, m.version);
    put_u64(out, m.bytes);
    match m.parent {
        Some((p, s)) => {
            out.push(1);
            put_u32(out, p);
            put_u32(out, s);
        }
        None => out.push(0),
    }
}

fn put_name(out: &mut Vec<u8>, nm: &NamedMeta) {
    put_u32(out, nm.name.len() as u32);
    out.extend_from_slice(nm.name.as_bytes());
    put_u32(out, nm.id);
    put_u32(out, nm.elem_size);
    put_u64(out, nm.len);
}

fn put_extent(out: &mut Vec<u8>, e: &Extent) {
    put_u32(out, e.id);
    put_u64(out, e.addr);
    put_u64(out, e.bytes);
    out.push(e.mapped as u8);
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Strict little-endian payload reader.
struct Rd<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Rd<'a> {
        Rd { b, at: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.b.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        Some(self.take(n)?.to_vec())
    }

    fn meta(&mut self) -> Option<ObjMeta> {
        let id = self.u32()?;
        let home = self.u32()?;
        let version = self.u64()?;
        let bytes = self.u64()?;
        let parent = match self.u8()? {
            0 => None,
            1 => Some((self.u32()?, self.u32()?)),
            _ => return None,
        };
        Some(ObjMeta {
            id,
            home,
            version,
            bytes,
            parent,
        })
    }

    fn name(&mut self) -> Option<NamedMeta> {
        let name = String::from_utf8(self.bytes()?).ok()?;
        Some(NamedMeta {
            name,
            id: self.u32()?,
            elem_size: self.u32()?,
            len: self.u64()?,
        })
    }

    fn extent(&mut self) -> Option<Extent> {
        Some(Extent {
            id: self.u32()?,
            addr: self.u64()?,
            bytes: self.u64()?,
            mapped: match self.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            },
        })
    }

    fn done(&self) -> bool {
        self.at == self.b.len()
    }
}

impl Record {
    fn kind(&self) -> u8 {
        match self {
            Record::Alloc(_) => KIND_ALLOC,
            Record::Free { .. } => KIND_FREE,
            Record::NameCommit(_) => KIND_NAME_COMMIT,
            Record::NameDrop { .. } => KIND_NAME_DROP,
            Record::HomeMigrate { .. } => KIND_HOME_MIGRATE,
            Record::Diff { .. } => KIND_DIFF,
            Record::Seal { .. } => KIND_SEAL,
            Record::Manifest(_) => KIND_MANIFEST,
            Record::Compacted { .. } => KIND_COMPACTED,
            Record::CompactionHorizon { .. } => KIND_COMPACTION_HORIZON,
        }
    }

    /// Append the framed record to `out`; returns the frame length in
    /// bytes (what the journal books on the disk device).
    pub fn encode_into(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        put_u32(out, 0); // payload length backpatched below
        put_u32(out, 0); // crc backpatched below
        out.push(self.kind());
        match self {
            Record::Alloc(m) => put_meta(out, m),
            Record::Free { id } => put_u32(out, *id),
            Record::NameCommit(nm) => put_name(out, nm),
            Record::NameDrop { name } => put_bytes(out, name.as_bytes()),
            Record::HomeMigrate { id, home } => {
                put_u32(out, *id);
                put_u32(out, *home);
            }
            Record::Diff { id, seq, delta } => {
                put_u32(out, *id);
                put_u64(out, *seq);
                put_bytes(out, delta);
            }
            Record::Seal { seq, clock, digest } => {
                put_u64(out, *seq);
                put_u64(out, *clock);
                put_u64(out, *digest);
            }
            Record::Manifest(b) => {
                put_u64(out, b.seq);
                put_u64(out, b.digest);
                put_u32(out, b.dir.len() as u32);
                for m in &b.dir {
                    put_meta(out, m);
                }
                put_u32(out, b.names.len() as u32);
                for nm in &b.names {
                    put_name(out, nm);
                }
                put_u32(out, b.extents.len() as u32);
                for e in &b.extents {
                    put_extent(out, e);
                }
            }
            Record::Compacted {
                id,
                upto_seq,
                image,
            } => {
                put_u32(out, *id);
                put_u64(out, *upto_seq);
                put_bytes(out, image);
            }
            Record::CompactionHorizon { upto_seq } => put_u64(out, *upto_seq),
        }
        let payload_len = (out.len() - start - 9) as u32;
        out[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
        let crc = crc32(&out[start + 8..]);
        out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
        out.len() - start
    }
}

/// Decode the record at the head of `bytes`. Returns the record and
/// the frame length consumed, or `None` on a truncated frame, checksum
/// mismatch, or malformed payload — the caller treats that point as
/// the torn end of the log.
pub fn decode_record(bytes: &[u8]) -> Option<(Record, usize)> {
    let len = u32::from_le_bytes(bytes.get(0..4)?.try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(bytes.get(4..8)?.try_into().ok()?);
    let end = 9usize.checked_add(len)?;
    let frame = bytes.get(8..end)?;
    if crc32(frame) != crc {
        return None;
    }
    let mut rd = Rd::new(&frame[1..]);
    let rec = match frame[0] {
        KIND_ALLOC => Record::Alloc(rd.meta()?),
        KIND_FREE => Record::Free { id: rd.u32()? },
        KIND_NAME_COMMIT => Record::NameCommit(rd.name()?),
        KIND_NAME_DROP => Record::NameDrop {
            name: String::from_utf8(rd.bytes()?).ok()?,
        },
        KIND_HOME_MIGRATE => Record::HomeMigrate {
            id: rd.u32()?,
            home: rd.u32()?,
        },
        KIND_DIFF => Record::Diff {
            id: rd.u32()?,
            seq: rd.u64()?,
            delta: rd.bytes()?,
        },
        KIND_SEAL => Record::Seal {
            seq: rd.u64()?,
            clock: rd.u64()?,
            digest: rd.u64()?,
        },
        KIND_MANIFEST => {
            let seq = rd.u64()?;
            let digest = rd.u64()?;
            let n_dir = rd.u32()? as usize;
            let mut dir = Vec::with_capacity(n_dir.min(4096));
            for _ in 0..n_dir {
                dir.push(rd.meta()?);
            }
            let n_names = rd.u32()? as usize;
            let mut names = Vec::with_capacity(n_names.min(4096));
            for _ in 0..n_names {
                names.push(rd.name()?);
            }
            let n_ext = rd.u32()? as usize;
            let mut extents = Vec::with_capacity(n_ext.min(4096));
            for _ in 0..n_ext {
                extents.push(rd.extent()?);
            }
            Record::Manifest(Box::new(ManifestBody {
                seq,
                digest,
                dir,
                names,
                extents,
            }))
        }
        KIND_COMPACTED => Record::Compacted {
            id: rd.u32()?,
            upto_seq: rd.u64()?,
            image: rd.bytes()?,
        },
        KIND_COMPACTION_HORIZON => Record::CompactionHorizon {
            upto_seq: rd.u64()?,
        },
        _ => return None,
    };
    if !rd.done() {
        return None;
    }
    Some((rec, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::Alloc(ObjMeta {
                id: 7,
                home: 2,
                version: 3,
                bytes: 256,
                parent: Some((5, 1)),
            }),
            Record::Free { id: 7 },
            Record::NameCommit(NamedMeta {
                name: "grid".into(),
                id: 9,
                elem_size: 8,
                len: 1024,
            }),
            Record::NameDrop {
                name: "grid".into(),
            },
            Record::HomeMigrate { id: 4, home: 3 },
            Record::Diff {
                id: 4,
                seq: 11,
                delta: vec![1, 2, 3, 4, 5],
            },
            Record::Seal {
                seq: 11,
                clock: 123_456_789,
                digest: 0xDEAD_BEEF,
            },
            Record::Manifest(Box::new(ManifestBody {
                seq: 11,
                digest: 0xDEAD_BEEF,
                dir: vec![ObjMeta {
                    id: 4,
                    home: 3,
                    version: 11,
                    bytes: 64,
                    parent: None,
                }],
                names: vec![NamedMeta {
                    name: "x".into(),
                    id: 4,
                    elem_size: 4,
                    len: 16,
                }],
                extents: vec![Extent {
                    id: 4,
                    addr: 4096,
                    bytes: 64,
                    mapped: true,
                }],
            })),
            Record::Compacted {
                id: 4,
                upto_seq: 11,
                image: vec![9; 17],
            },
            Record::CompactionHorizon { upto_seq: 11 },
        ]
    }

    #[test]
    fn every_kind_roundtrips_and_concatenates() {
        let recs = samples();
        let mut stream = Vec::new();
        let mut sizes = Vec::new();
        for r in &recs {
            sizes.push(r.encode_into(&mut stream));
        }
        let mut at = 0;
        for (r, sz) in recs.iter().zip(&sizes) {
            let (back, used) = decode_record(&stream[at..]).expect("valid record");
            assert_eq!(&back, r);
            assert_eq!(used, *sz);
            at += used;
        }
        assert_eq!(at, stream.len());
    }

    #[test]
    fn truncation_at_every_byte_is_detected() {
        let mut stream = Vec::new();
        for r in samples() {
            stream.clear();
            r.encode_into(&mut stream);
            for cut in 0..stream.len() {
                assert!(
                    decode_record(&stream[..cut]).is_none(),
                    "prefix {cut}/{} of {r:?} must not decode",
                    stream.len()
                );
            }
        }
    }

    #[test]
    fn bitflip_anywhere_is_detected() {
        let mut stream = Vec::new();
        Record::Seal {
            seq: 5,
            clock: 99,
            digest: 42,
        }
        .encode_into(&mut stream);
        for i in 0..stream.len() {
            let mut bad = stream.clone();
            bad[i] ^= 0x10;
            if let Some((rec, used)) = decode_record(&bad) {
                // A flip in the length field could in principle frame a
                // different-but-valid record; it must at least not
                // reproduce the original bytes.
                let mut re = Vec::new();
                rec.encode_into(&mut re);
                assert_ne!((re, used), (stream.clone(), stream.len()));
            }
        }
    }

    #[test]
    fn crc_reference_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn digest_depends_on_every_component() {
        let dir: BTreeMap<u32, ObjMeta> = [(
            1u32,
            ObjMeta {
                id: 1,
                home: 0,
                version: 1,
                bytes: 8,
                parent: None,
            },
        )]
        .into_iter()
        .collect();
        let names: BTreeMap<String, NamedMeta> = BTreeMap::new();
        let shadows: BTreeMap<u32, Vec<u8>> = [(1u32, vec![1, 2, 3])].into_iter().collect();
        let base = state_digest(4, &dir, &names, &shadows);
        assert_ne!(base, state_digest(5, &dir, &names, &shadows));
        let mut dir2 = dir.clone();
        dir2.get_mut(&1).unwrap().home = 1;
        assert_ne!(base, state_digest(4, &dir2, &names, &shadows));
        let mut sh2 = shadows.clone();
        sh2.get_mut(&1).unwrap()[0] = 9;
        assert_ne!(base, state_digest(4, &dir, &names, &sh2));
        // Versions are deliberately excluded.
        let mut dir3 = dir.clone();
        dir3.get_mut(&1).unwrap().version = 77;
        assert_eq!(base, state_digest(4, &dir3, &names, &shadows));
    }
}
