//! Persistence configuration: checkpoint policy and compaction tuning.

use lots_sim::SimDuration;

/// When a node seals its journal segment and appends a checkpoint
/// manifest. Policies are cluster-uniform: every node checkpoints at
/// the same barrier sequences, so a cluster checkpoint is the set of
/// per-node manifests with one sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Journal only; no manifests, so the log cannot seed a restore.
    Never,
    /// Checkpoint every `n`-th barrier (sequences `n, 2n, 3n, …`).
    EveryNBarriers(u64),
    /// Checkpoint exactly at the listed barrier sequences.
    AtBarriers(Vec<u64>),
}

impl CheckpointPolicy {
    /// Does barrier `seq` (1-based) end with a checkpoint?
    pub fn due(&self, seq: u64) -> bool {
        match self {
            CheckpointPolicy::Never => false,
            CheckpointPolicy::EveryNBarriers(n) => *n > 0 && seq.is_multiple_of(*n),
            CheckpointPolicy::AtBarriers(seqs) => seqs.contains(&seq),
        }
    }
}

/// Background log-compaction tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionConfig {
    /// Master switch; `false` leaves logs append-only forever.
    pub enabled: bool,
    /// Trigger threshold: compact once superseded diff bytes make up
    /// at least this many permille of all diff bytes in the log.
    pub garbage_permille: u32,
    /// Don't bother below this many cumulative diff bytes.
    pub min_log_bytes: u64,
    /// How often the compaction daemon re-examines its node's log.
    pub poll: SimDuration,
}

impl Default for CompactionConfig {
    fn default() -> CompactionConfig {
        CompactionConfig {
            enabled: true,
            garbage_permille: 300,
            min_log_bytes: 4096,
            poll: SimDuration::from_millis(1),
        }
    }
}

/// Full persistence configuration, carried by the runtime options
/// (`LotsConfig::persist` / `JiaOptions::persist`). Absent (`None`)
/// persistence is off and the run is bit-identical to a build without
/// this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistConfig {
    /// Checkpoint policy.
    pub checkpoint: CheckpointPolicy,
    /// Compaction tuning.
    pub compaction: CompactionConfig,
}

impl PersistConfig {
    /// Journal with the given checkpoint policy and default compaction.
    pub fn new(checkpoint: CheckpointPolicy) -> PersistConfig {
        PersistConfig {
            checkpoint,
            compaction: CompactionConfig::default(),
        }
    }

    /// Shorthand for [`CheckpointPolicy::EveryNBarriers`].
    pub fn every(n: u64) -> PersistConfig {
        PersistConfig::new(CheckpointPolicy::EveryNBarriers(n))
    }

    /// Replace the compaction tuning.
    #[must_use]
    pub fn with_compaction(mut self, compaction: CompactionConfig) -> PersistConfig {
        self.compaction = compaction;
        self
    }

    /// Disable background compaction.
    #[must_use]
    pub fn without_compaction(mut self) -> PersistConfig {
        self.compaction.enabled = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_due() {
        assert!(!CheckpointPolicy::Never.due(4));
        let every = CheckpointPolicy::EveryNBarriers(4);
        assert!(!every.due(1));
        assert!(every.due(4));
        assert!(every.due(8));
        assert!(!every.due(9));
        assert!(!CheckpointPolicy::EveryNBarriers(0).due(0));
        let at = CheckpointPolicy::AtBarriers(vec![3, 7]);
        assert!(at.due(3));
        assert!(at.due(7));
        assert!(!at.due(4));
    }

    #[test]
    fn builders() {
        let p = PersistConfig::every(4).without_compaction();
        assert_eq!(p.checkpoint, CheckpointPolicy::EveryNBarriers(4));
        assert!(!p.compaction.enabled);
        let c = CompactionConfig {
            garbage_permille: 500,
            ..CompactionConfig::default()
        };
        assert_eq!(
            PersistConfig::every(2)
                .with_compaction(c.clone())
                .compaction,
            c
        );
    }
}
