//! `lots-persist` — a log-structured durability layer under the DSM.
//!
//! The paper's LOTS is a compute-only DSM: barrier diffs are applied
//! and forgotten, so nothing survives the run. This crate adds the
//! storage layer the ROADMAP names as the foundation for
//! checkpoint/restart: a per-node append-only **diff journal** in
//! which every barrier's published interval diffs — plus the object
//! lifecycle events (alloc / free / name commits / home migration /
//! segment placement) — are recorded as length-prefixed,
//! RLE-compressed, CRC-checksummed records in deterministic order.
//!
//! Three mechanisms layer on the journal:
//!
//! * **Background compaction** ([`NodeJournal::maybe_compact`]) — when
//!   a log's live/garbage ratio crosses a threshold, runs of interval
//!   diffs below the previous sealed checkpoint are squashed into
//!   consolidated [`Record::Compacted`] object images. The runtime
//!   drives this from a scheduler daemon task and charges the I/O on
//!   the same serial disk device as demand traffic, so compaction
//!   visibly competes with the application.
//! * **Incremental checkpoints** ([`CheckpointPolicy`]) — at chosen
//!   barriers each node seals its journal segment and appends a
//!   manifest (directory, name table, per-object version vector, DMM
//!   extent map); a checkpoint is just a manifest plus the log prefix
//!   it pins.
//! * **Restore** ([`PersistStore::restore`]) — rebuilds per-node
//!   object state, homes and the replicated directory purely from the
//!   manifests + journals, truncating any torn tail to the newest
//!   complete checkpoint. The runtimes then replay deterministically
//!   against a [`VerifyPlan`], asserting the rebuilt state digests at
//!   every sealed barrier, to byte-identical reports and checksums.
//!
//! All structures use `BTreeMap` (never hash order) and fixed
//! little-endian encodings, so journal bytes — like every other report
//! in this repository — are a pure function of the simulated schedule.

#![deny(missing_docs)]

pub mod config;
pub mod journal;
pub mod record;
pub mod restore;
pub mod store;

pub use config::{CheckpointPolicy, CompactionConfig, PersistConfig};
pub use journal::{
    BarrierInput, BarrierOutcome, CompactionOutcome, NodeJournal, SealInfo, VerifyPlan,
};
pub use record::{crc32, state_digest, Extent, ManifestBody, NamedMeta, ObjMeta, Record};
pub use restore::{PersistError, RestoredCluster, RestoredNode};
pub use store::PersistStore;
