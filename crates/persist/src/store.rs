//! The durable byte store behind the per-node journals.
//!
//! A [`PersistStore`] is the simulation's "disk platter": one
//! append-only byte log per node, living outside any cluster so it
//! survives teardown (and simulated crashes). Runs write through their
//! [`NodeJournal`]s; a later [`PersistStore::restore`] parses the logs
//! back into a [`RestoredCluster`]. Cloning shares the underlying
//! logs, like cloning a file handle.
//!
//! [`NodeJournal`]: crate::journal::NodeJournal

use std::sync::Arc;

use parking_lot::Mutex;

use crate::restore::{restore, PersistError, RestoredCluster};

/// Cluster-wide set of per-node journal logs. Cheap to clone (shared
/// handle); pass one clone into the run and keep another to restore
/// from after the run (or its crash).
#[derive(Debug, Clone)]
pub struct PersistStore {
    inner: Arc<Mutex<Vec<Vec<u8>>>>,
}

impl PersistStore {
    /// Empty logs for an `n`-node cluster.
    pub fn new(n: usize) -> PersistStore {
        PersistStore {
            inner: Arc::new(Mutex::new(vec![Vec::new(); n])),
        }
    }

    /// Number of node logs.
    pub fn nodes(&self) -> usize {
        self.inner.lock().len()
    }

    /// Current length of one node's log in bytes.
    pub fn log_bytes(&self, node: usize) -> u64 {
        self.inner.lock()[node].len() as u64
    }

    /// Snapshot one node's full log.
    pub fn log(&self, node: usize) -> Vec<u8> {
        self.inner.lock()[node].clone()
    }

    /// Append raw record bytes to one node's log.
    pub(crate) fn append(&self, node: usize, bytes: &[u8]) {
        self.inner.lock()[node].extend_from_slice(bytes);
    }

    /// Atomically replace one node's log (compaction rewrite).
    pub(crate) fn replace(&self, node: usize, log: Vec<u8>) {
        self.inner.lock()[node] = log;
    }

    /// A deep copy with its own private logs (unlike [`Clone`], which
    /// shares them like a file handle) — the base for non-destructive
    /// fault-injection experiments on a finished run's journals.
    pub fn fork(&self) -> PersistStore {
        PersistStore {
            inner: Arc::new(Mutex::new(self.inner.lock().clone())),
        }
    }

    /// Fault injection: tear one node's log to its first `keep` bytes,
    /// as a crash mid-append would. Restore must truncate the readable
    /// log to the last intact record (and the cluster to the last
    /// complete checkpoint).
    pub fn truncate_tail(&self, node: usize, keep: usize) {
        let mut logs = self.inner.lock();
        let len = logs[node].len().min(keep);
        logs[node].truncate(len);
    }

    /// Fault injection: flip one byte of a node's log.
    pub fn corrupt_byte(&self, node: usize, at: usize) {
        let mut logs = self.inner.lock();
        if let Some(b) = logs[node].get_mut(at) {
            *b ^= 0xFF;
        }
    }

    /// Rebuild cluster state from the newest complete checkpoint: per
    /// node, parse the log up to any torn tail, take the newest
    /// manifest sequence completed by *every* node, fold the records
    /// to materialize directory, name table, extent map and home-owned
    /// object content at that checkpoint, and verify every recomputable
    /// seal/manifest digest along the way.
    pub fn restore(&self) -> Result<RestoredCluster, PersistError> {
        restore(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_logs() {
        let s = PersistStore::new(2);
        let s2 = s.clone();
        s.append(1, &[1, 2, 3]);
        assert_eq!(s2.log_bytes(1), 3);
        assert_eq!(s2.log(1), vec![1, 2, 3]);
        assert_eq!(s2.log_bytes(0), 0);
        assert_eq!(s.nodes(), 2);
    }

    #[test]
    fn fault_injection_helpers() {
        let s = PersistStore::new(1);
        s.append(0, &[10, 20, 30, 40]);
        s.corrupt_byte(0, 1);
        assert_eq!(s.log(0), vec![10, 20 ^ 0xFF, 30, 40]);
        s.truncate_tail(0, 2);
        assert_eq!(s.log(0), vec![10, 20 ^ 0xFF]);
        s.truncate_tail(0, 100); // beyond end: no-op
        assert_eq!(s.log_bytes(0), 2);
    }
}
