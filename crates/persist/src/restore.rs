//! Cold-start restore: journals + manifests → cluster state.
//!
//! Restore is a pure fold over each node's record stream. Parsing
//! stops at the first frame that fails its length/CRC check (a torn
//! append), the cluster checkpoint `K` is the newest manifest sequence
//! completed by **every** node, and each node's state at `K` is
//! rebuilt purely from its records: compacted images seed object
//! content, interval diffs XOR on top, lifecycle records maintain the
//! directory and name table, and the manifest at `K` supplies the
//! authoritative version vector and extent map.
//!
//! Every digest that is still recomputable is verified during the
//! fold: seal digests for barriers newer than the newest compaction
//! horizon (older seals may reference diffs compaction has squashed),
//! and manifest digests from that horizon on. A replayed run then
//! re-verifies the same digests barrier-by-barrier through its
//! [`VerifyPlan`](crate::journal::VerifyPlan).

use std::collections::BTreeMap;

use lots_disk::RleImage;

use crate::journal::SealInfo;
use crate::record::{decode_record, state_digest, Extent, NamedMeta, ObjMeta, Record};
use crate::store::PersistStore;

/// Why a restore could not produce a consistent cluster state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// A node's readable log contains no complete checkpoint manifest.
    NoCheckpoint {
        /// The node without a manifest.
        node: usize,
    },
    /// The cluster checkpoint sequence exists on other nodes but this
    /// node's log has no manifest at it (policies are cluster-uniform,
    /// so this indicates a damaged log).
    MissingManifest {
        /// The node missing the manifest.
        node: usize,
        /// The cluster checkpoint sequence.
        seq: u64,
    },
    /// A recomputed state digest disagrees with the sealed one.
    DigestMismatch {
        /// The node whose fold diverged.
        node: usize,
        /// The barrier at which it diverged.
        seq: u64,
    },
    /// A structurally valid record could not be applied (e.g. a diff
    /// whose RLE payload does not parse).
    Inconsistent {
        /// The node with the bad record.
        node: usize,
        /// Log byte offset of the record.
        at: usize,
        /// What went wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::NoCheckpoint { node } => {
                write!(f, "node {node}: no complete checkpoint manifest in log")
            }
            PersistError::MissingManifest { node, seq } => {
                write!(f, "node {node}: no manifest at cluster checkpoint {seq}")
            }
            PersistError::DigestMismatch { node, seq } => {
                write!(f, "node {node}: state digest mismatch at barrier {seq}")
            }
            PersistError::Inconsistent { node, at, what } => {
                write!(f, "node {node}: {what} at log byte {at}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// One node's state rebuilt at the cluster checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct RestoredNode {
    /// The node's rank.
    pub me: usize,
    /// Replicated directory at the checkpoint (id order), including
    /// the per-object version vector from the manifest.
    pub dir: Vec<ObjMeta>,
    /// Name table at the checkpoint.
    pub names: Vec<NamedMeta>,
    /// The node's DMM extent map at the checkpoint.
    pub extents: Vec<Extent>,
    /// Content of every home-owned master this node had journaled by
    /// the checkpoint. Objects never published through a barrier have
    /// no journaled content (they are still in their unwritten state).
    pub objects: BTreeMap<u32, Vec<u8>>,
    /// Digest + virtual clock of every seal in the readable log
    /// (including barriers after the checkpoint — replay verifies
    /// against these).
    pub seals: BTreeMap<u64, SealInfo>,
    /// Log bytes up to and including the checkpoint manifest — what a
    /// rejoining node reads back from its own disk.
    pub log_bytes_at_checkpoint: u64,
    /// Total readable log bytes.
    pub log_bytes_total: u64,
    /// Bytes dropped from the tail as torn/corrupt.
    pub torn_bytes: u64,
}

/// Cluster state rebuilt from a [`PersistStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct RestoredCluster {
    /// The cluster checkpoint: newest manifest sequence completed by
    /// every node.
    pub checkpoint_seq: u64,
    /// Per-node rebuilt state, indexed by rank.
    pub nodes: Vec<RestoredNode>,
}

impl RestoredCluster {
    /// The verification plan a replaying node runs against: every
    /// sealed digest/clock in its log, and the checkpoint sequence
    /// separating verified-from-disk barriers from replayed ones.
    pub fn verify_plan(&self, node: usize) -> crate::journal::VerifyPlan {
        crate::journal::VerifyPlan {
            checkpoint_seq: self.checkpoint_seq,
            seals: self.nodes[node].seals.clone(),
        }
    }
}

/// Streaming fold of one node's record stream: directory membership,
/// name table, and home-owned master content. Shared by restore and by
/// the compactor (which folds to the previous checkpoint to build its
/// consolidated images).
pub(crate) struct Fold {
    me: u32,
    /// Directory as of the last applied record. `version` fields are
    /// best-effort (alloc-time); digests exclude them.
    pub dir: BTreeMap<u32, ObjMeta>,
    /// Name table as of the last applied record.
    pub names: BTreeMap<String, NamedMeta>,
    /// Home-owned master content (mirrors the journal's shadows).
    pub content: BTreeMap<u32, Vec<u8>>,
}

impl Fold {
    pub(crate) fn new(me: u32) -> Fold {
        Fold {
            me,
            dir: BTreeMap::new(),
            names: BTreeMap::new(),
            content: BTreeMap::new(),
        }
    }

    /// Apply one record. Seal/manifest records are fold no-ops (the
    /// caller checks digests around them).
    pub(crate) fn apply(&mut self, rec: &Record) -> Result<(), &'static str> {
        match rec {
            Record::Alloc(m) => {
                self.dir.insert(m.id, m.clone());
                self.content.remove(&m.id);
            }
            Record::Free { id } => {
                self.dir.remove(id);
                self.content.remove(id);
            }
            Record::NameCommit(nm) => {
                self.names.insert(nm.name.clone(), nm.clone());
            }
            Record::NameDrop { name } => {
                self.names.remove(name);
            }
            Record::HomeMigrate { id, home } => {
                if let Some(m) = self.dir.get_mut(id) {
                    m.home = *home;
                }
                if *home != self.me {
                    self.content.remove(id);
                }
            }
            Record::Diff { id, delta, .. } => {
                let (img, _) = RleImage::from_bytes(delta).map_err(|_| "corrupt diff payload")?;
                let delta = img.decode();
                match self.content.get_mut(id) {
                    Some(cur) => {
                        if cur.len() < delta.len() {
                            cur.resize(delta.len(), 0);
                        }
                        for (c, d) in cur.iter_mut().zip(&delta) {
                            *c ^= d;
                        }
                    }
                    None => {
                        self.content.insert(*id, delta);
                    }
                }
            }
            Record::Compacted { id, image, .. } => {
                let (img, _) = RleImage::from_bytes(image).map_err(|_| "corrupt image payload")?;
                self.content.insert(*id, img.decode());
            }
            Record::Seal { .. } | Record::Manifest(_) | Record::CompactionHorizon { .. } => {}
        }
        Ok(())
    }

    /// The fold's state digest at barrier `seq`.
    pub(crate) fn digest(&self, seq: u64) -> u64 {
        state_digest(seq, &self.dir, &self.names, &self.content)
    }
}

struct ParsedLog {
    recs: Vec<(Record, std::ops::Range<usize>)>,
    readable: usize,
    torn: usize,
}

fn parse_log(bytes: &[u8]) -> ParsedLog {
    let mut recs = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        match decode_record(&bytes[at..]) {
            Some((rec, used)) => {
                recs.push((rec, at..at + used));
                at += used;
            }
            None => break,
        }
    }
    ParsedLog {
        recs,
        readable: at,
        torn: bytes.len() - at,
    }
}

pub(crate) fn restore(store: &PersistStore) -> Result<RestoredCluster, PersistError> {
    let n = store.nodes();
    let parsed: Vec<ParsedLog> = (0..n).map(|node| parse_log(&store.log(node))).collect();
    // The cluster checkpoint: newest manifest every node completed.
    let mut k = u64::MAX;
    for (node, p) in parsed.iter().enumerate() {
        let last = p
            .recs
            .iter()
            .filter_map(|(r, _)| match r {
                Record::Manifest(b) => Some(b.seq),
                _ => None,
            })
            .max()
            .ok_or(PersistError::NoCheckpoint { node })?;
        k = k.min(last);
    }
    let mut nodes = Vec::with_capacity(n);
    for (node, p) in parsed.iter().enumerate() {
        let c_max = p
            .recs
            .iter()
            .filter_map(|(r, _)| match r {
                Record::Compacted { upto_seq, .. } | Record::CompactionHorizon { upto_seq } => {
                    Some(*upto_seq)
                }
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let mut fold = Fold::new(node as u32);
        let mut seals = BTreeMap::new();
        let mut snapshot = None;
        for (rec, span) in &p.recs {
            fold.apply(rec).map_err(|what| PersistError::Inconsistent {
                node,
                at: span.start,
                what,
            })?;
            match rec {
                Record::Seal { seq, clock, digest } => {
                    seals.insert(
                        *seq,
                        SealInfo {
                            digest: *digest,
                            clock: *clock,
                        },
                    );
                    // Seals at or below the compaction horizon may
                    // reference squashed diffs; skip those.
                    if *seq > c_max && fold.digest(*seq) != *digest {
                        return Err(PersistError::DigestMismatch { node, seq: *seq });
                    }
                }
                Record::Manifest(b) => {
                    if b.seq >= c_max && fold.digest(b.seq) != b.digest {
                        return Err(PersistError::DigestMismatch { node, seq: b.seq });
                    }
                    if b.seq == k {
                        let home_owned: BTreeMap<u32, Vec<u8>> = fold
                            .content
                            .iter()
                            .filter(|(id, _)| {
                                b.dir.iter().any(|m| m.id == **id && m.home == node as u32)
                            })
                            .map(|(id, c)| (*id, c.clone()))
                            .collect();
                        snapshot = Some((
                            b.dir.clone(),
                            b.names.clone(),
                            b.extents.clone(),
                            home_owned,
                            span.end as u64,
                        ));
                    }
                }
                _ => {}
            }
        }
        let (dir, names, extents, objects, log_bytes_at_checkpoint) =
            snapshot.ok_or(PersistError::MissingManifest { node, seq: k })?;
        nodes.push(RestoredNode {
            me: node,
            dir,
            names,
            extents,
            objects,
            seals,
            log_bytes_at_checkpoint,
            log_bytes_total: p.readable as u64,
            torn_bytes: p.torn as u64,
        });
    }
    Ok(RestoredCluster {
        checkpoint_seq: k,
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(PersistError::NoCheckpoint { node: 2 }
            .to_string()
            .contains("node 2"));
        assert!(PersistError::DigestMismatch { node: 0, seq: 9 }
            .to_string()
            .contains("barrier 9"));
        assert!(PersistError::MissingManifest { node: 1, seq: 4 }
            .to_string()
            .contains("checkpoint 4"));
        assert!(PersistError::Inconsistent {
            node: 0,
            at: 12,
            what: "corrupt diff payload"
        }
        .to_string()
        .contains("byte 12"));
    }

    #[test]
    fn empty_store_has_no_checkpoint() {
        let s = PersistStore::new(2);
        assert_eq!(s.restore(), Err(PersistError::NoCheckpoint { node: 0 }));
    }
}
