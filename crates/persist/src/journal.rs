//! The per-node append-only diff journal and its compactor.
//!
//! A [`NodeJournal`] is driven once per barrier, after the node's
//! interval has been published: [`NodeJournal::append_barrier`] turns
//! the node's post-barrier view (live directory, name table, content
//! of home-owned masters written this interval) into a deterministic
//! record batch — lifecycle deltas, XOR diffs against the previously
//! journaled content, a digest-carrying seal, and (when the checkpoint
//! policy fires) a manifest. The caller books the returned record
//! sizes on its serial disk device as one write-behind batch, so the
//! application never stalls on journal I/O.
//!
//! Compaction ([`NodeJournal::maybe_compact`]) rewrites the log when
//! the superseded share of diff bytes crosses the configured
//! threshold: every diff at or below the **previous** sealed
//! checkpoint is squashed into consolidated [`Record::Compacted`]
//! images placed just before that checkpoint's manifest. Squashing
//! only below the previous checkpoint keeps the newest checkpoint
//! re-foldable even if a later crash tears the newest manifest off
//! some node's log and regresses the cluster-wide restore point.

use std::collections::BTreeMap;

use lots_disk::RleImage;

use crate::config::PersistConfig;
use crate::record::{
    decode_record, state_digest, Extent, ManifestBody, NamedMeta, ObjMeta, Record,
};
use crate::restore::Fold;
use crate::store::PersistStore;

/// One barrier's post-publication view of a node, handed to
/// [`NodeJournal::append_barrier`].
#[derive(Debug, Clone)]
pub struct BarrierInput {
    /// Barrier sequence (1-based, monotonically increasing).
    pub seq: u64,
    /// The node's virtual clock at the barrier, in nanoseconds.
    pub clock_nanos: u64,
    /// Every live object after the barrier (id order not required;
    /// the journal sorts internally).
    pub live: Vec<ObjMeta>,
    /// The full committed name table after the barrier.
    pub names: Vec<NamedMeta>,
    /// `(id, content)` of every object this node homes whose master
    /// changed this interval. Freed ids are skipped by the journal.
    pub written_home: Vec<(u32, Vec<u8>)>,
    /// DMM extent map; only consulted when this barrier checkpoints
    /// (callers may leave it empty otherwise — see
    /// [`NodeJournal::checkpoint_due`]).
    pub extents: Vec<Extent>,
}

/// What one barrier appended, for the caller to book on its disk
/// device and count into its node stats.
#[derive(Debug, Clone, Default)]
pub struct BarrierOutcome {
    /// Per-record byte sizes, in append order (one write-behind batch).
    pub write_sizes: Vec<u64>,
    /// Records appended.
    pub records: u64,
    /// Total bytes appended.
    pub bytes: u64,
    /// Bytes of the checkpoint manifest, if this barrier checkpointed.
    pub checkpoint_bytes: u64,
    /// Under a [`VerifyPlan`]: `true` iff this barrier lies beyond the
    /// restored checkpoint (it was replayed, not verified-from-disk).
    pub replayed: bool,
}

/// What one compaction run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Log bytes the compactor read (the prefix it folded).
    pub read_bytes: u64,
    /// Bytes of the rewritten prefix it put back (consolidated images
    /// plus surviving records).
    pub write_bytes: u64,
    /// Net log bytes reclaimed.
    pub reclaimed: u64,
}

/// Digest + clock of one sealed barrier, as recovered by restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealInfo {
    /// The sealed state digest.
    pub digest: u64,
    /// The node's virtual clock at the seal, in nanoseconds.
    pub clock: u64,
}

/// Barrier-by-barrier verification installed on a replaying node's
/// journal: the replay must reproduce every sealed digest and clock
/// recovered from the original log, or panic at the first divergent
/// barrier.
#[derive(Debug, Clone, Default)]
pub struct VerifyPlan {
    /// The restored cluster checkpoint; barriers beyond it count as
    /// replayed.
    pub checkpoint_seq: u64,
    /// Every sealed barrier recovered from the original log.
    pub seals: BTreeMap<u64, SealInfo>,
}

/// One node's append-only journal.
pub struct NodeJournal {
    me: usize,
    store: PersistStore,
    cfg: PersistConfig,
    /// Directory as last journaled.
    dir: BTreeMap<u32, ObjMeta>,
    /// Name table as last journaled.
    names: BTreeMap<String, NamedMeta>,
    /// Last-journaled content of home-owned masters.
    shadows: BTreeMap<u32, Vec<u8>>,
    /// Bytes of the newest diff/image record per object (live bytes).
    diff_live: BTreeMap<u32, u64>,
    /// Cumulative diff/image record bytes in the log.
    diff_total: u64,
    /// Sealed checkpoint sequences, ascending.
    manifests: Vec<u64>,
    /// Newest barrier compaction has squashed up to.
    compacted_upto: u64,
    /// Log length right after the newest manifest was appended.
    bytes_at_checkpoint: u64,
    verify: Option<VerifyPlan>,
}

fn xor(a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut out = a.to_vec();
    for (o, x) in out.iter_mut().zip(b) {
        *o ^= x;
    }
    out
}

impl NodeJournal {
    /// A fresh journal for node `me` writing into `store`.
    pub fn new(me: usize, store: PersistStore, cfg: PersistConfig) -> NodeJournal {
        NodeJournal {
            me,
            store,
            cfg,
            dir: BTreeMap::new(),
            names: BTreeMap::new(),
            shadows: BTreeMap::new(),
            diff_live: BTreeMap::new(),
            diff_total: 0,
            manifests: Vec::new(),
            compacted_upto: 0,
            bytes_at_checkpoint: 0,
            verify: None,
        }
    }

    /// Install a restore verification plan (replaying runs only).
    pub fn set_verify(&mut self, plan: VerifyPlan) {
        self.verify = Some(plan);
    }

    /// Will barrier `seq` seal a checkpoint? Callers use this to
    /// decide whether to bother building the extent map.
    pub fn checkpoint_due(&self, seq: u64) -> bool {
        self.cfg.checkpoint.due(seq)
    }

    /// Log bytes pinned by the newest checkpoint (what a rejoining
    /// node reads back from its own disk to rebuild masters).
    pub fn log_bytes_at_checkpoint(&self) -> u64 {
        self.bytes_at_checkpoint
    }

    /// Log bytes appended after the newest checkpoint (what a
    /// rejoining node must still re-fetch from peers).
    pub fn log_bytes_since_checkpoint(&self) -> u64 {
        self.store
            .log_bytes(self.me)
            .saturating_sub(self.bytes_at_checkpoint)
    }

    /// Journal one barrier. Returns the appended record sizes for the
    /// caller to book on the disk device as a write-behind batch.
    pub fn append_barrier(&mut self, input: BarrierInput) -> BarrierOutcome {
        let me = self.me as u32;
        let seq = input.seq;
        let mut recs: Vec<Record> = Vec::new();
        let live: BTreeMap<u32, ObjMeta> = input.live.into_iter().map(|m| (m.id, m)).collect();
        // Frees first, in id order (slot reuse emits Free before the
        // replacement Alloc below).
        let dead: Vec<u32> = self
            .dir
            .keys()
            .filter(|id| !live.contains_key(id))
            .copied()
            .collect();
        for id in dead {
            recs.push(Record::Free { id });
            self.shadows.remove(&id);
            self.diff_live.remove(&id);
        }
        for (id, m) in &live {
            match self.dir.get(id) {
                None => recs.push(Record::Alloc(m.clone())),
                Some(old) if old.bytes != m.bytes || old.parent != m.parent => {
                    // Slot reuse: same id, different object.
                    recs.push(Record::Free { id: *id });
                    recs.push(Record::Alloc(m.clone()));
                    self.shadows.remove(id);
                    self.diff_live.remove(id);
                }
                Some(old) if old.home != m.home => {
                    recs.push(Record::HomeMigrate {
                        id: *id,
                        home: m.home,
                    });
                }
                _ => {}
            }
            if m.home != me {
                // Not (or no longer) ours to master; the new home's
                // journal carries the content from here on.
                self.shadows.remove(id);
                self.diff_live.remove(id);
            }
        }
        let names: BTreeMap<String, NamedMeta> = input
            .names
            .into_iter()
            .map(|nm| (nm.name.clone(), nm))
            .collect();
        let dropped: Vec<String> = self
            .names
            .keys()
            .filter(|n| !names.contains_key(*n))
            .cloned()
            .collect();
        for name in dropped {
            recs.push(Record::NameDrop { name });
        }
        for (name, nm) in &names {
            if self.names.get(name) != Some(nm) {
                recs.push(Record::NameCommit(nm.clone()));
            }
        }
        let mut written = input.written_home;
        written.sort_by_key(|(id, _)| *id);
        for (id, content) in written {
            let Some(meta) = live.get(&id) else {
                continue; // freed at this same barrier
            };
            if meta.home != me {
                continue; // defensive: not ours to master
            }
            let delta = match self.shadows.get(&id) {
                Some(shadow) => xor(&content, shadow),
                None => content.clone(),
            };
            let rle = RleImage::encode(&delta).to_bytes();
            recs.push(Record::Diff {
                id,
                seq,
                delta: rle,
            });
            self.shadows.insert(id, content);
        }
        self.dir = live;
        self.names = names;
        let digest = state_digest(seq, &self.dir, &self.names, &self.shadows);
        recs.push(Record::Seal {
            seq,
            clock: input.clock_nanos,
            digest,
        });
        let checkpoint = self.checkpoint_due(seq);
        if checkpoint {
            recs.push(Record::Manifest(Box::new(ManifestBody {
                seq,
                digest,
                dir: self.dir.values().cloned().collect(),
                names: self.names.values().cloned().collect(),
                extents: input.extents,
            })));
        }
        let mut buf = Vec::new();
        let mut out = BarrierOutcome::default();
        for r in &recs {
            let sz = r.encode_into(&mut buf) as u64;
            out.write_sizes.push(sz);
            match r {
                Record::Diff { id, .. } => {
                    self.diff_total += sz;
                    self.diff_live.insert(*id, sz);
                }
                Record::Manifest(_) => out.checkpoint_bytes += sz,
                _ => {}
            }
        }
        out.records = recs.len() as u64;
        out.bytes = buf.len() as u64;
        self.store.append(self.me, &buf);
        if checkpoint {
            self.manifests.push(seq);
            self.bytes_at_checkpoint = self.store.log_bytes(self.me);
        }
        if let Some(plan) = &self.verify {
            if let Some(info) = plan.seals.get(&seq) {
                assert_eq!(
                    info.digest, digest,
                    "restore verification failed: node {} state digest mismatch at barrier {seq}",
                    self.me
                );
                assert_eq!(
                    info.clock, input.clock_nanos,
                    "restore verification failed: node {} virtual clock mismatch at barrier {seq}",
                    self.me
                );
            }
            out.replayed = seq > plan.checkpoint_seq;
        }
        out
    }

    /// Would a compaction run fire right now? True once the superseded
    /// share of diff bytes crosses the configured threshold and there
    /// is a previous checkpoint to squash below.
    pub fn compaction_due(&self) -> bool {
        let c = &self.cfg.compaction;
        if !c.enabled || self.manifests.len() < 2 {
            return false;
        }
        let k_prev = self.manifests[self.manifests.len() - 2];
        if k_prev <= self.compacted_upto {
            return false;
        }
        if self.diff_total < c.min_log_bytes {
            return false;
        }
        let live: u64 = self.diff_live.values().sum();
        let garbage = self.diff_total.saturating_sub(live);
        garbage * 1000 >= u64::from(c.garbage_permille) * self.diff_total
    }

    /// Run one compaction if due: fold the log up to the previous
    /// checkpoint, squash its diffs into consolidated images placed
    /// just before that checkpoint's manifest, and rewrite the log.
    /// The caller charges `read_bytes`/`write_bytes` on the node's
    /// serial disk device (compaction competes with demand I/O).
    pub fn maybe_compact(&mut self) -> Option<CompactionOutcome> {
        if !self.compaction_due() {
            return None;
        }
        let me = self.me as u32;
        let k_prev = self.manifests[self.manifests.len() - 2];
        let old = self.store.log(self.me);
        let mut recs = Vec::new();
        let mut at = 0;
        while at < old.len() {
            let (r, used) = decode_record(&old[at..])?;
            recs.push((r, at..at + used));
            at += used;
        }
        let mut fold = Fold::new(me);
        let mut new_log: Vec<u8> = Vec::with_capacity(old.len());
        let mut folding = true;
        let mut read_bytes = 0u64;
        let mut write_bytes = 0u64;
        for (rec, span) in &recs {
            if folding {
                fold.apply(rec).ok()?;
                read_bytes += span.len() as u64;
            }
            if let Record::Manifest(b) = rec {
                if folding && b.seq == k_prev {
                    // The horizon marker first: even a run that leaves
                    // no images must tell restore which seals can no
                    // longer be re-folded.
                    Record::CompactionHorizon { upto_seq: k_prev }.encode_into(&mut new_log);
                    // Consolidated images for every live master at
                    // k_prev, in id order, ahead of the manifest that
                    // pins them.
                    for (id, content) in &fold.content {
                        if b.dir.iter().any(|m| m.id == *id && m.home == me) {
                            Record::Compacted {
                                id: *id,
                                upto_seq: k_prev,
                                image: RleImage::encode(content).to_bytes(),
                            }
                            .encode_into(&mut new_log);
                        }
                    }
                    new_log.extend_from_slice(&old[span.clone()]);
                    folding = false;
                    write_bytes = new_log.len() as u64;
                    continue;
                }
            }
            let keep = match rec {
                Record::Diff { seq, .. } => *seq > k_prev,
                Record::Compacted { upto_seq, .. } | Record::CompactionHorizon { upto_seq } => {
                    *upto_seq > k_prev
                }
                _ => true,
            };
            if keep {
                new_log.extend_from_slice(&old[span.clone()]);
            }
        }
        let reclaimed = (old.len() as u64).saturating_sub(new_log.len() as u64);
        // Recompute diff accounting and the checkpoint pin against the
        // rewritten log.
        self.diff_total = 0;
        self.diff_live.clear();
        self.bytes_at_checkpoint = 0;
        let mut at = 0;
        while at < new_log.len() {
            let (r, used) = decode_record(&new_log[at..])?;
            match &r {
                Record::Diff { id, .. } | Record::Compacted { id, .. } => {
                    self.diff_total += used as u64;
                    self.diff_live.insert(*id, used as u64);
                }
                Record::Free { id } => {
                    self.diff_live.remove(id);
                }
                Record::Manifest(_) => {
                    self.bytes_at_checkpoint = (at + used) as u64;
                }
                _ => {}
            }
            at += used;
        }
        self.store.replace(self.me, new_log);
        self.compacted_upto = k_prev;
        Some(CompactionOutcome {
            read_bytes,
            write_bytes,
            reclaimed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CheckpointPolicy, CompactionConfig};

    fn meta(id: u32, home: u32, bytes: u64) -> ObjMeta {
        ObjMeta {
            id,
            home,
            version: 0,
            bytes,
            parent: None,
        }
    }

    fn input(seq: u64, live: Vec<ObjMeta>, written: Vec<(u32, Vec<u8>)>) -> BarrierInput {
        BarrierInput {
            seq,
            clock_nanos: seq * 1000,
            live,
            names: Vec::new(),
            written_home: written,
            extents: Vec::new(),
        }
    }

    #[test]
    fn single_node_journal_restores_content() {
        let store = PersistStore::new(1);
        let mut j = NodeJournal::new(0, store.clone(), PersistConfig::every(2));
        let o = meta(1, 0, 8);
        let out = j.append_barrier(input(1, vec![o.clone()], vec![(1, vec![1u8; 8])]));
        assert!(out.records >= 3); // alloc, diff, seal
        assert_eq!(out.checkpoint_bytes, 0);
        let out = j.append_barrier(input(2, vec![o.clone()], vec![(1, vec![2u8; 8])]));
        assert!(out.checkpoint_bytes > 0, "barrier 2 checkpoints");
        assert_eq!(j.log_bytes_at_checkpoint(), store.log_bytes(0));
        let restored = store.restore().expect("restore");
        assert_eq!(restored.checkpoint_seq, 2);
        let n0 = &restored.nodes[0];
        assert_eq!(n0.objects.get(&1).unwrap(), &vec![2u8; 8]);
        assert_eq!(n0.dir.len(), 1);
        assert_eq!(n0.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_truncates_to_last_checkpoint() {
        let store = PersistStore::new(1);
        let mut j = NodeJournal::new(0, store.clone(), PersistConfig::every(2));
        let o = meta(1, 0, 8);
        for seq in 1..=4 {
            j.append_barrier(input(seq, vec![o.clone()], vec![(1, vec![seq as u8; 8])]));
        }
        let full = store.log_bytes(0);
        // Tear mid-way through the final barrier's records: restore
        // falls back to checkpoint 2... or 4 if the manifest survived.
        for keep in (0..full).rev() {
            store.truncate_tail(0, keep as usize);
            match store.restore() {
                Ok(r) => assert!(r.checkpoint_seq == 2 || r.checkpoint_seq == 4),
                Err(e) => assert_eq!(e, crate::restore::PersistError::NoCheckpoint { node: 0 }),
            }
        }
    }

    #[test]
    fn free_and_slot_reuse_reset_content() {
        let store = PersistStore::new(1);
        let mut j = NodeJournal::new(0, store.clone(), PersistConfig::every(1));
        j.append_barrier(input(1, vec![meta(1, 0, 8)], vec![(1, vec![7u8; 8])]));
        // Slot 1 reused for a differently-sized object.
        j.append_barrier(input(2, vec![meta(1, 0, 16)], vec![(1, vec![9u8; 16])]));
        let restored = store.restore().expect("restore");
        assert_eq!(
            restored.nodes[0].objects.get(&1).unwrap(),
            &vec![9u8; 16],
            "reused slot must not inherit the old object's shadow"
        );
        // Freed entirely.
        j.append_barrier(input(3, vec![], vec![]));
        let restored = store.restore().expect("restore");
        assert!(restored.nodes[0].objects.is_empty());
        assert!(restored.nodes[0].dir.is_empty());
    }

    #[test]
    fn home_migration_moves_mastership_between_journals() {
        let store = PersistStore::new(2);
        let cfg = PersistConfig::every(1);
        let mut j0 = NodeJournal::new(0, store.clone(), cfg.clone());
        let mut j1 = NodeJournal::new(1, store.clone(), cfg);
        // Barrier 1: object homed at 0.
        j0.append_barrier(input(1, vec![meta(1, 0, 8)], vec![(1, vec![1u8; 8])]));
        j1.append_barrier(input(1, vec![meta(1, 0, 8)], vec![]));
        // Barrier 2: home migrates to 1, which writes it.
        j0.append_barrier(input(2, vec![meta(1, 1, 8)], vec![]));
        j1.append_barrier(input(2, vec![meta(1, 1, 8)], vec![(1, vec![2u8; 8])]));
        let restored = store.restore().expect("restore");
        assert!(restored.nodes[0].objects.is_empty());
        assert_eq!(restored.nodes[1].objects.get(&1).unwrap(), &vec![2u8; 8]);
        assert_eq!(restored.nodes[0].dir, restored.nodes[1].dir);
    }

    #[test]
    fn names_commit_and_drop() {
        let store = PersistStore::new(1);
        let mut j = NodeJournal::new(0, store.clone(), PersistConfig::every(1));
        let nm = NamedMeta {
            name: "grid".into(),
            id: 1,
            elem_size: 4,
            len: 2,
        };
        let mut inp = input(1, vec![meta(1, 0, 8)], vec![]);
        inp.names = vec![nm.clone()];
        j.append_barrier(inp);
        let restored = store.restore().expect("restore");
        assert_eq!(restored.nodes[0].names, vec![nm]);
        j.append_barrier(input(2, vec![], vec![]));
        let restored = store.restore().expect("restore");
        assert!(restored.nodes[0].names.is_empty());
    }

    fn churn(j: &mut NodeJournal, barriers: u64) {
        let o = meta(1, 0, 64);
        for seq in 1..=barriers {
            let mut content = vec![0u8; 64];
            content[(seq as usize * 7) % 64] = seq as u8;
            j.append_barrier(input(seq, vec![o.clone()], vec![(1, content)]));
        }
    }

    #[test]
    fn compaction_reclaims_and_preserves_restore() {
        let store = PersistStore::new(1);
        let cfg = PersistConfig::every(4).with_compaction(CompactionConfig {
            enabled: true,
            garbage_permille: 100,
            min_log_bytes: 64,
            poll: lots_sim::SimDuration::from_millis(1),
        });
        let mut j = NodeJournal::new(0, store.clone(), cfg);
        churn(&mut j, 12);
        let before = store.restore().expect("restore before compaction");
        assert!(
            j.compaction_due(),
            "12 single-object diffs are mostly garbage"
        );
        let pre_bytes = store.log_bytes(0);
        let out = j.maybe_compact().expect("compaction runs");
        assert!(out.reclaimed > 0);
        assert!(out.read_bytes > 0 && out.write_bytes > 0);
        assert_eq!(store.log_bytes(0), pre_bytes - out.reclaimed);
        let after = store.restore().expect("restore after compaction");
        assert_eq!(before.checkpoint_seq, after.checkpoint_seq);
        assert_eq!(before.nodes[0].objects, after.nodes[0].objects);
        assert_eq!(before.nodes[0].dir, after.nodes[0].dir);
        assert_eq!(before.nodes[0].seals, after.nodes[0].seals);
        // A second immediate run is not due (nothing newly garbage).
        assert!(j.maybe_compact().is_none());
    }

    #[test]
    fn never_policy_never_checkpoints() {
        let store = PersistStore::new(1);
        let mut j = NodeJournal::new(
            0,
            store.clone(),
            PersistConfig::new(CheckpointPolicy::Never),
        );
        churn(&mut j, 4);
        assert_eq!(
            store.restore(),
            Err(crate::restore::PersistError::NoCheckpoint { node: 0 })
        );
        assert_eq!(j.log_bytes_at_checkpoint(), 0);
        assert_eq!(j.log_bytes_since_checkpoint(), store.log_bytes(0));
    }

    #[test]
    fn verify_plan_accepts_identical_replay_and_counts_replayed() {
        let store = PersistStore::new(1);
        let mut j = NodeJournal::new(0, store.clone(), PersistConfig::every(2));
        churn(&mut j, 4);
        let restored = store.restore().expect("restore");
        assert_eq!(restored.checkpoint_seq, 4);
        // Tear the log back past barrier 4's manifest so the plan's
        // checkpoint is 2, then replay barriers 1..=4 identically.
        let store2 = PersistStore::new(1);
        let mut j2 = NodeJournal::new(0, store2.clone(), PersistConfig::every(2));
        let mut plan = restored.verify_plan(0);
        plan.checkpoint_seq = 2;
        j2.set_verify(plan);
        let o = meta(1, 0, 64);
        let mut replayed = 0;
        for seq in 1..=4u64 {
            let mut content = vec![0u8; 64];
            content[(seq as usize * 7) % 64] = seq as u8;
            let out = j2.append_barrier(input(seq, vec![o.clone()], vec![(1, content)]));
            replayed += u64::from(out.replayed);
        }
        assert_eq!(replayed, 2, "barriers 3 and 4 lie beyond checkpoint 2");
        assert_eq!(store2.log(0), store.log(0), "replay is byte-identical");
    }

    #[test]
    #[should_panic(expected = "state digest mismatch at barrier 2")]
    fn verify_plan_panics_on_divergent_replay() {
        let store = PersistStore::new(1);
        let mut j = NodeJournal::new(0, store.clone(), PersistConfig::every(2));
        churn(&mut j, 2);
        let restored = store.restore().expect("restore");
        let mut j2 = NodeJournal::new(0, PersistStore::new(1), PersistConfig::every(2));
        j2.set_verify(restored.verify_plan(0));
        let o = meta(1, 0, 64);
        j2.append_barrier(input(
            1,
            vec![o.clone()],
            vec![(1, {
                let mut c = vec![0u8; 64];
                c[7] = 1;
                c
            })],
        ));
        // Divergent content at barrier 2.
        j2.append_barrier(input(2, vec![o], vec![(1, vec![0xAA; 64])]));
    }
}
