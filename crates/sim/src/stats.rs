//! Time-breakdown accounting.
//!
//! §4.1 of the paper decomposes the LOTS/JIAJIA execution-time gap into
//! (1) coherence-protocol efficiency, (2) object- vs page-based access
//! checking, and (3) large-object-space support, and §4.2 reports the
//! share of time spent in access checking. To reproduce those analyses
//! every node tracks *where* its virtual time went, per category.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::clock::SimDuration;

/// Category of virtual time spent on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeCategory {
    /// Application compute (element operations).
    Compute,
    /// Shared-object access checking (factor 2 of §4.1).
    AccessCheck,
    /// Large-object-space support: pinning + map checks + swap I/O
    /// (factor 3 of §4.1).
    LargeObject,
    /// Waiting on network transfers and remote service.
    Network,
    /// Disk I/O for the swap backing store.
    Disk,
    /// Twin creation, diff computation/application.
    Diffing,
    /// Synchronization stalls (barrier wait, lock wait).
    SyncWait,
    /// Protocol handler service on behalf of remote nodes.
    Handler,
}

pub const ALL_CATEGORIES: [TimeCategory; 8] = [
    TimeCategory::Compute,
    TimeCategory::AccessCheck,
    TimeCategory::LargeObject,
    TimeCategory::Network,
    TimeCategory::Disk,
    TimeCategory::Diffing,
    TimeCategory::SyncWait,
    TimeCategory::Handler,
];

impl TimeCategory {
    pub fn name(self) -> &'static str {
        match self {
            TimeCategory::Compute => "compute",
            TimeCategory::AccessCheck => "access-check",
            TimeCategory::LargeObject => "large-object",
            TimeCategory::Network => "network",
            TimeCategory::Disk => "disk",
            TimeCategory::Diffing => "diffing",
            TimeCategory::SyncWait => "sync-wait",
            TimeCategory::Handler => "handler",
        }
    }

    fn index(self) -> usize {
        match self {
            TimeCategory::Compute => 0,
            TimeCategory::AccessCheck => 1,
            TimeCategory::LargeObject => 2,
            TimeCategory::Network => 3,
            TimeCategory::Disk => 4,
            TimeCategory::Diffing => 5,
            TimeCategory::SyncWait => 6,
            TimeCategory::Handler => 7,
        }
    }
}

/// Lock-free per-node accumulator of virtual time by category, plus
/// event counters used by the §4.2 analysis.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    inner: Arc<NodeStatsInner>,
}

#[derive(Debug, Default)]
struct NodeStatsInner {
    time_ns: [AtomicU64; 8],
    access_checks: AtomicU64,
    swaps_out: AtomicU64,
    swaps_in: AtomicU64,
    swap_out_bytes: AtomicU64,
    swap_in_bytes: AtomicU64,
    swap_batches: AtomicU64,
    prefetch_hits: AtomicU64,
    page_faults: AtomicU64,
    diffs_created: AtomicU64,
    diff_bytes_sent: AtomicU64,
    objects_freed: AtomicU64,
    freed_object_bytes: AtomicU64,
    dmm_free_bytes: AtomicU64,
    dmm_largest_hole: AtomicU64,
    home_requests_served: AtomicU64,
    home_bytes_served: AtomicU64,
    versions_published: AtomicU64,
    versions_reclaimed: AtomicU64,
    rejoin_rounds: AtomicU64,
    rejoin_log_bytes: AtomicU64,
    rejoin_peer_bytes: AtomicU64,
    log_records: AtomicU64,
    log_bytes_appended: AtomicU64,
    compaction_runs: AtomicU64,
    compaction_bytes_reclaimed: AtomicU64,
    checkpoint_bytes: AtomicU64,
    restore_replay_barriers: AtomicU64,
}

impl NodeStats {
    pub fn new() -> NodeStats {
        NodeStats::default()
    }

    #[inline]
    pub fn charge(&self, cat: TimeCategory, d: SimDuration) {
        self.inner.time_ns[cat.index()].fetch_add(d.0, Ordering::Relaxed);
    }

    #[inline]
    pub fn time_in(&self, cat: TimeCategory) -> SimDuration {
        SimDuration(self.inner.time_ns[cat.index()].load(Ordering::Relaxed))
    }

    pub fn total_accounted(&self) -> SimDuration {
        SimDuration(
            self.inner
                .time_ns
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .sum(),
        )
    }

    #[inline]
    pub fn count_access_checks(&self, n: u64) {
        self.inner.access_checks.fetch_add(n, Ordering::Relaxed);
    }

    pub fn access_checks(&self) -> u64 {
        self.inner.access_checks.load(Ordering::Relaxed)
    }

    /// Record one object swapped out, with the bytes actually written
    /// to the backing store (compressed size when compression is on).
    #[inline]
    pub fn count_swap_out(&self, stored_bytes: u64) {
        self.inner.swaps_out.fetch_add(1, Ordering::Relaxed);
        self.inner
            .swap_out_bytes
            .fetch_add(stored_bytes, Ordering::Relaxed);
    }

    /// Record one object swapped back in, with the bytes actually read
    /// from the backing store.
    #[inline]
    pub fn count_swap_in(&self, stored_bytes: u64) {
        self.inner.swaps_in.fetch_add(1, Ordering::Relaxed);
        self.inner
            .swap_in_bytes
            .fetch_add(stored_bytes, Ordering::Relaxed);
    }

    /// Record one batched eviction trip to the disk device.
    #[inline]
    pub fn count_swap_batch(&self) {
        self.inner.swap_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a swap-in served from the read-ahead buffer.
    #[inline]
    pub fn count_prefetch_hit(&self) {
        self.inner.prefetch_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn swaps_out(&self) -> u64 {
        self.inner.swaps_out.load(Ordering::Relaxed)
    }

    pub fn swaps_in(&self) -> u64 {
        self.inner.swaps_in.load(Ordering::Relaxed)
    }

    /// Bytes written to the backing store by swap-outs (post-compression).
    pub fn swap_out_bytes(&self) -> u64 {
        self.inner.swap_out_bytes.load(Ordering::Relaxed)
    }

    /// Bytes read from the backing store by swap-ins (post-compression).
    pub fn swap_in_bytes(&self) -> u64 {
        self.inner.swap_in_bytes.load(Ordering::Relaxed)
    }

    /// Batched eviction trips booked on the disk device. The mean batch
    /// size is `swaps_out_written / swap_batches` (clean re-evictions
    /// skip the disk and belong to no batch).
    pub fn swap_batches(&self) -> u64 {
        self.inner.swap_batches.load(Ordering::Relaxed)
    }

    /// Swap-ins that hit the read-ahead buffer instead of issuing a
    /// demand read.
    pub fn prefetch_hits(&self) -> u64 {
        self.inner.prefetch_hits.load(Ordering::Relaxed)
    }

    /// Record one object reclaimed by the lifecycle API, with its
    /// logical byte size.
    #[inline]
    pub fn count_object_freed(&self, logical_bytes: u64) {
        self.inner.objects_freed.fetch_add(1, Ordering::Relaxed);
        self.inner
            .freed_object_bytes
            .fetch_add(logical_bytes, Ordering::Relaxed);
    }

    /// Objects reclaimed by `free` (counted at barrier reclamation).
    pub fn objects_freed(&self) -> u64 {
        self.inner.objects_freed.load(Ordering::Relaxed)
    }

    /// Cumulative logical bytes of objects reclaimed by `free`.
    pub fn freed_object_bytes(&self) -> u64 {
        self.inner.freed_object_bytes.load(Ordering::Relaxed)
    }

    /// Mirror the DMM allocator's fragmentation gauges (free bytes and
    /// largest free extent); updated by the owning node on every
    /// allocator transition.
    #[inline]
    pub fn set_dmm_gauges(&self, free_bytes: u64, largest_hole: u64) {
        self.inner
            .dmm_free_bytes
            .store(free_bytes, Ordering::Relaxed);
        self.inner
            .dmm_largest_hole
            .store(largest_hole, Ordering::Relaxed);
    }

    /// Bytes currently free in the DMM arena (gauge).
    pub fn dmm_free_bytes(&self) -> u64 {
        self.inner.dmm_free_bytes.load(Ordering::Relaxed)
    }

    /// Largest contiguous free DMM extent (gauge).
    pub fn dmm_largest_hole(&self) -> u64 {
        self.inner.dmm_largest_hole.load(Ordering::Relaxed)
    }

    /// Record one copy/page request this node served as home, with the
    /// payload bytes shipped. The per-node spread of this counter is
    /// the home-load profile that striping flattens.
    #[inline]
    pub fn count_home_request(&self, bytes: u64) {
        self.inner
            .home_requests_served
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .home_bytes_served
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Object/page copy requests this node served as home.
    pub fn home_requests_served(&self) -> u64 {
        self.inner.home_requests_served.load(Ordering::Relaxed)
    }

    /// Payload bytes this node shipped serving home requests.
    pub fn home_bytes_served(&self) -> u64 {
        self.inner.home_bytes_served.load(Ordering::Relaxed)
    }

    /// Record one immutable segment version published at a barrier
    /// (counted at the segment's home).
    #[inline]
    pub fn count_version_published(&self) {
        self.inner
            .versions_published
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Immutable segment versions published at barriers.
    pub fn versions_published(&self) -> u64 {
        self.inner.versions_published.load(Ordering::Relaxed)
    }

    /// Record one superseded segment version reclaimed at a barrier
    /// (its twin snapshot discarded).
    #[inline]
    pub fn count_version_reclaimed(&self) {
        self.inner
            .versions_reclaimed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Superseded segment versions reclaimed at barriers.
    pub fn versions_reclaimed(&self) -> u64 {
        self.inner.versions_reclaimed.load(Ordering::Relaxed)
    }

    /// Record one crash-rejoin round completed by this node, with the
    /// directory/name-table/master bytes re-fetched from peer replicas.
    #[inline]
    pub fn count_rejoin(&self, peer_bytes: u64) {
        self.inner.rejoin_rounds.fetch_add(1, Ordering::Relaxed);
        self.inner
            .rejoin_peer_bytes
            .fetch_add(peer_bytes, Ordering::Relaxed);
    }

    /// Record journal bytes a rejoining node read back from its own
    /// durable log (persistence on: masters rebuilt locally instead of
    /// being re-shipped by peers).
    #[inline]
    pub fn count_rejoin_log_bytes(&self, bytes: u64) {
        self.inner
            .rejoin_log_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Crash-rejoin rounds this node went through.
    pub fn rejoin_rounds(&self) -> u64 {
        self.inner.rejoin_rounds.load(Ordering::Relaxed)
    }

    /// Total bytes a rejoin cost, from either source.
    pub fn rejoin_bytes(&self) -> u64 {
        self.rejoin_log_bytes() + self.rejoin_peer_bytes()
    }

    /// Journal bytes read back from the node's own log during rejoins.
    pub fn rejoin_log_bytes(&self) -> u64 {
        self.inner.rejoin_log_bytes.load(Ordering::Relaxed)
    }

    /// Directory/name-table/master bytes re-fetched from peers during
    /// rejoins.
    pub fn rejoin_peer_bytes(&self) -> u64 {
        self.inner.rejoin_peer_bytes.load(Ordering::Relaxed)
    }

    /// Record one barrier's journal append batch.
    #[inline]
    pub fn count_log_append(&self, records: u64, bytes: u64) {
        self.inner.log_records.fetch_add(records, Ordering::Relaxed);
        self.inner
            .log_bytes_appended
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Journal records appended by this node.
    pub fn log_records(&self) -> u64 {
        self.inner.log_records.load(Ordering::Relaxed)
    }

    /// Journal bytes appended by this node.
    pub fn log_bytes_appended(&self) -> u64 {
        self.inner.log_bytes_appended.load(Ordering::Relaxed)
    }

    /// Record one background compaction run and the log bytes it
    /// reclaimed.
    #[inline]
    pub fn count_compaction(&self, bytes_reclaimed: u64) {
        self.inner.compaction_runs.fetch_add(1, Ordering::Relaxed);
        self.inner
            .compaction_bytes_reclaimed
            .fetch_add(bytes_reclaimed, Ordering::Relaxed);
    }

    /// Background compaction runs on this node's log.
    pub fn compaction_runs(&self) -> u64 {
        self.inner.compaction_runs.load(Ordering::Relaxed)
    }

    /// Log bytes reclaimed by compaction.
    pub fn compaction_bytes_reclaimed(&self) -> u64 {
        self.inner
            .compaction_bytes_reclaimed
            .load(Ordering::Relaxed)
    }

    /// Record the bytes of one sealed checkpoint manifest.
    #[inline]
    pub fn count_checkpoint(&self, manifest_bytes: u64) {
        self.inner
            .checkpoint_bytes
            .fetch_add(manifest_bytes, Ordering::Relaxed);
    }

    /// Checkpoint manifest bytes appended by this node.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.inner.checkpoint_bytes.load(Ordering::Relaxed)
    }

    /// Record one barrier replayed beyond the restored checkpoint.
    #[inline]
    pub fn count_restore_replay_barrier(&self) {
        self.inner
            .restore_replay_barriers
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Barriers this node replayed past the checkpoint it restored
    /// from (0 outside restore runs).
    pub fn restore_replay_barriers(&self) -> u64 {
        self.inner.restore_replay_barriers.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn count_page_fault(&self) {
        self.inner.page_faults.fetch_add(1, Ordering::Relaxed);
    }

    pub fn page_faults(&self) -> u64 {
        self.inner.page_faults.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn count_diff(&self, bytes_sent: u64) {
        self.inner.diffs_created.fetch_add(1, Ordering::Relaxed);
        self.inner
            .diff_bytes_sent
            .fetch_add(bytes_sent, Ordering::Relaxed);
    }

    pub fn diffs_created(&self) -> u64 {
        self.inner.diffs_created.load(Ordering::Relaxed)
    }

    pub fn diff_bytes_sent(&self) -> u64 {
        self.inner.diff_bytes_sent.load(Ordering::Relaxed)
    }

    /// Render a one-line breakdown, for harness output.
    pub fn breakdown(&self) -> String {
        let mut parts = Vec::with_capacity(ALL_CATEGORIES.len());
        for cat in ALL_CATEGORIES {
            let t = self.time_in(cat);
            if t > SimDuration::ZERO {
                parts.push(format!("{}={}", cat.name(), t));
            }
        }
        parts.join(" ")
    }
}

/// Whole-run counters from the virtual-time scheduler, reported once
/// per cluster run (`None`/empty under free-running mode).
///
/// `turns`, `wakes`, and `epochs` are pure functions of the simulated
/// schedule: identical across `Deterministic` and `Parallel` runs of
/// the same workload, and part of the byte-identity contract.
/// `max_concurrent` and `worker_busy_ns` describe the *host* execution
/// (how wide batches got against the worker cap, wall time each pool
/// slot spent running tasks); they are informative only and excluded
/// from cross-engine comparisons.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedSummary {
    /// Task dispatches over the whole run.
    pub turns: u64,
    /// Wake calls delivered (including sticky wakes and hints).
    pub wakes: u64,
    /// Epoch barriers crossed (batch selections).
    pub epochs: u64,
    /// Largest number of tasks dispatched concurrently in any epoch,
    /// capped by the worker pool width. Host-side; informative only.
    pub max_concurrent: usize,
    /// Host nanoseconds each worker-pool slot spent running tasks.
    /// Host-side; informative only.
    pub worker_busy_ns: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_read_back() {
        let s = NodeStats::new();
        s.charge(TimeCategory::Compute, SimDuration(100));
        s.charge(TimeCategory::Compute, SimDuration(50));
        s.charge(TimeCategory::Disk, SimDuration(7));
        assert_eq!(s.time_in(TimeCategory::Compute), SimDuration(150));
        assert_eq!(s.time_in(TimeCategory::Disk), SimDuration(7));
        assert_eq!(s.time_in(TimeCategory::Network), SimDuration::ZERO);
        assert_eq!(s.total_accounted(), SimDuration(157));
    }

    #[test]
    fn counters_accumulate() {
        let s = NodeStats::new();
        s.count_access_checks(10);
        s.count_access_checks(5);
        s.count_swap_out(100);
        s.count_swap_in(60);
        s.count_swap_in(40);
        s.count_swap_batch();
        s.count_prefetch_hit();
        s.count_diff(128);
        s.count_diff(64);
        s.count_home_request(4096);
        s.count_home_request(512);
        s.count_version_published();
        s.count_version_published();
        s.count_version_reclaimed();
        assert_eq!(s.home_requests_served(), 2);
        assert_eq!(s.home_bytes_served(), 4608);
        assert_eq!(s.versions_published(), 2);
        assert_eq!(s.versions_reclaimed(), 1);
        assert_eq!(s.access_checks(), 15);
        assert_eq!(s.swaps_out(), 1);
        assert_eq!(s.swaps_in(), 2);
        assert_eq!(s.swap_out_bytes(), 100);
        assert_eq!(s.swap_in_bytes(), 100);
        assert_eq!(s.swap_batches(), 1);
        assert_eq!(s.prefetch_hits(), 1);
        assert_eq!(s.diffs_created(), 2);
        assert_eq!(s.diff_bytes_sent(), 192);
    }

    #[test]
    fn lifecycle_counters_and_gauges() {
        let s = NodeStats::new();
        s.count_object_freed(4096);
        s.count_object_freed(1024);
        assert_eq!(s.objects_freed(), 2);
        assert_eq!(s.freed_object_bytes(), 5120);
        s.set_dmm_gauges(1000, 400);
        s.set_dmm_gauges(800, 300); // gauges overwrite, not accumulate
        assert_eq!(s.dmm_free_bytes(), 800);
        assert_eq!(s.dmm_largest_hole(), 300);
    }

    #[test]
    fn persistence_counters_accumulate() {
        let s = NodeStats::new();
        s.count_log_append(5, 512);
        s.count_log_append(2, 100);
        s.count_compaction(300);
        s.count_checkpoint(128);
        s.count_restore_replay_barrier();
        s.count_restore_replay_barrier();
        s.count_rejoin(1000);
        s.count_rejoin_log_bytes(400);
        assert_eq!(s.log_records(), 7);
        assert_eq!(s.log_bytes_appended(), 612);
        assert_eq!(s.compaction_runs(), 1);
        assert_eq!(s.compaction_bytes_reclaimed(), 300);
        assert_eq!(s.checkpoint_bytes(), 128);
        assert_eq!(s.restore_replay_barriers(), 2);
        assert_eq!(s.rejoin_rounds(), 1);
        assert_eq!(s.rejoin_peer_bytes(), 1000);
        assert_eq!(s.rejoin_log_bytes(), 400);
        assert_eq!(s.rejoin_bytes(), 1400);
    }

    #[test]
    fn clones_share_counters() {
        let s = NodeStats::new();
        let s2 = s.clone();
        s.count_page_fault();
        assert_eq!(s2.page_faults(), 1);
    }

    #[test]
    fn breakdown_lists_only_nonzero() {
        let s = NodeStats::new();
        s.charge(TimeCategory::Network, SimDuration::from_micros(3));
        let b = s.breakdown();
        assert!(b.contains("network="));
        assert!(!b.contains("compute="));
    }

    #[test]
    fn all_categories_have_distinct_indices() {
        let mut seen = std::collections::HashSet::new();
        for c in ALL_CATEGORIES {
            assert!(seen.insert(c.index()));
        }
    }
}
