//! Cost models that translate work done by the DSM into virtual time.
//!
//! Three models cover the three resources the paper's evaluation hinges
//! on (§4): CPU work (access checking, diffing, protocol handlers),
//! the 100 Mb Fast-Ethernet/UDP interconnect, and the local disk used as
//! backing store for the large object space.
//!
//! All parameters are plain numbers so experiments can sweep them; the
//! calibrated per-platform bundles live in [`crate::machine`].

use crate::clock::SimDuration;

/// CPU-side cost model for one node.
///
/// The paper reports a 20–25 ns access check on a 2 GHz Pentium IV
/// (§4.2) and attributes 5–15 % extra runtime to the large-object-space
/// machinery (mapping-state check + pinning) on access-heavy programs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Cost of one shared-object access check (object-state lookup and
    /// ID→address translation). Paper: 20–25 ns on a 2 GHz P4.
    pub access_check: SimDuration,
    /// Extra per-access cost of the large-object-space support: the
    /// mapping-state check plus the pinning timestamp update. Charged
    /// only when large-object support is enabled (LOTS, not LOTS-x).
    pub pin_update: SimDuration,
    /// Cost of one arithmetic/move element operation in application
    /// compute kernels (amortized; used by the workload compute model).
    pub elem_op: SimDuration,
    /// Fixed cost to enter a protocol message handler (the SIGIO-handler
    /// analogue) on the servicing node.
    pub handler_entry: SimDuration,
    /// Per-byte cost of creating a twin / applying or creating a diff
    /// (memory-bandwidth-bound word copy + compare).
    pub diff_byte: SimDuration,
    /// Fixed cost of a page fault + fault handler on page-based DSMs
    /// (JIAJIA baseline); object-based LOTS never pays this.
    pub page_fault: SimDuration,
    /// Fixed cost of an mmap/mprotect-style mapping manipulation.
    pub map_syscall: SimDuration,
}

impl CpuModel {
    /// Total time for `n` access checks *without* large-object support.
    #[inline]
    pub fn checks(&self, n: u64) -> SimDuration {
        SimDuration(self.access_check.0 * n)
    }

    /// Total time for `n` access checks *with* large-object support
    /// (check + pin timestamp).
    #[inline]
    pub fn checks_pinned(&self, n: u64) -> SimDuration {
        SimDuration((self.access_check.0 + self.pin_update.0) * n)
    }

    /// Time to perform `n` element operations of application compute.
    #[inline]
    pub fn compute(&self, n: u64) -> SimDuration {
        SimDuration(self.elem_op.0 * n)
    }

    /// Time to twin/diff `bytes` of object data.
    #[inline]
    pub fn diffing(&self, bytes: u64) -> SimDuration {
        SimDuration(self.diff_byte.0 * bytes)
    }

    /// This CPU uniformly slowed down by `factor` (≥ 1.0) — the
    /// fault-injection model of a straggler node. `factor == 1.0`
    /// returns the model unchanged.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> CpuModel {
        assert!(factor >= 1.0, "cpu slowdown factor must be ≥ 1.0");
        let s = |d: SimDuration| SimDuration((d.0 as f64 * factor).round() as u64);
        CpuModel {
            access_check: s(self.access_check),
            pin_update: s(self.pin_update),
            elem_op: s(self.elem_op),
            handler_entry: s(self.handler_entry),
            diff_byte: s(self.diff_byte),
            page_fault: s(self.page_fault),
            map_syscall: s(self.map_syscall),
        }
    }
}

/// Interconnect cost model (UDP over Fast Ethernet in the paper).
///
/// The paper's transport: dedicated point-to-point sockets, UDP/IP,
/// ≤64 KB datagrams with fragmentation of larger messages, and a simple
/// sliding-window flow control "slightly more efficient than TCP" (§3.6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// One-way wire + switch + stack latency for a minimal datagram.
    pub latency: SimDuration,
    /// Effective bandwidth in bytes per second (100 Mb Ethernet ≈ 11.5 MB/s
    /// effective after UDP/IP overheads).
    pub bandwidth_bps: u64,
    /// Per-fragment CPU+stack overhead charged to the sender (and the
    /// receiver pays `handler_entry` per fragment via [`CpuModel`]).
    pub per_fragment: SimDuration,
    /// Maximum datagram payload; messages larger than this are split.
    /// Paper: 64 KB (§5).
    pub max_datagram: usize,
    /// Flow-control window in fragments: after each full window the
    /// sender stalls one round-trip waiting for the ack.
    pub window_frags: u32,
}

impl NetModel {
    /// Number of fragments a `bytes`-sized message is split into.
    #[inline]
    pub fn fragments(&self, bytes: usize) -> u32 {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.max_datagram) as u32
        }
    }

    /// Minimum virtual delay between any send and its delivery — the
    /// conservative-DES lookahead window. `one_way` is `latency` plus
    /// strictly non-negative terms, and fault injection only *adds*
    /// delay, so no envelope can ever arrive sooner than this after it
    /// was sent.
    #[inline]
    pub fn min_latency(&self) -> SimDuration {
        self.latency
    }

    /// Pure serialization time of `bytes` on the wire.
    #[inline]
    pub fn wire_time(&self, bytes: usize) -> SimDuration {
        // bytes / (bytes/sec) in ns, rounded up.
        SimDuration(((bytes as u128 * 1_000_000_000).div_ceil(self.bandwidth_bps as u128)) as u64)
    }

    /// One-way transfer time of a whole (possibly fragmented) message:
    /// latency + wire time + per-fragment overhead + flow-control stalls.
    pub fn one_way(&self, bytes: usize) -> SimDuration {
        let frags = self.fragments(bytes);
        let stalls = (frags.saturating_sub(1)) / self.window_frags;
        self.latency
            + self.wire_time(bytes)
            + SimDuration(self.per_fragment.0 * frags as u64)
            + SimDuration((2 * self.latency.0) * stalls as u64)
    }

    /// Round trip of a small request followed by a `reply_bytes` reply.
    pub fn request_reply(&self, request_bytes: usize, reply_bytes: usize) -> SimDuration {
        self.one_way(request_bytes) + self.one_way(reply_bytes)
    }
}

/// Local-disk cost model for the swap backing store.
///
/// Table 1 of the paper is dominated by disk read/write time (e.g.
/// 1004 s of 1114 s total on RedHat 6.2), so the model only needs a
/// per-operation overhead (seek + syscall + FS) and a streaming
/// bandwidth, both of which differ strongly across the paper's
/// platforms/OS versions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Fixed per-request cost (seek, syscall, filesystem bookkeeping).
    pub per_op: SimDuration,
    /// Streaming write bandwidth, bytes/second.
    pub write_bps: u64,
    /// Streaming read bandwidth, bytes/second.
    pub read_bps: u64,
}

impl DiskModel {
    #[inline]
    pub fn write_time(&self, bytes: u64) -> SimDuration {
        self.per_op + SimDuration(((bytes as u128 * 1_000_000_000) / self.write_bps as u128) as u64)
    }

    #[inline]
    pub fn read_time(&self, bytes: u64) -> SimDuration {
        self.per_op + SimDuration(((bytes as u128 * 1_000_000_000) / self.read_bps as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetModel {
        NetModel {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: 11_500_000,
            per_fragment: SimDuration::from_micros(20),
            max_datagram: 64 * 1024,
            window_frags: 8,
        }
    }

    #[test]
    fn fragment_counts() {
        let n = net();
        assert_eq!(n.fragments(0), 1);
        assert_eq!(n.fragments(1), 1);
        assert_eq!(n.fragments(64 * 1024), 1);
        assert_eq!(n.fragments(64 * 1024 + 1), 2);
        assert_eq!(n.fragments(640 * 1024), 10);
    }

    #[test]
    fn wire_time_scales_linearly() {
        let n = net();
        let t1 = n.wire_time(11_500_000);
        // 11.5 MB at 11.5 MB/s = 1 second.
        assert_eq!(t1, SimDuration(1_000_000_000));
        assert!(n.wire_time(100) < n.wire_time(200));
    }

    #[test]
    fn one_way_includes_flow_control_stalls() {
        let n = net();
        // 9 fragments => one full window of 8, one stall of 1 RTT.
        let nine = 9 * 64 * 1024;
        let eight = 8 * 64 * 1024;
        let d9 = n.one_way(nine);
        let d8 = n.one_way(eight);
        let extra = d9.saturating_sub(d8);
        // Stall adds 2*latency on top of the extra fragment's wire time.
        assert!(extra.0 >= 2 * n.latency.0, "extra={extra}");
    }

    #[test]
    fn small_messages_dominated_by_latency() {
        let n = net();
        let d = n.one_way(16);
        assert!(d.0 >= n.latency.0);
        assert!(d.0 < 2 * n.latency.0 + 100_000);
    }

    #[test]
    fn disk_time_monotone_in_size() {
        let d = DiskModel {
            per_op: SimDuration::from_micros(500),
            write_bps: 10_000_000,
            read_bps: 20_000_000,
        };
        assert!(d.write_time(4096) < d.write_time(8192));
        // Reads are faster than writes here.
        assert!(d.read_time(1 << 20) < d.write_time(1 << 20));
        // 10 MB at 10 MB/s ~ 1s + per_op.
        let t = d.write_time(10_000_000);
        assert_eq!(
            t,
            SimDuration(1_000_000_000) + SimDuration::from_micros(500)
        );
    }

    #[test]
    fn cpu_check_costs() {
        let c = CpuModel {
            access_check: SimDuration(22),
            pin_update: SimDuration(4),
            elem_op: SimDuration(6),
            handler_entry: SimDuration::from_micros(15),
            diff_byte: SimDuration(1),
            page_fault: SimDuration::from_micros(40),
            map_syscall: SimDuration::from_micros(5),
        };
        assert_eq!(c.checks(1_000), SimDuration(22_000));
        assert_eq!(c.checks_pinned(1_000), SimDuration(26_000));
        assert_eq!(c.compute(10), SimDuration(60));
        assert_eq!(c.diffing(100), SimDuration(100));
    }
}
