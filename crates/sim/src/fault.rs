//! Seeded fault injection for deterministic cluster runs.
//!
//! Under the deterministic scheduler ([`crate::sched`]) every run is a
//! pure function of its inputs, which makes faults *replayable*: a
//! [`FaultPlan`] perturbs the simulation — per-message network jitter,
//! per-node CPU slowdown, a node panic at a chosen barrier — and the
//! same plan reproduces the same perturbed run bit-for-bit. Message
//! delays are a pure hash of `(plan seed, src, dst, message sequence)`,
//! so they do not even depend on scheduling order.
//!
//! The invariant the test suite enforces: faults that only stretch
//! time (delays, slowdowns) may change every clock and traffic timing
//! in the report, but never an application result — Scope Consistency
//! hides latency, not values. Node panics ride the PR 1 poisoning
//! path: peers fail loudly at their next synchronization instead of
//! hanging.

use crate::clock::{SimDuration, SimInstant};

/// One injected node failure: the node panics on entering its
/// `at_barrier`-th barrier (1-based), exercising the poisoning path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanicFault {
    /// Rank of the node to kill.
    pub node: usize,
    /// Which of the node's barrier entries triggers the panic
    /// (1 = its first barrier).
    pub at_barrier: u64,
}

/// One injected *recoverable* node failure: the node crashes right
/// after completing its `at_barrier`-th barrier (1-based), losing all
/// volatile state (mapped objects, cached remote copies, twins), then
/// rejoins. Peers' directory replicas plus the node's durable swap
/// store rebuild its state; the cluster continues with identical
/// results — unlike [`PanicFault`], which only poisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// Rank of the node to crash and rejoin.
    pub node: usize,
    /// Which of the node's barrier entries triggers the crash
    /// (1 = its first barrier); the crash lands after the barrier
    /// completes, so the interval it closed is globally consistent.
    pub at_barrier: u64,
    /// Modeled downtime: process restart + state-rebuild handshake.
    pub reboot: SimDuration,
}

/// A scheduled network partition in virtual time: from `start`
/// (inclusive) to `end` (exclusive), every link between an islander
/// and a non-islander is severed; links within either side stay up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Virtual time the partition starts.
    pub start: SimInstant,
    /// Virtual time the partition heals.
    pub end: SimInstant,
    /// The nodes cut off from the rest of the cluster.
    pub islanders: Vec<usize>,
}

impl Partition {
    /// Is the directed link `a → b` severed at virtual time `t`?
    pub fn severs(&self, t: SimInstant, a: usize, b: usize) -> bool {
        t >= self.start
            && t < self.end
            && (self.islanders.contains(&a) != self.islanders.contains(&b))
    }
}

/// Retransmission discipline of the reliable wire layer (the UDP
/// reliability layer of classic SDSM transports): each lost attempt is
/// retried after a timeout that doubles per retry, up to `max_retries`.
///
/// The model is *analytic*: the delivery time of a message under loss
/// is computed at send time as a pure function of the plan, so no real
/// timers run and the conservative-PDES lookahead (arrival ≥ send +
/// min link latency) is preserved — retransmission only ever delays an
/// arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retransmit {
    /// Master switch. Disabled, a first-attempt loss drops the message
    /// outright (and a blocked peer will name it via the drop log).
    pub enabled: bool,
    /// Initial retransmission timeout. [`SimDuration::ZERO`] means
    /// *auto*: twice the message's modeled flight time.
    pub rto: SimDuration,
    /// Retry budget. With exponential backoff, `k` retries span
    /// `rto·(2^k − 1)` — 20 retries outlast any partition window a
    /// simulated run schedules.
    pub max_retries: u32,
}

impl Default for Retransmit {
    fn default() -> Retransmit {
        Retransmit {
            enabled: true,
            rto: SimDuration::ZERO,
            max_retries: 20,
        }
    }
}

/// Outcome of the analytic retransmission model for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message (eventually) gets through.
    Deliver {
        /// Arrival of the successful attempt; never earlier than the
        /// fault-free arrival.
        arrival: SimInstant,
        /// Retransmissions it took (0 = first attempt succeeded).
        retransmits: u32,
    },
    /// Every attempt was lost (retransmission disabled, or the retry
    /// budget ran out inside an unhealed partition).
    Dropped {
        /// Attempts made (≥ 1).
        attempts: u32,
    },
}

/// A seeded, fully deterministic perturbation of a cluster run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-message delay hash.
    pub seed: u64,
    /// Maximum extra in-flight delay per message (uniform in
    /// `[0, max]`); [`SimDuration::ZERO`] disables delay injection.
    pub max_msg_delay: SimDuration,
    /// Per-node CPU slowdown factors `(node, factor ≥ 1.0)`; nodes not
    /// listed run at full speed.
    pub cpu_slowdown: Vec<(usize, f64)>,
    /// Optional injected node panic.
    pub panic_node: Option<PanicFault>,
    /// Per-attempt message loss probability in permille (0–999).
    pub loss_permille: u16,
    /// Probability, in permille, that one fragment of a message is
    /// duplicated in flight (for single-fragment messages this is a
    /// whole-message duplicate).
    pub dup_permille: u16,
    /// Probability, in permille, that a message is reordered: held
    /// back by an extra seeded delay in `[0, reorder_window]` so it
    /// arrives after later sends.
    pub reorder_permille: u16,
    /// Span of the reordering delay; [`SimDuration::ZERO`] means
    /// *auto* (a few link latencies, chosen by the transport).
    pub reorder_window: SimDuration,
    /// Scheduled partitions/heals in virtual time.
    pub partitions: Vec<Partition>,
    /// Retransmission discipline covering loss and partitions.
    pub retransmit: Retransmit,
    /// Optional crash + rejoin (recoverable, unlike `panic_node`).
    pub crash_node: Option<CrashFault>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A delay-only plan: every message gets a seeded jitter in
    /// `[0, max]`.
    pub fn delays(seed: u64, max: SimDuration) -> FaultPlan {
        FaultPlan {
            seed,
            max_msg_delay: max,
            ..FaultPlan::default()
        }
    }

    /// Does this plan perturb anything at all?
    pub fn is_active(&self) -> bool {
        self.max_msg_delay > SimDuration::ZERO
            || !self.cpu_slowdown.is_empty()
            || self.panic_node.is_some()
            || self.loss_permille > 0
            || self.dup_permille > 0
            || self.reorder_permille > 0
            || !self.partitions.is_empty()
            || self.crash_node.is_some()
    }

    /// Can this plan ever lose a message attempt (loss or partitions)?
    pub fn is_lossy(&self) -> bool {
        self.loss_permille > 0 || !self.partitions.is_empty()
    }

    /// Does the receive path need duplicate filtering under this plan?
    pub fn needs_dedupe(&self) -> bool {
        self.dup_permille > 0
    }

    /// The injected in-flight delay for the `seq`-th message a sender
    /// `src` addressed to `dst`. A pure hash — independent of
    /// scheduling, wall clock, and every other message.
    pub fn delay_for(&self, src: usize, dst: usize, seq: u64) -> SimDuration {
        if self.max_msg_delay == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let h = mix64(
            self.seed
                ^ (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                ^ seq.wrapping_mul(0x1656_67B1_9E37_79F9),
        );
        // Uniform in [0, max] via multiply-shift.
        SimDuration(((h as u128 * (self.max_msg_delay.0 as u128 + 1)) >> 64) as u64)
    }

    /// CPU slowdown factor of `node` (1.0 when unlisted).
    pub fn cpu_factor(&self, node: usize) -> f64 {
        self.cpu_slowdown
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, f)| f)
            .unwrap_or(1.0)
    }

    /// If `node` is scheduled to panic, the (1-based) barrier entry at
    /// which it does.
    pub fn panic_barrier_for(&self, node: usize) -> Option<u64> {
        self.panic_node
            .filter(|p| p.node == node)
            .map(|p| p.at_barrier)
    }

    /// If `node` is scheduled to crash and rejoin, the (1-based)
    /// barrier entry after which it does.
    pub fn crash_for(&self, node: usize) -> Option<CrashFault> {
        self.crash_node.filter(|c| c.node == node)
    }

    /// Is the directed link `src → dst` severed by a scheduled
    /// partition at virtual time `t`?
    pub fn severed_at(&self, t: SimInstant, src: usize, dst: usize) -> bool {
        self.partitions.iter().any(|p| p.severs(t, src, dst))
    }

    /// Is the `attempt`-th transmission attempt (0 = the original) of
    /// message `(src, dst, seq)` lost to random loss? A pure hash, like
    /// [`FaultPlan::delay_for`].
    pub fn attempt_lost(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> bool {
        if self.loss_permille == 0 {
            return false;
        }
        let h = self.msg_hash(
            SALT_LOSS ^ u64::from(attempt).wrapping_mul(K_ATTEMPT),
            src,
            dst,
            seq,
        );
        h % 1000 < u64::from(self.loss_permille)
    }

    /// If message `(src, dst, seq)` has a fragment duplicated in
    /// flight, the index (in `[0, total)`) of the duplicated fragment.
    pub fn dup_index_for(&self, src: usize, dst: usize, seq: u64, total: u32) -> Option<u32> {
        if self.dup_permille == 0 || total == 0 {
            return None;
        }
        let h = self.msg_hash(SALT_DUP, src, dst, seq);
        (h % 1000 < u64::from(self.dup_permille))
            .then(|| ((mix64(h) as u128 * u128::from(total)) >> 64) as u32)
    }

    /// The extra hold-back delay of a reordered message: zero for most
    /// messages, uniform in `[0, window]` for the selected fraction.
    /// `fallback_window` applies when the plan leaves `reorder_window`
    /// at *auto* (zero).
    pub fn reorder_delay_for(
        &self,
        src: usize,
        dst: usize,
        seq: u64,
        fallback_window: SimDuration,
    ) -> SimDuration {
        if self.reorder_permille == 0 {
            return SimDuration::ZERO;
        }
        let h = self.msg_hash(SALT_REORDER, src, dst, seq);
        if h % 1000 >= u64::from(self.reorder_permille) {
            return SimDuration::ZERO;
        }
        let window = if self.reorder_window > SimDuration::ZERO {
            self.reorder_window
        } else {
            fallback_window
        };
        SimDuration(((mix64(h) as u128 * (window.0 as u128 + 1)) >> 64) as u64)
    }

    /// Analytic retransmission: when (and whether) message
    /// `(src, dst, seq)`, departing at `depart` with a modeled flight
    /// time of `flight`, actually reaches `dst` under this plan's loss
    /// and partitions.
    ///
    /// Attempt 0 departs at `depart`; attempt *i+1* departs one RTO
    /// (doubling per retry) after attempt *i*. An attempt is lost if
    /// the loss hash fires for it or the link is severed at its
    /// departure. The arrival of the successful attempt is its
    /// departure plus `flight`, so delivery is never earlier than the
    /// fault-free arrival — delays only add, preserving the PDES
    /// lookahead bound.
    pub fn delivery(
        &self,
        src: usize,
        dst: usize,
        seq: u64,
        depart: SimInstant,
        flight: SimDuration,
    ) -> Delivery {
        if !self.is_lossy() {
            return Delivery::Deliver {
                arrival: depart + flight,
                retransmits: 0,
            };
        }
        let mut rto = if self.retransmit.rto > SimDuration::ZERO {
            self.retransmit.rto
        } else {
            // Auto: twice the flight time (≥ 2 ns — flight includes
            // latency, per-fragment overhead and ≥ 1 ns of wire time).
            SimDuration(flight.0.saturating_mul(2).max(2))
        };
        let mut at = depart;
        let mut attempt = 0u32;
        loop {
            let lost = self.attempt_lost(src, dst, seq, attempt) || self.severed_at(at, src, dst);
            if !lost {
                return Delivery::Deliver {
                    arrival: at + flight,
                    retransmits: attempt,
                };
            }
            if !self.retransmit.enabled || attempt >= self.retransmit.max_retries {
                return Delivery::Dropped {
                    attempts: attempt + 1,
                };
            }
            at += rto;
            rto = SimDuration(rto.0.saturating_mul(2));
            attempt += 1;
        }
    }

    /// The shared per-message hash behind every seeded decision; each
    /// decision mixes in its own salt so loss, duplication and
    /// reordering draw independent streams.
    fn msg_hash(&self, salt: u64, src: usize, dst: usize, seq: u64) -> u64 {
        mix64(
            self.seed
                ^ salt
                ^ (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                ^ seq.wrapping_mul(0x1656_67B1_9E37_79F9),
        )
    }
}

const SALT_LOSS: u64 = 0xA24B_AED4_963E_E407;
const SALT_DUP: u64 = 0x9FB2_1C65_1E98_DF25;
const SALT_REORDER: u64 = 0xD6E8_FEB8_6659_FD93;
const K_ATTEMPT: u64 = 0x2545_F491_4F6C_DD1D;

/// SplitMix64 finalizer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(p.delay_for(0, 1, 7), SimDuration::ZERO);
        assert_eq!(p.cpu_factor(3), 1.0);
        assert_eq!(p.panic_barrier_for(0), None);
    }

    #[test]
    fn delays_are_pure_bounded_and_seed_sensitive() {
        let p = FaultPlan::delays(42, SimDuration::from_micros(100));
        let q = FaultPlan::delays(43, SimDuration::from_micros(100));
        let mut differs = false;
        for seq in 0..1000 {
            let d = p.delay_for(0, 1, seq);
            assert_eq!(d, p.delay_for(0, 1, seq), "pure function");
            assert!(d <= SimDuration::from_micros(100));
            differs |= d != q.delay_for(0, 1, seq);
        }
        assert!(differs, "different seeds give different jitter");
    }

    #[test]
    fn lossy_knobs_activate_plan() {
        let loss = FaultPlan {
            loss_permille: 10,
            ..FaultPlan::default()
        };
        assert!(loss.is_active() && loss.is_lossy() && !loss.needs_dedupe());
        let dup = FaultPlan {
            dup_permille: 5,
            ..FaultPlan::default()
        };
        assert!(dup.is_active() && !dup.is_lossy() && dup.needs_dedupe());
        let part = FaultPlan {
            partitions: vec![Partition {
                start: SimInstant(0),
                end: SimInstant(100),
                islanders: vec![2],
            }],
            ..FaultPlan::default()
        };
        assert!(part.is_active() && part.is_lossy());
        let crash = FaultPlan {
            crash_node: Some(CrashFault {
                node: 1,
                at_barrier: 2,
                reboot: SimDuration::from_millis(50),
            }),
            ..FaultPlan::default()
        };
        assert!(crash.is_active());
        assert_eq!(crash.crash_for(1).unwrap().at_barrier, 2);
        assert_eq!(crash.crash_for(0), None);
    }

    #[test]
    fn partition_severs_only_across_the_cut_and_only_in_window() {
        let p = Partition {
            start: SimInstant(100),
            end: SimInstant(200),
            islanders: vec![0, 3],
        };
        // Across the cut, inside the window.
        assert!(p.severs(SimInstant(100), 0, 1));
        assert!(p.severs(SimInstant(199), 2, 3));
        // Within one side.
        assert!(!p.severs(SimInstant(150), 0, 3));
        assert!(!p.severs(SimInstant(150), 1, 2));
        // Outside the window (end is exclusive).
        assert!(!p.severs(SimInstant(99), 0, 1));
        assert!(!p.severs(SimInstant(200), 0, 1));
    }

    #[test]
    fn loss_hash_is_pure_and_attempt_sensitive() {
        let p = FaultPlan {
            seed: 11,
            loss_permille: 500,
            ..FaultPlan::default()
        };
        let mut attempt_differs = false;
        let mut lost = 0u32;
        for seq in 0..1000 {
            assert_eq!(
                p.attempt_lost(0, 1, seq, 0),
                p.attempt_lost(0, 1, seq, 0),
                "pure function"
            );
            lost += u32::from(p.attempt_lost(0, 1, seq, 0));
            attempt_differs |= p.attempt_lost(0, 1, seq, 0) != p.attempt_lost(0, 1, seq, 1);
        }
        // ~50% loss rate, generously bracketed.
        assert!((300..700).contains(&lost), "lost={lost}");
        assert!(attempt_differs, "retries must re-roll the loss hash");
    }

    #[test]
    fn delivery_retries_through_loss_and_counts_retransmits() {
        let p = FaultPlan {
            seed: 3,
            loss_permille: 700,
            ..FaultPlan::default()
        };
        let flight = SimDuration::from_micros(120);
        let mut retried = false;
        for seq in 0..200 {
            match p.delivery(0, 1, seq, SimInstant(1000), flight) {
                Delivery::Deliver {
                    arrival,
                    retransmits,
                } => {
                    assert!(arrival >= SimInstant(1000) + flight, "arrival only delays");
                    retried |= retransmits > 0;
                }
                Delivery::Dropped { .. } => panic!("70% loss must not exhaust 20 retries"),
            }
        }
        assert!(retried);
    }

    #[test]
    fn delivery_without_retransmission_drops_on_first_loss() {
        let p = FaultPlan {
            seed: 3,
            loss_permille: 700,
            retransmit: Retransmit {
                enabled: false,
                ..Retransmit::default()
            },
            ..FaultPlan::default()
        };
        let flight = SimDuration::from_micros(120);
        let dropped = (0..200)
            .filter(|&seq| {
                matches!(
                    p.delivery(0, 1, seq, SimInstant(0), flight),
                    Delivery::Dropped { attempts: 1 }
                )
            })
            .count();
        assert!((80..200).contains(&dropped), "dropped={dropped}");
    }

    #[test]
    fn delivery_waits_out_a_healing_partition() {
        let p = FaultPlan {
            partitions: vec![Partition {
                start: SimInstant(0),
                end: SimInstant(1_000_000),
                islanders: vec![1],
            }],
            ..FaultPlan::default()
        };
        let flight = SimDuration::from_micros(100);
        match p.delivery(0, 1, 7, SimInstant(0), flight) {
            Delivery::Deliver {
                arrival,
                retransmits,
            } => {
                assert!(arrival >= SimInstant(1_000_000), "delivered before heal");
                assert!(retransmits > 0);
            }
            Delivery::Dropped { .. } => panic!("backoff must outlast a healing partition"),
        }
        // A link within the majority side is unaffected.
        assert_eq!(
            p.delivery(0, 2, 7, SimInstant(0), flight),
            Delivery::Deliver {
                arrival: SimInstant(0) + flight,
                retransmits: 0
            }
        );
    }

    #[test]
    fn unhealed_partition_exhausts_retries_into_a_drop() {
        let p = FaultPlan {
            partitions: vec![Partition {
                start: SimInstant(0),
                end: SimInstant(u64::MAX),
                islanders: vec![1],
            }],
            retransmit: Retransmit {
                max_retries: 3,
                ..Retransmit::default()
            },
            ..FaultPlan::default()
        };
        match p.delivery(0, 1, 0, SimInstant(0), SimDuration::from_micros(100)) {
            Delivery::Dropped { attempts } => assert_eq!(attempts, 4),
            d => panic!("expected drop, got {d:?}"),
        }
    }

    #[test]
    fn dup_and_reorder_hashes_are_pure_bounded_and_selective() {
        let p = FaultPlan {
            seed: 9,
            dup_permille: 250,
            reorder_permille: 250,
            reorder_window: SimDuration::from_micros(50),
            ..FaultPlan::default()
        };
        let mut dups = 0;
        let mut reordered = 0;
        for seq in 0..1000 {
            if let Some(idx) = p.dup_index_for(0, 1, seq, 4) {
                assert_eq!(p.dup_index_for(0, 1, seq, 4), Some(idx), "pure");
                assert!(idx < 4);
                dups += 1;
            }
            let d = p.reorder_delay_for(0, 1, seq, SimDuration::from_micros(400));
            assert_eq!(
                d,
                p.reorder_delay_for(0, 1, seq, SimDuration::from_micros(400))
            );
            assert!(d <= SimDuration::from_micros(50));
            reordered += u64::from(d > SimDuration::ZERO);
        }
        assert!((150..350).contains(&dups), "dups={dups}");
        assert!((100..350).contains(&reordered), "reordered={reordered}");
    }

    #[test]
    fn per_node_knobs() {
        let p = FaultPlan {
            cpu_slowdown: vec![(2, 1.5)],
            panic_node: Some(PanicFault {
                node: 1,
                at_barrier: 3,
            }),
            ..FaultPlan::default()
        };
        assert!(p.is_active());
        assert_eq!(p.cpu_factor(2), 1.5);
        assert_eq!(p.cpu_factor(0), 1.0);
        assert_eq!(p.panic_barrier_for(1), Some(3));
        assert_eq!(p.panic_barrier_for(2), None);
    }
}
