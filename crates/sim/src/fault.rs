//! Seeded fault injection for deterministic cluster runs.
//!
//! Under the deterministic scheduler ([`crate::sched`]) every run is a
//! pure function of its inputs, which makes faults *replayable*: a
//! [`FaultPlan`] perturbs the simulation — per-message network jitter,
//! per-node CPU slowdown, a node panic at a chosen barrier — and the
//! same plan reproduces the same perturbed run bit-for-bit. Message
//! delays are a pure hash of `(plan seed, src, dst, message sequence)`,
//! so they do not even depend on scheduling order.
//!
//! The invariant the test suite enforces: faults that only stretch
//! time (delays, slowdowns) may change every clock and traffic timing
//! in the report, but never an application result — Scope Consistency
//! hides latency, not values. Node panics ride the PR 1 poisoning
//! path: peers fail loudly at their next synchronization instead of
//! hanging.

use crate::clock::SimDuration;

/// One injected node failure: the node panics on entering its
/// `at_barrier`-th barrier (1-based), exercising the poisoning path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanicFault {
    /// Rank of the node to kill.
    pub node: usize,
    /// Which of the node's barrier entries triggers the panic
    /// (1 = its first barrier).
    pub at_barrier: u64,
}

/// A seeded, fully deterministic perturbation of a cluster run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-message delay hash.
    pub seed: u64,
    /// Maximum extra in-flight delay per message (uniform in
    /// `[0, max]`); [`SimDuration::ZERO`] disables delay injection.
    pub max_msg_delay: SimDuration,
    /// Per-node CPU slowdown factors `(node, factor ≥ 1.0)`; nodes not
    /// listed run at full speed.
    pub cpu_slowdown: Vec<(usize, f64)>,
    /// Optional injected node panic.
    pub panic_node: Option<PanicFault>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A delay-only plan: every message gets a seeded jitter in
    /// `[0, max]`.
    pub fn delays(seed: u64, max: SimDuration) -> FaultPlan {
        FaultPlan {
            seed,
            max_msg_delay: max,
            ..FaultPlan::default()
        }
    }

    /// Does this plan perturb anything at all?
    pub fn is_active(&self) -> bool {
        self.max_msg_delay > SimDuration::ZERO
            || !self.cpu_slowdown.is_empty()
            || self.panic_node.is_some()
    }

    /// The injected in-flight delay for the `seq`-th message a sender
    /// `src` addressed to `dst`. A pure hash — independent of
    /// scheduling, wall clock, and every other message.
    pub fn delay_for(&self, src: usize, dst: usize, seq: u64) -> SimDuration {
        if self.max_msg_delay == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let h = mix64(
            self.seed
                ^ (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                ^ seq.wrapping_mul(0x1656_67B1_9E37_79F9),
        );
        // Uniform in [0, max] via multiply-shift.
        SimDuration(((h as u128 * (self.max_msg_delay.0 as u128 + 1)) >> 64) as u64)
    }

    /// CPU slowdown factor of `node` (1.0 when unlisted).
    pub fn cpu_factor(&self, node: usize) -> f64 {
        self.cpu_slowdown
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, f)| f)
            .unwrap_or(1.0)
    }

    /// If `node` is scheduled to panic, the (1-based) barrier entry at
    /// which it does.
    pub fn panic_barrier_for(&self, node: usize) -> Option<u64> {
        self.panic_node
            .filter(|p| p.node == node)
            .map(|p| p.at_barrier)
    }
}

/// SplitMix64 finalizer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(p.delay_for(0, 1, 7), SimDuration::ZERO);
        assert_eq!(p.cpu_factor(3), 1.0);
        assert_eq!(p.panic_barrier_for(0), None);
    }

    #[test]
    fn delays_are_pure_bounded_and_seed_sensitive() {
        let p = FaultPlan::delays(42, SimDuration::from_micros(100));
        let q = FaultPlan::delays(43, SimDuration::from_micros(100));
        let mut differs = false;
        for seq in 0..1000 {
            let d = p.delay_for(0, 1, seq);
            assert_eq!(d, p.delay_for(0, 1, seq), "pure function");
            assert!(d <= SimDuration::from_micros(100));
            differs |= d != q.delay_for(0, 1, seq);
        }
        assert!(differs, "different seeds give different jitter");
    }

    #[test]
    fn per_node_knobs() {
        let p = FaultPlan {
            cpu_slowdown: vec![(2, 1.5)],
            panic_node: Some(PanicFault {
                node: 1,
                at_barrier: 3,
            }),
            ..FaultPlan::default()
        };
        assert!(p.is_active());
        assert_eq!(p.cpu_factor(2), 1.5);
        assert_eq!(p.cpu_factor(0), 1.0);
        assert_eq!(p.panic_barrier_for(1), Some(3));
        assert_eq!(p.panic_barrier_for(2), None);
    }
}
