//! Per-node virtual clocks.
//!
//! Every simulated DSM process owns a [`SimClock`]. The owning thread is
//! the only *advancer* of its clock, but other threads (the comm thread
//! servicing remote requests, barrier managers merging arrival times)
//! may read it or push it forward monotonically, so the counter is an
//! atomic.
//!
//! Times are in virtual nanoseconds since cluster boot. The clock never
//! moves backwards: `advance_to` with a smaller timestamp is a no-op.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in virtual time, in nanoseconds since cluster boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimInstant {
    pub const ZERO: SimInstant = SimInstant(0);

    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    #[must_use]
    pub fn saturating_sub(self, other: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    #[inline]
    #[must_use]
    pub fn max(self, other: SimInstant) -> SimInstant {
        SimInstant(self.0.max(other.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    #[inline]
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    #[inline]
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    #[inline]
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        SimDuration((secs * 1e9).round() as u64)
    }

    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl std::ops::Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign<SimDuration> for SimInstant {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

/// A monotonic per-node virtual clock, shareable across threads.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current virtual time on this node.
    #[inline]
    pub fn now(&self) -> SimInstant {
        SimInstant(self.now.load(Ordering::Acquire))
    }

    /// Advance the clock by `d` and return the new time.
    #[inline]
    pub fn advance(&self, d: SimDuration) -> SimInstant {
        SimInstant(self.now.fetch_add(d.0, Ordering::AcqRel) + d.0)
    }

    /// Push the clock forward to at least `t` (monotonic merge).
    ///
    /// Used when a reply or synchronization release carries a virtual
    /// timestamp later than the local clock. Returns the resulting time.
    #[inline]
    pub fn advance_to(&self, t: SimInstant) -> SimInstant {
        let mut cur = self.now.load(Ordering::Acquire);
        while cur < t.0 {
            match self
                .now
                .compare_exchange_weak(cur, t.0, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return t,
                Err(observed) => cur = observed,
            }
        }
        SimInstant(cur)
    }

    /// Reset to zero. Only for test harness reuse.
    pub fn reset(&self) {
        self.now.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        assert_eq!(c.now(), SimInstant::ZERO);
        c.advance(SimDuration::from_micros(5));
        c.advance(SimDuration::from_nanos(10));
        assert_eq!(c.now(), SimInstant(5_010));
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = SimClock::new();
        c.advance(SimDuration::from_nanos(100));
        // Pushing backwards is a no-op.
        assert_eq!(c.advance_to(SimInstant(40)), SimInstant(100));
        assert_eq!(c.now(), SimInstant(100));
        // Pushing forwards merges.
        assert_eq!(c.advance_to(SimInstant(250)), SimInstant(250));
        assert_eq!(c.now(), SimInstant(250));
    }

    #[test]
    fn clones_share_state() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(SimDuration::from_nanos(7));
        assert_eq!(b.now(), SimInstant(7));
    }

    #[test]
    fn concurrent_advance_to_never_loses_max() {
        let c = SimClock::new();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for k in 0..1000u64 {
                        c.advance_to(SimInstant(i * 1000 + k));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.now(), SimInstant(3999));
    }

    #[test]
    fn duration_display_units() {
        assert_eq!(SimDuration(999).to_string(), "999ns");
        assert_eq!(SimDuration(1_500).to_string(), "1.50us");
        assert_eq!(SimDuration(2_500_000).to_string(), "2.50ms");
        assert_eq!(SimDuration(3_200_000_000).to_string(), "3.200s");
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimInstant(100) + SimDuration(50);
        assert_eq!(t, SimInstant(150));
        assert_eq!(t.saturating_sub(SimInstant(200)), SimDuration::ZERO);
        assert_eq!(t.saturating_sub(SimInstant(100)), SimDuration(50));
    }
}
