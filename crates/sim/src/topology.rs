//! Per-link network topology overrides.
//!
//! The paper's cluster is a uniform 100 Mb Fast-Ethernet switch, which
//! the base [`NetModel`] captures with one latency/bandwidth pair for
//! every directed link. Production clusters are not uniform: racks,
//! oversubscribed uplinks and WAN bridges give each link its own
//! parameters. A [`Topology`] overlays per-directed-link overrides on a
//! base model; links without an override keep the base parameters.
//!
//! The topology also owns the conservative-PDES *lookahead* computation:
//! the parallel engine may only batch tasks whose wakes lie within `L`
//! of the epoch floor, where `L` is a lower bound on every send→arrival
//! delay. With heterogeneous links that bound is the minimum over live
//! links — and it must never collapse to zero (a zero lookahead would
//! serialize the parallel engine into a turnstile, or worse, starve it),
//! so a degenerate zero-latency topology falls back to the per-fragment
//! and wire-serialization overheads that every datagram still pays.

use std::collections::BTreeMap;

use crate::clock::SimDuration;
use crate::cost::NetModel;

/// Parameters of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkParams {
    /// One-way latency of this link (replaces [`NetModel::latency`]).
    pub latency: SimDuration,
    /// Effective bandwidth of this link in bytes per second (replaces
    /// [`NetModel::bandwidth_bps`]).
    pub bandwidth_bps: u64,
}

impl LinkParams {
    /// The link parameters the base model implies.
    pub fn of(model: &NetModel) -> LinkParams {
        LinkParams {
            latency: model.latency,
            bandwidth_bps: model.bandwidth_bps,
        }
    }
}

/// Per-directed-link overrides over a base [`NetModel`].
///
/// The default topology is uniform: every link uses the base model
/// unchanged, which reproduces the paper's switched-Ethernet cluster
/// (and keeps seeded runs from earlier revisions bit-identical).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Topology {
    overrides: BTreeMap<(usize, usize), LinkParams>,
}

impl Topology {
    /// The uniform topology: no overrides.
    pub fn uniform() -> Topology {
        Topology::default()
    }

    /// Override the directed link `src → dst`.
    #[must_use]
    pub fn with_link(mut self, src: usize, dst: usize, params: LinkParams) -> Topology {
        assert_ne!(src, dst, "no self-links in the topology");
        self.overrides.insert((src, dst), params);
        self
    }

    /// Override both directions between `a` and `b`.
    #[must_use]
    pub fn with_symmetric_link(self, a: usize, b: usize, params: LinkParams) -> Topology {
        self.with_link(a, b, params).with_link(b, a, params)
    }

    /// Is this the uniform topology (no per-link overrides)?
    pub fn is_uniform(&self) -> bool {
        self.overrides.is_empty()
    }

    /// Parameters of the directed link `src → dst`.
    pub fn link(&self, base: &NetModel, src: usize, dst: usize) -> LinkParams {
        self.overrides
            .get(&(src, dst))
            .copied()
            .unwrap_or_else(|| LinkParams::of(base))
    }

    /// The effective [`NetModel`] in force on the directed link
    /// `src → dst`: the base model with this link's latency and
    /// bandwidth substituted in.
    pub fn effective(&self, base: &NetModel, src: usize, dst: usize) -> NetModel {
        match self.overrides.get(&(src, dst)) {
            None => *base,
            Some(p) => NetModel {
                latency: p.latency,
                bandwidth_bps: p.bandwidth_bps,
                ..*base
            },
        }
    }

    /// Conservative-PDES lookahead for an `n`-node cluster on this
    /// topology: a strictly positive lower bound on every send→arrival
    /// delay.
    ///
    /// The bound is the minimum one-way latency over the live links of
    /// the cluster (overridden links plus, when any pair is left at the
    /// defaults, the base latency). Faults only ever *add* delay —
    /// jitter, reordering and retransmission all stretch arrivals — so
    /// the minimum link latency stays a valid bound under any plan.
    ///
    /// Degenerate guard: if the minimum latency is zero the bound falls
    /// back to the per-fragment overhead plus one byte of wire
    /// serialization. Every arrival trails its send by at least one
    /// fragment's overhead and its (header-inclusive, hence non-empty)
    /// wire time, and [`NetModel::wire_time`] rounds up to ≥ 1 ns, so
    /// the lookahead can never collapse to zero and serialize (or
    /// break) the parallel engine.
    pub fn lookahead(&self, base: &NetModel, n: usize) -> SimDuration {
        let live = n * n.saturating_sub(1); // directed pairs
        let mut overridden = 0usize;
        let mut min_override = SimDuration(u64::MAX);
        for (&(src, dst), p) in &self.overrides {
            if src < n && dst < n {
                overridden += 1;
                min_override = min_override.min(p.latency);
            }
        }
        let mut min_latency = min_override;
        if overridden < live || live == 0 {
            // At least one live link (or a trivial cluster) runs at the
            // base parameters.
            min_latency = min_latency.min(base.latency);
        }
        if min_latency > SimDuration::ZERO && min_latency != SimDuration(u64::MAX) {
            min_latency
        } else {
            base.per_fragment + base.wire_time(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> NetModel {
        NetModel {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: 10_000_000,
            per_fragment: SimDuration::from_micros(10),
            max_datagram: 4096,
            window_frags: 8,
        }
    }

    #[test]
    fn uniform_topology_matches_base_model() {
        let t = Topology::uniform();
        assert!(t.is_uniform());
        assert_eq!(t.effective(&base(), 0, 1), base());
        assert_eq!(t.lookahead(&base(), 4), base().latency);
    }

    #[test]
    fn overrides_apply_per_directed_link() {
        let slow = LinkParams {
            latency: SimDuration::from_millis(1),
            bandwidth_bps: 1_000_000,
        };
        let t = Topology::uniform().with_link(0, 1, slow);
        let eff = t.effective(&base(), 0, 1);
        assert_eq!(eff.latency, slow.latency);
        assert_eq!(eff.bandwidth_bps, 1_000_000);
        // Reverse direction untouched.
        assert_eq!(t.effective(&base(), 1, 0), base());
        // Unrelated link untouched.
        assert_eq!(t.effective(&base(), 2, 3), base());
    }

    #[test]
    fn lookahead_takes_min_over_live_links() {
        let fast = LinkParams {
            latency: SimDuration::from_micros(5),
            bandwidth_bps: 100_000_000,
        };
        let t = Topology::uniform().with_symmetric_link(0, 1, fast);
        assert_eq!(t.lookahead(&base(), 4), SimDuration::from_micros(5));
        // An override outside the cluster is not a live link.
        let t = Topology::uniform().with_link(7, 8, fast);
        assert_eq!(t.lookahead(&base(), 4), base().latency);
    }

    #[test]
    fn zero_latency_link_does_not_collapse_lookahead() {
        let zero = LinkParams {
            latency: SimDuration::ZERO,
            bandwidth_bps: 10_000_000,
        };
        let t = Topology::uniform().with_link(0, 1, zero);
        let l = t.lookahead(&base(), 2);
        assert!(l > SimDuration::ZERO, "lookahead collapsed: {l}");
        assert_eq!(l, base().per_fragment + base().wire_time(1));
    }

    #[test]
    fn fully_overridden_zero_latency_cluster_still_positive() {
        let zero = LinkParams {
            latency: SimDuration::ZERO,
            bandwidth_bps: u64::MAX,
        };
        let t = Topology::uniform().with_symmetric_link(0, 1, zero);
        let l = t.lookahead(&base(), 2);
        // wire_time rounds up, so even infinite bandwidth leaves ≥ 1 ns.
        assert!(l > SimDuration::ZERO);
    }
}
