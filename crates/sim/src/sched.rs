//! Deterministic cooperative virtual-time scheduling — the turnstile.
//!
//! The free-running runtimes let every node thread race the host OS
//! scheduler: comm threads poll with wall-clock timeouts, condvar
//! waiters wake in arbitrary order, and the virtual times reported for
//! a run drift a few percent between executions even though all the
//! *work* is deterministic. This module replaces that with cooperative
//! execution under one rule:
//!
//! > **Lowest clock first.** At most one task runs at a time. Whenever
//! > the running task blocks (on a message, a lock grant, a barrier
//! > rendezvous) or finishes, the scheduler resumes the runnable task
//! > whose virtual *ready time* is smallest, breaking ties by task id.
//!
//! This is the classic conservative discrete-event rule: the task with
//! the lowest timestamp is the one whose past can no longer be
//! affected, so running it next is always safe. It matches the paper's
//! cost model, where every latency is an analytic function of virtual
//! time (link serialization, handler entry, barrier fan-in): given the
//! same inputs, the event order — and therefore every clock, counter
//! and traffic total — is a pure function of the seed. Two runs of the
//! same cluster produce *byte-identical* reports, so CI can gate exact
//! virtual times instead of tolerating drift.
//!
//! Tasks are ordinary OS threads that park between turns, so a p = 64
//! cluster costs 128 parked threads and zero polling, not 64 threads
//! spinning on 25 ms receive timeouts.
//!
//! # Integration contract
//!
//! * Each node thread registers a task ([`Scheduler::register`]) and
//!   calls [`SchedHandle::attach`] first thing on its thread.
//! * A task must never hold an application lock across
//!   [`SchedHandle::block`] — release, block, re-acquire (the wait
//!   loops in the sync services do exactly this).
//! * Whoever makes a blocked task's wait condition true calls
//!   [`SchedHandle::wake`]/[`SchedHandle::wake_at`] on it. Wakes are
//!   sticky: waking a *running* task makes its next `block` return
//!   immediately, so check-then-block races with external threads
//!   (e.g. the shutdown path on the main thread) are lost-wakeup-free.
//! * Comm threads are registered as *daemons*: they may stay blocked
//!   forever without tripping the deadlock detector, and are woken
//!   externally at shutdown.
//!
//! If no task is runnable while a non-daemon is still blocked, no wake
//! can ever arrive (only running tasks and the external shutdown path
//! produce wakes), so the scheduler declares a virtual-time deadlock
//! and panics every parked thread rather than hanging the test suite.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::Thread;

use crate::clock::{SimClock, SimInstant};

/// Which execution model a cluster runtime should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Cooperative lowest-clock-first scheduling (this module):
    /// bit-reproducible runs, no wall-clock polling.
    #[default]
    Deterministic,
    /// The pre-PR-3 model: free-running threads, wall-clock receive
    /// timeouts, OS-scheduled condvar wakes. Virtual times vary a few
    /// percent run-to-run. Retained for host-nanosecond microbenches,
    /// where cooperative switching would pollute wall-time readings.
    FreeRunning,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Runnable,
    Running,
    Blocked,
    Finished,
}

struct Task {
    name: String,
    clock: SimClock,
    daemon: bool,
    state: TaskState,
    /// Virtual instant used to order this task in the runnable queue:
    /// its clock when it blocked, or the wake hint (e.g. a message
    /// arrival time) supplied by whoever woke it.
    ready_at: u64,
    /// Sticky wake delivered while the task was running; consumed by
    /// its next `block`, which then returns immediately.
    wake_pending: bool,
    /// The parked OS thread to unpark on dispatch (set by `attach`).
    thread: Option<Thread>,
}

#[derive(Default)]
struct State {
    tasks: Vec<Task>,
    running: Option<usize>,
    launched: bool,
    deadlocked: bool,
}

/// The cluster-wide turnstile coordinator (see the module docs).
pub struct Scheduler {
    state: Mutex<State>,
}

/// One task's identity on a [`Scheduler`]: the handle node threads use
/// to attach, block and get woken. Cheap to clone; any thread may call
/// [`SchedHandle::wake`], but [`SchedHandle::attach`],
/// [`SchedHandle::block`] and [`SchedHandle::finish`] belong to the
/// owning thread.
#[derive(Clone)]
pub struct SchedHandle {
    sched: Arc<Scheduler>,
    id: usize,
}

impl std::fmt::Debug for SchedHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SchedHandle(task {})", self.id)
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler {
            state: Mutex::new(State::default()),
        }
    }
}

impl Scheduler {
    /// A fresh scheduler with no tasks.
    pub fn new() -> Arc<Scheduler> {
        Arc::new(Scheduler::default())
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // Tolerate poisoning: the deadlock detector panics while the
        // guard is held, and every other thread must still be able to
        // observe the `deadlocked` flag to fail loudly.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a task before [`Scheduler::launch`]. `clock` is the
    /// node clock this task advances (used for ready-time ordering);
    /// `daemon` marks service tasks (comm threads) that legitimately
    /// stay blocked until an external shutdown wake.
    pub fn register(
        self: &Arc<Self>,
        name: impl Into<String>,
        clock: SimClock,
        daemon: bool,
    ) -> SchedHandle {
        let mut st = self.lock();
        assert!(!st.launched, "register after launch");
        let ready_at = clock.now().nanos();
        st.tasks.push(Task {
            name: name.into(),
            clock,
            daemon,
            state: TaskState::Runnable,
            ready_at,
            wake_pending: false,
            thread: None,
        });
        SchedHandle {
            sched: Arc::clone(self),
            id: st.tasks.len() - 1,
        }
    }

    /// Start execution: dispatch the lowest-clock task. Call once,
    /// after all tasks are registered and their threads spawned.
    pub fn launch(&self) {
        let mut st = self.lock();
        assert!(!st.launched, "launch called twice");
        st.launched = true;
        Self::dispatch(&mut st);
    }

    /// Pick the next task to run. Caller must have cleared `running`.
    fn dispatch(st: &mut State) {
        debug_assert!(st.running.is_none());
        if st.deadlocked {
            return; // everyone is being panicked awake; stop dispatching
        }
        let next = st
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == TaskState::Runnable)
            .min_by_key(|&(i, t)| (t.ready_at, i))
            .map(|(i, _)| i);
        if let Some(i) = next {
            st.tasks[i].state = TaskState::Running;
            st.running = Some(i);
            if let Some(th) = &st.tasks[i].thread {
                th.unpark();
            }
            return;
        }
        // Nothing runnable. Daemons blocked while all workers are done
        // is the normal idle state before the external shutdown wake;
        // a blocked *worker* with nothing runnable can never be woken.
        if st
            .tasks
            .iter()
            .any(|t| !t.daemon && t.state == TaskState::Blocked)
        {
            st.deadlocked = true;
            let snapshot = Self::render(st);
            for t in &st.tasks {
                if let Some(th) = &t.thread {
                    th.unpark();
                }
            }
            panic!(
                "virtual-time deadlock: no task is runnable but workers are blocked\n{snapshot}"
            );
        }
    }

    fn render(st: &State) -> String {
        let mut out = String::new();
        for (i, t) in st.tasks.iter().enumerate() {
            let _ = writeln!(
                out,
                "  task {i} {:<14} {:?}{} clock {} ready {}",
                t.name,
                t.state,
                if t.daemon { " (daemon)" } else { "" },
                t.clock.now(),
                SimInstant(t.ready_at),
            );
        }
        out
    }
}

impl SchedHandle {
    /// This task's id (registration order; also the tie-breaker).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Bind the calling thread to this task and park until dispatched.
    /// Must be the first scheduler call on the task's own thread.
    pub fn attach(&self) {
        {
            let mut st = self.sched.lock();
            st.tasks[self.id].thread = Some(std::thread::current());
        }
        self.wait_until_running();
    }

    /// Hand the execution token back: park this task until another
    /// task (or the external shutdown path) wakes it. If a wake
    /// arrived while this task was running, returns immediately —
    /// callers always re-check their wait condition in a loop.
    pub fn block(&self) {
        {
            let mut st = self.sched.lock();
            debug_assert_eq!(st.running, Some(self.id), "block() by a non-running task");
            let t = &mut st.tasks[self.id];
            if t.wake_pending {
                t.wake_pending = false;
                return;
            }
            t.state = TaskState::Blocked;
            t.ready_at = t.clock.now().nanos();
            st.running = None;
            Scheduler::dispatch(&mut st);
        }
        self.wait_until_running();
    }

    /// Make this task runnable at its current clock.
    pub fn wake(&self) {
        self.wake_inner(None);
    }

    /// Make this task runnable with an explicit virtual ready time
    /// (e.g. the arrival instant of the message that unblocks it).
    pub fn wake_at(&self, at: SimInstant) {
        self.wake_inner(Some(at));
    }

    fn wake_inner(&self, at: Option<SimInstant>) {
        let mut st = self.sched.lock();
        let launched = st.launched;
        let idle = st.running.is_none();
        let t = &mut st.tasks[self.id];
        match t.state {
            TaskState::Blocked => {
                t.state = TaskState::Runnable;
                t.ready_at = at
                    .map(SimInstant::nanos)
                    .unwrap_or_else(|| t.clock.now().nanos());
                if launched && idle {
                    // External wake (shutdown path) while the cluster
                    // is idle: restart dispatching ourselves.
                    Scheduler::dispatch(&mut st);
                }
            }
            TaskState::Running => t.wake_pending = true,
            TaskState::Runnable => {
                if let Some(a) = at {
                    t.ready_at = t.ready_at.min(a.nanos());
                }
            }
            TaskState::Finished => {}
        }
    }

    /// Retire this task and dispatch the next one. Idempotent.
    pub fn finish(&self) {
        let mut st = self.sched.lock();
        let t = &mut st.tasks[self.id];
        t.state = TaskState::Finished;
        t.wake_pending = false;
        if st.running == Some(self.id) {
            st.running = None;
            Scheduler::dispatch(&mut st);
        }
    }

    fn wait_until_running(&self) {
        loop {
            {
                let st = self.sched.lock();
                if st.deadlocked {
                    panic!(
                        "virtual-time deadlock detected while task {} ({}) was parked\n{}",
                        self.id,
                        st.tasks[self.id].name,
                        Scheduler::render(&st)
                    );
                }
                if st.tasks[self.id].state == TaskState::Running {
                    return;
                }
            }
            std::thread::park();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;
    use std::sync::Mutex as StdMutex;

    fn log_push(log: &Arc<StdMutex<Vec<(usize, u64)>>>, id: usize, t: u64) {
        log.lock().unwrap().push((id, t));
    }

    #[test]
    fn lowest_ready_time_runs_first() {
        let sched = Scheduler::new();
        let log: Arc<StdMutex<Vec<(usize, u64)>>> = Arc::new(StdMutex::new(Vec::new()));
        let mut handles = Vec::new();
        // Tasks 0/1/2 start with clocks 30/10/20: expect 1, 2, 0.
        for (i, start) in [(0usize, 30u64), (1, 10), (2, 20)] {
            let clock = SimClock::new();
            clock.advance(SimDuration(start));
            let h = sched.register(format!("t{i}"), clock.clone(), false);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                h.attach();
                log_push(&log, i, clock.now().nanos());
                h.finish();
            }));
        }
        sched.launch();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(*log.lock().unwrap(), vec![(1, 10), (2, 20), (0, 30)]);
    }

    #[test]
    fn ping_pong_is_deterministic_and_clock_ordered() {
        // Two tasks alternate; each wakes the other, then blocks. The
        // interleaving must follow the clocks exactly, every run.
        let run = || {
            let sched = Scheduler::new();
            let log: Arc<StdMutex<Vec<(usize, u64)>>> = Arc::new(StdMutex::new(Vec::new()));
            let c0 = SimClock::new();
            let c1 = SimClock::new();
            let h0 = sched.register("a", c0.clone(), false);
            let h1 = sched.register("b", c1.clone(), false);
            let peers = [h1.clone(), h0.clone()];
            let mut threads = Vec::new();
            for (i, (h, c)) in [(h0, c0), (h1, c1)].into_iter().enumerate() {
                let log = Arc::clone(&log);
                let peer = peers[i].clone();
                threads.push(std::thread::spawn(move || {
                    h.attach();
                    for step in 0..4u64 {
                        log_push(&log, i, c.now().nanos());
                        // Task 0 takes bigger steps than task 1, so the
                        // turnstile must interleave them unevenly.
                        c.advance(SimDuration(if i == 0 { 30 } else { 10 } * (step + 1)));
                        peer.wake();
                        h.block();
                    }
                    peer.wake();
                    h.finish();
                }));
            }
            sched.launch();
            for t in threads {
                t.join().unwrap();
            }
            let log = log.lock().unwrap().clone();
            log
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same program, same schedule");
        // Every dispatch picked the lowest-clock runnable task: the
        // fast task (short steps) gets dispatched whenever its clock
        // trails, regardless of OS thread timing.
        assert_eq!(
            a,
            vec![
                (0, 0),
                (1, 0),
                (0, 30),
                (1, 10),
                (0, 90),
                (1, 30),
                (0, 180),
                (1, 60),
            ]
        );
    }

    #[test]
    fn sticky_wake_prevents_lost_wakeups() {
        let sched = Scheduler::new();
        let c = SimClock::new();
        let h = sched.register("worker", c.clone(), false);
        let ext = h.clone();
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let gate2 = Arc::clone(&gate);
        let t = std::thread::spawn(move || {
            h.attach();
            // Wait for the external wake to land while we are Running:
            // it must be recorded sticky so the block below returns
            // immediately instead of parking forever (there is no
            // other task to wake us).
            while !gate2.load(std::sync::atomic::Ordering::Acquire) {
                std::thread::yield_now();
            }
            let _ = c.now();
            h.block();
            h.finish();
        });
        sched.launch(); // dispatch: the task is Running from here on
        ext.wake(); // lands on a Running task → wake_pending
        gate.store(true, std::sync::atomic::Ordering::Release);
        t.join().unwrap();
    }

    #[test]
    fn idle_scheduler_restarts_on_external_wake() {
        let sched = Scheduler::new();
        let clock = SimClock::new();
        let h = sched.register("daemon", clock.clone(), true);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let (hx, stop2) = (h.clone(), Arc::clone(&stop));
        let t = std::thread::spawn(move || {
            hx.attach();
            while !stop2.load(std::sync::atomic::Ordering::Acquire) {
                hx.block();
            }
            hx.finish();
        });
        sched.launch();
        // The daemon blocks and the scheduler goes idle; an external
        // wake must restart dispatching.
        std::thread::sleep(std::time::Duration::from_millis(10));
        stop.store(true, std::sync::atomic::Ordering::Release);
        h.wake();
        t.join().unwrap();
    }

    #[test]
    fn deadlock_is_detected_not_hung() {
        let sched = Scheduler::new();
        let c = SimClock::new();
        let h = sched.register("stuck", c, false);
        let t = std::thread::spawn(move || {
            h.attach();
            h.block(); // nobody will ever wake us
            unreachable!("block must panic on deadlock");
        });
        sched.launch();
        let err = t.join().unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("virtual-time deadlock"), "got: {msg}");
    }

    #[test]
    fn wake_at_orders_runnable_tasks() {
        // A controller wakes daemon 0 at t=500 and daemon 1 at t=100
        // while it is still running; once it finishes, the t=100
        // daemon must be dispatched first despite its higher id.
        let sched = Scheduler::new();
        let log: Arc<StdMutex<Vec<(usize, u64)>>> = Arc::new(StdMutex::new(Vec::new()));
        // The controller's clock starts at 10, so both daemons (at 0)
        // run — and block — before it is dispatched.
        let ctl_clock = SimClock::new();
        ctl_clock.advance(SimDuration(10));
        let ctl = sched.register("ctl", ctl_clock, false);
        let mut daemons = Vec::new();
        let mut threads = Vec::new();
        for i in 1..=2usize {
            let c = SimClock::new();
            let h = sched.register(format!("d{i}"), c, true);
            daemons.push(h.clone());
            let log = Arc::clone(&log);
            threads.push(std::thread::spawn(move || {
                h.attach();
                h.block(); // park until the controller's hint arrives
                log_push(&log, i, 0);
                h.finish();
            }));
        }
        {
            let h = ctl.clone();
            let targets = daemons.clone();
            threads.push(std::thread::spawn(move || {
                h.attach();
                targets[0].wake_at(SimInstant(500));
                targets[1].wake_at(SimInstant(100));
                h.finish();
            }));
        }
        sched.launch();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            log.lock()
                .unwrap()
                .iter()
                .map(|&(i, _)| i)
                .collect::<Vec<_>>(),
            vec![2, 1]
        );
    }
}
