//! Calibrated platform presets matching the paper's testbeds.
//!
//! §4.1 runs Figure 8 on a 16-node Pentium IV 2 GHz cluster (128 MB RAM,
//! 100 Mb Fast Ethernet through a 24-port switch, Linux Fedora). §4.3 /
//! Table 1 adds a Pentium III 733 MHz cluster under RedHat 6.2 and
//! RedHat 9.0 (same hardware, different I/O stacks), and a 4-node 4-way
//! Xeon P-III SMP cluster (Dell PowerEdge 6300) with 2×72 GB SCSI disks
//! used for the 117.77 GB maximum-object-space run.
//!
//! Absolute numbers are calibrations, not measurements; the relative
//! ordering between platforms (RedHat 9.0 I/O > RedHat 6.2 I/O; P-IV
//! Fedora ≫ both) is what Table 1 demonstrates and what these presets
//! encode.

use crate::clock::SimDuration;
use crate::cost::{CpuModel, DiskModel, NetModel};

/// A full platform description: CPU, network and disk models plus the
/// free local disk space available as swap backing store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    pub name: &'static str,
    pub cpu: CpuModel,
    pub net: NetModel,
    pub disk: DiskModel,
    /// Free local-disk bytes usable as object backing store per node.
    pub free_disk_bytes: u64,
    /// Physical RAM per node (bounds what the OS VM can cache; only
    /// reported, not enforced — the paper likewise defers to the OS VM).
    pub ram_bytes: u64,
}

/// 100 Mb Fast Ethernet + 24-port switch + UDP/IP, as used by both
/// LOTS and JIAJIA in §4.1 (identical transport, per the paper).
pub fn fast_ethernet() -> NetModel {
    NetModel {
        latency: SimDuration::from_micros(95),
        // 100 Mb/s minus UDP/IP + interrupt overhead ≈ 11.2 MB/s payload.
        bandwidth_bps: 11_200_000,
        per_fragment: SimDuration::from_micros(18),
        max_datagram: 64 * 1024,
        window_frags: 8,
    }
}

/// Pentium IV 2.0 GHz, Fedora — the Figure 8 cluster node.
///
/// Access check calibrated to the paper's measured 20–25 ns (§4.2).
pub fn pentium4_2ghz() -> CpuModel {
    CpuModel {
        access_check: SimDuration(22),
        pin_update: SimDuration(5),
        elem_op: SimDuration(7),
        handler_entry: SimDuration::from_micros(14),
        diff_byte: SimDuration(1),
        page_fault: SimDuration::from_micros(35),
        map_syscall: SimDuration::from_micros(6),
    }
}

/// Pentium III 733 MHz — the Table 1 slow cluster node. Roughly 3×
/// slower per operation than the P-IV at the same work.
pub fn pentium3_733mhz() -> CpuModel {
    CpuModel {
        access_check: SimDuration(65),
        pin_update: SimDuration(14),
        elem_op: SimDuration(20),
        handler_entry: SimDuration::from_micros(38),
        diff_byte: SimDuration(3),
        page_fault: SimDuration::from_micros(90),
        map_syscall: SimDuration::from_micros(15),
    }
}

/// P-IV 2 GHz / Fedora Figure-8 node: fast CPU, fast I/O.
pub fn p4_fedora() -> MachineConfig {
    MachineConfig {
        name: "P4-2GHz/Fedora",
        cpu: pentium4_2ghz(),
        net: fast_ethernet(),
        disk: DiskModel {
            per_op: SimDuration::from_micros(250),
            write_bps: 19_000_000,
            read_bps: 21_000_000,
        },
        free_disk_bytes: 30 << 30,
        ram_bytes: 128 << 20,
    }
}

/// P-III 733 MHz / RedHat 6.2: the weakest I/O stack in Table 1
/// (paper: 1114 s total, 1004 s spent in disk read/write).
pub fn p3_redhat62() -> MachineConfig {
    MachineConfig {
        name: "P3-733MHz/RedHat6.2",
        cpu: pentium3_733mhz(),
        net: fast_ethernet(),
        disk: DiskModel {
            per_op: SimDuration::from_millis(2),
            write_bps: 2_350_000,
            read_bps: 2_600_000,
        },
        free_disk_bytes: 12 << 30,
        ram_bytes: 128 << 20,
    }
}

/// P-III 733 MHz / RedHat 9.0: same hardware, better I/O subsystem
/// (paper: 976 s total, 666 s disk), showing the OS effect.
pub fn p3_redhat90() -> MachineConfig {
    MachineConfig {
        name: "P3-733MHz/RedHat9.0",
        cpu: pentium3_733mhz(),
        net: fast_ethernet(),
        disk: DiskModel {
            per_op: SimDuration::from_millis(1),
            write_bps: 3_500_000,
            read_bps: 3_950_000,
        },
        free_disk_bytes: 12 << 30,
        ram_bytes: 128 << 20,
    }
}

/// Dell PowerEdge 6300, 4-way P-III Xeon SMP with 2×72 GB SCSI disks —
/// the file-server nodes used for the 117.77 GB run (§4.3). What
/// matters for that experiment is the free SCSI capacity.
pub fn poweredge6300() -> MachineConfig {
    MachineConfig {
        name: "PowerEdge6300/4-way-SMP",
        cpu: pentium3_733mhz(),
        net: fast_ethernet(),
        disk: DiskModel {
            per_op: SimDuration::from_micros(800),
            write_bps: 24_000_000,
            read_bps: 27_000_000,
        },
        // 2×72 GB SCSI minus OS/application footprint: the paper
        // exhausted all free space to reach 117.77 GB across 4 nodes,
        // i.e. ~29.44 GB free per node.
        free_disk_bytes: (117_770_000_000u64).div_ceil(4),
        ram_bytes: 512 << 20,
    }
}

/// All Table 1 platforms, in paper order.
pub fn table1_platforms() -> Vec<MachineConfig> {
    vec![p3_redhat62(), p3_redhat90(), p4_fedora(), poweredge6300()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_check_matches_paper_band() {
        let c = pentium4_2ghz();
        assert!((20..=25).contains(&c.access_check.0));
    }

    #[test]
    fn platform_io_ordering_matches_table1() {
        // Table 1: RedHat 9.0 I/O beats 6.2; Fedora/P4 beats both.
        let rh62 = p3_redhat62().disk;
        let rh90 = p3_redhat90().disk;
        let p4 = p4_fedora().disk;
        let mb = 1u64 << 20;
        assert!(rh90.write_time(mb) < rh62.write_time(mb));
        assert!(p4.write_time(mb) < rh90.write_time(mb));
    }

    #[test]
    fn poweredge_cluster_free_space_sums_to_117gb() {
        let m = poweredge6300();
        let total = m.free_disk_bytes * 4;
        assert!(total >= 117_770_000_000);
        assert!(total < 118_000_000_000);
    }

    #[test]
    fn p3_slower_than_p4() {
        assert!(pentium3_733mhz().access_check > pentium4_2ghz().access_check);
        assert!(pentium3_733mhz().elem_op > pentium4_2ghz().elem_op);
    }

    #[test]
    fn ethernet_effective_bandwidth_below_line_rate() {
        let n = fast_ethernet();
        assert!(n.bandwidth_bps < 100_000_000 / 8);
        assert_eq!(n.max_datagram, 64 * 1024);
    }
}
