//! The virtual-time disk device behind the swap subsystem.
//!
//! Before this module, every swap-out/in charged its modeled disk time
//! *synchronously* to the node's clock — the disk was an instantaneous
//! cost add, invisible to the deterministic turnstile's event ordering
//! and unable to overlap with computation. [`DiskQueue`] turns the
//! local disk into a modeled device on the virtual timeline:
//!
//! * The device is **serial** (one spindle): every operation starts at
//!   the later of "now" and the device's `busy_until`, and pushes
//!   `busy_until` to its own completion. Read-after-write ordering per
//!   key is therefore free — a read issued after a write can never
//!   start before that write completed.
//! * **Write-back is asynchronous.** [`DiskQueue::write_batch`] books a
//!   whole eviction batch as one trip — a single [`DiskModel::per_op`]
//!   seek/syscall overhead amortized over all victims — and returns
//!   each image's completion instant. The caller does *not* advance its
//!   clock to completion: eviction overlaps with application progress,
//!   and the cost surfaces only when a later read finds the device
//!   still busy.
//! * **Reads block.** [`DiskQueue::read`] returns the completion
//!   instant the caller must advance its clock to (charging the wait as
//!   disk time). Read-ahead issues a read early so the wait has often
//!   already elapsed by the time the data is needed.
//!
//! All arithmetic is over virtual instants, so under the deterministic
//! scheduler the queue — like everything else — is a pure function of
//! the run's inputs.

use crate::clock::{SimDuration, SimInstant};
use crate::cost::DiskModel;

/// One scheduled device operation: when the device started serving it
/// and when it completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskOp {
    /// Instant the device began the operation (≥ issue time).
    pub start: SimInstant,
    /// Instant the operation completes on the device.
    pub done: SimInstant,
}

/// A serial virtual-time disk device (see the module docs).
#[derive(Debug, Clone)]
pub struct DiskQueue {
    model: DiskModel,
    busy_until: SimInstant,
}

impl DiskQueue {
    /// A fresh, idle device over `model`.
    pub fn new(model: DiskModel) -> DiskQueue {
        DiskQueue {
            model,
            busy_until: SimInstant::ZERO,
        }
    }

    /// The cost model this device charges with.
    pub fn model(&self) -> DiskModel {
        self.model
    }

    /// Instant until which the device is busy with already-queued work.
    pub fn busy_until(&self) -> SimInstant {
        self.busy_until
    }

    /// Book a batched write of images with the given byte sizes as one
    /// trip: one `per_op` overhead, then each image's streaming time in
    /// order. Returns one completion instant per image (the last one is
    /// the trip's end). The caller keeps running — write-back is
    /// asynchronous.
    pub fn write_batch(&mut self, now: SimInstant, sizes: &[u64]) -> Vec<SimInstant> {
        debug_assert!(!sizes.is_empty(), "empty write batch");
        let mut t = self.busy_until.max(now) + self.model.per_op;
        let mut dones = Vec::with_capacity(sizes.len());
        for &bytes in sizes {
            t += stream_time(bytes, self.model.write_bps);
            dones.push(t);
        }
        self.busy_until = t;
        dones
    }

    /// Book a read of `bytes`. The caller must advance its clock to
    /// `done` before using the data (the device may still be draining
    /// earlier write-back).
    pub fn read(&mut self, now: SimInstant, bytes: u64) -> DiskOp {
        let start = self.busy_until.max(now);
        let done = start + self.model.per_op + stream_time(bytes, self.model.read_bps);
        self.busy_until = done;
        DiskOp { start, done }
    }
}

/// Pure streaming transfer time of `bytes` at `bps` (no per-op cost).
fn stream_time(bytes: u64, bps: u64) -> SimDuration {
    SimDuration(((bytes as u128 * 1_000_000_000) / bps as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DiskModel {
        DiskModel {
            per_op: SimDuration::from_micros(500),
            write_bps: 10_000_000,
            read_bps: 20_000_000,
        }
    }

    #[test]
    fn batch_pays_one_per_op() {
        let mut q = DiskQueue::new(model());
        // Two 1 MB images: per_op once, then 100 ms each at 10 MB/s.
        let dones = q.write_batch(SimInstant(0), &[1_000_000, 1_000_000]);
        assert_eq!(dones[0], SimInstant(500_000 + 100_000_000));
        assert_eq!(dones[1], SimInstant(500_000 + 200_000_000));
        assert_eq!(q.busy_until(), dones[1]);
        // The same images as two separate trips pay per_op twice.
        let mut q2 = DiskQueue::new(model());
        let a = q2.write_batch(SimInstant(0), &[1_000_000]);
        let b = q2.write_batch(SimInstant(0), &[1_000_000]);
        assert!(b[0] > dones[1], "{} vs {}", b[0], dones[1]);
        assert_eq!(b[0].nanos() - a[0].nanos(), 500_000 + 100_000_000);
    }

    #[test]
    fn read_waits_for_pending_writeback() {
        let mut q = DiskQueue::new(model());
        let dones = q.write_batch(SimInstant(0), &[10_000_000]); // 1 s
        let op = q.read(SimInstant(1_000), 1_000_000);
        assert_eq!(op.start, dones[0], "device is serial");
        assert_eq!(
            op.done,
            dones[0] + SimDuration(500_000) + SimDuration(50_000_000)
        );
    }

    #[test]
    fn idle_device_starts_immediately() {
        let mut q = DiskQueue::new(model());
        let op = q.read(SimInstant(7_000), 2_000_000);
        assert_eq!(op.start, SimInstant(7_000));
        assert_eq!(op.done, SimInstant(7_000 + 500_000 + 100_000_000));
        // A later request after the device drained also starts at once.
        let op2 = q.read(SimInstant(op.done.nanos() + 5), 0);
        assert_eq!(op2.start, SimInstant(op.done.nanos() + 5));
    }

    #[test]
    fn single_write_matches_disk_model() {
        let mut q = DiskQueue::new(model());
        let dones = q.write_batch(SimInstant(0), &[4096]);
        assert_eq!(
            dones[0].saturating_sub(SimInstant(0)),
            model().write_time(4096)
        );
    }
}
